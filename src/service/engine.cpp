#include "service/engine.hpp"

#include <algorithm>
#include <cstdlib>

namespace vbatch::service {

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
    if (const char* v = std::getenv(name)) {
        const long parsed = std::atol(v);
        if (parsed > 0) {
            return static_cast<std::size_t>(parsed);
        }
    }
    return fallback;
}

std::size_t queue_capacity_of(const EngineOptions& options) {
    return options.queue_capacity != 0
               ? options.queue_capacity
               : env_or("VBATCH_SERVICE_QUEUE", 256);
}

}  // namespace

Engine::Engine(EngineOptions options)
    : cache_(options.cache),
      queue_(queue_capacity_of(options)),
      admission_(options.admission) {}

Engine::~Engine() {
    drain();
    queue_.close();
}

bool Engine::submit_job(std::function<void()> job) {
    // Count the job before enqueueing so drain() can never observe a
    // window where an accepted job is in neither the counter nor the
    // queue.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++outstanding_;
    }
    auto wrapped = [this, job = std::move(job)] {
        job();
        finish_job();
    };
    const bool accepted = admission_ == Admission::block
                              ? queue_.push(std::move(wrapped))
                              : queue_.try_push(std::move(wrapped));
    auto& registry = obs::Registry::global();
    if (!accepted) {
        {
            // Notify while still holding the mutex: a drain()er can only
            // return after re-acquiring it, i.e. strictly after the
            // broadcast finished, which makes destroying the engine right
            // after drain() safe.
            std::lock_guard<std::mutex> lock(mutex_);
            --outstanding_;
            ++rejected_;
            idle_cv_.notify_all();
        }
        registry.add("service.queue.rejected", 1.0);
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
        peak_depth_ = std::max(peak_depth_, queue_.size());
    }
    registry.add("service.queue.submitted", 1.0);
    // One drainer per accepted job: each pool task pops exactly one
    // queued job, so the bounded queue is the only admission point and
    // the pool's own deque never outgrows it.
    ThreadPool::global().submit([this] {
        if (auto task = queue_.try_pop()) {
            (*task)();
        }
    });
    return true;
}

void Engine::finish_job() {
    // Count before the job stops being outstanding so drain() is also a
    // barrier for the telemetry: a registry snapshot taken after drain()
    // sees every completion.
    obs::Registry::global().add("service.queue.completed", 1.0);
    {
        // Notify under the lock (see submit_job): lets ~Engine destroy
        // the condition variable immediately after drain() observes
        // outstanding_ == 0 without racing this broadcast.
        std::lock_guard<std::mutex> lock(mutex_);
        --outstanding_;
        ++completed_;
        idle_cv_.notify_all();
    }
}

void Engine::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

EngineStats Engine::stats() const {
    EngineStats out;
    out.cache = cache_.stats();
    std::lock_guard<std::mutex> lock(mutex_);
    out.sessions_opened = sessions_opened_;
    out.submitted = submitted_;
    out.rejected = rejected_;
    out.completed = completed_;
    out.outstanding = outstanding_;
    out.peak_depth = peak_depth_;
    return out;
}

}  // namespace vbatch::service
