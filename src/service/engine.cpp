#include "service/engine.hpp"

#include <algorithm>
#include <cstdlib>

namespace vbatch::service {

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
    if (const char* v = std::getenv(name)) {
        const long parsed = std::atol(v);
        if (parsed > 0) {
            return static_cast<std::size_t>(parsed);
        }
    }
    return fallback;
}

std::size_t queue_capacity_of(const EngineOptions& options) {
    return options.queue_capacity != 0
               ? options.queue_capacity
               : env_or("VBATCH_SERVICE_QUEUE", 256);
}

}  // namespace

Engine::Engine(EngineOptions options)
    : cache_(options.cache),
      capacity_(queue_capacity_of(options)),
      admission_(options.admission) {}

Engine::~Engine() { drain(); }

bool Engine::submit_job(std::function<void()> job) {
    // Admission is a counter, not a hand-off queue: an accepted job is
    // pushed straight onto the pool's deques (one submit, no
    // one-drainer-per-job indirection), and outstanding_ vs capacity_
    // bounds how many live in the pool at once. The counter moves under
    // mutex_, so drain() can never observe a window where an accepted
    // job is in neither the counter nor the pool.
    auto& registry = obs::Registry::global();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (outstanding_ >= capacity_) {
            if (admission_ == Admission::reject) {
                ++rejected_;
                lock.unlock();
                registry.add("service.queue.rejected", 1.0);
                return false;
            }
            // Backpressure: wait for completions to open a slot.
            // finish_job broadcasts idle_cv_ on every decrement.
            idle_cv_.wait(lock, [&] { return outstanding_ < capacity_; });
        }
        ++outstanding_;
        ++submitted_;
        peak_depth_ = std::max(peak_depth_, outstanding_);
    }
    registry.add("service.queue.submitted", 1.0);
    ThreadPool::global().submit([this, job = std::move(job)] {
        job();
        finish_job();
    });
    return true;
}

void Engine::finish_job() {
    // Count before the job stops being outstanding so drain() is also a
    // barrier for the telemetry: a registry snapshot taken after drain()
    // sees every completion.
    obs::Registry::global().add("service.queue.completed", 1.0);
    {
        // Notify under the lock: lets ~Engine destroy the condition
        // variable immediately after drain() observes outstanding_ == 0
        // without racing this broadcast, and wakes both drain()ers and
        // submitters blocked on admission backpressure.
        std::lock_guard<std::mutex> lock(mutex_);
        --outstanding_;
        ++completed_;
        idle_cv_.notify_all();
    }
}

void Engine::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

EngineStats Engine::stats() const {
    EngineStats out;
    out.cache = cache_.stats();
    std::lock_guard<std::mutex> lock(mutex_);
    out.sessions_opened = sessions_opened_;
    out.submitted = submitted_;
    out.rejected = rejected_;
    out.completed = completed_;
    out.outstanding = outstanding_;
    out.peak_depth = peak_depth_;
    return out;
}

}  // namespace vbatch::service
