#include "service/plan_cache.hpp"

#include <cstdlib>

#include "base/macros.hpp"
#include "obs/metrics.hpp"
#include "precond/block_jacobi.hpp"

namespace vbatch::service {

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
    if (const char* v = std::getenv(name)) {
        const long parsed = std::atol(v);
        if (parsed > 0) {
            return static_cast<std::size_t>(parsed);
        }
    }
    return fallback;
}

}  // namespace

PlanCache::PlanCache(PlanCacheOptions options) {
    std::size_t shards = options.shards != 0
                             ? options.shards
                             : env_or("VBATCH_SERVICE_SHARDS", 8);
    VBATCH_ENSURE(shards > 0, "plan cache needs at least one shard");
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        shards_.push_back(std::make_unique<Shard>());
    }
    byte_budget_ = options.byte_budget;
    shard_budget_ =
        byte_budget_ == 0 ? 0 : (byte_budget_ + shards - 1) / shards;
}

PlanCache::Shard& PlanCache::shard_for(const PlanKey& key) {
    // The pattern hash is already well-mixed; fold in the knobs so two
    // configurations of one pattern can land on different stripes.
    const std::uint64_t h =
        key.pattern_hash ^
        (static_cast<std::uint64_t>(key.max_block_size) * 0x9e3779b97f4a7c15ULL) ^
        (static_cast<std::uint64_t>(key.lanes) << 32);
    return *shards_[static_cast<std::size_t>(h % shards_.size())];
}

PlanCache::SymbolicPtr PlanCache::acquire_keyed(
    const PlanKey& key, const std::function<SymbolicPtr()>& build) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_pos);
        {
            std::lock_guard<std::mutex> slock(stats_mutex_);
            ++stats_.reuses;
        }
        obs::Registry::global().add("service.cache.reuses", 1.0);
        return it->second.symbolic;
    }
    // Build while holding the shard lock: same-key racers wait here and
    // adopt this object, so each key is analyzed exactly once. Other
    // shards (other patterns) proceed unblocked.
    SymbolicPtr sym = build();
    {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.builds;
    }
    obs::Registry::global().add("service.cache.builds", 1.0);
    if (sym == nullptr) {
        return nullptr;
    }
    Entry entry;
    entry.symbolic = sym;
    entry.bytes = sym->byte_size();
    entry.lru_pos = shard.lru.insert(shard.lru.end(), key);
    shard.bytes += entry.bytes;
    shard.entries.emplace(key, std::move(entry));
    evict_locked(shard);
    return sym;
}

void PlanCache::evict_locked(Shard& shard) {
    if (shard_budget_ == 0) {
        return;
    }
    std::size_t evicted = 0;
    auto pos = shard.lru.begin();
    while (shard.bytes > shard_budget_ && pos != shard.lru.end()) {
        auto it = shard.entries.find(*pos);
        VBATCH_ASSERT(it != shard.entries.end());
        // use_count == 1 means only the cache pins it; a shared entry is
        // in active use by at least one session and stays resident (the
        // LRU revisits it once those sessions drop their handles).
        if (it->second.symbolic.use_count() > 1) {
            ++pos;
            continue;
        }
        shard.bytes -= it->second.bytes;
        pos = shard.lru.erase(pos);
        shard.entries.erase(it);
        ++evicted;
    }
    if (evicted > 0) {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        stats_.evictions += evicted;
        obs::Registry::global().add("service.cache.evictions",
                                    static_cast<double>(evicted));
    }
}

PlanCacheStats PlanCache::stats() const {
    PlanCacheStats out;
    {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        out = stats_;
    }
    out.entries = 0;
    out.bytes = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        out.entries += shard->entries.size();
        out.bytes += shard->bytes;
    }
    return out;
}

void PlanCache::clear() {
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        auto pos = shard->lru.begin();
        while (pos != shard->lru.end()) {
            auto it = shard->entries.find(*pos);
            if (it->second.symbolic.use_count() > 1) {
                ++pos;
                continue;
            }
            shard->bytes -= it->second.bytes;
            pos = shard->lru.erase(pos);
            shard->entries.erase(it);
        }
    }
}

}  // namespace vbatch::service
