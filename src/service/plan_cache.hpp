// Sharded, refcounted cache of block-Jacobi symbolic analyses.
//
// The service engine hosts many tenants whose matrices often share one
// sparsity pattern (time steps, Newton iterates, per-client instances of
// the same discretization). The symbolic layer of a block-Jacobi setup
// -- supervariable agglomeration, gather plan, lane grouping -- depends
// only on that pattern and the backend's (bound, isa, lanes) knobs, so
// thousands of same-pattern sessions can share a single
// precond::BlockJacobiSymbolic while keeping private numeric factors.
//
// The cache is keyed by the 64-bit CSR pattern fingerprint (plus the
// shape and the symbolic-relevant knobs) and striped over N
// mutex-guarded shards so unrelated patterns never contend on one lock.
// A miss builds the symbolic *under its shard lock*, which gives
// exactly-once construction per key: concurrent same-pattern acquires
// serialize on the shard and every latecomer adopts the one built
// object. Entries are refcounted through shared_ptr; eviction (LRU, to
// a byte budget) only drops entries no session currently pins, and an
// evicted-but-pinned symbolic simply lives on with its sessions.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "base/types.hpp"
#include "blocking/gather_plan.hpp"
#include "core/simd_dispatch.hpp"
#include "precond/config.hpp"
#include "sparse/csr.hpp"

namespace vbatch::service {

/// Everything the symbolic layer depends on. Two matrices with equal
/// keys produce interchangeable symbolics (the fingerprint makes a
/// same-shape collision astronomically unlikely; adoption is still
/// re-validated against the matrix by the BlockJacobi setup).
struct PlanKey {
    std::uint64_t pattern_hash = 0;
    index_type num_rows = 0;
    size_type nnz = 0;
    index_type max_block_size = 0;
    core::SimdIsa isa = core::SimdIsa::scalar;
    index_type lanes = 1;

    friend bool operator<(const PlanKey& a, const PlanKey& b) {
        return std::tie(a.pattern_hash, a.num_rows, a.nnz,
                        a.max_block_size, a.isa, a.lanes) <
               std::tie(b.pattern_hash, b.num_rows, b.nnz,
                        b.max_block_size, b.isa, b.lanes);
    }
};

struct PlanCacheOptions {
    /// Number of mutex stripes; 0 = $VBATCH_SERVICE_SHARDS, default 8.
    std::size_t shards = 0;
    /// LRU byte budget across all shards (charged via
    /// BlockJacobiSymbolic::byte_size); 0 = unbounded.
    std::size_t byte_budget = 0;
};

/// Monotone counters plus a point-in-time footprint snapshot.
struct PlanCacheStats {
    std::size_t builds = 0;     ///< misses that constructed a symbolic
    std::size_t reuses = 0;     ///< hits served from the cache
    std::size_t evictions = 0;  ///< unpinned entries dropped by the LRU
    std::size_t entries = 0;    ///< resident entries right now
    std::size_t bytes = 0;      ///< resident symbolic bytes right now
};

class PlanCache {
public:
    using SymbolicPtr = std::shared_ptr<const precond::BlockJacobiSymbolic>;

    explicit PlanCache(PlanCacheOptions options = {});

    /// The symbolic `config` needs for `a`: cached copy on a pattern hit,
    /// freshly built (and inserted) on a miss, nullptr when the backend
    /// has no symbolic phase ("none", "jacobi", custom registrations).
    /// Thread-safe; same-key concurrent calls build exactly once.
    template <typename T>
    SymbolicPtr acquire(const sparse::Csr<T>& a,
                        const precond::Config& config) {
        if (!precond::symbolic_backend(config.backend)) {
            return nullptr;
        }
        return acquire_keyed(key_for(a, config), [&] {
            return precond::make_symbolic<T>(a, config);
        });
    }

    /// The key acquire() would file `a` + `config` under.
    template <typename T>
    static PlanKey key_for(const sparse::Csr<T>& a,
                           const precond::Config& config) {
        PlanKey key;
        // Memoized per structure: copies of an analyzed matrix key in
        // O(1), a fresh tenant matrix pays the O(nnz) hash exactly once.
        key.pattern_hash = a.pattern_hash();
        key.num_rows = a.num_rows();
        key.nnz = a.nnz();
        key.max_block_size = config.max_block_size;
        if (config.backend == "lu-simd") {
            // Mirror the builder's clamp so the key names the ISA the
            // symbolic will actually be built for.
            auto isa = config.simd;
            if (!core::simd_isa_available(isa)) {
                isa = core::detect_simd_isa();
            }
            key.isa = isa;
            key.lanes = core::simd_lanes<T>(isa);
        }
        return key;
    }

    PlanCacheStats stats() const;
    std::size_t num_shards() const noexcept { return shards_.size(); }
    std::size_t byte_budget() const noexcept { return byte_budget_; }

    /// Drop every unpinned entry (pinned ones stay with their sessions).
    void clear();

private:
    struct Entry {
        SymbolicPtr symbolic;
        std::size_t bytes = 0;
        std::list<PlanKey>::iterator lru_pos;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::map<PlanKey, Entry> entries;
        /// Front = least recently used.
        std::list<PlanKey> lru;
        std::size_t bytes = 0;
    };

    SymbolicPtr acquire_keyed(const PlanKey& key,
                              const std::function<SymbolicPtr()>& build);
    Shard& shard_for(const PlanKey& key);
    /// Drop unpinned LRU entries until the shard fits its budget slice.
    void evict_locked(Shard& shard);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t byte_budget_ = 0;
    /// Per-shard slice of the budget (bytes are tracked per shard so
    /// eviction never needs a second lock).
    std::size_t shard_budget_ = 0;

    mutable std::mutex stats_mutex_;
    PlanCacheStats stats_;
};

}  // namespace vbatch::service
