// Multi-tenant solve engine: sessions, shared symbolic plans, async jobs.
//
// The library so far exposes single-shot building blocks: build a
// preconditioner, run a solver. A long-lived host (a simulation server,
// a parameter sweep, an optimizer driving many nearby systems) instead
// holds *sessions*: a matrix whose values keep changing over one fixed
// sparsity pattern, preconditioned once symbolically and refreshed
// numerically per step. The Engine packages that operating mode:
//
//   service::Engine engine;
//   auto session = engine.open_session(std::move(a), options);
//   session->update_values(new_values);   // PR-5 numeric-only refresh
//   auto response = session->solve(b, x); // synchronous
//   auto future = session->submit(req);   // async through the job queue
//   engine.drain();                       // quiesce
//
// Three shared facilities sit under the sessions:
//  * a sharded PlanCache so same-pattern tenants share one symbolic
//    analysis (private numeric factors each; see plan_cache.hpp),
//  * counter-based admission control in front of the global ThreadPool
//    (reject or block when the outstanding-job cap is hit) with
//    backpressure telemetry -- accepted jobs go straight onto the
//    pool's work-stealing deques, with no intermediate hand-off queue,
//  * service.* counters in the metrics registry (cache hits, queue
//    traffic) that flow into bench JSON like every other subsystem.
//
// Threading: Session::solve/update_values/submit are safe to call from
// any thread; one session serializes its own requests through a session
// mutex while distinct sessions proceed in parallel. Async jobs run as
// ThreadPool tasks; under the stealing scheduler a job's nested
// parallel loops spread across idle workers (under VBATCH_SCHED=sharing
// they inline), and either way each job is deterministic
// (bitwise-reproducible) regardless of how many other tenants run
// beside it. The Engine must outlive its sessions; a session drains its
// own in-flight jobs on destruction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "base/macros.hpp"
#include "base/thread_pool.hpp"
#include "base/timer.hpp"
#include "obs/metrics.hpp"
#include "precond/config.hpp"
#include "service/plan_cache.hpp"
#include "solvers/config.hpp"
#include "sparse/csr.hpp"

namespace vbatch::service {

/// What to do with a submission that finds the outstanding-job cap hit.
enum class Admission {
    /// Fail fast: the future resolves immediately with accepted=false.
    reject,
    /// Apply backpressure: the submitting thread waits for room. Do not
    /// combine with submitting from inside pool tasks.
    block,
};

struct EngineOptions {
    PlanCacheOptions cache;
    /// Cap on jobs accepted but not yet completed;
    /// 0 = $VBATCH_SERVICE_QUEUE, default 256.
    std::size_t queue_capacity = 0;
    Admission admission = Admission::reject;
};

/// Point-in-time engine telemetry (monotone counters + current depths).
struct EngineStats {
    PlanCacheStats cache;
    std::size_t sessions_opened = 0;
    std::size_t submitted = 0;  ///< async jobs accepted
    std::size_t rejected = 0;   ///< async jobs refused at admission
    std::size_t completed = 0;  ///< async jobs finished
    std::size_t outstanding = 0;
    std::size_t peak_depth = 0;  ///< high-water outstanding-job count
};

/// One tenant request: optionally swap the matrix values (same pattern),
/// then solve for `rhs`. Owns its data so it can cross threads.
template <typename T>
struct SolveRequest {
    /// New matrix values (empty = solve with the current ones). Must
    /// match the session matrix's nnz.
    std::vector<T> values;
    std::vector<T> rhs;
    /// Per-request overrides; zero/empty = the session defaults.
    std::string solver;
    double rel_tol = 0.0;
    index_type max_iters = 0;
};

/// Result plus the telemetry of how it got through the engine.
template <typename T>
struct SolveResponse {
    /// False iff admission control refused the job (reject policy); the
    /// rest of the fields are then default-constructed.
    bool accepted = true;
    solvers::SolveResult result;
    std::vector<T> x;
    /// Numeric refresh time spent on this request's values update.
    double refresh_seconds = 0.0;
    /// Time the job sat in the queue before a worker picked it up.
    double queue_seconds = 0.0;
    /// True when this session adopted a cached symbolic plan.
    bool plan_shared = false;
};

struct SessionOptions {
    precond::Config precond;
    solvers::Config solver;
    /// Acquire the symbolic analysis through the engine's shared plan
    /// cache (same-pattern sessions then share one plan). Off = analyze
    /// privately, exactly like a standalone make_preconditioner.
    bool share_symbolic = true;
};

class Engine;

template <typename T>
class Session {
public:
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    ~Session() { wait_idle(); }

    /// Swap in new matrix values (same sparsity pattern) and re-run the
    /// numeric-only preconditioner refresh.
    void update_values(std::span<const T> values) {
        std::lock_guard<std::mutex> lock(mutex_);
        update_values_locked(values);
    }

    /// Solve A x = b synchronously on the calling thread. `x` carries
    /// the initial guess in and the solution out.
    SolveResponse<T> solve(std::span<const T> b, std::span<T> x) {
        std::lock_guard<std::mutex> lock(mutex_);
        SolveResponse<T> response;
        response.plan_shared = plan_shared_;
        response.refresh_seconds = last_refresh_seconds_;
        last_refresh_seconds_ = 0.0;
        response.result = solver_->solve(a_, b, x, *prec_);
        return response;
    }

    /// Queue the request through the engine's admission-controlled job
    /// queue. The future resolves with accepted=false when the reject
    /// policy refused it. Requests of one session execute serially in
    /// submission-completion order of the pool; distinct sessions run
    /// concurrently.
    std::future<SolveResponse<T>> submit(SolveRequest<T> request);

    /// Block until every job this session submitted has finished.
    void wait_idle() {
        std::unique_lock<std::mutex> lock(pending_mutex_);
        pending_cv_.wait(lock, [&] { return pending_ == 0; });
    }

    index_type num_rows() const noexcept { return a_.num_rows(); }
    const sparse::Csr<T>& matrix() const noexcept { return a_; }
    const precond::Preconditioner<T>& preconditioner() const noexcept {
        return *prec_;
    }
    /// True when the symbolic plan came out of the engine's cache.
    bool plan_shared() const noexcept { return plan_shared_; }

private:
    friend class Engine;

    Session(Engine& engine, sparse::Csr<T> a, SessionOptions options)
        : engine_(engine),
          a_(std::move(a)),
          options_(std::move(options)),
          plan_shared_(options_.precond.symbolic != nullptr),
          prec_(precond::make_preconditioner<T>(a_, options_.precond)),
          solver_(solvers::make_solver<T>(options_.solver)) {}

    void update_values_locked(std::span<const T> values) {
        Timer timer;
        a_.set_values(values);
        prec_->refresh(a_);
        last_refresh_seconds_ = timer.seconds();
    }

    /// Run one queued request to completion (called from a pool task,
    /// holding the session mutex for the whole request).
    SolveResponse<T> process(const SolveRequest<T>& request) {
        std::lock_guard<std::mutex> lock(mutex_);
        SolveResponse<T> response;
        response.plan_shared = plan_shared_;
        if (!request.values.empty()) {
            update_values_locked(request.values);
            response.refresh_seconds = last_refresh_seconds_;
            last_refresh_seconds_ = 0.0;
        }
        const solvers::Solver<T>* solver = solver_.get();
        solvers::SolverPtr<T> override_solver;
        if (!request.solver.empty() || request.rel_tol > 0.0 ||
            request.max_iters > 0) {
            auto config = options_.solver;
            if (!request.solver.empty()) {
                config.method = request.solver;
            }
            if (request.rel_tol > 0.0) {
                config.rel_tol = request.rel_tol;
            }
            if (request.max_iters > 0) {
                config.max_iters = request.max_iters;
            }
            override_solver = solvers::make_solver<T>(config);
            solver = override_solver.get();
        }
        response.x.assign(request.rhs.size(), T{});
        response.result =
            solver->solve(a_, std::span<const T>(request.rhs),
                          std::span<T>(response.x), *prec_);
        return response;
    }

    Engine& engine_;
    sparse::Csr<T> a_;
    SessionOptions options_;
    bool plan_shared_ = false;
    precond::PreconditionerPtr<T> prec_;
    solvers::SolverPtr<T> solver_;
    /// Serializes update/solve on this session's mutable state.
    std::mutex mutex_;
    double last_refresh_seconds_ = 0.0;
    /// In-flight async jobs of this session (destruction waits on them).
    std::mutex pending_mutex_;
    std::condition_variable pending_cv_;
    std::size_t pending_ = 0;
};

template <typename T>
using SessionPtr = std::unique_ptr<Session<T>>;

class Engine {
public:
    explicit Engine(EngineOptions options = {});
    /// Drains outstanding jobs, then closes the queue.
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Open a tenant session for `a`. When share_symbolic is on (the
    /// default) and the preconditioner backend has a symbolic phase, the
    /// session adopts the cached plan for `a`'s pattern -- built on this
    /// call iff no same-pattern tenant came before.
    template <typename T>
    SessionPtr<T> open_session(sparse::Csr<T> a,
                               SessionOptions options = {}) {
        if (options.share_symbolic && options.precond.symbolic == nullptr) {
            options.precond.symbolic = cache_.acquire(a, options.precond);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++sessions_opened_;
        }
        obs::Registry::global().add("service.sessions", 1.0);
        return SessionPtr<T>(
            new Session<T>(*this, std::move(a), std::move(options)));
    }

    /// Block until every accepted job has completed.
    void drain();

    EngineStats stats() const;
    PlanCache& plan_cache() noexcept { return cache_; }
    std::size_t queue_capacity() const noexcept { return capacity_; }

private:
    template <typename U>
    friend class Session;

    /// Admission-controlled dispatch. True = accepted (the job went
    /// straight onto the pool and will run exactly once on a worker);
    /// false = rejected by policy.
    bool submit_job(std::function<void()> job);
    void finish_job();

    PlanCache cache_;
    std::size_t capacity_;
    Admission admission_;

    mutable std::mutex mutex_;
    std::condition_variable idle_cv_;
    std::size_t outstanding_ = 0;
    std::size_t sessions_opened_ = 0;
    std::size_t submitted_ = 0;
    std::size_t rejected_ = 0;
    std::size_t completed_ = 0;
    std::size_t peak_depth_ = 0;
};

template <typename T>
std::future<SolveResponse<T>> Session<T>::submit(SolveRequest<T> request) {
    auto promise = std::make_shared<std::promise<SolveResponse<T>>>();
    auto future = promise->get_future();
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        ++pending_;
    }
    Timer queued;
    const bool accepted = engine_.submit_job(
        [this, promise, queued, request = std::move(request)]() mutable {
            const double queue_wait = queued.seconds();
            SolveResponse<T> response = process(request);
            response.queue_seconds = queue_wait;
            promise->set_value(std::move(response));
            std::lock_guard<std::mutex> lock(pending_mutex_);
            if (--pending_ == 0) {
                pending_cv_.notify_all();
            }
        });
    if (!accepted) {
        SolveResponse<T> refused;
        refused.accepted = false;
        promise->set_value(std::move(refused));
        std::lock_guard<std::mutex> lock(pending_mutex_);
        if (--pending_ == 0) {
            pending_cv_.notify_all();
        }
    }
    return future;
}

}  // namespace vbatch::service
