// Bounded MPMC job queue -- the admission-control stage in front of the
// thread pool.
//
// ThreadPool::submit's internal deque is unbounded by design (a lost
// task is worse than a long queue); a multi-tenant service, in
// contrast, must bound how much work it accepts so a burst of clients
// degrades into rejected or briefly-blocked submissions instead of an
// unbounded memory ramp. BoundedQueue is that bound: a fixed-capacity
// ring guarded by one mutex and two condition variables, with both
// blocking (push) and non-blocking (try_push) producers. close() wakes
// every waiter and drains producers/consumers deterministically, so
// shutdown never strands a thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "base/macros.hpp"

namespace vbatch::service {

template <typename T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
        VBATCH_ENSURE(capacity_ > 0, "queue capacity must be positive");
    }

    /// Enqueue, waiting while full. False iff the queue was closed.
    bool push(T item) {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_) {
            return false;
        }
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Enqueue only if there is room right now. False when full or closed.
    bool try_push(T item) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_) {
                return false;
            }
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /// Dequeue, waiting while empty. nullopt iff closed and drained.
    std::optional<T> pop() {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) {
            return std::nullopt;
        }
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Dequeue only if an item is ready right now.
    std::optional<T> try_pop() {
        std::unique_lock<std::mutex> lock(mutex_);
        if (items_.empty()) {
            return std::nullopt;
        }
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Reject future pushes and wake every waiter. Items already queued
    /// remain poppable (pop drains, then reports nullopt).
    void close() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    std::size_t size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const noexcept { return capacity_; }

    bool closed() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    bool closed_ = false;
};

}  // namespace vbatch::service
