// Fused BLAS-1 kernels for the Krylov solver hot path.
//
// Each per-iteration vector update in cg/bicgstab/idr/gmres used to be a
// chain of separate axpy/dot/nrm2 sweeps; on long vectors every sweep is
// a full trip through memory, so the iteration cost was dominated by
// redundant passes (the bandwidth argument of Anzt et al., ICPP 2017).
// The kernels here fuse the chains into single sweeps -- each element is
// loaded once, updated, and folded into whatever reductions ride along.
//
// Numerical contract: every kernel performs, per element, *exactly* the
// operations of the unfused call sequence in the same order, and every
// reduction uses the fixed-chunk deterministic scheme of blas1.hpp.
// Consequently a fused kernel is bitwise identical to its unfused
// composition (asserted by tests/test_hotpath.cpp) and bitwise stable
// across thread counts.
//
// multi_dot / multi_axpy batch the Arnoldi projection of GMRES (and the
// shadow-space products of IDR): k dot products against one vector in a
// single sweep instead of k, with per-column results bitwise equal to k
// separate blas::dot calls.
#pragma once

#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "base/macros.hpp"
#include "blas/blas1.hpp"
#include "obs/metrics.hpp"

namespace vbatch::blas {

namespace detail {

/// One registry update per kernel launch (never per element): the
/// hot-path benches derive effective bandwidth from these two counters.
inline void record_fused(std::size_t bytes) {
    auto& registry = obs::Registry::global();
    registry.add("blas1.fused.launches", 1.0);
    registry.add("blas1.fused.bytes_moved", static_cast<double>(bytes));
}

}  // namespace detail

/// r := b - r; returns ||r||_2. (Initial-residual pattern.)
template <typename T>
T fused_residual_norm2(std::span<const T> b, std::span<T> r) {
    VBATCH_ENSURE_DIMS(b.size() == r.size());
    detail::record_fused(3 * sizeof(T) * r.size());
    const T sq = detail::reduce_chunks<T>(
        r.size(), [&](std::size_t lo, std::size_t hi) {
            T acc{};
            for (std::size_t i = lo; i < hi; ++i) {
                r[i] = b[i] - r[i];
                acc += r[i] * r[i];
            }
            return acc;
        });
    return std::sqrt(sq);
}

/// y += alpha * x; returns ||y||_2.
template <typename T>
T fused_axpy_norm2(T alpha, std::span<const T> x, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    detail::record_fused(3 * sizeof(T) * y.size());
    const T sq = detail::reduce_chunks<T>(
        y.size(), [&](std::size_t lo, std::size_t hi) {
            T acc{};
            for (std::size_t i = lo; i < hi; ++i) {
                y[i] += alpha * x[i];
                acc += y[i] * y[i];
            }
            return acc;
        });
    return std::sqrt(sq);
}

/// x += alpha * p; r += (-alpha) * q; returns ||r||_2. The whole CG
/// iterate/residual update in one sweep (was: axpy + axpy + nrm2).
template <typename T>
T fused_cg_update(T alpha, std::span<const T> p, std::span<const T> q,
                  std::span<T> x, std::span<T> r) {
    VBATCH_ENSURE_DIMS(p.size() == x.size() && q.size() == r.size() &&
                       x.size() == r.size());
    detail::record_fused(6 * sizeof(T) * x.size());
    const T neg_alpha = -alpha;
    const T sq = detail::reduce_chunks<T>(
        r.size(), [&](std::size_t lo, std::size_t hi) {
            T acc{};
            for (std::size_t i = lo; i < hi; ++i) {
                x[i] += alpha * p[i];
                r[i] += neg_alpha * q[i];
                acc += r[i] * r[i];
            }
            return acc;
        });
    return std::sqrt(sq);
}

/// p := r + beta * (p - omega * v). (BiCGSTAB direction update.)
template <typename T>
void fused_bicg_p_update(T beta, T omega, std::span<const T> r,
                         std::span<const T> v, std::span<T> p) {
    VBATCH_ENSURE_DIMS(r.size() == p.size() && v.size() == p.size());
    detail::record_fused(4 * sizeof(T) * p.size());
    detail::for_chunks(p.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
    });
}

/// s := r - alpha * v; returns ||s||_2.
template <typename T>
T fused_sub_axpy_norm2(T alpha, std::span<const T> r, std::span<const T> v,
                       std::span<T> s) {
    VBATCH_ENSURE_DIMS(r.size() == s.size() && v.size() == s.size());
    detail::record_fused(3 * sizeof(T) * s.size());
    const T sq = detail::reduce_chunks<T>(
        s.size(), [&](std::size_t lo, std::size_t hi) {
            T acc{};
            for (std::size_t i = lo; i < hi; ++i) {
                s[i] = r[i] - alpha * v[i];
                acc += s[i] * s[i];
            }
            return acc;
        });
    return std::sqrt(sq);
}

/// x += alpha * phat + omega * shat; r := s - omega * t; returns ||r||_2.
/// (BiCGSTAB end-of-iteration update: was two sweeps plus a norm.)
template <typename T>
T fused_bicg_xr_update(T alpha, std::span<const T> phat, T omega,
                       std::span<const T> shat, std::span<const T> s,
                       std::span<const T> t, std::span<T> x,
                       std::span<T> r) {
    VBATCH_ENSURE_DIMS(phat.size() == x.size() && shat.size() == x.size() &&
                       s.size() == r.size() && t.size() == r.size() &&
                       x.size() == r.size());
    detail::record_fused(8 * sizeof(T) * x.size());
    const T sq = detail::reduce_chunks<T>(
        r.size(), [&](std::size_t lo, std::size_t hi) {
            T acc{};
            for (std::size_t i = lo; i < hi; ++i) {
                x[i] += alpha * phat[i] + omega * shat[i];
                r[i] = s[i] - omega * t[i];
                acc += r[i] * r[i];
            }
            return acc;
        });
    return std::sqrt(sq);
}

/// One sweep over x producing (dot(x, y), dot(x, z)).
template <typename T>
std::pair<T, T> fused_dot2(std::span<const T> x, std::span<const T> y,
                           std::span<const T> z) {
    VBATCH_ENSURE_DIMS(x.size() == y.size() && x.size() == z.size());
    detail::record_fused(3 * sizeof(T) * x.size());
    const auto acc = detail::reduce_chunks<detail::Partial2<T>>(
        x.size(), [&](std::size_t lo, std::size_t hi) {
            detail::Partial2<T> p;
            for (std::size_t i = lo; i < hi; ++i) {
                p.a += x[i] * y[i];
                p.b += x[i] * z[i];
            }
            return p;
        });
    return {acc.a, acc.b};
}

/// With d := rs - r (not materialized), returns (dot(d, d), dot(rs, d)).
/// (IDR minimal-residual smoothing step.)
template <typename T>
std::pair<T, T> fused_smoothing_dots(std::span<const T> rs,
                                     std::span<const T> r) {
    VBATCH_ENSURE_DIMS(rs.size() == r.size());
    detail::record_fused(2 * sizeof(T) * r.size());
    const auto acc = detail::reduce_chunks<detail::Partial2<T>>(
        r.size(), [&](std::size_t lo, std::size_t hi) {
            detail::Partial2<T> p;
            for (std::size_t i = lo; i < hi; ++i) {
                const T d = rs[i] - r[i];
                p.a += d * d;
                p.b += rs[i] * d;
            }
            return p;
        });
    return {acc.a, acc.b};
}

/// rs -= gamma * (rs - r); xs -= gamma * (xs - x); returns ||rs||_2.
template <typename T>
T fused_smooth_update(T gamma, std::span<const T> r, std::span<const T> x,
                      std::span<T> rs, std::span<T> xs) {
    VBATCH_ENSURE_DIMS(r.size() == rs.size() && x.size() == xs.size() &&
                       rs.size() == xs.size());
    detail::record_fused(6 * sizeof(T) * rs.size());
    const T sq = detail::reduce_chunks<T>(
        rs.size(), [&](std::size_t lo, std::size_t hi) {
            T acc{};
            for (std::size_t i = lo; i < hi; ++i) {
                rs[i] -= gamma * (rs[i] - r[i]);
                xs[i] -= gamma * (xs[i] - x[i]);
                acc += rs[i] * rs[i];
            }
            return acc;
        });
    return std::sqrt(sq);
}

/// y := alpha * x + beta * y in one sweep (the IDR direction update).
template <typename T>
void fused_axpby(T alpha, std::span<const T> x, T beta, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    detail::record_fused(3 * sizeof(T) * y.size());
    detail::for_chunks(y.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            y[i] = alpha * x[i] + beta * y[i];
        }
    });
}

/// y := x / denom (kept as a division to match the unfused loops bitwise;
/// do not rewrite as multiplication by the reciprocal).
template <typename T>
void fused_div_copy(std::span<const T> x, T denom, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    detail::record_fused(2 * sizeof(T) * y.size());
    detail::for_chunks(y.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            y[i] = x[i] / denom;
        }
    });
}

/// out[k] := dot(basis column k, x) for k in [0, cols). `basis` is
/// column-major with leading dimension n (the Krylov/shadow basis
/// layout). One sweep over memory instead of `cols`; each out[k] is
/// bitwise equal to blas::dot on that column.
template <typename T>
void multi_dot(const T* basis, size_type n, index_type cols, const T* x,
               T* out) {
    if (cols <= 0) {
        return;
    }
    const auto nu = static_cast<std::size_t>(n);
    const auto k = static_cast<std::size_t>(cols);
    detail::record_fused((k + 1) * sizeof(T) * nu);
    const std::size_t nc = detail::num_chunks(nu);
    if (nc <= 1) {
        for (std::size_t col = 0; col < k; ++col) {
            const T* v = basis + col * nu;
            T acc{};
            for (std::size_t i = 0; i < nu; ++i) {
                acc += v[i] * x[i];
            }
            out[col] = acc;
        }
        return;
    }
    // parts[c * k + col]: chunk c's partial of column col. Combined per
    // column in ascending chunk order -- the canonical dot order.
    std::vector<T> parts(nc * k);
    ThreadPool::global().parallel_for(
        0, static_cast<size_type>(nc),
        [&](size_type c) {
            const std::size_t lo = static_cast<std::size_t>(c) *
                                   blas1_chunk;
            const std::size_t hi = std::min(lo + blas1_chunk, nu);
            for (std::size_t col = 0; col < k; ++col) {
                const T* v = basis + col * nu;
                T acc{};
                for (std::size_t i = lo; i < hi; ++i) {
                    acc += v[i] * x[i];
                }
                parts[static_cast<std::size_t>(c) * k + col] = acc;
            }
        },
        1);
    for (std::size_t col = 0; col < k; ++col) {
        T acc = parts[col];
        for (std::size_t c = 1; c < nc; ++c) {
            acc += parts[c * k + col];
        }
        out[col] = acc;
    }
}

/// z += sum_k coeff[k] * basis column k, applied per element in ascending
/// column order -- bitwise equal to `cols` sequential blas::axpy calls,
/// in one sweep over z.
template <typename T>
void multi_axpy(const T* basis, size_type n, index_type cols,
                const T* coeff, T* z) {
    if (cols <= 0) {
        return;
    }
    const auto nu = static_cast<std::size_t>(n);
    const auto k = static_cast<std::size_t>(cols);
    detail::record_fused((k + 2) * sizeof(T) * nu);
    detail::for_chunks(nu, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            T acc = z[i];
            for (std::size_t col = 0; col < k; ++col) {
                acc += coeff[col] * basis[col * nu + i];
            }
            z[i] = acc;
        }
    });
}

}  // namespace vbatch::blas
