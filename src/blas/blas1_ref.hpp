// Textbook serial BLAS-1 loops: the pre-optimization reference.
//
// blas1.hpp runs every operation over fixed chunks (parallel, with a
// deterministic partial-combination order). These plain left-to-right
// loops are kept as the oracle the chunked implementations are tested
// against (bitwise for any n <= blas1_chunk, where one chunk *is* the
// serial loop) and as the honest "pre-PR path" baseline the hot-path
// benchmark compares throughput to. They are not called from library
// code.
#pragma once

#include <cmath>
#include <span>

#include "base/macros.hpp"
#include "base/types.hpp"

namespace vbatch::blas::ref {

/// y := alpha * x + y
template <typename T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] += alpha * x[i];
    }
}

/// y := x + beta * y
template <typename T>
void xpby(std::span<const T> x, T beta, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = x[i] + beta * y[i];
    }
}

/// x := alpha * x
template <typename T>
void scal(T alpha, std::span<T> x) {
    for (auto& v : x) {
        v *= alpha;
    }
}

template <typename T>
void copy(std::span<const T> x, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = x[i];
    }
}

template <typename T>
T dot(std::span<const T> x, std::span<const T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    T acc{};
    for (std::size_t i = 0; i < x.size(); ++i) {
        acc += x[i] * y[i];
    }
    return acc;
}

template <typename T>
T nrm2(std::span<const T> x) {
    return std::sqrt(dot(x, x));
}

template <typename T>
T asum(std::span<const T> x) {
    T acc{};
    for (const auto& v : x) {
        acc += std::abs(v);
    }
    return acc;
}

}  // namespace vbatch::blas::ref
