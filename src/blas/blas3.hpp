// Level-3 BLAS (small sizes; used by the IDR(s) shadow-space updates and
// the GMRES Hessenberg handling, never on the critical batched path).
#pragma once

#include <type_traits>

#include "base/macros.hpp"
#include "base/span2d.hpp"
#include "base/types.hpp"

namespace vbatch::blas {

/// C := alpha * A * B + beta * C
template <typename T>
void gemm(T alpha, std::type_identity_t<ConstMatrixView<T>> a, std::type_identity_t<ConstMatrixView<T>> b, T beta,
          MatrixView<T> c) {
    VBATCH_ENSURE_DIMS(a.cols() == b.rows());
    VBATCH_ENSURE_DIMS(c.rows() == a.rows() && c.cols() == b.cols());
    for (index_type j = 0; j < c.cols(); ++j) {
        T* cj = c.col(j);
        for (index_type i = 0; i < c.rows(); ++i) {
            cj[i] *= beta;
        }
        for (index_type k = 0; k < a.cols(); ++k) {
            const T bkj = alpha * b(k, j);
            const T* ak = a.col(k);
            for (index_type i = 0; i < c.rows(); ++i) {
                cj[i] += ak[i] * bkj;
            }
        }
    }
}

/// C := alpha * A^T * B + beta * C
template <typename T>
void gemm_tn(T alpha, std::type_identity_t<ConstMatrixView<T>> a, std::type_identity_t<ConstMatrixView<T>> b, T beta,
             MatrixView<T> c) {
    VBATCH_ENSURE_DIMS(a.rows() == b.rows());
    VBATCH_ENSURE_DIMS(c.rows() == a.cols() && c.cols() == b.cols());
    for (index_type j = 0; j < c.cols(); ++j) {
        for (index_type i = 0; i < c.rows(); ++i) {
            T acc{};
            const T* ai = a.col(i);
            const T* bj = b.col(j);
            for (index_type k = 0; k < a.rows(); ++k) {
                acc += ai[k] * bj[k];
            }
            c(i, j) = alpha * acc + beta * c(i, j);
        }
    }
}

}  // namespace vbatch::blas
