// Level-1 BLAS over contiguous vectors (std::span-style raw ranges).
//
// These back the Krylov solvers and the reference factorizations; the
// batched kernels have their own fused register-level implementations.
#pragma once

#include <cmath>
#include <span>

#include "base/macros.hpp"
#include "base/types.hpp"

namespace vbatch::blas {

/// y := alpha * x + y
template <typename T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] += alpha * x[i];
    }
}

/// y := x + beta * y
template <typename T>
void xpby(std::span<const T> x, T beta, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = x[i] + beta * y[i];
    }
}

/// x := alpha * x
template <typename T>
void scal(T alpha, std::span<T> x) {
    for (auto& v : x) {
        v *= alpha;
    }
}

template <typename T>
void copy(std::span<const T> x, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = x[i];
    }
}

template <typename T>
void fill(std::span<T> x, T value) {
    for (auto& v : x) {
        v = value;
    }
}

template <typename T>
T dot(std::span<const T> x, std::span<const T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    T acc{};
    for (std::size_t i = 0; i < x.size(); ++i) {
        acc += x[i] * y[i];
    }
    return acc;
}

template <typename T>
T nrm2(std::span<const T> x) {
    // Two-pass scaled norm would be overkill for the well-scaled residual
    // vectors here; plain sum of squares with sqrt is what MAGMA-sparse
    // uses as well.
    return std::sqrt(dot(x, x));
}

template <typename T>
T asum(std::span<const T> x) {
    T acc{};
    for (const auto& v : x) {
        acc += std::abs(v);
    }
    return acc;
}

/// Index of the entry with largest magnitude (first on ties); -1 if empty.
template <typename T>
index_type iamax(std::span<const T> x) {
    index_type best = -1;
    T best_val{};
    for (std::size_t i = 0; i < x.size(); ++i) {
        const T a = std::abs(x[i]);
        if (best < 0 || a > best_val) {
            best = static_cast<index_type>(i);
            best_val = a;
        }
    }
    return best;
}

}  // namespace vbatch::blas
