// Level-1 BLAS over contiguous vectors (std::span-style raw ranges).
//
// These back the Krylov solvers and the reference factorizations; the
// batched kernels have their own fused register-level implementations.
//
// Every operation is parallelized over *fixed-size chunks* of
// blas1_chunk elements, and every reduction keeps one partial per chunk
// which is combined serially in chunk order. Chunk boundaries depend only
// on the vector length -- never on the thread count -- so results are
// bitwise identical whether a loop runs inline, on 2 threads or on 64
// (the determinism contract VBATCH_THREADS relies on). Vectors that fit
// in a single chunk reduce in plain left-to-right order, i.e. exactly the
// textbook serial loop (see blas1_ref.hpp, which keeps those loops as the
// comparison oracle).
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "base/macros.hpp"
#include "base/thread_pool.hpp"
#include "base/types.hpp"

namespace vbatch::blas {

/// Fixed chunk length (elements) of every BLAS-1 sweep and reduction.
/// Large enough that per-chunk bookkeeping vanishes, small enough to
/// load-balance; 8192 doubles = 64 KiB, a comfortable L1/L2 tile.
inline constexpr std::size_t blas1_chunk = 8192;

namespace detail {

inline std::size_t num_chunks(std::size_t n) noexcept {
    return n == 0 ? 0 : (n - 1) / blas1_chunk + 1;
}

/// Run f(lo, hi) over the fixed chunk decomposition of [0, n), in
/// parallel when there is more than one chunk. f must only write state
/// owned by its chunk.
template <typename F>
void for_chunks(std::size_t n, F&& f) {
    const std::size_t nc = num_chunks(n);
    if (nc <= 1) {
        if (n != 0) {
            f(std::size_t{0}, n);
        }
        return;
    }
    ThreadPool::global().parallel_for(
        0, static_cast<size_type>(nc),
        [&](size_type c) {
            const std::size_t lo = static_cast<std::size_t>(c) *
                                   blas1_chunk;
            f(lo, std::min(lo + blas1_chunk, n));
        },
        1);
}

/// Deterministic chunked reduction: f(lo, hi) returns the partial of one
/// chunk; partials are combined with += in ascending chunk order. The
/// combination order is part of the numerical contract -- do not
/// "optimize" it into a tree.
template <typename Partial, typename F>
Partial reduce_chunks(std::size_t n, F&& f) {
    const std::size_t nc = num_chunks(n);
    if (nc == 0) {
        return Partial{};
    }
    if (nc == 1) {
        return f(std::size_t{0}, n);
    }
    constexpr std::size_t stack_chunks = 64;
    std::array<Partial, stack_chunks> stack{};
    std::vector<Partial> heap;
    Partial* parts = stack.data();
    if (nc > stack_chunks) {
        heap.resize(nc);
        parts = heap.data();
    }
    ThreadPool::global().parallel_for(
        0, static_cast<size_type>(nc),
        [&](size_type c) {
            const std::size_t lo = static_cast<std::size_t>(c) *
                                   blas1_chunk;
            parts[c] = f(lo, std::min(lo + blas1_chunk, n));
        },
        1);
    Partial acc = parts[0];
    for (std::size_t c = 1; c < nc; ++c) {
        acc += parts[c];
    }
    return acc;
}

/// Two independent accumulators reduced in one sweep (fused dot pairs).
template <typename T>
struct Partial2 {
    T a{};
    T b{};
    Partial2& operator+=(const Partial2& o) noexcept {
        a += o.a;
        b += o.b;
        return *this;
    }
};

}  // namespace detail

/// y := alpha * x + y
template <typename T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    detail::for_chunks(x.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            y[i] += alpha * x[i];
        }
    });
}

/// y := x + beta * y
template <typename T>
void xpby(std::span<const T> x, T beta, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    detail::for_chunks(x.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            y[i] = x[i] + beta * y[i];
        }
    });
}

/// x := alpha * x
template <typename T>
void scal(T alpha, std::span<T> x) {
    detail::for_chunks(x.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            x[i] *= alpha;
        }
    });
}

template <typename T>
void copy(std::span<const T> x, std::span<T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    detail::for_chunks(x.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            y[i] = x[i];
        }
    });
}

template <typename T>
void fill(std::span<T> x, T value) {
    detail::for_chunks(x.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            x[i] = value;
        }
    });
}

template <typename T>
T dot(std::span<const T> x, std::span<const T> y) {
    VBATCH_ENSURE_DIMS(x.size() == y.size());
    return detail::reduce_chunks<T>(
        x.size(), [&](std::size_t lo, std::size_t hi) {
            T acc{};
            for (std::size_t i = lo; i < hi; ++i) {
                acc += x[i] * y[i];
            }
            return acc;
        });
}

template <typename T>
T nrm2(std::span<const T> x) {
    // Two-pass scaled norm would be overkill for the well-scaled residual
    // vectors here; plain sum of squares with sqrt is what MAGMA-sparse
    // uses as well.
    return std::sqrt(dot(x, x));
}

template <typename T>
T asum(std::span<const T> x) {
    return detail::reduce_chunks<T>(
        x.size(), [&](std::size_t lo, std::size_t hi) {
            T acc{};
            for (std::size_t i = lo; i < hi; ++i) {
                acc += std::abs(x[i]);
            }
            return acc;
        });
}

/// Index of the entry with largest magnitude (first on ties); -1 if empty.
/// Stays serial: the first-on-ties contract is order-dependent and the
/// call sites (pivot searches over <= 32 entries) are tiny.
template <typename T>
index_type iamax(std::span<const T> x) {
    index_type best = -1;
    T best_val{};
    for (std::size_t i = 0; i < x.size(); ++i) {
        const T a = std::abs(x[i]);
        if (best < 0 || a > best_val) {
            best = static_cast<index_type>(i);
            best_val = a;
        }
    }
    return best;
}

}  // namespace vbatch::blas
