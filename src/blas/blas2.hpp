// Level-2 BLAS on column-major matrix views.
#pragma once

#include <span>
#include <type_traits>

#include "base/macros.hpp"
#include "base/span2d.hpp"
#include "base/types.hpp"

namespace vbatch::blas {

/// y := alpha * A * x + beta * y
template <typename T>
void gemv(T alpha, std::type_identity_t<ConstMatrixView<T>> a, std::span<const T> x, T beta,
          std::span<T> y) {
    VBATCH_ENSURE_DIMS(a.cols() == static_cast<index_type>(x.size()));
    VBATCH_ENSURE_DIMS(a.rows() == static_cast<index_type>(y.size()));
    for (index_type i = 0; i < a.rows(); ++i) {
        y[i] *= beta;
    }
    // Column-major: iterate columns outer for stride-1 inner access.
    for (index_type j = 0; j < a.cols(); ++j) {
        const T xj = alpha * x[j];
        const T* col = a.col(j);
        for (index_type i = 0; i < a.rows(); ++i) {
            y[i] += col[i] * xj;
        }
    }
}

/// y := alpha * A^T * x + beta * y
template <typename T>
void gemv_t(T alpha, std::type_identity_t<ConstMatrixView<T>> a, std::span<const T> x, T beta,
            std::span<T> y) {
    VBATCH_ENSURE_DIMS(a.rows() == static_cast<index_type>(x.size()));
    VBATCH_ENSURE_DIMS(a.cols() == static_cast<index_type>(y.size()));
    for (index_type j = 0; j < a.cols(); ++j) {
        const T* col = a.col(j);
        T acc{};
        for (index_type i = 0; i < a.rows(); ++i) {
            acc += col[i] * x[i];
        }
        y[j] = alpha * acc + beta * y[j];
    }
}

/// A := A + alpha * x * y^T (rank-1 update)
template <typename T>
void ger(T alpha, std::span<const T> x, std::span<const T> y,
         MatrixView<T> a) {
    VBATCH_ENSURE_DIMS(a.rows() == static_cast<index_type>(x.size()));
    VBATCH_ENSURE_DIMS(a.cols() == static_cast<index_type>(y.size()));
    for (index_type j = 0; j < a.cols(); ++j) {
        const T yj = alpha * y[j];
        T* col = a.col(j);
        for (index_type i = 0; i < a.rows(); ++i) {
            col[i] += x[i] * yj;
        }
    }
}

enum class Uplo { lower, upper };
enum class Diag { unit, non_unit };

/// In-place dense triangular solve: x := op(T)^-1 x with op = identity.
/// This is the reference (non-batched) TRSV used to validate the batched
/// kernels and inside the reference getrs.
template <typename T>
void trsv(Uplo uplo, Diag diag, std::type_identity_t<ConstMatrixView<T>> a, std::span<T> x) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    VBATCH_ENSURE_DIMS(a.rows() == static_cast<index_type>(x.size()));
    const index_type n = a.rows();
    if (uplo == Uplo::lower) {
        // Eager (column-oriented) forward substitution.
        for (index_type k = 0; k < n; ++k) {
            if (diag == Diag::non_unit) {
                x[k] /= a(k, k);
            }
            const T xk = x[k];
            const T* col = a.col(k);
            for (index_type i = k + 1; i < n; ++i) {
                x[i] -= col[i] * xk;
            }
        }
    } else {
        // Eager backward substitution.
        for (index_type k = n - 1; k >= 0; --k) {
            if (diag == Diag::non_unit) {
                x[k] /= a(k, k);
            }
            const T xk = x[k];
            const T* col = a.col(k);
            for (index_type i = 0; i < k; ++i) {
                x[i] -= col[i] * xk;
            }
        }
    }
}

}  // namespace vbatch::blas
