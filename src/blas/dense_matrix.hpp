// Owning column-major dense matrix.
//
// This is the substrate type used for reference factorizations, the dense
// working sets of the Krylov solvers (IDR's shadow space), and test
// fixtures. Hot batched storage does NOT use one DenseMatrix per block --
// batches use a single packed allocation (core/batch_layout.hpp).
#pragma once

#include <initializer_list>
#include <utility>

#include "base/macros.hpp"
#include "base/memory.hpp"
#include "base/random.hpp"
#include "base/span2d.hpp"
#include "base/types.hpp"

namespace vbatch {

template <typename T>
class DenseMatrix {
public:
    DenseMatrix() : rows_(0), cols_(0) {}

    /// Uninitialized m x n matrix.
    DenseMatrix(index_type rows, index_type cols)
        : rows_(rows), cols_(cols),
          data_(static_cast<size_type>(rows) * cols) {
        VBATCH_ENSURE(rows >= 0 && cols >= 0, "negative dimension");
    }

    /// Row-major initializer list (written the way the math reads).
    DenseMatrix(std::initializer_list<std::initializer_list<T>> rows)
        : DenseMatrix(static_cast<index_type>(rows.size()),
                      rows.size() == 0
                          ? 0
                          : static_cast<index_type>(rows.begin()->size())) {
        index_type i = 0;
        for (const auto& r : rows) {
            VBATCH_ENSURE(static_cast<index_type>(r.size()) == cols_,
                          "ragged initializer");
            index_type j = 0;
            for (const auto& v : r) {
                (*this)(i, j) = v;
                ++j;
            }
            ++i;
        }
    }

    static DenseMatrix zeros(index_type rows, index_type cols) {
        DenseMatrix m(rows, cols);
        for (auto& v : m.data_) {
            v = T{};
        }
        return m;
    }

    static DenseMatrix identity(index_type n) {
        auto m = zeros(n, n);
        for (index_type i = 0; i < n; ++i) {
            m(i, i) = T{1};
        }
        return m;
    }

    /// Random matrix with entries in [-1, 1], deterministic in (seed).
    static DenseMatrix random(index_type rows, index_type cols,
                              std::uint64_t seed) {
        DenseMatrix m(rows, cols);
        auto eng = make_engine(seed);
        for (auto& v : m.data_) {
            v = uniform<T>(eng, T{-1}, T{1});
        }
        return m;
    }

    /// Random diagonally-dominant matrix: always non-singular, the standard
    /// well-conditioned test block for the batched kernels.
    static DenseMatrix random_diagonally_dominant(index_type n,
                                                  std::uint64_t seed) {
        auto m = random(n, n, seed);
        for (index_type i = 0; i < n; ++i) {
            T row_sum = T{};
            for (index_type j = 0; j < n; ++j) {
                row_sum += std::abs(m(i, j));
            }
            m(i, i) = row_sum + T{1};
        }
        return m;
    }

    index_type rows() const noexcept { return rows_; }
    index_type cols() const noexcept { return cols_; }
    size_type size() const noexcept { return data_.size(); }

    T& operator()(index_type i, index_type j) noexcept {
        VBATCH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
        return data_[static_cast<size_type>(j) * rows_ + i];
    }
    const T& operator()(index_type i, index_type j) const noexcept {
        VBATCH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
        return data_[static_cast<size_type>(j) * rows_ + i];
    }

    T* data() noexcept { return data_.data(); }
    const T* data() const noexcept { return data_.data(); }

    MatrixView<T> view() noexcept { return {data(), rows_, cols_, rows_}; }
    ConstMatrixView<T> view() const noexcept {
        return {data(), rows_, cols_, rows_};
    }
    operator MatrixView<T>() noexcept { return view(); }
    operator ConstMatrixView<T>() const noexcept { return view(); }

    DenseMatrix clone() const {
        DenseMatrix m(rows_, cols_);
        for (size_type i = 0; i < data_.size(); ++i) {
            m.data_[i] = data_[i];
        }
        return m;
    }

private:
    index_type rows_;
    index_type cols_;
    AlignedBuffer<T> data_;
};

}  // namespace vbatch
