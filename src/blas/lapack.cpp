#include "blas/lapack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "base/macros.hpp"
#include "blas/blas2.hpp"
#include "blas/dense_matrix.hpp"

namespace vbatch::lapack {

template <typename T>
index_type getrf(MatrixView<T> a, std::span<index_type> ipiv) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    VBATCH_ENSURE_DIMS(static_cast<index_type>(ipiv.size()) >= a.rows());
    const index_type n = a.rows();
    index_type info = 0;
    for (index_type k = 0; k < n; ++k) {
        // Pivot search in column k, rows k..n-1.
        index_type piv = k;
        T piv_val = std::abs(a(k, k));
        for (index_type i = k + 1; i < n; ++i) {
            const T v = std::abs(a(i, k));
            if (v > piv_val) {
                piv_val = v;
                piv = i;
            }
        }
        ipiv[k] = piv;
        if (piv_val == T{}) {
            if (info == 0) {
                info = k + 1;
            }
            continue;  // LAPACK keeps going; the factor is singular.
        }
        if (piv != k) {
            for (index_type j = 0; j < n; ++j) {
                std::swap(a(k, j), a(piv, j));
            }
        }
        // SCAL + GER (right-looking update).
        const T d = a(k, k);
        for (index_type i = k + 1; i < n; ++i) {
            a(i, k) /= d;
        }
        for (index_type j = k + 1; j < n; ++j) {
            const T akj = a(k, j);
            T* col = a.col(j);
            for (index_type i = k + 1; i < n; ++i) {
                col[i] -= a(i, k) * akj;
            }
        }
    }
    return info;
}

template <typename T>
void laswp(std::span<const index_type> ipiv, std::span<T> b) {
    for (std::size_t k = 0; k < ipiv.size(); ++k) {
        const auto p = static_cast<std::size_t>(ipiv[k]);
        if (p != k) {
            std::swap(b[k], b[p]);
        }
    }
}

template <typename T>
void getrs(ConstMatrixView<T> lu, std::span<const index_type> ipiv,
           std::span<T> b) {
    VBATCH_ENSURE_DIMS(lu.rows() == lu.cols());
    VBATCH_ENSURE_DIMS(lu.rows() == static_cast<index_type>(b.size()));
    laswp(ipiv, b);
    blas::trsv(blas::Uplo::lower, blas::Diag::unit, lu, b);
    blas::trsv(blas::Uplo::upper, blas::Diag::non_unit, lu, b);
}

template <typename T>
index_type gesv(ConstMatrixView<T> a, std::span<T> b) {
    const index_type n = a.rows();
    DenseMatrix<T> lu(n, n);
    for (index_type j = 0; j < n; ++j) {
        for (index_type i = 0; i < n; ++i) {
            lu(i, j) = a(i, j);
        }
    }
    std::vector<index_type> ipiv(static_cast<std::size_t>(n));
    const index_type info = getrf<T>(lu.view(), ipiv);
    if (info == 0) {
        getrs<T>(lu.view(), ipiv, b);
    }
    return info;
}

template <typename T>
index_type invert(ConstMatrixView<T> a, MatrixView<T> inv) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    VBATCH_ENSURE_DIMS(inv.rows() == a.rows() && inv.cols() == a.cols());
    const index_type n = a.rows();
    DenseMatrix<T> lu(n, n);
    for (index_type j = 0; j < n; ++j) {
        for (index_type i = 0; i < n; ++i) {
            lu(i, j) = a(i, j);
        }
    }
    std::vector<index_type> ipiv(static_cast<std::size_t>(n));
    const index_type info = getrf<T>(lu.view(), ipiv);
    if (info != 0) {
        return info;
    }
    std::vector<T> e(static_cast<std::size_t>(n));
    for (index_type j = 0; j < n; ++j) {
        for (auto& v : e) {
            v = T{};
        }
        e[static_cast<std::size_t>(j)] = T{1};
        getrs<T>(lu.view(), ipiv, e);
        for (index_type i = 0; i < n; ++i) {
            inv(i, j) = e[static_cast<std::size_t>(i)];
        }
    }
    return 0;
}

template <typename T>
T norm_inf(ConstMatrixView<T> a) {
    T best{};
    for (index_type i = 0; i < a.rows(); ++i) {
        T row{};
        for (index_type j = 0; j < a.cols(); ++j) {
            row += std::abs(a(i, j));
        }
        best = std::max(best, row);
    }
    return best;
}

template <typename T>
T factorization_residual(ConstMatrixView<T> a, ConstMatrixView<T> lu,
                         std::span<const index_type> ipiv) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    VBATCH_ENSURE_DIMS(lu.rows() == a.rows() && lu.cols() == a.cols());
    const index_type n = a.rows();
    // Build PA by applying the recorded swaps to a copy of A's rows.
    DenseMatrix<T> pa(n, n);
    std::vector<index_type> perm(static_cast<std::size_t>(n));
    for (index_type i = 0; i < n; ++i) {
        perm[static_cast<std::size_t>(i)] = i;
    }
    for (std::size_t k = 0; k < ipiv.size() && k < perm.size(); ++k) {
        std::swap(perm[k], perm[static_cast<std::size_t>(ipiv[k])]);
    }
    for (index_type i = 0; i < n; ++i) {
        for (index_type j = 0; j < n; ++j) {
            pa(i, j) = a(perm[static_cast<std::size_t>(i)], j);
        }
    }
    // R = PA - L*U.
    T err{};
    for (index_type i = 0; i < n; ++i) {
        T row_err{};
        for (index_type j = 0; j < n; ++j) {
            T acc{};
            const index_type kmax = std::min(i, j);
            for (index_type k = 0; k <= kmax; ++k) {
                const T lik = (k == i) ? T{1} : lu(i, k);
                acc += lik * lu(k, j);
            }
            row_err += std::abs(pa(i, j) - acc);
        }
        err = std::max(err, row_err);
    }
    const T na = norm_inf(a);
    return na > T{} ? err / na : err;
}

template <typename T>
T condition_number_1(ConstMatrixView<T> a) {
    const index_type n = a.rows();
    DenseMatrix<T> inv(n, n);
    if (invert(a, inv.view()) != 0) {
        return std::numeric_limits<T>::infinity();
    }
    auto norm1 = [](ConstMatrixView<T> m) {
        T best{};
        for (index_type j = 0; j < m.cols(); ++j) {
            T col{};
            for (index_type i = 0; i < m.rows(); ++i) {
                col += std::abs(m(i, j));
            }
            best = std::max(best, col);
        }
        return best;
    };
    return norm1(a) * norm1(inv.view());
}

// Explicit instantiations for the supported scalar types.
#define VBATCH_INSTANTIATE_LAPACK(T)                                        \
    template index_type getrf<T>(MatrixView<T>, std::span<index_type>);     \
    template void laswp<T>(std::span<const index_type>, std::span<T>);      \
    template void getrs<T>(ConstMatrixView<T>, std::span<const index_type>, \
                           std::span<T>);                                   \
    template index_type gesv<T>(ConstMatrixView<T>, std::span<T>);          \
    template index_type invert<T>(ConstMatrixView<T>, MatrixView<T>);       \
    template T norm_inf<T>(ConstMatrixView<T>);                             \
    template T factorization_residual<T>(ConstMatrixView<T>,                \
                                         ConstMatrixView<T>,                \
                                         std::span<const index_type>);      \
    template T condition_number_1<T>(ConstMatrixView<T>)

VBATCH_INSTANTIATE_LAPACK(float);
VBATCH_INSTANTIATE_LAPACK(double);

#undef VBATCH_INSTANTIATE_LAPACK

}  // namespace vbatch::lapack
