// Reference LAPACK-style routines on dense views.
//
// These are the ground truth the batched kernels are validated against
// (tests/) and the dense fallback used by the solvers for their small
// internal systems. They follow the textbook algorithms of Golub & Van
// Loan cited by the paper (Section II.B): right-looking LU with partial
// pivoting, explicit row swaps, and forward/backward substitution.
#pragma once

#include <span>
#include <vector>

#include "base/span2d.hpp"
#include "base/types.hpp"

namespace vbatch::lapack {

/// In-place LU factorization with partial pivoting: PA = LU.
/// On exit `a` holds L (unit diagonal, below) and U (on/above diagonal);
/// `ipiv[k]` is the row swapped with row k at step k (LAPACK convention).
/// Returns the first step at which a zero pivot was met + 1, or 0 on
/// success (LAPACK "info" convention).
template <typename T>
index_type getrf(MatrixView<T> a, std::span<index_type> ipiv);

/// Apply the row interchanges recorded by getrf to a vector: b := Pb.
template <typename T>
void laswp(std::span<const index_type> ipiv, std::span<T> b);

/// Solve A x = b using factors from getrf; b is overwritten with x.
template <typename T>
void getrs(ConstMatrixView<T> lu, std::span<const index_type> ipiv,
           std::span<T> b);

/// Convenience: factorize a copy of `a` and solve; returns info.
template <typename T>
index_type gesv(ConstMatrixView<T> a, std::span<T> b);

/// Explicit inverse via LU (used by the inversion-based block-Jacobi
/// baseline and by condition-number estimation in tests). Returns info.
template <typename T>
index_type invert(ConstMatrixView<T> a, MatrixView<T> inv);

/// Max-norm of A; used by tests for relative residuals.
template <typename T>
T norm_inf(ConstMatrixView<T> a);

/// ||PA - LU||_inf / ||A||_inf: factorization residual, the correctness
/// metric of every factorization test.
template <typename T>
T factorization_residual(ConstMatrixView<T> a, ConstMatrixView<T> lu,
                         std::span<const index_type> ipiv);

/// 1-norm condition estimate kappa_1(A) = ||A||_1 * ||A^-1||_1 computed
/// via explicit inversion (fine for the <= 32 x 32 blocks in scope).
template <typename T>
T condition_number_1(ConstMatrixView<T> a);

}  // namespace vbatch::lapack
