#include "base/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "base/macros.hpp"
#include "obs/trace.hpp"

namespace vbatch {

namespace {

/// Set while the current thread runs a parallel_for body (worker or
/// participating caller); nested parallel_for calls observe it and run
/// inline instead of touching the single job slot.
thread_local bool t_in_parallel_body = false;

/// VBATCH_THREADS: positive integer = exact pool size for the global
/// pool; unset/invalid = hardware_concurrency().
unsigned env_thread_count() {
    const char* env = std::getenv("VBATCH_THREADS");
    if (env == nullptr || env[0] == '\0') {
        return 0;
    }
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed <= 0 || parsed > 1024) {
        return 0;
    }
    return static_cast<unsigned>(parsed);
}

/// Arms telemetry at startup when VBATCH_POOL_STATS is set (mirrors the
/// tracer's env probe).
struct PoolStatsEnvProbe {
    PoolStatsEnvProbe() {
        const char* v = std::getenv("VBATCH_POOL_STATS");
        if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
            detail::g_pool_stats_on.store(true, std::memory_order_relaxed);
        }
    }
};
const PoolStatsEnvProbe pool_stats_env_probe{};

void atomic_max(std::atomic<size_type>& target, size_type value) {
    size_type current = target.load(std::memory_order_relaxed);
    while (current < value &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

std::uint64_t to_ns(std::chrono::steady_clock::duration d) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads)
    : epoch_(std::chrono::steady_clock::now()) {
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    stats_ = std::make_unique<ParticipantStat[]>(num_threads);
    // The calling thread always participates, so spawn one fewer worker.
    workers_.reserve(num_threads - 1);
    for (unsigned i = 0; i + 1 < num_threads; ++i) {
        workers_.emplace_back([this, i] {
            obs::set_thread_name("vbatch-worker-" + std::to_string(i + 1));
            worker_loop(i + 1);
        });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
    // Workers bail out on shutdown even with tasks still queued; honor
    // the submit() contract (no task is ever lost) by draining the
    // leftovers here, single-threaded.
    while (!tasks_.empty()) {
        auto task = std::move(tasks_.front());
        tasks_.pop_front();
        run_task(task, 0);
    }
    if (is_global_source_) {
        obs::Registry::global().set_pool_telemetry_source(nullptr);
    }
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool(env_thread_count());
    // Expose the global pool to the metrics registry exactly once so
    // bench JSON embeds pool utilization without obs/ linking base/.
    static const bool registered = [] {
        pool.is_global_source_ = true;
        obs::Registry::global().set_pool_telemetry_source(
            +[]() { return ThreadPool::global().telemetry(); });
        return true;
    }();
    (void)registered;
    return pool;
}

bool ThreadPool::in_worker() noexcept { return t_in_parallel_body; }

void ThreadPool::set_stats_enabled(bool on) noexcept {
    detail::g_pool_stats_on.store(on, std::memory_order_relaxed);
}

size_type ThreadPool::check_range(size_type begin, size_type end) {
    (void)begin;
    (void)end;
    VBATCH_ENSURE(false, "empty or reversed range");
    std::abort();  // unreachable; ENSURE throws
}

void ThreadPool::drain(ParallelJob& job, ParticipantStat* stat) {
    const size_type grain = job.grain;
    const bool was_in_body = t_in_parallel_body;
    t_in_parallel_body = true;
    const bool stats = pool_stats_on() && stat != nullptr;
    const auto t0 = stats ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    size_type claimed = 0;
    std::uint64_t chunks = 0;
    for (;;) {
        const size_type i = job.next.fetch_add(grain,
                                               std::memory_order_relaxed);
        if (i >= job.end) {
            break;
        }
        const size_type hi = std::min(i + grain, job.end);
        for (size_type k = i; k < hi; ++k) {
            (*job.body)(job.begin + k);
        }
        claimed += hi - i;
        ++chunks;
    }
    t_in_parallel_body = was_in_body;
    if (stats) {
        stat->busy_ns.fetch_add(
            to_ns(std::chrono::steady_clock::now() - t0),
            std::memory_order_relaxed);
        stat->chunks.fetch_add(chunks, std::memory_order_relaxed);
        atomic_max(job.max_claimed, claimed);
    }
}

void ThreadPool::note_inline_run(
    std::chrono::steady_clock::duration elapsed) {
    stats_[0].busy_ns.fetch_add(to_ns(elapsed), std::memory_order_relaxed);
    stats_[0].chunks.fetch_add(1, std::memory_order_relaxed);
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::run_task(std::function<void()>& task,
                          std::size_t stat_slot) {
    // Tasks execute with the nested-parallelism flag raised: parallel_for
    // inside a task inlines on this thread, keeping the task internally
    // sequential (bitwise-deterministic) while distinct tasks spread
    // across workers.
    const bool was_in_body = t_in_parallel_body;
    t_in_parallel_body = true;
    const bool stats = pool_stats_on();
    const auto t0 = stats ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    task();
    t_in_parallel_body = was_in_body;
    if (stats) {
        stats_[stat_slot].busy_ns.fetch_add(
            to_ns(std::chrono::steady_clock::now() - t0),
            std::memory_order_relaxed);
        stats_[stat_slot].chunks.fetch_add(1, std::memory_order_relaxed);
    }
}

void ThreadPool::submit(std::function<void()> task) {
    VBATCH_ENSURE(task != nullptr, "null task submitted");
    if (!workers_.empty()) {
        bool queued = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!shutdown_) {
                tasks_.push_back(std::move(task));
                queued = true;
            }
        }
        if (queued) {
            cv_.notify_one();
            return;
        }
    }
    // No workers (size() == 1) or destructor already triggered: run
    // inline rather than silently dropping the task.
    run_task(task, 0);
}

size_type ThreadPool::queued_tasks() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<size_type>(tasks_.size());
}

void ThreadPool::worker_loop(std::size_t stat_slot) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
        ParallelJob* job = nullptr;
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return shutdown_ ||
                       (job_ != nullptr && job_epoch_ != seen_epoch) ||
                       !tasks_.empty();
            });
            if (shutdown_) {
                return;
            }
            if (job_ != nullptr && job_epoch_ != seen_epoch) {
                // A latency-sensitive parallel_for outranks queued tasks.
                // Register on the job *before* releasing the lock: the
                // posting caller retires the job only after every
                // registered worker has decremented back out.
                job = job_;
                seen_epoch = job_epoch_;
                job->active_workers.fetch_add(1, std::memory_order_relaxed);
            } else {
                task = std::move(tasks_.front());
                tasks_.pop_front();
            }
        }
        if (job != nullptr) {
            drain(*job, &stats_[stat_slot]);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                job->active_workers.fetch_sub(1, std::memory_order_relaxed);
            }
            done_cv_.notify_all();
        } else {
            run_task(task, stat_slot);
        }
    }
}

void ThreadPool::run_parallel(size_type begin, size_type end,
                              FunctionRef<void(size_type)> body,
                              size_type grain) {
    // The inline fast paths (empty pool, single grain, nested call) were
    // taken by the parallel_for template; here the range is worth real
    // dispatch. The job operates on [0, n) internally; drain offsets by
    // `begin` so no wrapper callable is needed.
    ParallelJob job;
    job.body = &body;
    job.begin = begin;
    job.end = end - begin;
    job.grain = grain;
    // Workers register themselves on adoption (under mutex_) and
    // deregister when their drain returns, so the wait below only covers
    // workers that actually touched *this* job. Concurrent external
    // callers therefore never wait on workers helping someone else's job
    // or busy inside a submitted task.
    job.active_workers.store(0, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        ++job_epoch_;
    }
    cv_.notify_all();
    drain(job, &stats_[0]);
    // Wait for workers still inside drain() before the job leaves scope.
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] {
            return job.active_workers.load(std::memory_order_relaxed) == 0;
        });
        if (job_ == &job) {
            job_ = nullptr;  // a concurrent caller may have replaced it
        }
    }
    if (pool_stats_on()) {
        dispatches_.fetch_add(1, std::memory_order_relaxed);
        const auto participants =
            static_cast<std::uint64_t>(workers_.size()) + 1;
        const auto max_claimed = static_cast<std::uint64_t>(
            job.max_claimed.load(std::memory_order_relaxed));
        const auto n = static_cast<std::uint64_t>(job.end);
        if (n > 0 && max_claimed > 0) {
            // Imbalance = max claimed / fair share, in permille so the
            // accumulator stays integral.
            const std::uint64_t permille =
                max_claimed * participants * 1000 / n;
            imbalance_last_permille_.store(permille,
                                           std::memory_order_relaxed);
            imbalance_sum_permille_.fetch_add(permille,
                                              std::memory_order_relaxed);
        }
    }
}

obs::PoolTelemetry ThreadPool::telemetry() const {
    obs::PoolTelemetry t;
    t.workers = size();
    t.armed = pool_stats_on();
    t.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - epoch_)
                         .count();
    double busy = 0.0;
    for (unsigned slot = 0; slot < size(); ++slot) {
        busy += static_cast<double>(
                    stats_[slot].busy_ns.load(std::memory_order_relaxed)) *
                1e-9;
    }
    t.busy_seconds = busy;
    const double capacity = t.wall_seconds * static_cast<double>(t.workers);
    t.idle_seconds = std::max(0.0, capacity - busy);
    t.utilization = capacity > 0.0 ? busy / capacity : 0.0;
    t.dispatches = static_cast<size_type>(
        dispatches_.load(std::memory_order_relaxed));
    t.inline_runs = static_cast<size_type>(
        inline_runs_.load(std::memory_order_relaxed));
    const auto disp = dispatches_.load(std::memory_order_relaxed);
    t.mean_imbalance =
        disp > 0 ? static_cast<double>(imbalance_sum_permille_.load(
                       std::memory_order_relaxed)) /
                       (1000.0 * static_cast<double>(disp))
                 : 0.0;
    t.last_imbalance = static_cast<double>(imbalance_last_permille_.load(
                           std::memory_order_relaxed)) /
                       1000.0;
    return t;
}

}  // namespace vbatch
