#include "base/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <string_view>

#include "base/macros.hpp"
#include "obs/trace.hpp"

namespace vbatch {

namespace {

/// Set while the current thread runs a parallel_for body or a submitted
/// task (worker or participating caller). In sharing mode nested
/// parallel_for calls observe it and run inline instead of touching the
/// single job slot; in stealing mode it only feeds in_worker().
thread_local bool t_in_parallel_body = false;

/// Set while an enclosing drain/run_range/run_task is already charging
/// this thread's wall time to a participant stat slot; nested units then
/// skip busy_ns (their time is inside the enclosing measurement) but
/// still count their chunks.
thread_local bool t_busy_timed = false;

/// The calling thread's scheduling home on a particular pool: its deque
/// slot and telemetry slot. Workers bind permanently in worker_loop;
/// external threads bind for the duration of a root stealing
/// parallel_for via a leased slot. Saved/restored around cross-pool
/// calls, so a worker of pool A doing a root parallel_for on pool B
/// binds to B only for that call.
struct Binding {
    const void* pool = nullptr;
    std::size_t slot = 0;
    std::size_t stat_slot = 0;
};
thread_local Binding t_binding;

/// Per-thread xorshift state for randomized steal-victim selection
/// (decorrelates thieves so they do not all hammer slot 0).
thread_local std::uint64_t t_rng_state = 0;

std::uint64_t next_rng(std::size_t seed_hint) {
    if (t_rng_state == 0) {
        t_rng_state = 0x9e3779b97f4a7c15ull ^
                      (static_cast<std::uint64_t>(seed_hint) + 1);
    }
    std::uint64_t x = t_rng_state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    t_rng_state = x;
    return x;
}

/// VBATCH_THREADS: positive integer = exact pool size for the global
/// pool; unset/invalid = hardware_concurrency().
unsigned env_thread_count() {
    const char* env = std::getenv("VBATCH_THREADS");
    if (env == nullptr || env[0] == '\0') {
        return 0;
    }
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed <= 0 || parsed > 1024) {
        return 0;
    }
    return static_cast<unsigned>(parsed);
}

/// Arms telemetry at startup when VBATCH_POOL_STATS is set (mirrors the
/// tracer's env probe).
struct PoolStatsEnvProbe {
    PoolStatsEnvProbe() {
        const char* v = std::getenv("VBATCH_POOL_STATS");
        if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
            detail::g_pool_stats_on.store(true, std::memory_order_relaxed);
        }
    }
};
const PoolStatsEnvProbe pool_stats_env_probe{};

void atomic_max(std::atomic<size_type>& target, size_type value) {
    size_type current = target.load(std::memory_order_relaxed);
    while (current < value &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

std::uint64_t to_ns(std::chrono::steady_clock::duration d) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

SchedMode sched_mode_from_env() {
    const char* env = std::getenv("VBATCH_SCHED");
    if (env != nullptr && std::string_view(env) == "sharing") {
        return SchedMode::sharing;
    }
    return SchedMode::stealing;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : ThreadPool(num_threads, sched_mode_from_env()) {}

ThreadPool::ThreadPool(unsigned num_threads, SchedMode mode)
    : epoch_(std::chrono::steady_clock::now()) {
    mode_.store(mode, std::memory_order_relaxed);
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    stats_ = std::make_unique<ParticipantStat[]>(num_threads);
    const std::size_t num_workers = num_threads - 1;
    num_slots_ = num_workers + external_slots;
    slots_ = std::make_unique<Slot[]>(num_slots_);
    // The calling thread always participates, so spawn one fewer worker.
    workers_.reserve(num_workers);
    for (unsigned i = 0; i + 1 < num_threads; ++i) {
        workers_.emplace_back([this, i] {
            obs::set_thread_name("vbatch-worker-" + std::to_string(i + 1));
            worker_loop(i + 1);
        });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
        shutdown_flag_.store(true, std::memory_order_release);
    }
    wake_epoch_.fetch_add(1, std::memory_order_seq_cst);
    cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
    // Workers bail out on shutdown even with tasks still queued; honor
    // the submit() contract (no task is ever lost) by draining the
    // leftovers here, single-threaded: first the injection queue, then
    // every per-worker task deque (safe now that all other threads are
    // joined).
    while (!tasks_.empty()) {
        auto node = std::move(tasks_.front());
        tasks_.pop_front();
        run_task(node->fn, 0);
    }
    for (std::size_t s = 0; s < num_slots_; ++s) {
        while (TaskNode* node = slots_[s].tasks.pop()) {
            run_task(node->fn, 0);
            delete node;
        }
        // Range tasks cannot legitimately outlive their (stack-held,
        // joined) job; free any stragglers without touching the job.
        while (RangeTask* r = slots_[s].ranges.pop()) {
            delete r;
        }
    }
    if (is_global_source_) {
        obs::Registry::global().set_pool_telemetry_source(nullptr);
    }
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool(env_thread_count());
    // Expose the global pool to the metrics registry exactly once so
    // bench JSON embeds pool utilization without obs/ linking base/.
    static const bool registered = [] {
        pool.is_global_source_ = true;
        obs::Registry::global().set_pool_telemetry_source(
            +[]() { return ThreadPool::global().telemetry(); });
        return true;
    }();
    (void)registered;
    return pool;
}

bool ThreadPool::in_worker() noexcept { return t_in_parallel_body; }

void ThreadPool::set_stats_enabled(bool on) noexcept {
    detail::g_pool_stats_on.store(on, std::memory_order_relaxed);
}

size_type ThreadPool::check_range(size_type begin, size_type end) {
    (void)begin;
    (void)end;
    VBATCH_ENSURE(false, "empty or reversed range");
    std::abort();  // unreachable; ENSURE throws
}

// ---------------------------------------------------------------------
// Wake protocol (shared by both modes)
// ---------------------------------------------------------------------

void ThreadPool::publish_wake() {
    wake_epoch_.fetch_add(1, std::memory_order_seq_cst);
    // Dekker-style handshake with park()/join_job(): a sleeper first
    // increments sleepers_ (seq_cst), then re-reads the epoch before
    // blocking. If we read sleepers_ == 0 here, the sleeper's increment
    // is later in the seq_cst order than our epoch bump, so its re-read
    // sees the new epoch and it never blocks. If we read > 0, the
    // notify below (taken after the mutex, so ordered with the
    // sleeper's predicate check) wakes it.
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
        { std::lock_guard<std::mutex> lock(mutex_); }
        cv_.notify_all();
    }
}

bool ThreadPool::park(std::uint64_t seen_epoch) {
    if (pool_stats_on()) {
        parks_.fetch_add(1, std::memory_order_relaxed);
    }
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] {
            return shutdown_ || !tasks_.empty() ||
                   wake_epoch_.load(std::memory_order_seq_cst) !=
                       seen_epoch;
        });
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    return !shutdown_flag_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------
// Stealing engine
// ---------------------------------------------------------------------

void ThreadPool::run_range(StealJob& job, size_type lo, size_type hi,
                           std::size_t slot, std::size_t stat_slot) {
    const size_type grain = job.grain;
    const bool was_in_body = t_in_parallel_body;
    t_in_parallel_body = true;
    const bool stats = pool_stats_on();
    const bool timer = stats && !t_busy_timed;
    if (timer) {
        t_busy_timed = true;
    }
    const auto t0 = timer ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    std::uint64_t chunks = 0;
    while (lo < hi) {
        if (hi - lo > grain && slots_[slot].ranges.empty()) {
            // Lazy binary split: our deque being empty means thieves (or
            // our own progress) consumed everything stealable, so expose
            // the upper half. The midpoint is grain-aligned relative to
            // the job origin, which keeps every executed chunk on the
            // same {origin + m*grain} boundaries as the sharing pool's
            // fetch_add decomposition -- the determinism invariant.
            const size_type nchunks = (hi - lo + grain - 1) / grain;
            const size_type mid = lo + (nchunks / 2) * grain;
            slots_[slot].ranges.push(new RangeTask{&job, mid, hi});
            if (stats) {
                splits_.fetch_add(1, std::memory_order_relaxed);
            }
            publish_wake();
            hi = mid;
            continue;
        }
        const size_type chunk_hi = std::min(lo + grain, hi);
        for (size_type k = lo; k < chunk_hi; ++k) {
            job.body(job.begin + k);
        }
        const size_type done = chunk_hi - lo;
        lo = chunk_hi;
        ++chunks;
        if (job.remaining.fetch_sub(done, std::memory_order_acq_rel) ==
            done) {
            // Last iterations of the whole job just retired: wake the
            // root's join. Only pool-owned state is touched from here
            // on -- the joiner may already be destroying the job.
            publish_wake();
        }
    }
    t_in_parallel_body = was_in_body;
    if (stats) {
        if (timer) {
            t_busy_timed = false;
            stats_[stat_slot].busy_ns.fetch_add(
                to_ns(std::chrono::steady_clock::now() - t0),
                std::memory_order_relaxed);
        }
        stats_[stat_slot].chunks.fetch_add(chunks,
                                           std::memory_order_relaxed);
    }
}

void ThreadPool::execute_range(RangeTask* task, std::size_t slot,
                               std::size_t stat_slot) {
    StealJob* job = task->job;
    const size_type lo = task->lo;
    const size_type hi = task->hi;
    delete task;
    run_range(*job, lo, hi, slot, stat_slot);
}

bool ThreadPool::run_one_own_range(std::size_t slot,
                                   std::size_t stat_slot) {
    RangeTask* task = slots_[slot].ranges.pop();
    if (task == nullptr) {
        return false;
    }
    execute_range(task, slot, stat_slot);
    return true;
}

int ThreadPool::try_steal_range(std::size_t slot, std::size_t stat_slot) {
    bool contended = false;
    const std::size_t n = num_slots_;
    const std::size_t start =
        static_cast<std::size_t>(next_rng(slot) % n);
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t victim = (start + k) % n;
        if (victim == slot) {
            continue;
        }
        RangeTask* task = nullptr;
        switch (slots_[victim].ranges.steal(&task)) {
        case StealResult::got:
            if (pool_stats_on()) {
                steals_.fetch_add(1, std::memory_order_relaxed);
            }
            execute_range(task, slot, stat_slot);
            return 1;
        case StealResult::abort:
            contended = true;
            if (pool_stats_on()) {
                steal_fails_.fetch_add(1, std::memory_order_relaxed);
            }
            break;
        case StealResult::empty:
            break;
        }
    }
    return contended ? -1 : 0;
}

int ThreadPool::try_steal_task(std::size_t slot, std::size_t stat_slot) {
    bool contended = false;
    const std::size_t n = num_slots_;
    const std::size_t start =
        static_cast<std::size_t>(next_rng(slot) % n);
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t victim = (start + k) % n;
        if (victim == slot) {
            continue;
        }
        TaskNode* node = nullptr;
        switch (slots_[victim].tasks.steal(&node)) {
        case StealResult::got:
            if (pool_stats_on()) {
                steals_.fetch_add(1, std::memory_order_relaxed);
            }
            run_task(node->fn, stat_slot);
            delete node;
            return 1;
        case StealResult::abort:
            contended = true;
            if (pool_stats_on()) {
                steal_fails_.fetch_add(1, std::memory_order_relaxed);
            }
            break;
        case StealResult::empty:
            break;
        }
    }
    return contended ? -1 : 0;
}

bool ThreadPool::run_one_injected_task(std::size_t stat_slot) {
    std::unique_ptr<TaskNode> node;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty()) {
            return false;
        }
        node = std::move(tasks_.front());
        tasks_.pop_front();
    }
    run_task(node->fn, stat_slot);
    return true;
}

void ThreadPool::join_job(StealJob& job, std::size_t slot,
                          std::size_t stat_slot) {
    // Help until every iteration of `job` has retired. A joiner only
    // ever executes *range* tasks -- running a stolen function task here
    // could re-enter a lock the enclosing task already holds (e.g. two
    // same-session service jobs nested on one stack).
    for (;;) {
        if (job.remaining.load(std::memory_order_acquire) == 0) {
            return;
        }
        const std::uint64_t e0 =
            wake_epoch_.load(std::memory_order_seq_cst);
        if (run_one_own_range(slot, stat_slot)) {
            continue;
        }
        const int stole = try_steal_range(slot, stat_slot);
        if (stole != 0) {
            continue;  // ran something, or contended: rescan
        }
        // Clean all-empty sweep: the unfinished iterations are inside
        // other threads' run_range calls. They will either split (epoch
        // bump) or retire the last iteration (epoch bump), so sleeping
        // on the epoch cannot miss the completion.
        if (job.remaining.load(std::memory_order_acquire) == 0) {
            return;
        }
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return wake_epoch_.load(std::memory_order_seq_cst) !=
                           e0 ||
                       job.remaining.load(std::memory_order_relaxed) ==
                           0;
            });
        }
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
}

std::size_t ThreadPool::acquire_external_slot() {
    for (std::size_t s = workers_.size(); s < num_slots_; ++s) {
        bool expected = false;
        if (slots_[s].leased.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
            return s;
        }
    }
    return num_slots_;  // all leased: caller falls back to inline
}

void ThreadPool::drain_leftover_ranges(std::size_t slot,
                                       std::size_t stat_slot) {
    // An exiting external joiner may hold ranges of *other* jobs it
    // split while helping. Its slot becomes owner-less on release, and
    // a stranded range would only move if some thread happened to sweep
    // past -- so execute them now. (Invariant: a non-empty deque always
    // has an active owner or an imminent thief.)
    while (run_one_own_range(slot, stat_slot)) {
    }
}

void ThreadPool::run_stealing(size_type begin, size_type end,
                              FunctionRef<void(size_type)> body,
                              size_type grain) {
    const size_type n = end - begin;
    std::size_t slot;
    std::size_t stat_slot;
    const Binding saved = t_binding;
    bool leased = false;
    if (t_binding.pool == this) {
        slot = t_binding.slot;
        stat_slot = t_binding.stat_slot;
    } else {
        slot = acquire_external_slot();
        if (slot == num_slots_) {
            // Every external slot is leased by a concurrent caller: run
            // inline. Correct (just not accelerated), and counted so
            // vbatch_prof shows the pressure.
            if (pool_stats_on()) {
                const auto t0 = std::chrono::steady_clock::now();
                for (size_type i = begin; i < end; ++i) {
                    body(i);
                }
                note_inline_run(std::chrono::steady_clock::now() - t0);
                return;
            }
            for (size_type i = begin; i < end; ++i) {
                body(i);
            }
            return;
        }
        stat_slot = 0;
        t_binding = Binding{this, slot, stat_slot};
        leased = true;
    }
    StealJob job(body, begin, grain, n);
    run_range(job, 0, n, slot, stat_slot);
    join_job(job, slot, stat_slot);
    if (leased) {
        drain_leftover_ranges(slot, stat_slot);
        t_binding = saved;
        slots_[slot].leased.store(false, std::memory_order_release);
    }
    if (pool_stats_on()) {
        dispatches_.fetch_add(1, std::memory_order_relaxed);
    }
}

// ---------------------------------------------------------------------
// Legacy (sharing) engine
// ---------------------------------------------------------------------

void ThreadPool::drain(ParallelJob& job, ParticipantStat* stat) {
    const size_type grain = job.grain;
    const bool was_in_body = t_in_parallel_body;
    t_in_parallel_body = true;
    const bool stats = pool_stats_on() && stat != nullptr;
    const bool timer = stats && !t_busy_timed;
    if (timer) {
        t_busy_timed = true;
    }
    const auto t0 = timer ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    size_type claimed = 0;
    std::uint64_t chunks = 0;
    for (;;) {
        const size_type i = job.next.fetch_add(grain,
                                               std::memory_order_relaxed);
        if (i >= job.end) {
            break;
        }
        const size_type hi = std::min(i + grain, job.end);
        for (size_type k = i; k < hi; ++k) {
            (*job.body)(job.begin + k);
        }
        claimed += hi - i;
        ++chunks;
    }
    t_in_parallel_body = was_in_body;
    if (stats) {
        if (timer) {
            t_busy_timed = false;
            stat->busy_ns.fetch_add(
                to_ns(std::chrono::steady_clock::now() - t0),
                std::memory_order_relaxed);
        }
        stat->chunks.fetch_add(chunks, std::memory_order_relaxed);
        atomic_max(job.max_claimed, claimed);
    }
}

void ThreadPool::note_inline_run(
    std::chrono::steady_clock::duration elapsed) {
    // Nested inline runs land on whatever participant is executing
    // (worker stat slots via the thread binding), not blindly on slot 0
    // -- that blindness was the old undercount that made nested work
    // invisible to vbatch_prof. busy_ns is skipped when an enclosing
    // unit is already charging this thread's time.
    const std::size_t s =
        t_binding.pool == this ? t_binding.stat_slot : 0;
    if (!t_busy_timed) {
        stats_[s].busy_ns.fetch_add(to_ns(elapsed),
                                    std::memory_order_relaxed);
    }
    stats_[s].chunks.fetch_add(1, std::memory_order_relaxed);
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::run_task(std::function<void()>& task,
                          std::size_t stat_slot) {
    // Tasks execute with the worker flag raised. In sharing mode that
    // makes parallel_for inside a task inline on this thread (the
    // legacy job slot is not reentrant); in stealing mode nested calls
    // dispatch normally and the flag only feeds in_worker().
    const bool was_in_body = t_in_parallel_body;
    t_in_parallel_body = true;
    const bool stats = pool_stats_on();
    const bool timer = stats && !t_busy_timed;
    if (timer) {
        t_busy_timed = true;
    }
    const auto t0 = timer ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    task();
    t_in_parallel_body = was_in_body;
    if (stats) {
        if (timer) {
            t_busy_timed = false;
            stats_[stat_slot].busy_ns.fetch_add(
                to_ns(std::chrono::steady_clock::now() - t0),
                std::memory_order_relaxed);
        }
        stats_[stat_slot].chunks.fetch_add(1, std::memory_order_relaxed);
    }
}

void ThreadPool::submit(std::function<void()> task) {
    VBATCH_ENSURE(task != nullptr, "null task submitted");
    if (workers_.empty()) {
        // No workers (size() == 1): run inline rather than queueing a
        // task nobody would drain before destruction.
        run_task(task, 0);
        return;
    }
    if (mode() == SchedMode::stealing && t_binding.pool == this &&
        t_binding.slot < workers_.size()) {
        // Worker-side submit: lock-free push onto our own task deque.
        // (External threads use the injection queue below -- a leased
        // slot's deque loses its owner when the lease ends, so function
        // tasks never live there.)
        slots_[t_binding.slot].tasks.push(
            new TaskNode{std::move(task)});
        publish_wake();
        return;
    }
    bool queued = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!shutdown_) {
            tasks_.push_back(
                std::make_unique<TaskNode>(TaskNode{std::move(task)}));
            queued = true;
        }
    }
    if (queued) {
        publish_wake();
        return;
    }
    // Destructor already triggered: run inline rather than dropping.
    run_task(task, 0);
}

size_type ThreadPool::queued_tasks() const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_type n = static_cast<size_type>(tasks_.size());
    for (std::size_t s = 0; s < num_slots_; ++s) {
        n += slots_[s].tasks.approx_size();
    }
    return n;
}

ThreadPool::ParallelJob* ThreadPool::try_adopt_legacy_job(
    std::uint64_t& seen_epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job_ == nullptr || job_epoch_ == seen_epoch) {
        return nullptr;
    }
    // Register on the job *before* releasing the lock: the posting
    // caller retires the job only after every registered worker has
    // decremented back out.
    seen_epoch = job_epoch_;
    job_->active_workers.fetch_add(1, std::memory_order_relaxed);
    return job_;
}

void ThreadPool::worker_loop(std::size_t stat_slot) {
    const std::size_t slot = stat_slot - 1;
    t_binding = Binding{this, slot, stat_slot};
    std::uint64_t seen_job_epoch = 0;
    // One unified loop services both disciplines, so set_mode only has
    // to redirect publishers. Priority: the latency-sensitive legacy
    // job slot, then cache-hot own ranges, stolen ranges, own tasks,
    // stolen tasks, the injection queue -- and park only after a sweep
    // that saw everything empty with no steal contention.
    for (;;) {
        if (shutdown_flag_.load(std::memory_order_acquire)) {
            return;
        }
        const std::uint64_t e0 =
            wake_epoch_.load(std::memory_order_seq_cst);
        bool progress = false;
        bool contended = false;
        if (legacy_jobs_pending_.load(std::memory_order_acquire) > 0) {
            if (ParallelJob* job = try_adopt_legacy_job(seen_job_epoch)) {
                drain(*job, &stats_[stat_slot]);
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    job->active_workers.fetch_sub(
                        1, std::memory_order_relaxed);
                }
                done_cv_.notify_all();
                progress = true;
            }
        }
        if (!progress) {
            progress = run_one_own_range(slot, stat_slot);
        }
        if (!progress) {
            const int r = try_steal_range(slot, stat_slot);
            progress = r == 1;
            contended = contended || r == -1;
        }
        if (!progress) {
            if (TaskNode* node = slots_[slot].tasks.pop()) {
                run_task(node->fn, stat_slot);
                delete node;
                progress = true;
            }
        }
        if (!progress) {
            const int r = try_steal_task(slot, stat_slot);
            progress = r == 1;
            contended = contended || r == -1;
        }
        if (!progress) {
            progress = run_one_injected_task(stat_slot);
        }
        if (progress || contended) {
            continue;
        }
        if (!park(e0)) {
            return;
        }
    }
}

void ThreadPool::run_parallel(size_type begin, size_type end,
                              FunctionRef<void(size_type)> body,
                              size_type grain) {
    // The inline fast paths (empty pool, single grain, nested call) were
    // taken by the parallel_for template; here the range is worth real
    // dispatch. The job operates on [0, n) internally; drain offsets by
    // `begin` so no wrapper callable is needed.
    ParallelJob job;
    job.body = &body;
    job.begin = begin;
    job.end = end - begin;
    job.grain = grain;
    // Workers register themselves on adoption (under mutex_) and
    // deregister when their drain returns, so the wait below only covers
    // workers that actually touched *this* job. Concurrent external
    // callers therefore never wait on workers helping someone else's job
    // or busy inside a submitted task.
    job.active_workers.store(0, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        ++job_epoch_;
        legacy_jobs_pending_.fetch_add(1, std::memory_order_relaxed);
    }
    publish_wake();
    drain(job, &stats_[0]);
    // Wait for workers still inside drain() before the job leaves scope.
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] {
            return job.active_workers.load(std::memory_order_relaxed) == 0;
        });
        if (job_ == &job) {
            job_ = nullptr;  // a concurrent caller may have replaced it
        }
        legacy_jobs_pending_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (pool_stats_on()) {
        dispatches_.fetch_add(1, std::memory_order_relaxed);
        const auto participants =
            static_cast<std::uint64_t>(workers_.size()) + 1;
        const auto max_claimed = static_cast<std::uint64_t>(
            job.max_claimed.load(std::memory_order_relaxed));
        const auto n = static_cast<std::uint64_t>(job.end);
        if (n > 0 && max_claimed > 0) {
            // Imbalance = max claimed / fair share, in permille so the
            // accumulator stays integral. (Sharing mode only: stealing
            // balances by construction, and its steal/split counters
            // tell the distribution story instead.)
            const std::uint64_t permille =
                max_claimed * participants * 1000 / n;
            imbalance_last_permille_.store(permille,
                                           std::memory_order_relaxed);
            imbalance_sum_permille_.fetch_add(permille,
                                              std::memory_order_relaxed);
        }
    }
}

obs::PoolTelemetry ThreadPool::telemetry() const {
    obs::PoolTelemetry t;
    t.workers = size();
    t.armed = pool_stats_on();
    t.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - epoch_)
                         .count();
    double busy = 0.0;
    for (unsigned slot = 0; slot < size(); ++slot) {
        busy += static_cast<double>(
                    stats_[slot].busy_ns.load(std::memory_order_relaxed)) *
                1e-9;
    }
    t.busy_seconds = busy;
    const double capacity = t.wall_seconds * static_cast<double>(t.workers);
    t.idle_seconds = std::max(0.0, capacity - busy);
    t.utilization = capacity > 0.0 ? busy / capacity : 0.0;
    t.dispatches = static_cast<size_type>(
        dispatches_.load(std::memory_order_relaxed));
    t.inline_runs = static_cast<size_type>(
        inline_runs_.load(std::memory_order_relaxed));
    t.steals =
        static_cast<size_type>(steals_.load(std::memory_order_relaxed));
    t.steal_fails = static_cast<size_type>(
        steal_fails_.load(std::memory_order_relaxed));
    t.splits =
        static_cast<size_type>(splits_.load(std::memory_order_relaxed));
    t.parks =
        static_cast<size_type>(parks_.load(std::memory_order_relaxed));
    const auto disp = dispatches_.load(std::memory_order_relaxed);
    t.mean_imbalance =
        disp > 0 ? static_cast<double>(imbalance_sum_permille_.load(
                       std::memory_order_relaxed)) /
                       (1000.0 * static_cast<double>(disp))
                 : 0.0;
    t.last_imbalance = static_cast<double>(imbalance_last_permille_.load(
                           std::memory_order_relaxed)) /
                       1000.0;
    return t;
}

}  // namespace vbatch
