#include "base/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "base/macros.hpp"
#include "obs/trace.hpp"

namespace vbatch {

namespace {

/// Set while the current thread runs a parallel_for body (worker or
/// participating caller); nested parallel_for calls observe it and run
/// inline instead of touching the single job slot.
thread_local bool t_in_parallel_body = false;

/// VBATCH_THREADS: positive integer = exact pool size for the global
/// pool; unset/invalid = hardware_concurrency().
unsigned env_thread_count() {
    const char* env = std::getenv("VBATCH_THREADS");
    if (env == nullptr || env[0] == '\0') {
        return 0;
    }
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed <= 0 || parsed > 1024) {
        return 0;
    }
    return static_cast<unsigned>(parsed);
}

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    // The calling thread always participates, so spawn one fewer worker.
    workers_.reserve(num_threads - 1);
    for (unsigned i = 0; i + 1 < num_threads; ++i) {
        workers_.emplace_back([this, i] {
            obs::set_thread_name("vbatch-worker-" + std::to_string(i + 1));
            worker_loop();
        });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool(env_thread_count());
    return pool;
}

bool ThreadPool::in_worker() noexcept { return t_in_parallel_body; }

size_type ThreadPool::check_range(size_type begin, size_type end) {
    (void)begin;
    (void)end;
    VBATCH_ENSURE(false, "empty or reversed range");
    std::abort();  // unreachable; ENSURE throws
}

void ThreadPool::drain(ParallelJob& job) {
    const size_type grain = job.grain;
    const bool was_in_body = t_in_parallel_body;
    t_in_parallel_body = true;
    for (;;) {
        const size_type i = job.next.fetch_add(grain,
                                               std::memory_order_relaxed);
        if (i >= job.end) {
            break;
        }
        const size_type hi = std::min(i + grain, job.end);
        for (size_type k = i; k < hi; ++k) {
            (*job.body)(job.begin + k);
        }
    }
    t_in_parallel_body = was_in_body;
}

void ThreadPool::worker_loop() {
    std::uint64_t seen_epoch = 0;
    for (;;) {
        ParallelJob* job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return shutdown_ || (job_ != nullptr &&
                                     job_epoch_ != seen_epoch);
            });
            if (shutdown_) {
                return;
            }
            job = job_;
            seen_epoch = job_epoch_;
        }
        drain(*job);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job->active_workers.fetch_sub(1, std::memory_order_relaxed);
        }
        done_cv_.notify_all();
    }
}

void ThreadPool::run_parallel(size_type begin, size_type end,
                              FunctionRef<void(size_type)> body,
                              size_type grain) {
    // The inline fast paths (empty pool, single grain, nested call) were
    // taken by the parallel_for template; here the range is worth real
    // dispatch. The job operates on [0, n) internally; drain offsets by
    // `begin` so no wrapper callable is needed.
    ParallelJob job;
    job.body = &body;
    job.begin = begin;
    job.end = end - begin;
    job.grain = grain;
    job.active_workers.store(static_cast<int>(workers_.size()),
                             std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        ++job_epoch_;
    }
    cv_.notify_all();
    drain(job);
    // Wait for workers still inside drain() before the job leaves scope.
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] {
            return job.active_workers.load(std::memory_order_relaxed) == 0;
        });
        job_ = nullptr;
    }
}

}  // namespace vbatch
