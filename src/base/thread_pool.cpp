#include "base/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "base/macros.hpp"
#include "obs/trace.hpp"

namespace vbatch {

ThreadPool::ThreadPool(unsigned num_threads) {
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    // The calling thread always participates, so spawn one fewer worker.
    workers_.reserve(num_threads - 1);
    for (unsigned i = 0; i + 1 < num_threads; ++i) {
        workers_.emplace_back([this, i] {
            obs::set_thread_name("vbatch-worker-" + std::to_string(i + 1));
            worker_loop();
        });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool;
    return pool;
}

void ThreadPool::drain(ParallelJob& job) {
    const size_type grain = job.grain;
    for (;;) {
        const size_type i = job.next.fetch_add(grain,
                                               std::memory_order_relaxed);
        if (i >= job.end) {
            break;
        }
        const size_type hi = std::min(i + grain, job.end);
        for (size_type k = i; k < hi; ++k) {
            (*job.body)(k);
        }
    }
}

void ThreadPool::worker_loop() {
    std::uint64_t seen_epoch = 0;
    for (;;) {
        ParallelJob* job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return shutdown_ || (job_ != nullptr &&
                                     job_epoch_ != seen_epoch);
            });
            if (shutdown_) {
                return;
            }
            job = job_;
            seen_epoch = job_epoch_;
        }
        drain(*job);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job->active_workers.fetch_sub(1, std::memory_order_relaxed);
        }
        done_cv_.notify_all();
    }
}

void ThreadPool::parallel_for(size_type begin, size_type end,
                              const std::function<void(size_type)>& body,
                              size_type grain) {
    VBATCH_ENSURE(begin <= end, "empty or reversed range");
    const size_type n = end - begin;
    if (n == 0) {
        return;
    }
    if (grain <= 0) {
        // Aim for ~8 chunks per participant to balance load without
        // excessive atomic traffic.
        grain = std::max<size_type>(1, n / (8 * size()));
    }
    if (workers_.empty() || n <= grain) {
        for (size_type i = begin; i < end; ++i) {
            body(i);
        }
        return;
    }

    // Shift the job to operate on [0, n) internally and offset in the body.
    const std::function<void(size_type)> shifted = [&](size_type i) {
        body(begin + i);
    };
    ParallelJob job;
    job.body = &shifted;
    job.end = n;
    job.grain = grain;
    job.active_workers.store(static_cast<int>(workers_.size()),
                             std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        ++job_epoch_;
    }
    cv_.notify_all();
    drain(job);
    // Wait for workers still inside drain() before the job leaves scope.
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] {
            return job.active_workers.load(std::memory_order_relaxed) == 0;
        });
        job_ = nullptr;
    }
}

}  // namespace vbatch
