// Small descriptive-statistics helpers for the benchmark harness and the
// convergence study (Fig. 8 histogram).
#pragma once

#include <string>
#include <vector>

#include "base/types.hpp"

namespace vbatch {

/// Summary of a sample of real values.
struct Summary {
    size_type count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
    double stddev = 0.0;
    /// Linearly interpolated percentiles (p50 equals median).
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/// Compute a five-number-ish summary; empty input yields a zero Summary.
Summary summarize(std::vector<double> values);

/// Linearly interpolated percentile of an ascending-sorted sample;
/// p in [0, 100]. Empty input yields 0.
double sorted_percentile(const std::vector<double>& sorted, double p);

/// Fixed-width histogram over [lo, hi] with `bins` buckets plus two
/// overflow buckets. Used for the Fig. 8 iteration-overhead histogram.
class Histogram {
public:
    Histogram(double lo, double hi, int bins);

    void add(double value);

    int bins() const noexcept { return static_cast<int>(counts_.size()); }
    /// Count in interior bucket b, for b in [0, bins()). Values below
    /// `lo` are tallied by underflow(), values at or above `hi` by
    /// overflow(); neither tail appears in count().
    size_type count(int b) const;
    size_type underflow() const noexcept { return underflow_; }
    size_type overflow() const noexcept { return overflow_; }
    size_type total() const noexcept { return total_; }

    /// Center of bucket b.
    double center(int b) const;
    /// Lower edge of bucket b.
    double edge(int b) const;

    /// Render a left/right bar chart as ASCII art (used by bench_fig8).
    std::string render(int width = 50) const;

    /// Approximate percentile (p in [0, 100]) reconstructed from the
    /// bucket counts: linear interpolation inside the winning bucket;
    /// the underflow/overflow tails clamp to lo/hi. Empty histogram
    /// yields 0. Used for the latency/overhead percentile series in the
    /// bench JSON.
    double percentile(double p) const;

private:
    double lo_;
    double hi_;
    double bucket_width_;
    std::vector<size_type> counts_;
    size_type underflow_ = 0;
    size_type overflow_ = 0;
    size_type total_ = 0;
};

}  // namespace vbatch
