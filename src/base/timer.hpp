// Wall-clock timing utilities for benchmarks and the solver harness.
#pragma once

#include <chrono>

namespace vbatch {

/// Monotonic wall-clock stopwatch. Construction starts the clock.
class Timer {
public:
    Timer() noexcept : start_(clock::now()) {}

    /// Restart the stopwatch.
    void reset() noexcept { start_ = clock::now(); }

    /// Elapsed seconds since construction / last reset().
    double seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    double milliseconds() const noexcept { return seconds() * 1e3; }
    double microseconds() const noexcept { return seconds() * 1e6; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Adds the scope's elapsed wall time to an accumulator on destruction.
class ScopedTimer {
public:
    explicit ScopedTimer(double& accumulator) noexcept
        : accumulator_(accumulator) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() { accumulator_ += timer_.seconds(); }

private:
    double& accumulator_;
    Timer timer_;
};

}  // namespace vbatch
