// Cache-line aligned RAII buffer used for all numeric storage.
//
// Alignment to 64 bytes keeps per-problem matrix panels on distinct cache
// lines when a batch is dispatched across worker threads (avoids false
// sharing, Per.16/CP.3) and enables vectorized loads in the hot kernels.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "base/macros.hpp"
#include "base/types.hpp"

namespace vbatch {

inline constexpr std::size_t cache_line_bytes = 64;

/// Fixed-size aligned array of trivially-destructible T. Move-only.
template <typename T>
class AlignedBuffer {
    static_assert(std::is_trivially_destructible_v<T>,
                  "AlignedBuffer only supports trivially destructible types");

public:
    AlignedBuffer() noexcept : data_(nullptr), size_(0) {}

    explicit AlignedBuffer(size_type size) : data_(nullptr), size_(size) {
        VBATCH_ENSURE(size >= 0, "buffer size must be non-negative");
        if (size > 0) {
            const auto bytes = round_up(static_cast<std::size_t>(size) *
                                        sizeof(T));
            data_ = static_cast<T*>(
                ::operator new(bytes, std::align_val_t{cache_line_bytes}));
        }
    }

    /// Allocate and value-initialize (zero-fill for arithmetic types).
    static AlignedBuffer zeros(size_type size) {
        AlignedBuffer buf(size);
        for (size_type i = 0; i < size; ++i) {
            buf.data_[i] = T{};
        }
        return buf;
    }

    AlignedBuffer(const AlignedBuffer&) = delete;
    AlignedBuffer& operator=(const AlignedBuffer&) = delete;

    AlignedBuffer(AlignedBuffer&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0)) {}

    AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~AlignedBuffer() { release(); }

    T* data() noexcept { return data_; }
    const T* data() const noexcept { return data_; }
    size_type size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    T& operator[](size_type i) noexcept {
        VBATCH_ASSERT(i >= 0 && i < size_);
        return data_[i];
    }
    const T& operator[](size_type i) const noexcept {
        VBATCH_ASSERT(i >= 0 && i < size_);
        return data_[i];
    }

    T* begin() noexcept { return data_; }
    T* end() noexcept { return data_ + size_; }
    const T* begin() const noexcept { return data_; }
    const T* end() const noexcept { return data_ + size_; }

private:
    static std::size_t round_up(std::size_t bytes) {
        return (bytes + cache_line_bytes - 1) / cache_line_bytes *
               cache_line_bytes;
    }

    void release() noexcept {
        if (data_ != nullptr) {
            ::operator delete(data_, std::align_val_t{cache_line_bytes});
            data_ = nullptr;
        }
    }

    T* data_;
    size_type size_;
};

}  // namespace vbatch
