// Deterministic random number utilities.
//
// Every generator in the library takes an explicit seed so that tests,
// benchmarks and the synthetic matrix suite are bit-reproducible across
// runs and across thread counts (each batch entry derives its own stream
// from (seed, entry index), so parallel dispatch order cannot change the
// data).
#pragma once

#include <cstdint>
#include <random>

#include "base/types.hpp"

namespace vbatch {

/// SplitMix64 step; used to derive independent sub-seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Independent engine for sub-stream `index` of master seed `seed`.
inline std::mt19937_64 make_engine(std::uint64_t seed,
                                   std::uint64_t index = 0) noexcept {
    std::uint64_t s = seed ^ (0xd1b54a32d192ed03ULL * (index + 1));
    const std::uint64_t a = splitmix64(s);
    const std::uint64_t b = splitmix64(s);
    std::seed_seq seq{static_cast<std::uint32_t>(a),
                      static_cast<std::uint32_t>(a >> 32),
                      static_cast<std::uint32_t>(b),
                      static_cast<std::uint32_t>(b >> 32)};
    return std::mt19937_64(seq);
}

/// Uniform real in [lo, hi).
template <typename T>
T uniform(std::mt19937_64& eng, T lo, T hi) {
    std::uniform_real_distribution<T> dist(lo, hi);
    return dist(eng);
}

/// Uniform integer in [lo, hi] (inclusive).
inline index_type uniform_int(std::mt19937_64& eng, index_type lo,
                              index_type hi) {
    std::uniform_int_distribution<index_type> dist(lo, hi);
    return dist(eng);
}

}  // namespace vbatch
