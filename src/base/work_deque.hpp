// Chase-Lev work-stealing deque: the per-worker substrate of the
// stealing scheduler (thread_pool.hpp).
//
// One *owner* thread pushes and pops at the bottom (LIFO, so the owner
// keeps working on the most recently split -- cache-hot -- half-range),
// while any number of *thief* threads steal from the top (FIFO, so a
// thief takes the oldest and therefore largest pending range, which it
// will re-split itself). The memory ordering follows the C11 formulation
// of Le, Pop, Cohen & Zappa Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP'13):
//
//  * push:  store the cell, then bump bottom with a release store (the
//           paper's release-fence + relaxed-store, strengthened so the
//           publication is visible to TSan, which ignores fences);
//  * pop:   reserve the bottom slot first, seq_cst-fence, then read top;
//           the one-element case races with thieves and is resolved by a
//           seq_cst CAS on top;
//  * steal: read top (acquire), seq_cst-fence, read bottom (acquire);
//           claim the cell with a seq_cst CAS on top. A failed CAS means
//           another thief (or the owner, in the one-element case) won --
//           reported as `abort` so callers can distinguish "contended"
//           from "empty" (parking on a contended deque would strand work).
//
// Cells are std::atomic<T*>: the algorithm tolerates a thief reading a
// cell that the owner is concurrently overwriting after a wrap-around --
// the subsequent CAS on top discards the stale read -- and making the
// cells atomic keeps that benign race out of TSan's sight.
//
// The ring grows by doubling when full. Thieves may still hold a pointer
// to a retired buffer while the owner publishes the new one, so retired
// buffers are kept alive (owner-only list) until the deque is destroyed;
// a deque's lifetime footprint is bounded by twice its high-water size.
//
// Invariants (documented for DESIGN.md section 9):
//  I1  every pushed item is returned by exactly one pop() or steal();
//  I2  pop() and push() are owner-only; steal() is safe from any thread;
//  I3  top only ever increases; bottom only decreases inside pop();
//  I4  empty() is a relaxed snapshot -- it may report empty while a
//      concurrent push is in flight, so it is a scheduling heuristic,
//      never a correctness signal.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hpp"

namespace vbatch {

/// Result of a steal attempt: `item` is non-null only for `got`.
enum class StealResult : unsigned char {
    got,    ///< an item was stolen
    empty,  ///< the deque was observably empty
    abort,  ///< lost a race with the owner or another thief; retry later
};

template <typename T>
class WorkDeque {
public:
    explicit WorkDeque(size_type initial_capacity = 64)
        : buffer_(new Buffer(round_up_pow2(initial_capacity))) {}

    WorkDeque(const WorkDeque&) = delete;
    WorkDeque& operator=(const WorkDeque&) = delete;

    ~WorkDeque() { delete buffer_.load(std::memory_order_relaxed); }

    /// Owner only: publish `item` at the bottom. Never fails (grows).
    void push(T* item) {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        Buffer* buf = buffer_.load(std::memory_order_relaxed);
        if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
            buf = grow(buf, t, b);
        }
        buf->cell(b).store(item, std::memory_order_relaxed);
        // Release *store* rather than the paper's release-fence +
        // relaxed-store: equivalent ordering for thieves (whose acquire
        // load of bottom then happens-after the cell write AND the
        // caller's writes into *item), and -- unlike a fence -- visible
        // to TSan, which does not model atomic_thread_fence.
        bottom_.store(b + 1, std::memory_order_release);
    }

    /// Owner only: take the most recently pushed item; nullptr = empty.
    T* pop() {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        Buffer* buf = buffer_.load(std::memory_order_relaxed);
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_relaxed);
        if (t > b) {
            // Already empty: undo the reservation.
            bottom_.store(b + 1, std::memory_order_relaxed);
            return nullptr;
        }
        T* item = buf->cell(b).load(std::memory_order_relaxed);
        if (t == b) {
            // Last element: race against thieves for it via top.
            if (!top_.compare_exchange_strong(t, t + 1,
                                              std::memory_order_seq_cst,
                                              std::memory_order_relaxed)) {
                item = nullptr;  // a thief won
            }
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return item;
    }

    /// Any thread: try to take the oldest item from the top.
    StealResult steal(T** out) {
        *out = nullptr;
        std::int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_acquire);
        if (t >= b) {
            return StealResult::empty;
        }
        Buffer* buf = buffer_.load(std::memory_order_acquire);
        T* item = buf->cell(t).load(std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
            return StealResult::abort;
        }
        *out = item;
        return StealResult::got;
    }

    /// Relaxed size snapshot (scheduling heuristic; see I4).
    bool empty() const noexcept {
        return bottom_.load(std::memory_order_relaxed) <=
               top_.load(std::memory_order_relaxed);
    }

    size_type approx_size() const noexcept {
        const std::int64_t d = bottom_.load(std::memory_order_relaxed) -
                               top_.load(std::memory_order_relaxed);
        return d > 0 ? static_cast<size_type>(d) : 0;
    }

    size_type capacity() const noexcept {
        return buffer_.load(std::memory_order_relaxed)->capacity;
    }

private:
    struct Buffer {
        explicit Buffer(size_type cap)
            : capacity(cap),
              cells(std::make_unique<std::atomic<T*>[]>(
                  static_cast<std::size_t>(cap))) {}
        std::atomic<T*>& cell(std::int64_t index) noexcept {
            return cells[static_cast<std::size_t>(
                index & (static_cast<std::int64_t>(capacity) - 1))];
        }
        const size_type capacity;  // power of two
        std::unique_ptr<std::atomic<T*>[]> cells;
    };

    static size_type round_up_pow2(size_type n) noexcept {
        size_type p = 8;
        while (p < n) {
            p *= 2;
        }
        return p;
    }

    /// Owner only: double the ring, copy live cells, retire the old
    /// buffer (thieves may still be reading it).
    Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
        auto next = std::make_unique<Buffer>(old->capacity * 2);
        for (std::int64_t i = t; i < b; ++i) {
            next->cell(i).store(old->cell(i).load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
        }
        Buffer* raw = next.get();
        retired_.emplace_back(old);
        buffer_.store(raw, std::memory_order_release);
        next.release();
        return raw;
    }

    alignas(64) std::atomic<std::int64_t> top_{0};
    alignas(64) std::atomic<std::int64_t> bottom_{0};
    std::atomic<Buffer*> buffer_;
    /// Buffers superseded by grow(); freed only at destruction (owner
    /// touches this vector exclusively, so no lock is needed).
    std::vector<std::unique_ptr<Buffer>> retired_;
};

}  // namespace vbatch
