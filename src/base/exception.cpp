#include "base/macros.hpp"

#include <sstream>

namespace vbatch::detail {

void throw_bad_parameter(const char* file, int line, const char* cond,
                         const std::string& msg) {
    std::ostringstream os;
    os << file << ":" << line << ": precondition violated: " << cond;
    if (!msg.empty()) {
        os << " (" << msg << ")";
    }
    throw BadParameter(os.str());
}

void throw_dimension_mismatch(const char* file, int line, const char* cond) {
    std::ostringstream os;
    os << file << ":" << line << ": dimension mismatch: " << cond;
    throw DimensionMismatch(os.str());
}

}  // namespace vbatch::detail
