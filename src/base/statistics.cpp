#include "base/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/macros.hpp"

namespace vbatch {

Summary summarize(std::vector<double> values) {
    Summary s;
    s.count = static_cast<size_type>(values.size());
    if (values.empty()) {
        return s;
    }
    std::sort(values.begin(), values.end());
    s.min = values.front();
    s.max = values.back();
    const auto n = values.size();
    double sum = 0.0;
    for (const double v : values) {
        sum += v;
    }
    s.mean = sum / static_cast<double>(n);
    s.median = (n % 2 == 1) ? values[n / 2]
                            : 0.5 * (values[n / 2 - 1] + values[n / 2]);
    double ss = 0.0;
    for (const double v : values) {
        ss += (v - s.mean) * (v - s.mean);
    }
    s.stddev = (n > 1) ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
    s.p50 = sorted_percentile(values, 50.0);
    s.p95 = sorted_percentile(values, 95.0);
    s.p99 = sorted_percentile(values, 99.0);
    return s;
}

double sorted_percentile(const std::vector<double>& sorted, double p) {
    if (sorted.empty()) {
        return 0.0;
    }
    p = std::clamp(p, 0.0, 100.0);
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) {
        return sorted.back();
    }
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / bins), counts_(bins, 0) {
    VBATCH_ENSURE(hi > lo, "histogram range must be non-empty");
    VBATCH_ENSURE(bins > 0, "histogram needs at least one bucket");
}

void Histogram::add(double value) {
    ++total_;
    if (value < lo_) {
        ++underflow_;
        return;
    }
    if (value >= hi_) {
        ++overflow_;
        return;
    }
    auto b = static_cast<std::size_t>((value - lo_) / bucket_width_);
    b = std::min(b, counts_.size() - 1);
    ++counts_[b];
}

size_type Histogram::count(int b) const {
    VBATCH_ENSURE(b >= 0 && b < bins(), "bucket out of range");
    return counts_[static_cast<std::size_t>(b)];
}

double Histogram::edge(int b) const {
    VBATCH_ENSURE(b >= 0 && b <= bins(), "edge out of range");
    return lo_ + b * bucket_width_;
}

double Histogram::center(int b) const {
    return edge(b) + 0.5 * bucket_width_;
}

double Histogram::percentile(double p) const {
    if (total_ == 0) {
        return 0.0;
    }
    p = std::clamp(p, 0.0, 100.0);
    const double target = p / 100.0 * static_cast<double>(total_);
    double cumulative = static_cast<double>(underflow_);
    if (target <= cumulative) {
        return lo_;
    }
    for (int b = 0; b < bins(); ++b) {
        const auto c = static_cast<double>(
            counts_[static_cast<std::size_t>(b)]);
        if (c > 0.0 && target <= cumulative + c) {
            return edge(b) + (target - cumulative) / c * bucket_width_;
        }
        cumulative += c;
    }
    return hi_;
}

std::string Histogram::render(int width) const {
    size_type peak = std::max<size_type>(1, std::max(underflow_, overflow_));
    for (const auto c : counts_) {
        peak = std::max(peak, c);
    }
    std::ostringstream os;
    auto bar = [&](size_type c) {
        const int len = static_cast<int>((c * width) / peak);
        return std::string(static_cast<std::size_t>(len), '#');
    };
    if (underflow_ > 0) {
        os << "  <" << lo_ << "  | " << bar(underflow_) << " " << underflow_
           << "\n";
    }
    for (int b = 0; b < bins(); ++b) {
        os.setf(std::ios::fixed);
        os.precision(1);
        os << "  " << edge(b) << " .. " << edge(b + 1) << " | "
           << bar(counts_[static_cast<std::size_t>(b)]) << " "
           << counts_[static_cast<std::size_t>(b)] << "\n";
    }
    if (overflow_ > 0) {
        os << "  >=" << hi_ << " | " << bar(overflow_) << " " << overflow_
           << "\n";
    }
    return os.str();
}

}  // namespace vbatch
