// Host scheduler for the batched kernels: a thread pool with two
// interchangeable dispatch disciplines behind one parallel_for/submit
// API.
//
//  * stealing (default): per-worker Chase-Lev deques (work_deque.hpp).
//    parallel_for publishes lazily split half-ranges that idle workers
//    steal, so a call nested inside a pool task -- every service-layer
//    solve -- spreads across idle threads instead of degrading to
//    sequential execution. submit() pushes fire-and-forget tasks onto
//    the submitting worker's own deque (lock-free) or, from external
//    threads, onto a shared injection queue.
//  * sharing (legacy, VBATCH_SCHED=sharing): the original single
//    mutex-guarded job slot + task queue. Nested parallel_for runs
//    inline-sequential. Kept selectable for A/B comparison
//    (bench_scheduler) and as an escape hatch.
//
// Determinism is preserved by construction in both modes: the chunk
// decomposition of a parallel_for range is a pure function of (n, grain)
// -- grain-sized chunks at grain-aligned offsets -- and only the
// chunk->thread assignment is dynamic. Every parallel reduction in the
// tree (blas/blas1.hpp, sparse spmv) combines fixed-index per-chunk
// partials in order, so results are bitwise identical across scheduler
// modes, thread counts, and steal interleavings (proven cross-process by
// tests/determinism_probe fixtures over VBATCH_SCHED x VBATCH_THREADS).
//
// Design notes (CP.4, CP.3): users submit *tasks* via parallel_for; the
// pool never exposes raw threads. parallel_for bodies must not share
// writable state across distinct indices -- the batched kernels satisfy
// this by construction because every batch entry owns a disjoint slice
// of the storage. Range subtasks carry only (job*, lo, hi), so any
// thread may execute any pending range: a blocked join helps by running
// stolen ranges. Fire-and-forget *function* tasks, in contrast, may
// take locks (a service job holds its session mutex), so they are only
// ever started from a worker's top-level loop, never from inside a
// join -- nesting two same-session jobs on one stack would self-deadlock.
//
// Hot-path properties of parallel_for (both modes):
//  - Ranges at or below one grain run inline on the calling thread: no
//    mutex, no wake, no type-erasure allocation. Small per-block solves
//    cost exactly the loop body (plus, when VBATCH_POOL_STATS is armed,
//    one relaxed stat update -- nested inline runs are accounted to the
//    executing participant's slot so vbatch_prof sees nested work).
//  - The callable is passed by FunctionRef, so no std::function is ever
//    constructed.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/function_ref.hpp"
#include "base/types.hpp"
#include "base/work_deque.hpp"
#include "obs/metrics.hpp"

namespace vbatch {

namespace detail {
// Constant-initialized; flipped by ThreadPool::set_stats_enabled or the
// VBATCH_POOL_STATS env probe. Mirrors the tracer's arming flag: the
// disarmed hot-path cost is one relaxed load + branch.
inline std::atomic<bool> g_pool_stats_on{false};
}  // namespace detail

/// The dormant check: true when pool telemetry is being collected.
inline bool pool_stats_on() noexcept {
    return detail::g_pool_stats_on.load(std::memory_order_relaxed);
}

/// Shared parallel_for grain for loops whose iterations are single batch
/// entries (one tiny factorization or solve each). Small enough to load-
/// balance ragged batches, large enough that the per-chunk dispatch cost
/// is amortized. Every batch-entry loop must pass this grain so the
/// backends split work identically (getrf/trsv/block-Jacobi previously
/// disagreed: the preconditioner used 64 while the kernel drivers fell
/// back to the automatic n/(8*threads) choice).
inline constexpr size_type batch_entry_grain = 64;

/// Scheduling discipline of a ThreadPool (see the header comment).
enum class SchedMode {
    stealing,  ///< per-worker deques, reentrant nested parallel_for
    sharing,   ///< legacy single job slot, nested calls run inline
};

/// VBATCH_SCHED: "sharing" selects the legacy pool; anything else
/// (unset, "stealing") selects the work-stealing scheduler.
SchedMode sched_mode_from_env();

class ThreadPool {
public:
    /// Create a pool with `num_threads` workers; 0 means
    /// hardware_concurrency() (at least 1). The mode defaults to the
    /// VBATCH_SCHED environment probe.
    explicit ThreadPool(unsigned num_threads = 0);
    ThreadPool(unsigned num_threads, SchedMode mode);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    unsigned size() const noexcept {
        return static_cast<unsigned>(workers_.size()) + 1;  // + caller
    }

    SchedMode mode() const noexcept {
        return mode_.load(std::memory_order_relaxed);
    }

    /// Switch the dispatch discipline. The caller must have quiesced the
    /// pool (no parallel_for in flight, no outstanding tasks); the
    /// workers themselves service both disciplines at all times, so the
    /// switch only redirects where *new* work is published. Used by
    /// bench_scheduler for in-process A/B runs.
    void set_mode(SchedMode mode) noexcept {
        mode_.store(mode, std::memory_order_relaxed);
    }

    /// Run body(i) for every i in [begin, end). Blocks until all
    /// iterations are done. Iterations are distributed in contiguous
    /// chunks of `grain` (0 = choose automatically); the decomposition
    /// into chunks depends only on (n, grain), never on the scheduler
    /// mode or on which thread runs a chunk. The calling thread
    /// participates. body must be safe to invoke concurrently for
    /// distinct i.
    ///
    /// Ranges that fit in one grain execute inline on the calling thread
    /// without paying for dispatch. In sharing mode any call made from
    /// inside a pool worker also runs inline (the legacy single job slot
    /// is not reentrant); in stealing mode nested calls dispatch like
    /// any other and their half-ranges are stolen by idle workers.
    template <typename F>
    void parallel_for(size_type begin, size_type end, const F& body,
                      size_type grain = 0) {
        const size_type n = end >= begin ? end - begin
                                         : check_range(begin, end);
        if (n == 0) {
            return;
        }
        if (grain <= 0) {
            // Aim for ~8 chunks per participant to balance load without
            // excessive atomic traffic; never chop finer than a handful
            // of iterations, which would be pure dispatch overhead.
            grain = std::max<size_type>(auto_grain_floor,
                                        n / (8 * size()));
        }
        const bool sharing = mode() == SchedMode::sharing;
        if (workers_.empty() || n <= grain || (sharing && in_worker())) {
            if (pool_stats_on()) {
                const auto t0 = std::chrono::steady_clock::now();
                for (size_type i = begin; i < end; ++i) {
                    body(i);
                }
                note_inline_run(std::chrono::steady_clock::now() - t0);
                return;
            }
            for (size_type i = begin; i < end; ++i) {
                body(i);
            }
            return;
        }
        if (sharing) {
            run_parallel(begin, end, FunctionRef<void(size_type)>(body),
                         grain);
        } else {
            run_stealing(begin, end, FunctionRef<void(size_type)>(body),
                         grain);
        }
    }

    /// Enqueue an independent task for asynchronous execution by one
    /// worker. Returns immediately; there is no per-task completion
    /// handle (callers that need one wrap the task in a promise). Tasks
    /// must not throw. With no workers (size() == 1) the task runs
    /// inline before submit returns. Tasks still queued at destruction
    /// run on the destroying thread, so a submitted task is never lost.
    ///
    /// Stealing mode: a submit from a pool worker pushes onto that
    /// worker's own deque (lock-free); external submitters go through
    /// the shared injection queue. Sharing mode: always the queue.
    void submit(std::function<void()> task);

    /// Tasks accepted by submit() but not yet started (diagnostics;
    /// includes per-worker deque contents in stealing mode).
    size_type queued_tasks() const;

    /// The process-wide default pool. Sized by the VBATCH_THREADS
    /// environment variable when set to a positive integer, else to the
    /// hardware; scheduled per VBATCH_SCHED. Results of every vbatch
    /// parallel kernel are bitwise independent of both knobs
    /// (deterministic chunked decomposition + in-order combination), so
    /// they only trade latency, never accuracy.
    static ThreadPool& global();

    /// True while the calling thread is executing a parallel_for body or
    /// a submitted task on behalf of this process's pools.
    static bool in_worker() noexcept;

    /// Programmatic switch for busy/idle + steal/split/park collection
    /// (the VBATCH_POOL_STATS environment variable arms the same flag at
    /// startup). Counters accumulate from pool construction; arming
    /// mid-run under-reports utilization for the un-instrumented past.
    static void set_stats_enabled(bool on) noexcept;

    /// Snapshot this pool's utilization telemetry. Busy seconds, steal
    /// and dispatch counts are only collected while stats are armed;
    /// workers/wall_seconds are always valid.
    obs::PoolTelemetry telemetry() const;

private:
    /// Floor for the automatically chosen grain: below this many
    /// iterations per chunk the fetch_add + cache-miss cost of claiming
    /// a chunk rivals the work itself.
    static constexpr size_type auto_grain_floor = 16;

    /// Deque slots available to external (non-worker) threads whose
    /// root parallel_for needs a stealable home for its half-ranges.
    /// Concurrent external callers beyond this fall back to inline
    /// execution (correct, just not accelerated).
    static constexpr std::size_t external_slots = 16;

    // -- legacy (sharing) structures ----------------------------------
    struct ParallelJob {
        const FunctionRef<void(size_type)>* body = nullptr;
        size_type begin = 0;
        std::atomic<size_type> next{0};
        size_type end = 0;
        size_type grain = 1;
        std::atomic<int> active_workers{0};
        /// Most iterations claimed by a single participant (stats only).
        std::atomic<size_type> max_claimed{0};
    };

    // -- stealing structures ------------------------------------------
    /// One parallel_for in flight: lives on the root caller's stack for
    /// the duration of the (blocking) call, so range subtasks may refer
    /// to it by pointer. `remaining` counts not-yet-executed iterations;
    /// the thread that retires the last iteration publishes a pool-wide
    /// wake so the root's join can return.
    struct StealJob {
        StealJob(FunctionRef<void(size_type)> b, size_type begin_,
                 size_type grain_, size_type n)
            : body(b), begin(begin_), grain(grain_), remaining(n) {}
        const FunctionRef<void(size_type)> body;
        const size_type begin;
        const size_type grain;
        std::atomic<size_type> remaining;
    };

    /// A stealable half-open range [lo, hi) of `job` (job-relative
    /// indices). Heap-allocated at split time, freed by the executor.
    struct RangeTask {
        StealJob* job;
        size_type lo;
        size_type hi;
    };

    /// A fire-and-forget task node (owning; freed by the executor).
    struct TaskNode {
        std::function<void()> fn;
    };

    /// Per-thread scheduling home: a range deque (parallel_for splits)
    /// and a task deque (worker-submitted function tasks). Workers own
    /// slots [0, workers); external root callers lease slots beyond
    /// that. Cache-line aligned so owner push/pop never false-shares
    /// with a neighbour.
    struct alignas(64) Slot {
        WorkDeque<RangeTask> ranges;
        WorkDeque<TaskNode> tasks;
        std::atomic<bool> leased{false};  // external slots only
    };

    /// Per-participant telemetry slot (slot 0 = external callers /
    /// inline fast path, slot i+1 = worker i). Cache-line sized so
    /// armed recording never bounces lines between participants.
    struct alignas(64) ParticipantStat {
        std::atomic<std::uint64_t> busy_ns{0};
        std::atomic<std::uint64_t> chunks{0};
    };

    [[noreturn]] static size_type check_range(size_type begin,
                                              size_type end);
    void run_parallel(size_type begin, size_type end,
                      FunctionRef<void(size_type)> body, size_type grain);
    void run_stealing(size_type begin, size_type end,
                      FunctionRef<void(size_type)> body, size_type grain);
    void worker_loop(std::size_t stat_slot);
    void drain(ParallelJob& job, ParticipantStat* stat);
    void run_task(std::function<void()>& task, std::size_t stat_slot);
    void note_inline_run(std::chrono::steady_clock::duration elapsed);

    // -- stealing engine (thread_pool.cpp) ----------------------------
    void run_range(StealJob& job, size_type lo, size_type hi,
                   std::size_t slot, std::size_t stat_slot);
    void execute_range(RangeTask* task, std::size_t slot,
                       std::size_t stat_slot);
    void join_job(StealJob& job, std::size_t slot, std::size_t stat_slot);
    bool run_one_own_range(std::size_t slot, std::size_t stat_slot);
    /// 1 = ran something, 0 = all observably empty, -1 = contended
    /// (lost a CAS race; do not park, rescan instead).
    int try_steal_range(std::size_t slot, std::size_t stat_slot);
    int try_steal_task(std::size_t slot, std::size_t stat_slot);
    bool run_one_injected_task(std::size_t stat_slot);
    void drain_leftover_ranges(std::size_t slot, std::size_t stat_slot);
    std::size_t acquire_external_slot();
    void publish_wake();
    bool park(std::uint64_t seen_epoch);  // false = shutting down
    ParallelJob* try_adopt_legacy_job(std::uint64_t& seen_epoch);

    std::vector<std::thread> workers_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::atomic<SchedMode> mode_{SchedMode::stealing};
    ParallelJob* job_ = nullptr;     // guarded by mutex_; latest job
    std::uint64_t job_epoch_ = 0;    // guarded by mutex_
    bool shutdown_ = false;          // guarded by mutex_
    std::atomic<bool> shutdown_flag_{false};  // lock-free mirror
    /// Number of run_parallel calls currently between posting their job
    /// and retiring it; workers consult the job slot only while > 0.
    std::atomic<int> legacy_jobs_pending_{0};
    std::deque<std::unique_ptr<TaskNode>> tasks_;  // guarded by mutex_
    std::condition_variable done_cv_;
    /// Bumped on every publish (task, split, legacy job, completion,
    /// shutdown); parked threads re-scan when it moves. The epoch is
    /// read before scanning and re-checked under mutex_ before
    /// sleeping, which closes the publish/park race without a lock on
    /// the publish fast path when nobody sleeps.
    std::atomic<std::uint64_t> wake_epoch_{0};
    std::atomic<int> sleepers_{0};

    std::unique_ptr<Slot[]> slots_;  // workers_.size() + external_slots
    std::size_t num_slots_ = 0;

    // -- telemetry (relaxed atomics; written only while armed) --------
    std::unique_ptr<ParticipantStat[]> stats_;  // size() slots
    std::atomic<std::uint64_t> dispatches_{0};
    std::atomic<std::uint64_t> inline_runs_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> steal_fails_{0};
    std::atomic<std::uint64_t> splits_{0};
    std::atomic<std::uint64_t> parks_{0};
    std::atomic<std::uint64_t> imbalance_sum_permille_{0};
    std::atomic<std::uint64_t> imbalance_last_permille_{0};
    std::chrono::steady_clock::time_point epoch_;
    bool is_global_source_ = false;  // set once for the global pool
};

}  // namespace vbatch
