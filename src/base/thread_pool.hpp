// Minimal work-sharing thread pool used to dispatch independent batch
// entries across host cores.
//
// Design notes (CP.4, CP.3): users submit *tasks* via parallel_for; the
// pool never exposes raw threads. Tasks must not share writable state --
// the batched kernels satisfy this by construction because every batch
// entry owns a disjoint slice of the storage.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "base/types.hpp"

namespace vbatch {

/// Shared parallel_for grain for loops whose iterations are single batch
/// entries (one tiny factorization or solve each). Small enough to load-
/// balance ragged batches, large enough that the per-chunk dispatch cost
/// is amortized. Every batch-entry loop must pass this grain so the
/// backends split work identically (getrf/trsv/block-Jacobi previously
/// disagreed: the preconditioner used 64 while the kernel drivers fell
/// back to the automatic n/(8*threads) choice).
inline constexpr size_type batch_entry_grain = 64;

class ThreadPool {
public:
    /// Create a pool with `num_threads` workers; 0 means
    /// hardware_concurrency() (at least 1).
    explicit ThreadPool(unsigned num_threads = 0);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    unsigned size() const noexcept {
        return static_cast<unsigned>(workers_.size()) + 1;  // + caller
    }

    /// Run body(i) for every i in [begin, end). Blocks until all iterations
    /// are done. Iterations are distributed in contiguous chunks of
    /// `grain` (0 = choose automatically). The calling thread participates.
    /// body must be safe to invoke concurrently for distinct i.
    void parallel_for(size_type begin, size_type end,
                      const std::function<void(size_type)>& body,
                      size_type grain = 0);

    /// The process-wide default pool (sized to the hardware).
    static ThreadPool& global();

private:
    struct ParallelJob {
        const std::function<void(size_type)>* body = nullptr;
        std::atomic<size_type> next{0};
        size_type end = 0;
        size_type grain = 1;
        std::atomic<int> active_workers{0};
    };

    void worker_loop();
    static void drain(ParallelJob& job);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable cv_;
    ParallelJob* job_ = nullptr;     // guarded by mutex_
    std::uint64_t job_epoch_ = 0;    // guarded by mutex_
    bool shutdown_ = false;          // guarded by mutex_
    std::condition_variable done_cv_;
};

}  // namespace vbatch
