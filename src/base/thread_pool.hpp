// Minimal work-sharing thread pool used to dispatch independent batch
// entries across host cores.
//
// Design notes (CP.4, CP.3): users submit *tasks* via parallel_for; the
// pool never exposes raw threads. Tasks must not share writable state --
// the batched kernels satisfy this by construction because every batch
// entry owns a disjoint slice of the storage.
//
// Hot-path properties of parallel_for:
//  - Ranges at or below one grain run inline on the calling thread: no
//    mutex, no condition variable, no type-erasure allocation. Small
//    per-block solves therefore cost exactly the loop body.
//  - The callable is passed by FunctionRef, so no std::function is ever
//    constructed (the old signature heap-allocated one per call).
//  - Calls nested inside a worker body run inline as well; the pool has a
//    single job slot and is not reentrant, so nested parallelism must
//    degrade to sequential execution instead of deadlocking.
//
// Concurrency model: parallel_for may be called from any number of
// external threads at once. The job slot holds the *latest* posted job;
// workers adopt whatever job is current, register themselves on it, and
// a posting caller only waits for workers actually registered on *its*
// job -- so concurrent callers never deadlock waiting for workers that
// are busy elsewhere (they just get less help).
//
// Fire-and-forget tasks: submit() enqueues an independent task that one
// worker will run to completion. Tasks run with the nested-parallelism
// flag set, so any parallel_for inside a task executes inline on that
// worker -- many independent tasks parallelize across workers while each
// task stays internally sequential (and therefore deterministic). This
// is the substrate the service-layer job engine schedules solves on.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/function_ref.hpp"
#include "base/types.hpp"
#include "obs/metrics.hpp"

namespace vbatch {

namespace detail {
// Constant-initialized; flipped by ThreadPool::set_stats_enabled or the
// VBATCH_POOL_STATS env probe. Mirrors the tracer's arming flag: the
// disarmed hot-path cost is one relaxed load + branch.
inline std::atomic<bool> g_pool_stats_on{false};
}  // namespace detail

/// The dormant check: true when pool telemetry is being collected.
inline bool pool_stats_on() noexcept {
    return detail::g_pool_stats_on.load(std::memory_order_relaxed);
}

/// Shared parallel_for grain for loops whose iterations are single batch
/// entries (one tiny factorization or solve each). Small enough to load-
/// balance ragged batches, large enough that the per-chunk dispatch cost
/// is amortized. Every batch-entry loop must pass this grain so the
/// backends split work identically (getrf/trsv/block-Jacobi previously
/// disagreed: the preconditioner used 64 while the kernel drivers fell
/// back to the automatic n/(8*threads) choice).
inline constexpr size_type batch_entry_grain = 64;

class ThreadPool {
public:
    /// Create a pool with `num_threads` workers; 0 means
    /// hardware_concurrency() (at least 1).
    explicit ThreadPool(unsigned num_threads = 0);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    unsigned size() const noexcept {
        return static_cast<unsigned>(workers_.size()) + 1;  // + caller
    }

    /// Run body(i) for every i in [begin, end). Blocks until all iterations
    /// are done. Iterations are distributed in contiguous chunks of
    /// `grain` (0 = choose automatically). The calling thread participates.
    /// body must be safe to invoke concurrently for distinct i.
    ///
    /// Ranges that fit in one grain -- and any call made from inside a
    /// pool worker -- execute inline on the calling thread without paying
    /// for dispatch.
    template <typename F>
    void parallel_for(size_type begin, size_type end, const F& body,
                      size_type grain = 0) {
        const size_type n = end >= begin ? end - begin
                                         : check_range(begin, end);
        if (n == 0) {
            return;
        }
        if (grain <= 0) {
            // Aim for ~8 chunks per participant to balance load without
            // excessive atomic traffic; never chop finer than a handful of
            // iterations, which would be pure dispatch overhead.
            grain = std::max<size_type>(auto_grain_floor,
                                        n / (8 * size()));
        }
        if (workers_.empty() || n <= grain || in_worker()) {
            if (pool_stats_on() && !in_worker()) {
                const auto t0 = std::chrono::steady_clock::now();
                for (size_type i = begin; i < end; ++i) {
                    body(i);
                }
                note_inline_run(std::chrono::steady_clock::now() - t0);
                return;
            }
            for (size_type i = begin; i < end; ++i) {
                body(i);
            }
            return;
        }
        run_parallel(begin, end, FunctionRef<void(size_type)>(body), grain);
    }

    /// Enqueue an independent task for asynchronous execution by one
    /// worker. Returns immediately; there is no per-task completion
    /// handle (callers that need one wrap the task in a promise). Tasks
    /// must not throw. With no workers (size() == 1) the task runs
    /// inline before submit returns. Tasks still queued at destruction
    /// run on the destroying thread, so a submitted task is never lost.
    void submit(std::function<void()> task);

    /// Tasks accepted by submit() but not yet started (diagnostics).
    size_type queued_tasks() const;

    /// The process-wide default pool. Sized by the VBATCH_THREADS
    /// environment variable when set to a positive integer, else to the
    /// hardware. Results of every vbatch parallel kernel are bitwise
    /// independent of this size (deterministic chunked reductions), so
    /// VBATCH_THREADS only trades latency, never accuracy.
    static ThreadPool& global();

    /// True while the calling thread is executing a parallel_for body on
    /// behalf of this process's pools (nested calls run inline).
    static bool in_worker() noexcept;

    /// Programmatic switch for busy/idle + imbalance collection (the
    /// VBATCH_POOL_STATS environment variable arms the same flag at
    /// startup). Counters accumulate from pool construction; arming
    /// mid-run under-reports utilization for the un-instrumented past.
    static void set_stats_enabled(bool on) noexcept;

    /// Snapshot this pool's utilization telemetry. Busy seconds and
    /// dispatch counts are only collected while stats are armed;
    /// workers/wall_seconds are always valid.
    obs::PoolTelemetry telemetry() const;

private:
    /// Floor for the automatically chosen grain: below this many
    /// iterations per chunk the fetch_add + cache-miss cost of claiming a
    /// chunk rivals the work itself.
    static constexpr size_type auto_grain_floor = 16;

    struct ParallelJob {
        const FunctionRef<void(size_type)>* body = nullptr;
        size_type begin = 0;
        std::atomic<size_type> next{0};
        size_type end = 0;
        size_type grain = 1;
        std::atomic<int> active_workers{0};
        /// Most iterations claimed by a single participant (stats only).
        std::atomic<size_type> max_claimed{0};
    };

    /// Per-participant telemetry slot (slot 0 = the calling thread /
    /// inline fast path, slot i+1 = worker i). Cache-line sized so
    /// armed recording never bounces lines between participants.
    struct alignas(64) ParticipantStat {
        std::atomic<std::uint64_t> busy_ns{0};
        std::atomic<std::uint64_t> chunks{0};
    };

    [[noreturn]] static size_type check_range(size_type begin,
                                              size_type end);
    void run_parallel(size_type begin, size_type end,
                      FunctionRef<void(size_type)> body, size_type grain);
    void worker_loop(std::size_t stat_slot);
    void drain(ParallelJob& job, ParticipantStat* stat);
    void run_task(std::function<void()>& task, std::size_t stat_slot);
    void note_inline_run(std::chrono::steady_clock::duration elapsed);

    std::vector<std::thread> workers_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    ParallelJob* job_ = nullptr;     // guarded by mutex_; latest job
    std::uint64_t job_epoch_ = 0;    // guarded by mutex_
    bool shutdown_ = false;          // guarded by mutex_
    std::deque<std::function<void()>> tasks_;  // guarded by mutex_
    std::condition_variable done_cv_;

    // -- telemetry (relaxed atomics; written only while armed) --------
    std::unique_ptr<ParticipantStat[]> stats_;  // size() slots
    std::atomic<std::uint64_t> dispatches_{0};
    std::atomic<std::uint64_t> inline_runs_{0};
    std::atomic<std::uint64_t> imbalance_sum_permille_{0};
    std::atomic<std::uint64_t> imbalance_last_permille_{0};
    std::chrono::steady_clock::time_point epoch_;
    bool is_global_source_ = false;  // set once for the global pool
};

}  // namespace vbatch
