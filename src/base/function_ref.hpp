// Non-owning, non-allocating callable reference (a minimal
// std::function_ref until the library catches up with P0792).
//
// ThreadPool::parallel_for historically took a const std::function& --
// which meant every call site paid a type-erasure heap allocation to
// build the std::function *before* the pool could even decide to run the
// range inline. For the solver hot path (thousands of tiny dispatches per
// solve) that allocation was pure overhead. FunctionRef erases the type
// through two raw pointers instead; the referenced callable must outlive
// the call, which every parallel_for call site satisfies trivially (the
// lambda lives in the caller's frame for the duration of the blocking
// call).
#pragma once

#include <type_traits>
#include <utility>

namespace vbatch {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
public:
    FunctionRef() = delete;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                  std::is_invocable_r_v<R, F&, Args...>>>
    FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
        : obj_(const_cast<void*>(
              static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(obj))(
                  std::forward<Args>(args)...);
          }) {}

    R operator()(Args... args) const {
        return call_(obj_, std::forward<Args>(args)...);
    }

private:
    void* obj_;
    R (*call_)(void*, Args...);
};

}  // namespace vbatch
