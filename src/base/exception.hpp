// Exception hierarchy for the vbatch library.
//
// All failures that can reach a user of the public API derive from
// vbatch::Error (itself a std::runtime_error), so a caller can either catch
// the fine-grained type or the whole family.
#pragma once

#include <stdexcept>
#include <string>

namespace vbatch {

/// Root of the vbatch exception hierarchy.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A public API precondition on a parameter value was violated.
class BadParameter : public Error {
public:
    explicit BadParameter(const std::string& what) : Error(what) {}
};

/// Operand dimensions are inconsistent (e.g. A is m x n but b has k rows).
class DimensionMismatch : public Error {
public:
    explicit DimensionMismatch(const std::string& what) : Error(what) {}
};

/// A matrix that must be invertible turned out to be (numerically) singular.
/// Carries the batch entry and elimination step at which breakdown occurred.
class SingularMatrix : public Error {
public:
    SingularMatrix(const std::string& what, long batch_index, int step)
        : Error(what), batch_index_(batch_index), step_(step) {}

    long batch_index() const noexcept { return batch_index_; }
    int step() const noexcept { return step_; }

private:
    long batch_index_;
    int step_;
};

/// The requested combination of options is not implemented by this backend
/// (mirrors e.g. cuBLAS' lack of variable-size batched kernels).
class NotSupported : public Error {
public:
    explicit NotSupported(const std::string& what) : Error(what) {}
};

/// File or stream I/O failure (Matrix Market reader/writer, result dumps).
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error(what) {}
};

}  // namespace vbatch
