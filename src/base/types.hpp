// Fundamental scalar/index types and compile-time constants shared across
// the library.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <type_traits>

namespace vbatch {

/// Index type for matrix dimensions and sparse structures. 32-bit signed,
/// matching the convention of MAGMA/cuSPARSE batched interfaces.
using index_type = std::int32_t;

/// Index type for global element counts (nnz of large sparse matrices,
/// flop counters) that can exceed 2^31.
using size_type = std::int64_t;

/// The warp width of the emulated device; also the maximum supported block
/// size of the small-size batched kernels (the paper targets 4x4 .. 32x32,
/// one matrix row per warp lane).
inline constexpr index_type warp_size = 32;

/// Upper bound on diagonal block size accepted by the batched kernels.
inline constexpr index_type max_block_size = warp_size;

/// True for the scalar types the batched kernels are instantiated for.
template <typename T>
inline constexpr bool is_supported_scalar_v =
    std::is_same_v<T, float> || std::is_same_v<T, double>;

/// Human-readable precision tag used in benchmark output.
template <typename T>
std::string precision_name() {
    if constexpr (std::is_same_v<T, float>) {
        return "single";
    } else if constexpr (std::is_same_v<T, double>) {
        return "double";
    } else {
        return "unknown";
    }
}

/// remove_complex<T> maps std::complex<U> -> U and T -> T otherwise.
template <typename T>
struct remove_complex {
    using type = T;
};
template <typename U>
struct remove_complex<std::complex<U>> {
    using type = U;
};
template <typename T>
using remove_complex_t = typename remove_complex<T>::type;

}  // namespace vbatch
