// Non-owning 2-D views over column-major storage.
//
// MatrixView / ConstMatrixView are the library's equivalent of a (pointer,
// leading-dimension) pair in classic BLAS interfaces, with bounds checking
// in debug builds. They are trivially copyable value types (C.67 does not
// apply: no polymorphism) and never own memory.
#pragma once

#include <cstddef>

#include "base/macros.hpp"
#include "base/types.hpp"

namespace vbatch {

/// Mutable view of an m x n column-major matrix with leading dimension ld.
template <typename T>
class MatrixView {
public:
    MatrixView() noexcept : data_(nullptr), rows_(0), cols_(0), ld_(0) {}

    MatrixView(T* data, index_type rows, index_type cols,
               index_type ld) noexcept
        : data_(data), rows_(rows), cols_(cols), ld_(ld) {
        VBATCH_ASSERT(ld >= rows);
    }

    /// Contiguous view (ld == rows).
    MatrixView(T* data, index_type rows, index_type cols) noexcept
        : MatrixView(data, rows, cols, rows) {}

    T& operator()(index_type i, index_type j) const noexcept {
        VBATCH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
        return data_[static_cast<std::size_t>(j) * ld_ + i];
    }

    T* data() const noexcept { return data_; }
    index_type rows() const noexcept { return rows_; }
    index_type cols() const noexcept { return cols_; }
    index_type ld() const noexcept { return ld_; }
    bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

    /// Pointer to the top of column j.
    T* col(index_type j) const noexcept {
        VBATCH_ASSERT(j >= 0 && j < cols_);
        return data_ + static_cast<std::size_t>(j) * ld_;
    }

    /// Sub-view of rows [r0, r0+nr) x cols [c0, c0+nc).
    MatrixView submatrix(index_type r0, index_type c0, index_type nr,
                         index_type nc) const noexcept {
        VBATCH_ASSERT(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ &&
                      c0 + nc <= cols_);
        return {data_ + static_cast<std::size_t>(c0) * ld_ + r0, nr, nc, ld_};
    }

private:
    T* data_;
    index_type rows_;
    index_type cols_;
    index_type ld_;
};

/// Read-only counterpart of MatrixView.
template <typename T>
class ConstMatrixView {
public:
    ConstMatrixView() noexcept : data_(nullptr), rows_(0), cols_(0), ld_(0) {}

    ConstMatrixView(const T* data, index_type rows, index_type cols,
                    index_type ld) noexcept
        : data_(data), rows_(rows), cols_(cols), ld_(ld) {
        VBATCH_ASSERT(ld >= rows);
    }

    ConstMatrixView(const T* data, index_type rows, index_type cols) noexcept
        : ConstMatrixView(data, rows, cols, rows) {}

    /// Implicit conversion from the mutable view.
    ConstMatrixView(MatrixView<T> v) noexcept
        : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

    const T& operator()(index_type i, index_type j) const noexcept {
        VBATCH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
        return data_[static_cast<std::size_t>(j) * ld_ + i];
    }

    const T* data() const noexcept { return data_; }
    index_type rows() const noexcept { return rows_; }
    index_type cols() const noexcept { return cols_; }
    index_type ld() const noexcept { return ld_; }
    bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

    const T* col(index_type j) const noexcept {
        VBATCH_ASSERT(j >= 0 && j < cols_);
        return data_ + static_cast<std::size_t>(j) * ld_;
    }

    ConstMatrixView submatrix(index_type r0, index_type c0, index_type nr,
                              index_type nc) const noexcept {
        VBATCH_ASSERT(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ &&
                      c0 + nc <= cols_);
        return {data_ + static_cast<std::size_t>(c0) * ld_ + r0, nr, nc, ld_};
    }

private:
    const T* data_;
    index_type rows_;
    index_type cols_;
    index_type ld_;
};

}  // namespace vbatch
