// Contract and error-reporting macros used across all vbatch subsystems.
//
// Two tiers:
//   VBATCH_ASSERT(cond)  - internal invariant; compiled out in NDEBUG builds.
//   VBATCH_ENSURE(cond, msg) - precondition on public API input; always
//                              checked, throws vbatch::BadParameter.
//
// Following the C++ Core Guidelines (I.6/I.8, E.12), broken preconditions on
// public entry points are reported via exceptions so a caller can recover;
// broken internal invariants abort in debug builds.
#pragma once

#include <cassert>
#include <sstream>
#include <string>

#include "base/exception.hpp"

#define VBATCH_ASSERT(cond) assert(cond)

#define VBATCH_ENSURE(cond, msg)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::vbatch::detail::throw_bad_parameter(__FILE__, __LINE__,     \
                                                  #cond, (msg));          \
        }                                                                 \
    } while (false)

#define VBATCH_ENSURE_DIMS(cond)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::vbatch::detail::throw_dimension_mismatch(__FILE__,          \
                                                       __LINE__, #cond);  \
        }                                                                 \
    } while (false)

#define VBATCH_THROW_NOT_SUPPORTED(what)                                  \
    throw ::vbatch::NotSupported(std::string(__func__) + ": " + (what))

namespace vbatch::detail {

[[noreturn]] void throw_bad_parameter(const char* file, int line,
                                      const char* cond,
                                      const std::string& msg);
[[noreturn]] void throw_dimension_mismatch(const char* file, int line,
                                           const char* cond);

}  // namespace vbatch::detail
