// Minimal JSON support for the observability exporters and their tests.
//
// Writer: a streaming emitter with automatic comma/nesting management --
// enough to produce the Chrome trace and BENCH_*.json artifacts without
// a third-party dependency. Parser: a small recursive-descent reader used
// by the round-trip tests and the bench-JSON schema validator; it accepts
// strict JSON (objects, arrays, strings with escapes, numbers, booleans,
// null) and throws JsonError on malformed input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vbatch::obs {

/// Append `text` with JSON string escaping (no surrounding quotes).
void json_escape(std::string& out, std::string_view text);

/// Streaming JSON emitter. Usage errors (value without a pending key
/// inside an object, unbalanced end_*) are programming bugs and throw
/// std::logic_error.
class JsonWriter {
public:
    explicit JsonWriter(std::ostream& os) : os_(os) {}

    void begin_object();
    void end_object();
    void begin_array();
    void end_array();

    /// Emit the key of the next object member.
    void key(std::string_view name);

    void value(std::string_view text);
    void value(const char* text) { value(std::string_view(text)); }
    void value(double number);
    void value(std::int64_t number);
    void value(std::uint64_t number);
    void value(bool boolean);
    void null();

private:
    enum class Scope : std::uint8_t { object, array };
    void before_value();

    std::ostream& os_;
    std::vector<Scope> scopes_;
    std::vector<bool> first_;
    bool key_pending_ = false;
};

class JsonError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Parsed JSON document node.
struct JsonValue {
    enum class Type : std::uint8_t {
        null, boolean, number, string, object, array
    };

    Type type = Type::null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    /// Object members in document order.
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> items;

    bool is_null() const noexcept { return type == Type::null; }
    bool is_object() const noexcept { return type == Type::object; }
    bool is_array() const noexcept { return type == Type::array; }
    bool is_number() const noexcept { return type == Type::number; }
    bool is_string() const noexcept { return type == Type::string; }

    /// Object member lookup; nullptr if absent or not an object.
    const JsonValue* find(std::string_view name) const;
};

/// Parse one JSON document; trailing non-whitespace is an error.
JsonValue parse_json(std::string_view text);

}  // namespace vbatch::obs
