// STREAM-triad bandwidth probe and roofline arithmetic.
//
// The roofline model explains a memory-bound kernel's throughput as
// bandwidth * arithmetic intensity. The byte models in core/bytes.hpp
// give the numerator of the intensity; this header anchors the ceiling:
// a measured STREAM-triad bandwidth for host kernels, or a caller-
// provided roof (e.g. the device model's effective bandwidth) for
// modeled-device kernel families.
//
// Environment:
//   VBATCH_ROOF_GBS  positive number = skip the probe and use this
//                    ceiling (deterministic CI runs, cross-machine
//                    comparisons)
#pragma once

#include "base/types.hpp"

namespace vbatch::obs {

/// Result of one triad sweep a[i] = b[i] + s * c[i] (best-of-reps).
struct TriadResult {
    double seconds = 0.0;  ///< best single-sweep time
    double bytes = 0.0;    ///< bytes moved per sweep (3 streams)
    double gbs() const noexcept {
        return seconds > 0.0 ? bytes / seconds * 1e-9 : 0.0;
    }
};

/// Run the STREAM triad over `elements` doubles, `repetitions` timed
/// sweeps after one untimed warm-up (page faults, cache state), keeping
/// the best. `threads` = 0 means hardware_concurrency; the probe spawns
/// raw std::threads so it stays independent of the vbatch ThreadPool it
/// is used to calibrate.
TriadResult stream_triad(size_type elements, int repetitions,
                         unsigned threads = 0);

/// The machine's bandwidth ceiling in GB/s: VBATCH_ROOF_GBS when set,
/// else a cached one-shot triad probe. Publishes the value as gauge
/// "roofline.triad_gbs" on every call (so it survives Registry::clear).
double machine_roof_gbs();

/// flops per byte; 0 when no bytes were moved.
inline double arithmetic_intensity(double flops, double bytes) noexcept {
    return bytes > 0.0 ? flops / bytes : 0.0;
}

/// Achieved fraction of a bandwidth ceiling; 0 when no roof is known.
inline double fraction_of_roof(double gbs, double roof_gbs) noexcept {
    return roof_gbs > 0.0 ? gbs / roof_gbs : 0.0;
}

}  // namespace vbatch::obs
