// Process-wide metrics registry: named counters and gauges, plus
// per-kernel-family aggregation of the SIMT emulator's KernelStats.
//
// The instrumented pipeline feeds this registry unconditionally (the cost
// is one mutex-protected map update per *batch launch*, never per matrix
// element), so any consumer -- the bench JSON exporter, a test, an
// embedding application -- can snapshot a consistent view of what ran:
// how many factorization launches, over how many problems, with which
// instruction/transaction mix, and how much wall/modeled-device time the
// phases consumed.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "base/types.hpp"
#include "simt/kernel_stats.hpp"

namespace vbatch::obs {

class JsonWriter;

/// Aggregated emulation counters for one kernel family
/// (e.g. "getrf", "gauss_huard", "trsv", "extraction").
struct KernelFamilyStats {
    simt::KernelStats stats;       ///< summed (extrapolated) counters
    size_type launches = 0;        ///< batch launches recorded
    size_type problems = 0;        ///< batch entries those launches covered
    double modeled_seconds = 0.0;  ///< accumulated device-model time (0 if
                                   ///< the call site didn't model time)
};

class Registry {
public:
    static Registry& global();

    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Add `delta` to a named counter (created at zero on first use).
    void add(std::string_view counter, double delta);

    /// Set a named gauge to `value` (last write wins).
    void set(std::string_view gauge, double value);

    /// Fold one batch launch's counters into a kernel family.
    void record_kernel(std::string_view family,
                       const simt::KernelStats& stats, size_type problems,
                       double modeled_seconds = 0.0);

    // -- snapshots (copies; safe to use while recording continues) ----
    std::map<std::string, double, std::less<>> counters() const;
    std::map<std::string, double, std::less<>> gauges() const;
    std::map<std::string, KernelFamilyStats, std::less<>> kernels() const;

    double counter_value(std::string_view name) const;

    /// Reset every counter/gauge/family (tests, repeated bench runs).
    void clear();

    /// Emit {"counters": {...}, "gauges": {...}, "kernel_stats": {...}}.
    void write_json(std::ostream& os) const;
    std::string to_json() const;

    /// Write the same three members into an already-open JSON object
    /// (used by BenchReport to splice the snapshot into its document).
    void write_json_members(JsonWriter& json) const;

private:
    struct Impl;
    Impl* impl_;
};

/// Shorthand for Registry::global().add(...).
inline void count(std::string_view counter, double delta = 1.0) {
    Registry::global().add(counter, delta);
}

}  // namespace vbatch::obs
