// Process-wide metrics registry: named counters and gauges, plus
// per-kernel-family aggregation of the SIMT emulator's KernelStats.
//
// The instrumented pipeline feeds this registry unconditionally (the cost
// is one mutex-protected map update per *batch launch*, never per matrix
// element), so any consumer -- the bench JSON exporter, a test, an
// embedding application -- can snapshot a consistent view of what ran:
// how many factorization launches, over how many problems, with which
// instruction/transaction mix, and how much wall/modeled-device time the
// phases consumed.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "base/types.hpp"
#include "simt/kernel_stats.hpp"

namespace vbatch::obs {

class JsonWriter;

/// Aggregated emulation counters for one kernel family
/// (e.g. "getrf", "gauss_huard", "trsv", "extraction").
struct KernelFamilyStats {
    simt::KernelStats stats;       ///< summed (extrapolated) counters
    size_type launches = 0;        ///< batch launches recorded
    size_type problems = 0;        ///< batch entries those launches covered
    double modeled_seconds = 0.0;  ///< accumulated device-model time (0 if
                                   ///< the call site didn't model time)
};

/// Roofline aggregation for one kernel family: canonical flops
/// (core/flops.hpp) and bytes (core/bytes.hpp) against measured (or
/// modeled) seconds. The derived quantities -- GFLOPS, effective GB/s,
/// arithmetic intensity, fraction of the bandwidth roof -- are what the
/// roofline table in vbatch_prof and the bench JSON report.
struct TrafficStats {
    double flops = 0.0;
    double bytes = 0.0;
    double seconds = 0.0;
    /// Family-specific bandwidth ceiling in GB/s (e.g. the device
    /// model's for emulated kernels); 0 = use the machine triad gauge.
    double roof_gbs = 0.0;
    size_type calls = 0;
    size_type problems = 0;

    double gflops() const noexcept {
        return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
    }
    double bandwidth_gbs() const noexcept {
        return seconds > 0.0 ? bytes / seconds * 1e-9 : 0.0;
    }
    double arithmetic_intensity() const noexcept {
        return bytes > 0.0 ? flops / bytes : 0.0;
    }
    double fraction_of_roof(double fallback_roof_gbs = 0.0) const noexcept {
        const double roof = roof_gbs > 0.0 ? roof_gbs : fallback_roof_gbs;
        return roof > 0.0 ? bandwidth_gbs() / roof : 0.0;
    }
};

/// Aggregated hardware-counter deltas for one PerfRegion name
/// (obs/perf_counters.hpp). seconds accumulates even in the
/// steady-clock-only fallback; hardware_calls says how many of the
/// calls carried real counters.
struct PerfRegionStats {
    size_type calls = 0;
    size_type hardware_calls = 0;
    double seconds = 0.0;
    double cycles = 0.0;
    double instructions = 0.0;
    double l1d_misses = 0.0;
    double llc_misses = 0.0;
    double branch_misses = 0.0;
};

/// Snapshot of the thread pool's utilization telemetry (produced by
/// ThreadPool::telemetry(); plumbed here through a function pointer so
/// obs/ never links against base/).
struct PoolTelemetry {
    size_type workers = 0;  ///< pool size including the calling thread
    bool armed = false;     ///< was VBATCH_POOL_STATS collection on?
    double wall_seconds = 0.0;  ///< since pool construction
    double busy_seconds = 0.0;  ///< summed across all participants
    double idle_seconds = 0.0;  ///< workers * wall - busy (>= 0)
    double utilization = 0.0;   ///< busy / (workers * wall)
    size_type dispatches = 0;   ///< parallel_for calls that woke workers
    size_type inline_runs = 0;  ///< calls served by the inline fast path
    // Work-stealing scheduler counters (zero under VBATCH_SCHED=sharing).
    size_type steals = 0;       ///< range/task steals that succeeded
    size_type steal_fails = 0;  ///< steal attempts losing a CAS race
    size_type splits = 0;       ///< lazy binary half-range splits
    size_type parks = 0;        ///< times a thread slept for lack of work
    /// Chunk imbalance of a dispatched job: (max iterations claimed by
    /// one participant) / (fair share). 1.0 = perfectly balanced.
    double mean_imbalance = 0.0;
    double last_imbalance = 0.0;
};

using PoolTelemetrySource = PoolTelemetry (*)();

class Registry {
public:
    static Registry& global();

    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Add `delta` to a named counter (created at zero on first use).
    void add(std::string_view counter, double delta);

    /// Set a named gauge to `value` (last write wins).
    void set(std::string_view gauge, double value);

    /// Fold one batch launch's counters into a kernel family.
    void record_kernel(std::string_view family,
                       const simt::KernelStats& stats, size_type problems,
                       double modeled_seconds = 0.0);

    /// Fold one measured (or modeled) episode of a kernel family into
    /// its roofline aggregation. `roof_gbs` != 0 pins the family to a
    /// specific bandwidth ceiling (last nonzero write wins).
    void record_traffic(std::string_view family, double flops, double bytes,
                        double seconds, size_type problems = 0,
                        double roof_gbs = 0.0);

    /// Fold one PerfRegion delta into its per-region aggregation.
    void record_perf(std::string_view region, const PerfRegionStats& delta);

    /// Register (or clear, with nullptr) the callback that snapshots
    /// the thread pool's telemetry; the global ThreadPool installs
    /// itself here so bench JSON can embed pool utilization without a
    /// link-time obs -> base dependency.
    void set_pool_telemetry_source(PoolTelemetrySource source);

    /// Current pool telemetry; all-zero when no source is registered.
    PoolTelemetry pool_telemetry() const;

    // -- snapshots (copies; safe to use while recording continues) ----
    std::map<std::string, double, std::less<>> counters() const;
    std::map<std::string, double, std::less<>> gauges() const;
    std::map<std::string, KernelFamilyStats, std::less<>> kernels() const;
    std::map<std::string, TrafficStats, std::less<>> traffic() const;
    std::map<std::string, PerfRegionStats, std::less<>> perf() const;

    double counter_value(std::string_view name) const;

    /// Reset every counter/gauge/family (tests, repeated bench runs).
    void clear();

    /// Emit {"counters": {...}, "gauges": {...}, "kernel_stats": {...},
    /// "traffic": {...}, "perf": {...}, "pool": {...}}.
    void write_json(std::ostream& os) const;
    std::string to_json() const;

    /// Write the same members into an already-open JSON object
    /// (used by BenchReport to splice the snapshot into its document).
    void write_json_members(JsonWriter& json) const;

private:
    struct Impl;
    Impl* impl_;
};

/// Shorthand for Registry::global().add(...).
inline void count(std::string_view counter, double delta = 1.0) {
    Registry::global().add(counter, delta);
}

}  // namespace vbatch::obs
