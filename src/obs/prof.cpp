#include "obs/prof.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <vector>

namespace vbatch::obs::prof {

namespace {

/// printf-append into a std::string (report building).
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
    char buf[512];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n > 0) {
        out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                              sizeof(buf) - 1));
    }
}

double num(const JsonValue* v) {
    return v != nullptr && v->is_number() ? v->number : 0.0;
}

double member_num(const JsonValue& obj, const char* key) {
    return num(obj.find(key));
}

std::string member_str(const JsonValue& obj, const char* key) {
    const JsonValue* v = obj.find(key);
    return v != nullptr && v->is_string() ? v->string : std::string();
}

/// Signed percent change b vs a; 0 when a == 0.
double pct_change(double a, double b) {
    return a != 0.0 ? (b - a) / a * 100.0 : 0.0;
}

void render_phases(std::string& out, const JsonValue& doc) {
    const JsonValue* phases = doc.find("phases");
    if (phases == nullptr || !phases->is_array() || phases->items.empty()) {
        return;
    }
    const double wall = member_num(doc, "wall_seconds");
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& p : phases->items) {
        if (p.is_object()) {
            rows.emplace_back(member_str(p, "name"),
                              member_num(p, "seconds"));
        }
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    out += "phases (seconds, % of wall):\n";
    for (const auto& [name, seconds] : rows) {
        appendf(out, "  %-28s %10.4f  %5.1f%%\n", name.c_str(), seconds,
                wall > 0.0 ? seconds / wall * 100.0 : 0.0);
    }
    out += "\n";
}

void render_roofline(std::string& out, const JsonValue& doc) {
    const JsonValue* traffic = doc.find("traffic");
    if (traffic == nullptr || !traffic->is_object() ||
        traffic->members.empty()) {
        return;
    }
    out += "roofline (per kernel family):\n";
    appendf(out, "  %-28s %8s %10s %10s %8s %7s %9s\n", "family", "calls",
            "GFLOPS", "GB/s", "AI", "%roof", "roof GB/s");
    for (const auto& [family, entry] : traffic->members) {
        if (!entry.is_object()) {
            continue;
        }
        appendf(out, "  %-28s %8.0f %10.2f %10.2f %8.3f %6.1f%% %9.1f\n",
                family.c_str(), member_num(entry, "calls"),
                member_num(entry, "gflops"),
                member_num(entry, "bandwidth_gbs"),
                member_num(entry, "arithmetic_intensity"),
                member_num(entry, "fraction_of_roof") * 100.0,
                member_num(entry, "roof_gbs"));
    }
    out += "\n";
}

void render_pool(std::string& out, const JsonValue& doc) {
    const JsonValue* pool = doc.find("pool");
    if (pool == nullptr || !pool->is_object()) {
        return;
    }
    const JsonValue* armed = pool->find("armed");
    const bool was_armed = armed != nullptr && armed->boolean;
    appendf(out,
            "pool: %d thread(s), %lu dispatched / %lu inline "
            "parallel_for calls\n",
            static_cast<int>(member_num(*pool, "workers")),
            static_cast<unsigned long>(member_num(*pool, "dispatches")),
            static_cast<unsigned long>(member_num(*pool, "inline_runs")));
    // Steal-scheduler counters (absent from pre-scheduler baselines, so
    // probe before rendering -- --diff must keep working against them).
    if (pool->find("steals") != nullptr) {
        appendf(out,
                "  stealing: %lu steals / %lu failed, %lu splits, "
                "%lu parks\n",
                static_cast<unsigned long>(member_num(*pool, "steals")),
                static_cast<unsigned long>(
                    member_num(*pool, "steal_fails")),
                static_cast<unsigned long>(member_num(*pool, "splits")),
                static_cast<unsigned long>(member_num(*pool, "parks")));
    }
    if (was_armed) {
        appendf(out,
                "  utilization %5.1f%%  busy %.3fs  idle %.3fs  "
                "imbalance mean %.2fx last %.2fx\n",
                member_num(*pool, "utilization") * 100.0,
                member_num(*pool, "busy_seconds"),
                member_num(*pool, "idle_seconds"),
                member_num(*pool, "mean_imbalance"),
                member_num(*pool, "last_imbalance"));
    } else {
        out += "  (telemetry disarmed; set VBATCH_POOL_STATS=1 for "
               "busy/idle attribution)\n";
    }
    out += "\n";
}

/// Multi-tenant service telemetry: the "service." counter families the
/// engine and its plan cache publish (see src/service/). Rendered only
/// when the document carries at least one of them, so non-service bench
/// reports stay unchanged.
void render_service(std::string& out, const JsonValue& doc) {
    const JsonValue* counters = doc.find("counters");
    if (counters == nullptr || !counters->is_object()) {
        return;
    }
    const auto counter = [&](const char* key) {
        return member_num(*counters, key);
    };
    bool any = false;
    for (const auto& [name, value] : counters->members) {
        if (name.rfind("service.", 0) == 0) {
            any = true;
            break;
        }
    }
    if (!any) {
        return;
    }
    const double builds = counter("service.cache.builds");
    const double reuses = counter("service.cache.reuses");
    const double lookups = builds + reuses;
    appendf(out, "service: %.0f session(s) opened\n",
            counter("service.sessions"));
    appendf(out,
            "  plan cache: %.0f build(s), %.0f reuse(s), %.0f "
            "eviction(s), hit rate %5.1f%%\n",
            builds, reuses, counter("service.cache.evictions"),
            lookups > 0.0 ? reuses / lookups * 100.0 : 0.0);
    appendf(out,
            "  queue: %.0f submitted, %.0f completed, %.0f rejected\n",
            counter("service.queue.submitted"),
            counter("service.queue.completed"),
            counter("service.queue.rejected"));
    out += "\n";
}

/// Pivoting-free fast-path telemetry: the "block_jacobi.rbt_*" counter
/// family a PivotScheme::rbt setup publishes (transformed = blocks whose
/// factors are the butterfly-transformed pivot-free LU, monitored =
/// blocks the degeneracy scan flagged, fellback = blocks refactorized
/// with implicit pivoting off the fast path). Rendered only when the
/// document carries the family, so pivoted bench reports stay unchanged.
void render_rbt(std::string& out, const JsonValue& doc) {
    const JsonValue* counters = doc.find("counters");
    if (counters == nullptr || !counters->is_object() ||
        counters->find("block_jacobi.rbt_transformed") == nullptr) {
        return;
    }
    const auto counter = [&](const char* key) {
        return member_num(*counters, key);
    };
    const double transformed = counter("block_jacobi.rbt_transformed");
    const double fellback = counter("block_jacobi.rbt_fellback");
    const double total = transformed + fellback;
    appendf(out,
            "rbt fast path: %.0f of %.0f block(s) pivot-free "
            "(%5.1f%%), %.0f monitored, %.0f refactorized pivoted\n\n",
            transformed, total,
            total > 0.0 ? transformed / total * 100.0 : 0.0,
            counter("block_jacobi.rbt_monitored"), fellback);
}

void render_perf(std::string& out, const JsonValue& doc,
                 const Options& opts) {
    const JsonValue* perf = doc.find("perf");
    if (perf == nullptr || !perf->is_object() || perf->members.empty()) {
        return;
    }
    std::vector<std::pair<std::string, const JsonValue*>> rows;
    for (const auto& [region, entry] : perf->members) {
        if (entry.is_object()) {
            rows.emplace_back(region, &entry);
        }
    }
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return member_num(*a.second, "seconds") >
               member_num(*b.second, "seconds");
    });
    if (rows.size() > static_cast<std::size_t>(std::max(opts.top_n, 1))) {
        rows.resize(static_cast<std::size_t>(std::max(opts.top_n, 1)));
    }
    out += "perf regions (by seconds; misses per kilo-instruction):\n";
    appendf(out, "  %-28s %8s %10s %6s %8s %8s %8s\n", "region", "calls",
            "seconds", "IPC", "L1D/kI", "LLC/kI", "BR/kI");
    for (const auto& [region, entry] : rows) {
        const double instructions = member_num(*entry, "instructions");
        const double per_ki =
            instructions > 0.0 ? 1000.0 / instructions : 0.0;
        const bool hw = member_num(*entry, "hardware_calls") > 0.0;
        appendf(out, "  %-28s %8.0f %10.4f %6.2f %8.2f %8.2f %8.2f%s\n",
                region.c_str(), member_num(*entry, "calls"),
                member_num(*entry, "seconds"), member_num(*entry, "ipc"),
                member_num(*entry, "l1d_misses") * per_ki,
                member_num(*entry, "llc_misses") * per_ki,
                member_num(*entry, "branch_misses") * per_ki,
                hw ? "" : "  [no hw counters]");
    }
    out += "\n";
}

/// Mean of a series' y values (series points are [x, y] pairs).
double series_mean(const JsonValue& series) {
    const JsonValue* points = series.find("points");
    if (points == nullptr || !points->is_array() || points->items.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& p : points->items) {
        if (p.is_array() && p.items.size() == 2 && p.items[1].is_number()) {
            sum += p.items[1].number;
            ++n;
        }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::map<std::string, const JsonValue*> series_by_name(
    const JsonValue& doc) {
    std::map<std::string, const JsonValue*> out;
    const JsonValue* series = doc.find("series");
    if (series != nullptr && series->is_array()) {
        for (const auto& s : series->items) {
            if (s.is_object()) {
                out.emplace(member_str(s, "name"), &s);
            }
        }
    }
    return out;
}

std::map<std::string, double> phases_by_name(const JsonValue& doc) {
    std::map<std::string, double> out;
    const JsonValue* phases = doc.find("phases");
    if (phases != nullptr && phases->is_array()) {
        for (const auto& p : phases->items) {
            if (p.is_object()) {
                out[member_str(p, "name")] += member_num(p, "seconds");
            }
        }
    }
    return out;
}

}  // namespace

std::string render_report(const JsonValue& doc, const Options& opts) {
    std::string out;
    appendf(out, "== bench report: %s ==\n",
            member_str(doc, "name").c_str());
    appendf(out, "wall: %.3f s\n\n", member_num(doc, "wall_seconds"));
    render_phases(out, doc);
    render_roofline(out, doc);
    render_pool(out, doc);
    render_service(out, doc);
    render_rbt(out, doc);
    render_perf(out, doc, opts);
    return out;
}

std::string render_trace(std::string_view ndjson, const Options& opts) {
    struct RegionAgg {
        std::size_t calls = 0;
        double total_us = 0.0;
        double max_us = 0.0;
    };
    std::map<std::string, RegionAgg> regions;
    std::size_t events = 0, malformed = 0;
    std::size_t pos = 0;
    while (pos < ndjson.size()) {
        std::size_t eol = ndjson.find('\n', pos);
        if (eol == std::string_view::npos) {
            eol = ndjson.size();
        }
        const std::string_view line = ndjson.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.find_first_not_of(" \t\r") == std::string_view::npos) {
            continue;
        }
        JsonValue event;
        try {
            event = parse_json(line);
        } catch (const JsonError&) {
            ++malformed;
            continue;
        }
        ++events;
        if (member_str(event, "type") != "region") {
            continue;
        }
        auto& agg = regions[member_str(event, "name")];
        const double dur = member_num(event, "dur_us");
        agg.calls += 1;
        agg.total_us += dur;
        agg.max_us = std::max(agg.max_us, dur);
    }
    std::vector<std::pair<std::string, RegionAgg>> rows(regions.begin(),
                                                        regions.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.second.total_us > b.second.total_us;
    });
    std::string out;
    appendf(out, "trace: %zu events (%zu malformed lines skipped), "
                 "%zu distinct regions\n",
            events, malformed, rows.size());
    const auto keep = static_cast<std::size_t>(std::max(opts.top_n, 1));
    if (rows.size() > keep) {
        rows.resize(keep);
    }
    appendf(out, "top regions (by total time):\n");
    appendf(out, "  %-28s %8s %12s %12s %12s\n", "region", "calls",
            "total ms", "mean us", "max us");
    for (const auto& [name, agg] : rows) {
        appendf(out, "  %-28s %8zu %12.3f %12.2f %12.2f\n", name.c_str(),
                agg.calls, agg.total_us * 1e-3,
                agg.calls > 0 ? agg.total_us / static_cast<double>(agg.calls)
                              : 0.0,
                agg.max_us);
    }
    return out;
}

std::string render_diff(const JsonValue& base, const JsonValue& current) {
    std::string out;
    appendf(out, "== diff: %s -> %s ==\n", member_str(base, "name").c_str(),
            member_str(current, "name").c_str());
    const double wall_a = member_num(base, "wall_seconds");
    const double wall_b = member_num(current, "wall_seconds");
    appendf(out, "wall: %.3f s -> %.3f s (%+.1f%%)\n\n", wall_a, wall_b,
            pct_change(wall_a, wall_b));

    const auto phases_a = phases_by_name(base);
    const auto phases_b = phases_by_name(current);
    if (!phases_a.empty() || !phases_b.empty()) {
        out += "phases:\n";
        for (const auto& [name, sec_a] : phases_a) {
            const auto it = phases_b.find(name);
            if (it == phases_b.end()) {
                appendf(out, "  %-28s %10.4f -> (gone)\n", name.c_str(),
                        sec_a);
            } else {
                appendf(out, "  %-28s %10.4f -> %10.4f  (%+.1f%%)\n",
                        name.c_str(), sec_a, it->second,
                        pct_change(sec_a, it->second));
            }
        }
        for (const auto& [name, sec_b] : phases_b) {
            if (phases_a.find(name) == phases_a.end()) {
                appendf(out, "  %-28s     (new) -> %10.4f\n", name.c_str(),
                        sec_b);
            }
        }
        out += "\n";
    }

    const auto series_a = series_by_name(base);
    const auto series_b = series_by_name(current);
    if (!series_a.empty() || !series_b.empty()) {
        out += "series (mean value):\n";
        for (const auto& [name, sa] : series_a) {
            const auto it = series_b.find(name);
            if (it == series_b.end()) {
                appendf(out, "  %-40s (gone)\n", name.c_str());
                continue;
            }
            const double mean_a = series_mean(*sa);
            const double mean_b = series_mean(*it->second);
            appendf(out, "  %-40s %12.4g -> %12.4g  (%+.1f%%) %s\n",
                    name.c_str(), mean_a, mean_b,
                    pct_change(mean_a, mean_b),
                    member_str(*sa, "unit").c_str());
        }
        for (const auto& [name, sb] : series_b) {
            if (series_a.find(name) == series_a.end()) {
                appendf(out, "  %-40s (new) mean %12.4g %s\n", name.c_str(),
                        series_mean(*sb), member_str(*sb, "unit").c_str());
            }
        }
        out += "\n";
    }

    const JsonValue* traffic_a = base.find("traffic");
    const JsonValue* traffic_b = current.find("traffic");
    if (traffic_b != nullptr && traffic_b->is_object() &&
        !traffic_b->members.empty()) {
        out += "roofline families (GB/s):\n";
        for (const auto& [family, entry_b] : traffic_b->members) {
            const JsonValue* entry_a =
                traffic_a != nullptr ? traffic_a->find(family) : nullptr;
            const double gbs_b = member_num(entry_b, "bandwidth_gbs");
            if (entry_a == nullptr) {
                appendf(out, "  %-28s (new) %10.2f GB/s (%.1f%% of roof)\n",
                        family.c_str(), gbs_b,
                        member_num(entry_b, "fraction_of_roof") * 100.0);
            } else {
                const double gbs_a = member_num(*entry_a, "bandwidth_gbs");
                appendf(out, "  %-28s %10.2f -> %10.2f  (%+.1f%%)\n",
                        family.c_str(), gbs_a, gbs_b,
                        pct_change(gbs_a, gbs_b));
            }
        }
    }
    return out;
}

}  // namespace vbatch::obs::prof
