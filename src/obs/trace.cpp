#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/json.hpp"

namespace vbatch::obs {

namespace {

using clock_type = std::chrono::steady_clock;

struct ThreadBuffer {
    std::mutex mutex;  // owner thread writes; exporters read
    int tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
    std::uint32_t depth = 0;
    size_type dropped = 0;
};

const char* phase_letter(EventPhase phase) {
    switch (phase) {
    case EventPhase::complete: return "X";
    case EventPhase::instant: return "i";
    case EventPhase::counter: return "C";
    }
    return "?";
}

const char* phase_word(EventPhase phase) {
    switch (phase) {
    case EventPhase::complete: return "region";
    case EventPhase::instant: return "instant";
    case EventPhase::counter: return "counter";
    }
    return "?";
}

}  // namespace

struct Tracer::Impl {
    clock_type::time_point epoch = clock_type::now();
    mutable std::mutex registry_mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    int next_tid = 1;

    ThreadBuffer& local() {
        thread_local ThreadBuffer* buffer = nullptr;
        if (buffer == nullptr) {
            auto owned = std::make_shared<ThreadBuffer>();
            std::lock_guard<std::mutex> lock(registry_mutex);
            owned->tid = next_tid++;
            buffers.push_back(owned);
            buffer = owned.get();
        }
        return *buffer;
    }
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
    // Leaked singleton: worker threads and atexit hooks may record or
    // export after static destructors would have run.
    static Tracer* tracer = new Tracer();
    return *tracer;
}

void Tracer::set_enabled(bool on) {
    if (on) {
        instance();  // materialize the epoch before the first event
    }
    detail::g_trace_on.store(on, std::memory_order_relaxed);
}

double Tracer::now_us() const noexcept {
    return std::chrono::duration<double, std::micro>(clock_type::now() -
                                                     impl_->epoch)
        .count();
}

void Tracer::record(const TraceEvent& event) {
    if (!trace_on()) {
        return;
    }
    auto& buffer = impl_->local();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (buffer.events.size() >= max_events_per_thread) {
        ++buffer.dropped;
        return;
    }
    buffer.events.push_back(event);
}

void Tracer::set_thread_name(std::string name) {
    auto& buffer = impl_->local();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.name = std::move(name);
}

std::uint32_t Tracer::enter_region() noexcept {
    return impl_->local().depth++;
}

void Tracer::exit_region() noexcept {
    auto& buffer = impl_->local();
    if (buffer.depth > 0) {
        --buffer.depth;
    }
}

std::vector<Tracer::ThreadTrace> Tracer::snapshot() const {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(impl_->registry_mutex);
        buffers = impl_->buffers;
    }
    std::vector<ThreadTrace> out;
    out.reserve(buffers.size());
    for (const auto& buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        ThreadTrace trace;
        trace.tid = buffer->tid;
        trace.name = buffer->name;
        trace.events = buffer->events;
        trace.dropped = buffer->dropped;
        out.push_back(std::move(trace));
    }
    return out;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
    const auto threads = snapshot();
    JsonWriter json(os);
    json.begin_object();
    json.key("traceEvents");
    json.begin_array();
    for (const auto& thread : threads) {
        if (!thread.name.empty()) {
            json.begin_object();
            json.key("name");
            json.value("thread_name");
            json.key("ph");
            json.value("M");
            json.key("pid");
            json.value(std::int64_t{1});
            json.key("tid");
            json.value(static_cast<std::int64_t>(thread.tid));
            json.key("args");
            json.begin_object();
            json.key("name");
            json.value(thread.name);
            json.end_object();
            json.end_object();
        }
        for (const auto& event : thread.events) {
            json.begin_object();
            json.key("name");
            json.value(event.name);
            json.key("ph");
            json.value(phase_letter(event.phase));
            json.key("pid");
            json.value(std::int64_t{1});
            json.key("tid");
            json.value(static_cast<std::int64_t>(thread.tid));
            json.key("ts");
            json.value(event.ts_us);
            if (event.phase == EventPhase::complete) {
                json.key("dur");
                json.value(event.dur_us);
                json.key("args");
                json.begin_object();
                json.key("depth");
                json.value(static_cast<std::int64_t>(event.depth));
                json.end_object();
            } else if (event.phase == EventPhase::counter) {
                json.key("args");
                json.begin_object();
                json.key("value");
                json.value(event.value);
                json.end_object();
            }
            json.end_object();
        }
    }
    json.end_array();
    json.key("displayTimeUnit");
    json.value("ms");
    json.end_object();
    os << "\n";
}

void Tracer::write_ndjson(std::ostream& os) const {
    for (const auto& thread : snapshot()) {
        for (const auto& event : thread.events) {
            JsonWriter json(os);
            json.begin_object();
            json.key("type");
            json.value(phase_word(event.phase));
            json.key("name");
            json.value(event.name);
            json.key("tid");
            json.value(static_cast<std::int64_t>(thread.tid));
            if (!thread.name.empty()) {
                json.key("thread");
                json.value(thread.name);
            }
            json.key("ts_us");
            json.value(event.ts_us);
            if (event.phase == EventPhase::complete) {
                json.key("dur_us");
                json.value(event.dur_us);
                json.key("depth");
                json.value(static_cast<std::int64_t>(event.depth));
            } else if (event.phase == EventPhase::counter) {
                json.key("value");
                json.value(event.value);
            }
            json.end_object();
            os << "\n";
        }
    }
}

bool Tracer::write_file(const std::string& path, TraceFormat format) const {
    std::ofstream os(path);
    if (!os) {
        return false;
    }
    if (format == TraceFormat::chrome) {
        write_chrome_trace(os);
    } else {
        write_ndjson(os);
    }
    return os.good();
}

void Tracer::clear() {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(impl_->registry_mutex);
        buffers = impl_->buffers;
    }
    for (const auto& buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        buffer->events.clear();
        buffer->dropped = 0;
    }
}

size_type Tracer::total_dropped() const {
    size_type dropped = 0;
    for (const auto& thread : snapshot()) {
        dropped += thread.dropped;
    }
    return dropped;
}

void set_thread_name(std::string name) {
    Tracer::instance().set_thread_name(std::move(name));
}

namespace {

/// Arms tracing from VBATCH_TRACE at startup and schedules the export.
struct TraceEnvProbe {
    TraceEnvProbe() {
        const char* mode = std::getenv("VBATCH_TRACE");
        if (mode == nullptr || mode[0] == '\0' ||
            (mode[0] == '0' && mode[1] == '\0')) {
            return;
        }
        Tracer::set_enabled(true);
        set_thread_name("main");
        std::atexit([] {
            const char* mode_at_exit = std::getenv("VBATCH_TRACE");
            const bool ndjson = mode_at_exit != nullptr &&
                                std::strcmp(mode_at_exit, "ndjson") == 0;
            const char* file = std::getenv("VBATCH_TRACE_FILE");
            const std::string path =
                file != nullptr && file[0] != '\0'
                    ? std::string(file)
                    : (ndjson ? "vbatch_trace.ndjson" : "vbatch_trace.json");
            const auto& tracer = Tracer::instance();
            if (tracer.write_file(path, ndjson ? TraceFormat::ndjson
                                               : TraceFormat::chrome)) {
                std::fprintf(stderr, "[vbatch-obs] trace written to %s\n",
                             path.c_str());
            } else {
                std::fprintf(stderr,
                             "[vbatch-obs] failed to write trace to %s\n",
                             path.c_str());
            }
        });
    }
} trace_env_probe;

}  // namespace

}  // namespace vbatch::obs
