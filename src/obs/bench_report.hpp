// Structured benchmark output: every figure/table benchmark can emit a
// machine-readable BENCH_<name>.json next to its human-readable table,
// giving the repository a perf trajectory that scripts and CI can diff.
//
// Schema (schema_version 2; full key-by-key documentation in DESIGN.md):
//   {
//     "schema_version": 2,
//     "name": "fig4_getrf_batch",
//     "config":  { "<key>": <string|number|bool>, ... },
//     "phases":  [ { "name": "...", "seconds": <number> }, ... ],
//     "series":  [ { "name": "...", "x_label": "...", "unit": "...",
//                    "points": [ [x, y], ... ] }, ... ],
//     "counters": { ... }, "gauges": { ... },          // registry snapshot
//     "kernel_stats": { "<family>": { "launches": n, "problems": n,
//                        "modeled_seconds": s, "<counter>": n, ... } },
//     "traffic": { "<family>": { "flops": f, "bytes": b, "seconds": s,
//                   "calls": n, "problems": n, "roof_gbs": r, "gflops": g,
//                   "bandwidth_gbs": g, "arithmetic_intensity": ai,
//                   "fraction_of_roof": fr } },
//     "perf":    { "<region>": { "calls": n, "hardware_calls": n,
//                   "seconds": s, "cycles": c, "instructions": i,
//                   "ipc": x, "l1d_misses": n, "llc_misses": n,
//                   "branch_misses": n } },
//     "pool":    { "workers": n, "armed": b, "wall_seconds": s,
//                  "busy_seconds": s, "idle_seconds": s, "utilization": u,
//                  "dispatches": n, "inline_runs": n,
//                  "mean_imbalance": x, "last_imbalance": x },
//     "wall_seconds": <number>
//   }
// v1 -> v2: added the traffic/perf/pool objects (roofline accounting,
// hardware counters, thread-pool telemetry).
//
// Emission is gated by VBATCH_BENCH_JSON: unset/"0" = off, "1" = write
// into the current directory, any other value = output directory.
#pragma once

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "base/timer.hpp"
#include "base/types.hpp"

namespace vbatch::obs {

class BenchReport {
public:
    using ConfigValue = std::variant<std::string, double, bool>;

    /// `name` names the artifact: BENCH_<name>.json.
    explicit BenchReport(std::string name);

    /// True when VBATCH_BENCH_JSON asks for structured output.
    static bool enabled();

    // -- builders -----------------------------------------------------
    void config(std::string key, std::string value);
    void config(std::string key, const char* value);
    void config(std::string key, double value);
    void config(std::string key, index_type value);
    void config(std::string key, size_type value);
    void config(std::string key, bool value);

    /// Record a named phase's wall-clock cost (accumulates on repeat).
    void phase(std::string name, double seconds);

    /// Record one data series (e.g. one kernel's GFLOPS-vs-batch curve).
    void series(std::string name, std::string x_label,
                std::vector<std::pair<double, double>> points,
                std::string unit = "gflops");

    const std::string& name() const noexcept { return name_; }

    /// Serialize (includes a metrics-registry snapshot and the wall time
    /// since construction).
    std::string to_json() const;

    /// Write BENCH_<name>.json when enabled(); prints the path on
    /// success. Returns true iff a file was written.
    bool write_if_enabled() const;

private:
    struct Phase {
        std::string name;
        double seconds = 0.0;
    };
    struct Series {
        std::string name;
        std::string x_label;
        std::string unit;
        std::vector<std::pair<double, double>> points;
    };

    std::string name_;
    Timer timer_;
    std::vector<std::pair<std::string, ConfigValue>> config_;
    std::vector<Phase> phases_;
    std::vector<Series> series_;
};

}  // namespace vbatch::obs
