// Analysis core of the vbatch_prof CLI: turns BENCH_<name>.json
// documents and trace NDJSON streams into human-readable reports.
//
// Kept as a library (pure functions over parsed JsonValue / text) so
// tests can feed canned documents and assert on the rendered output;
// tools/vbatch_prof.cpp is only argument parsing + file IO around this.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace vbatch::obs::prof {

struct Options {
    int top_n = 20;  ///< rows kept in the top-regions tables
};

/// Render one bench report: phase summary, roofline table (GFLOPS,
/// GB/s, arithmetic intensity, % of roof per kernel family), pool
/// utilization, and hardware-counter regions. Tolerant of missing
/// sections (older schema versions render what they have).
std::string render_report(const JsonValue& doc, const Options& opts = {});

/// Summarize a trace NDJSON stream (obs/trace.hpp export): top-N
/// regions by total duration with call counts. Malformed lines are
/// counted and skipped, never fatal.
std::string render_trace(std::string_view ndjson, const Options& opts = {});

/// A/B comparison of two bench reports for regression triage: wall
/// time, per-phase seconds, per-series values and roofline families,
/// matched by name; entries present on only one side are called out.
std::string render_diff(const JsonValue& base, const JsonValue& current);

}  // namespace vbatch::obs::prof
