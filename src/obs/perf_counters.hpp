// Hardware performance counters via Linux perf_event_open, with a
// scoped-region API mirroring the tracer (obs/trace.hpp).
//
// A PerfRegion brackets a scope and folds the counter deltas (cycles,
// instructions, L1D read misses, LLC misses, branch misses) plus the
// wall time into the metrics registry under the region's name. Sampling
// is dormant unless VBATCH_PERF is set (or a test arms it
// programmatically); the dormant check is one relaxed atomic load +
// branch, exactly like TraceRegion.
//
// Graceful degradation: when the kernel forbids counters
// (perf_event_paranoid too strict, seccomp, non-Linux build), every
// region still records its wall seconds -- readings just report
// hardware = false and zero counts. Nothing throws, CI passes either
// way; tests that need real counters check perf_available() and skip.
//
// Counters are opened per thread (pid = 0, cpu = -1, exclude_kernel) so
// user-space counting works at perf_event_paranoid <= 2. Each counter
// carries TOTAL_TIME_ENABLED/RUNNING and readings are multiplex-scaled.
//
// Environment:
//   VBATCH_PERF  unset/"0" = off; anything else arms region sampling
#pragma once

#include <atomic>
#include <chrono>

#include "base/types.hpp"

namespace vbatch::obs {

namespace detail {
// Constant-initialized; flipped by set_perf_enabled / the env probe.
inline std::atomic<bool> g_perf_on{false};
}  // namespace detail

/// The dormant check: true when PerfRegions are recording.
inline bool perf_on() noexcept {
    return detail::g_perf_on.load(std::memory_order_relaxed);
}

/// Programmatic on/off switch (tests); the VBATCH_PERF environment
/// variable arms the same flag at startup.
void set_perf_enabled(bool on) noexcept;

/// One snapshot (or delta) of the hardware counter group. Values are
/// multiplex-scaled to the full enabled time and therefore fractional.
struct PerfReading {
    double cycles = 0.0;
    double instructions = 0.0;
    double l1d_misses = 0.0;
    double llc_misses = 0.0;
    double branch_misses = 0.0;
    bool hardware = false;  ///< false = steady-clock-only fallback
};

/// True when this process can open at least one hardware counter
/// (probed once). False under restrictive perf_event_paranoid, seccomp
/// filters, or on non-Linux builds.
bool perf_available();

/// Per-thread group of counter fds, opened lazily on first use and kept
/// running for the thread's lifetime; regions read it twice and
/// subtract. Counters that fail to open individually read as zero.
class PerfCounters {
public:
    PerfCounters();
    ~PerfCounters();
    PerfCounters(const PerfCounters&) = delete;
    PerfCounters& operator=(const PerfCounters&) = delete;

    /// True when at least one hardware counter opened.
    bool hardware() const noexcept;

    PerfReading read() const;

    static PerfCounters& thread_local_instance();

private:
    static constexpr int num_events = 5;
    int fds_[num_events];
};

/// RAII region: folds the enclosed scope's counter deltas and wall time
/// into Registry::global() under `name`. `name` must be a literal (or
/// otherwise outlive the region), like trace-event names.
class PerfRegion {
public:
    explicit PerfRegion(const char* name) noexcept
        : name_(name), armed_(perf_on()) {
        if (armed_) {
            begin();
        }
    }
    PerfRegion(const PerfRegion&) = delete;
    PerfRegion& operator=(const PerfRegion&) = delete;
    ~PerfRegion() {
        if (armed_) {
            end();
        }
    }

private:
    void begin() noexcept;
    void end() noexcept;

    const char* name_;
    bool armed_;
    PerfReading start_{};
    std::chrono::steady_clock::time_point t0_{};
};

}  // namespace vbatch::obs
