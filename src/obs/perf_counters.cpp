#include "obs/perf_counters.hpp"

#include <cstdlib>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdint>
#define VBATCH_HAS_PERF_EVENT 1
#else
#define VBATCH_HAS_PERF_EVENT 0
#endif

namespace vbatch::obs {

namespace {

#if VBATCH_HAS_PERF_EVENT

/// Open one always-running counter for the calling thread on any CPU.
/// exclude_kernel keeps the open legal at perf_event_paranoid <= 2.
int open_counter(std::uint32_t type, std::uint64_t config) {
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    const long fd = syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0UL);
    return fd < 0 ? -1 : static_cast<int>(fd);
}

/// Read one counter, scaling the count up to the full enabled time when
/// the kernel had to multiplex the PMU.
double read_scaled(int fd) {
    if (fd < 0) {
        return 0.0;
    }
    std::uint64_t buf[3] = {0, 0, 0};  // value, enabled, running
    if (::read(fd, buf, sizeof(buf)) != static_cast<ssize_t>(sizeof(buf))) {
        return 0.0;
    }
    if (buf[2] == 0) {
        return buf[1] == 0 ? static_cast<double>(buf[0]) : 0.0;
    }
    return static_cast<double>(buf[0]) *
           (static_cast<double>(buf[1]) / static_cast<double>(buf[2]));
}

constexpr std::uint64_t l1d_read_miss_config =
    PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);

#endif  // VBATCH_HAS_PERF_EVENT

/// Arms sampling at startup when VBATCH_PERF is set (mirrors the
/// tracer's env probe).
struct PerfEnvProbe {
    PerfEnvProbe() {
        const char* v = std::getenv("VBATCH_PERF");
        if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
            set_perf_enabled(true);
        }
    }
};
const PerfEnvProbe perf_env_probe{};

}  // namespace

void set_perf_enabled(bool on) noexcept {
    detail::g_perf_on.store(on, std::memory_order_relaxed);
}

PerfCounters::PerfCounters() {
#if VBATCH_HAS_PERF_EVENT
    fds_[0] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    fds_[1] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
    fds_[2] = open_counter(PERF_TYPE_HW_CACHE, l1d_read_miss_config);
    fds_[3] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
    fds_[4] = open_counter(PERF_TYPE_HARDWARE,
                           PERF_COUNT_HW_BRANCH_MISSES);
#else
    for (int& fd : fds_) {
        fd = -1;
    }
#endif
}

PerfCounters::~PerfCounters() {
#if VBATCH_HAS_PERF_EVENT
    for (const int fd : fds_) {
        if (fd >= 0) {
            ::close(fd);
        }
    }
#endif
}

bool PerfCounters::hardware() const noexcept {
    for (const int fd : fds_) {
        if (fd >= 0) {
            return true;
        }
    }
    return false;
}

PerfReading PerfCounters::read() const {
    PerfReading r;
#if VBATCH_HAS_PERF_EVENT
    r.cycles = read_scaled(fds_[0]);
    r.instructions = read_scaled(fds_[1]);
    r.l1d_misses = read_scaled(fds_[2]);
    r.llc_misses = read_scaled(fds_[3]);
    r.branch_misses = read_scaled(fds_[4]);
#endif
    r.hardware = hardware();
    return r;
}

PerfCounters& PerfCounters::thread_local_instance() {
    static thread_local PerfCounters counters;
    return counters;
}

bool perf_available() {
    static const bool available = [] {
        PerfCounters probe;
        return probe.hardware();
    }();
    return available;
}

void PerfRegion::begin() noexcept {
    start_ = PerfCounters::thread_local_instance().read();
    t0_ = std::chrono::steady_clock::now();
}

void PerfRegion::end() noexcept {
    const auto t1 = std::chrono::steady_clock::now();
    const PerfReading now = PerfCounters::thread_local_instance().read();
    PerfRegionStats delta;
    delta.calls = 1;
    delta.hardware_calls = now.hardware ? 1 : 0;
    delta.seconds =
        std::chrono::duration<double>(t1 - t0_).count();
    delta.cycles = now.cycles - start_.cycles;
    delta.instructions = now.instructions - start_.instructions;
    delta.l1d_misses = now.l1d_misses - start_.l1d_misses;
    delta.llc_misses = now.llc_misses - start_.llc_misses;
    delta.branch_misses = now.branch_misses - start_.branch_misses;
    Registry::global().record_perf(name_, delta);
}

}  // namespace vbatch::obs
