#include "obs/metrics.hpp"

#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace vbatch::obs {

struct Registry::Impl {
    mutable std::mutex mutex;
    std::map<std::string, double, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, KernelFamilyStats, std::less<>> kernels;
    std::map<std::string, TrafficStats, std::less<>> traffic;
    std::map<std::string, PerfRegionStats, std::less<>> perf;
    PoolTelemetrySource pool_source = nullptr;
};

Registry::Registry() : impl_(new Impl) {}

Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
    // Leaked singleton, like the tracer: instrumented code may record
    // from worker threads during static destruction.
    static Registry* registry = new Registry();
    return *registry;
}

void Registry::add(std::string_view counter, double delta) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->counters.find(counter);
    if (it == impl_->counters.end()) {
        impl_->counters.emplace(std::string(counter), delta);
    } else {
        it->second += delta;
    }
}

void Registry::set(std::string_view gauge, double value) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->gauges.find(gauge);
    if (it == impl_->gauges.end()) {
        impl_->gauges.emplace(std::string(gauge), value);
    } else {
        it->second = value;
    }
}

void Registry::record_kernel(std::string_view family,
                             const simt::KernelStats& stats,
                             size_type problems, double modeled_seconds) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->kernels.find(family);
    if (it == impl_->kernels.end()) {
        it = impl_->kernels.emplace(std::string(family), KernelFamilyStats{})
                 .first;
    }
    it->second.stats += stats;
    it->second.launches += 1;
    it->second.problems += problems;
    it->second.modeled_seconds += modeled_seconds;
}

void Registry::record_traffic(std::string_view family, double flops,
                              double bytes, double seconds,
                              size_type problems, double roof_gbs) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->traffic.find(family);
    if (it == impl_->traffic.end()) {
        it = impl_->traffic.emplace(std::string(family), TrafficStats{})
                 .first;
    }
    it->second.flops += flops;
    it->second.bytes += bytes;
    it->second.seconds += seconds;
    it->second.calls += 1;
    it->second.problems += problems;
    if (roof_gbs > 0.0) {
        it->second.roof_gbs = roof_gbs;
    }
}

void Registry::record_perf(std::string_view region,
                           const PerfRegionStats& delta) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->perf.find(region);
    if (it == impl_->perf.end()) {
        it = impl_->perf.emplace(std::string(region), PerfRegionStats{})
                 .first;
    }
    auto& agg = it->second;
    agg.calls += delta.calls;
    agg.hardware_calls += delta.hardware_calls;
    agg.seconds += delta.seconds;
    agg.cycles += delta.cycles;
    agg.instructions += delta.instructions;
    agg.l1d_misses += delta.l1d_misses;
    agg.llc_misses += delta.llc_misses;
    agg.branch_misses += delta.branch_misses;
}

void Registry::set_pool_telemetry_source(PoolTelemetrySource source) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->pool_source = source;
}

PoolTelemetry Registry::pool_telemetry() const {
    PoolTelemetrySource source = nullptr;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        source = impl_->pool_source;
    }
    return source != nullptr ? source() : PoolTelemetry{};
}

std::map<std::string, double, std::less<>> Registry::counters() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->counters;
}

std::map<std::string, double, std::less<>> Registry::gauges() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->gauges;
}

std::map<std::string, KernelFamilyStats, std::less<>> Registry::kernels()
    const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->kernels;
}

std::map<std::string, TrafficStats, std::less<>> Registry::traffic() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->traffic;
}

std::map<std::string, PerfRegionStats, std::less<>> Registry::perf() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->perf;
}

double Registry::counter_value(std::string_view name) const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->counters.find(name);
    return it == impl_->counters.end() ? 0.0 : it->second;
}

void Registry::clear() {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->counters.clear();
    impl_->gauges.clear();
    impl_->kernels.clear();
    impl_->traffic.clear();
    impl_->perf.clear();
    // The pool telemetry source survives clear(): it is a wiring fact,
    // not accumulated data.
}

namespace {

void write_kernel_family(JsonWriter& json, const KernelFamilyStats& family) {
    const auto& s = family.stats;
    json.begin_object();
    json.key("launches");
    json.value(static_cast<std::uint64_t>(family.launches));
    json.key("problems");
    json.value(static_cast<std::uint64_t>(family.problems));
    json.key("modeled_seconds");
    json.value(family.modeled_seconds);
    const std::pair<const char*, size_type> fields[] = {
        {"fp_instructions", s.fp_instructions},
        {"div_instructions", s.div_instructions},
        {"shuffle_instructions", s.shuffle_instructions},
        {"misc_instructions", s.misc_instructions},
        {"useful_flops", s.useful_flops},
        {"load_transactions", s.load_transactions},
        {"store_transactions", s.store_transactions},
        {"load_requests", s.load_requests},
        {"store_requests", s.store_requests},
        {"load_replays", s.load_replays},
        {"store_replays", s.store_replays},
        {"shared_accesses", s.shared_accesses},
        {"shared_bank_conflicts", s.shared_bank_conflicts},
    };
    for (const auto& [name, value] : fields) {
        json.key(name);
        json.value(static_cast<std::uint64_t>(value));
    }
    json.end_object();
}

}  // namespace

namespace {

void write_traffic_entry(JsonWriter& json, const TrafficStats& t,
                         double fallback_roof_gbs) {
    json.begin_object();
    json.key("flops");
    json.value(t.flops);
    json.key("bytes");
    json.value(t.bytes);
    json.key("seconds");
    json.value(t.seconds);
    json.key("calls");
    json.value(static_cast<std::uint64_t>(t.calls));
    json.key("problems");
    json.value(static_cast<std::uint64_t>(t.problems));
    json.key("roof_gbs");
    json.value(t.roof_gbs > 0.0 ? t.roof_gbs : fallback_roof_gbs);
    json.key("gflops");
    json.value(t.gflops());
    json.key("bandwidth_gbs");
    json.value(t.bandwidth_gbs());
    json.key("arithmetic_intensity");
    json.value(t.arithmetic_intensity());
    json.key("fraction_of_roof");
    json.value(t.fraction_of_roof(fallback_roof_gbs));
    json.end_object();
}

void write_perf_entry(JsonWriter& json, const PerfRegionStats& p) {
    json.begin_object();
    json.key("calls");
    json.value(static_cast<std::uint64_t>(p.calls));
    json.key("hardware_calls");
    json.value(static_cast<std::uint64_t>(p.hardware_calls));
    json.key("seconds");
    json.value(p.seconds);
    json.key("cycles");
    json.value(p.cycles);
    json.key("instructions");
    json.value(p.instructions);
    json.key("ipc");
    json.value(p.cycles > 0.0 ? p.instructions / p.cycles : 0.0);
    json.key("l1d_misses");
    json.value(p.l1d_misses);
    json.key("llc_misses");
    json.value(p.llc_misses);
    json.key("branch_misses");
    json.value(p.branch_misses);
    json.end_object();
}

void write_pool_members(JsonWriter& json, const PoolTelemetry& pool) {
    json.begin_object();
    json.key("workers");
    json.value(static_cast<std::uint64_t>(pool.workers));
    json.key("armed");
    json.value(pool.armed);
    json.key("wall_seconds");
    json.value(pool.wall_seconds);
    json.key("busy_seconds");
    json.value(pool.busy_seconds);
    json.key("idle_seconds");
    json.value(pool.idle_seconds);
    json.key("utilization");
    json.value(pool.utilization);
    json.key("dispatches");
    json.value(static_cast<std::uint64_t>(pool.dispatches));
    json.key("inline_runs");
    json.value(static_cast<std::uint64_t>(pool.inline_runs));
    json.key("steals");
    json.value(static_cast<std::uint64_t>(pool.steals));
    json.key("steal_fails");
    json.value(static_cast<std::uint64_t>(pool.steal_fails));
    json.key("splits");
    json.value(static_cast<std::uint64_t>(pool.splits));
    json.key("parks");
    json.value(static_cast<std::uint64_t>(pool.parks));
    json.key("mean_imbalance");
    json.value(pool.mean_imbalance);
    json.key("last_imbalance");
    json.value(pool.last_imbalance);
    json.end_object();
}

}  // namespace

void Registry::write_json_members(JsonWriter& json) const {
    const auto counter_map = counters();
    const auto gauge_map = gauges();
    const auto kernel_map = kernels();
    const auto traffic_map = traffic();
    const auto perf_map = perf();
    const auto gauge_it = gauge_map.find("roofline.triad_gbs");
    const double fallback_roof =
        gauge_it != gauge_map.end() ? gauge_it->second : 0.0;
    json.key("counters");
    json.begin_object();
    for (const auto& [name, value] : counter_map) {
        json.key(name);
        json.value(value);
    }
    json.end_object();
    json.key("gauges");
    json.begin_object();
    for (const auto& [name, value] : gauge_map) {
        json.key(name);
        json.value(value);
    }
    json.end_object();
    json.key("kernel_stats");
    json.begin_object();
    for (const auto& [name, family] : kernel_map) {
        json.key(name);
        write_kernel_family(json, family);
    }
    json.end_object();
    json.key("traffic");
    json.begin_object();
    for (const auto& [name, stats] : traffic_map) {
        json.key(name);
        write_traffic_entry(json, stats, fallback_roof);
    }
    json.end_object();
    json.key("perf");
    json.begin_object();
    for (const auto& [name, stats] : perf_map) {
        json.key(name);
        write_perf_entry(json, stats);
    }
    json.end_object();
    json.key("pool");
    write_pool_members(json, pool_telemetry());
}

void Registry::write_json(std::ostream& os) const {
    JsonWriter json(os);
    json.begin_object();
    write_json_members(json);
    json.end_object();
}

std::string Registry::to_json() const {
    std::ostringstream os;
    write_json(os);
    return os.str();
}

}  // namespace vbatch::obs
