#include "obs/metrics.hpp"

#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace vbatch::obs {

struct Registry::Impl {
    mutable std::mutex mutex;
    std::map<std::string, double, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, KernelFamilyStats, std::less<>> kernels;
};

Registry::Registry() : impl_(new Impl) {}

Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
    // Leaked singleton, like the tracer: instrumented code may record
    // from worker threads during static destruction.
    static Registry* registry = new Registry();
    return *registry;
}

void Registry::add(std::string_view counter, double delta) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->counters.find(counter);
    if (it == impl_->counters.end()) {
        impl_->counters.emplace(std::string(counter), delta);
    } else {
        it->second += delta;
    }
}

void Registry::set(std::string_view gauge, double value) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->gauges.find(gauge);
    if (it == impl_->gauges.end()) {
        impl_->gauges.emplace(std::string(gauge), value);
    } else {
        it->second = value;
    }
}

void Registry::record_kernel(std::string_view family,
                             const simt::KernelStats& stats,
                             size_type problems, double modeled_seconds) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->kernels.find(family);
    if (it == impl_->kernels.end()) {
        it = impl_->kernels.emplace(std::string(family), KernelFamilyStats{})
                 .first;
    }
    it->second.stats += stats;
    it->second.launches += 1;
    it->second.problems += problems;
    it->second.modeled_seconds += modeled_seconds;
}

std::map<std::string, double, std::less<>> Registry::counters() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->counters;
}

std::map<std::string, double, std::less<>> Registry::gauges() const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->gauges;
}

std::map<std::string, KernelFamilyStats, std::less<>> Registry::kernels()
    const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->kernels;
}

double Registry::counter_value(std::string_view name) const {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->counters.find(name);
    return it == impl_->counters.end() ? 0.0 : it->second;
}

void Registry::clear() {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->counters.clear();
    impl_->gauges.clear();
    impl_->kernels.clear();
}

namespace {

void write_kernel_family(JsonWriter& json, const KernelFamilyStats& family) {
    const auto& s = family.stats;
    json.begin_object();
    json.key("launches");
    json.value(static_cast<std::uint64_t>(family.launches));
    json.key("problems");
    json.value(static_cast<std::uint64_t>(family.problems));
    json.key("modeled_seconds");
    json.value(family.modeled_seconds);
    const std::pair<const char*, size_type> fields[] = {
        {"fp_instructions", s.fp_instructions},
        {"div_instructions", s.div_instructions},
        {"shuffle_instructions", s.shuffle_instructions},
        {"misc_instructions", s.misc_instructions},
        {"useful_flops", s.useful_flops},
        {"load_transactions", s.load_transactions},
        {"store_transactions", s.store_transactions},
        {"load_requests", s.load_requests},
        {"store_requests", s.store_requests},
        {"load_replays", s.load_replays},
        {"store_replays", s.store_replays},
        {"shared_accesses", s.shared_accesses},
        {"shared_bank_conflicts", s.shared_bank_conflicts},
    };
    for (const auto& [name, value] : fields) {
        json.key(name);
        json.value(static_cast<std::uint64_t>(value));
    }
    json.end_object();
}

}  // namespace

void Registry::write_json_members(JsonWriter& json) const {
    const auto counter_map = counters();
    const auto gauge_map = gauges();
    const auto kernel_map = kernels();
    json.key("counters");
    json.begin_object();
    for (const auto& [name, value] : counter_map) {
        json.key(name);
        json.value(value);
    }
    json.end_object();
    json.key("gauges");
    json.begin_object();
    for (const auto& [name, value] : gauge_map) {
        json.key(name);
        json.value(value);
    }
    json.end_object();
    json.key("kernel_stats");
    json.begin_object();
    for (const auto& [name, family] : kernel_map) {
        json.key(name);
        write_kernel_family(json, family);
    }
    json.end_object();
}

void Registry::write_json(std::ostream& os) const {
    JsonWriter json(os);
    json.begin_object();
    write_json_members(json);
    json.end_object();
}

std::string Registry::to_json() const {
    std::ostringstream os;
    write_json(os);
    return os.str();
}

}  // namespace vbatch::obs
