#include "obs/roofline.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "base/timer.hpp"
#include "obs/metrics.hpp"

namespace vbatch::obs {

namespace {

/// One triad sweep over [0, n) split into `threads` contiguous chunks.
void triad_sweep(double* a, const double* b, const double* c,
                 std::size_t n, unsigned threads) {
    constexpr double scale = 3.0;
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = b[i] + scale * c[i];
        }
        return;
    }
    const std::size_t chunk = (n + threads - 1) / threads;
    std::vector<std::thread> helpers;
    helpers.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t) {
        const std::size_t lo = std::min<std::size_t>(t * chunk, n);
        const std::size_t hi = std::min<std::size_t>(lo + chunk, n);
        helpers.emplace_back([=] {
            for (std::size_t i = lo; i < hi; ++i) {
                a[i] = b[i] + scale * c[i];
            }
        });
    }
    const std::size_t hi0 = std::min<std::size_t>(chunk, n);
    for (std::size_t i = 0; i < hi0; ++i) {
        a[i] = b[i] + scale * c[i];
    }
    for (auto& h : helpers) {
        h.join();
    }
}

}  // namespace

TriadResult stream_triad(size_type elements, int repetitions,
                         unsigned threads) {
    const auto n = static_cast<std::size_t>(
        std::max<size_type>(elements, 1024));
    if (repetitions < 1) {
        repetitions = 1;
    }
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    std::vector<double> a(n, 0.0), b(n), c(n);
    for (std::size_t i = 0; i < n; ++i) {
        b[i] = static_cast<double>(i % 1024) * 0.5;
        c[i] = static_cast<double>(i % 512) * 0.25;
    }
    triad_sweep(a.data(), b.data(), c.data(), n, threads);  // warm-up
    double best = 1e300;
    for (int rep = 0; rep < repetitions; ++rep) {
        Timer t;
        triad_sweep(a.data(), b.data(), c.data(), n, threads);
        best = std::min(best, t.seconds());
    }
    TriadResult result;
    result.seconds = best;
    result.bytes = 3.0 * static_cast<double>(n) * sizeof(double);
    return result;
}

double machine_roof_gbs() {
    static const double roof = [] {
        if (const char* env = std::getenv("VBATCH_ROOF_GBS")) {
            const double v = std::strtod(env, nullptr);
            if (v > 0.0) {
                return v;
            }
        }
        // ~16 MiB per stream: big enough to defeat the LLC, small
        // enough that the one-shot probe stays under ~100 ms.
        return stream_triad(size_type{1} << 21, 3).gbs();
    }();
    Registry::global().set("roofline.triad_gbs", roof);
    return roof;
}

}  // namespace vbatch::obs
