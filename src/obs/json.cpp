#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace vbatch::obs {

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

void json_escape(std::string& out, std::string_view text) {
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void JsonWriter::before_value() {
    if (scopes_.empty()) {
        return;  // top-level value
    }
    if (scopes_.back() == Scope::object) {
        if (!key_pending_) {
            throw std::logic_error("JsonWriter: value inside object "
                                   "requires a preceding key()");
        }
        key_pending_ = false;
        return;
    }
    if (!first_.back()) {
        os_ << ",";
    }
    first_.back() = false;
}

void JsonWriter::begin_object() {
    before_value();
    os_ << "{";
    scopes_.push_back(Scope::object);
    first_.push_back(true);
}

void JsonWriter::end_object() {
    if (scopes_.empty() || scopes_.back() != Scope::object || key_pending_) {
        throw std::logic_error("JsonWriter: unbalanced end_object()");
    }
    os_ << "}";
    scopes_.pop_back();
    first_.pop_back();
}

void JsonWriter::begin_array() {
    before_value();
    os_ << "[";
    scopes_.push_back(Scope::array);
    first_.push_back(true);
}

void JsonWriter::end_array() {
    if (scopes_.empty() || scopes_.back() != Scope::array) {
        throw std::logic_error("JsonWriter: unbalanced end_array()");
    }
    os_ << "]";
    scopes_.pop_back();
    first_.pop_back();
}

void JsonWriter::key(std::string_view name) {
    if (scopes_.empty() || scopes_.back() != Scope::object || key_pending_) {
        throw std::logic_error("JsonWriter: key() outside an object");
    }
    if (!first_.back()) {
        os_ << ",";
    }
    first_.back() = false;
    std::string escaped;
    json_escape(escaped, name);
    os_ << "\"" << escaped << "\":";
    key_pending_ = true;
}

void JsonWriter::value(std::string_view text) {
    before_value();
    std::string escaped;
    json_escape(escaped, text);
    os_ << "\"" << escaped << "\"";
}

void JsonWriter::value(double number) {
    before_value();
    if (!std::isfinite(number)) {
        // JSON has no inf/nan; null keeps the document parseable.
        os_ << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    os_ << buf;
}

void JsonWriter::value(std::int64_t number) {
    before_value();
    os_ << number;
}

void JsonWriter::value(std::uint64_t number) {
    before_value();
    os_ << number;
}

void JsonWriter::value(bool boolean) {
    before_value();
    os_ << (boolean ? "true" : "false");
}

void JsonWriter::null() {
    before_value();
    os_ << "null";
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view name) const {
    if (type != Type::object) {
        return nullptr;
    }
    for (const auto& [key, value] : members) {
        if (key == name) {
            return &value;
        }
    }
    return nullptr;
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue parse_document() {
        auto value = parse_value();
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
        }
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw JsonError("JSON parse error at offset " +
                        std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) == literal) {
            pos_ += literal.size();
            return true;
        }
        return false;
    }

    JsonValue parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': {
            JsonValue v;
            v.type = JsonValue::Type::string;
            v.string = parse_string();
            return v;
        }
        case 't':
            if (consume_literal("true")) {
                JsonValue v;
                v.type = JsonValue::Type::boolean;
                v.boolean = true;
                return v;
            }
            fail("invalid literal");
        case 'f':
            if (consume_literal("false")) {
                JsonValue v;
                v.type = JsonValue::Type::boolean;
                return v;
            }
            fail("invalid literal");
        case 'n':
            if (consume_literal("null")) {
                return JsonValue{};
            }
            fail("invalid literal");
        default: return parse_number();
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_ws();
            auto key = parse_string();
            skip_ws();
            expect(':');
            v.members.emplace_back(std::move(key), parse_value());
            skip_ws();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return v;
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(parse_value());
            skip_ws();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return v;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code += static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code += static_cast<unsigned>(h - 'a') + 10;
                    } else if (h >= 'A' && h <= 'F') {
                        code += static_cast<unsigned>(h - 'A') + 10;
                    } else {
                        fail("invalid \\u escape");
                    }
                }
                // UTF-8 encode (surrogate pairs are passed through as
                // separate code units; the exporters never emit them).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
            }
            default: fail("invalid escape");
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            fail("expected a value");
        }
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double number = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("malformed number '" + token + "'");
        }
        JsonValue v;
        v.type = JsonValue::Type::number;
        v.number = number;
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
    return Parser(text).parse_document();
}

}  // namespace vbatch::obs
