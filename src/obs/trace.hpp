// Scoped-region tracing for the block-Jacobi pipeline.
//
// The tracer records nested named regions, instant markers and counter
// samples into per-thread event buffers and exports them as newline-
// delimited JSON or as the Chrome trace_event format (loadable in
// chrome://tracing or https://ui.perfetto.dev).
//
// Cost model: tracing is dormant unless the environment variable
// VBATCH_TRACE is set (or a test flips it programmatically). The dormant
// check is a single relaxed atomic load -- region construction compiles
// to a load + branch, so instrumentation can stay in hot-ish paths (one
// region per batch launch / solver iteration, never per matrix element).
//
// Event names must be string literals (or otherwise outlive the process):
// the tracer stores the pointer, not a copy, to keep recording cheap.
//
// Environment:
//   VBATCH_TRACE       unset/"0" = off; "1"/"chrome" = Chrome trace at
//                      exit; "ndjson" = newline-delimited JSON at exit
//   VBATCH_TRACE_FILE  output path (default vbatch_trace.json / .ndjson)
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hpp"

namespace vbatch::obs {

namespace detail {
// Constant-initialized; flipped by Tracer::set_enabled / the env probe.
inline std::atomic<bool> g_trace_on{false};
}  // namespace detail

/// The dormant check: true when events are being collected.
inline bool trace_on() noexcept {
    return detail::g_trace_on.load(std::memory_order_relaxed);
}

enum class EventPhase : std::uint8_t {
    complete,  ///< a region with a start and a duration (Chrome "X")
    instant,   ///< a point marker (Chrome "i")
    counter,   ///< a named value sampled over time (Chrome "C")
};

struct TraceEvent {
    const char* name = nullptr;  ///< literal; not owned
    EventPhase phase = EventPhase::instant;
    std::uint32_t depth = 0;  ///< region nesting depth at record time
    double ts_us = 0.0;       ///< microseconds since tracer epoch
    double dur_us = 0.0;      ///< complete events only
    double value = 0.0;       ///< counter events only
};

/// Export flavor for write_file().
enum class TraceFormat { chrome, ndjson };

/// Process-wide trace collector with per-thread buffers.
class Tracer {
public:
    /// Per-thread view of the collected events (tid is a small sequential
    /// id assigned at first use; the main thread is usually 1).
    struct ThreadTrace {
        int tid = 0;
        std::string name;
        std::vector<TraceEvent> events;
        size_type dropped = 0;
    };

    static Tracer& instance();

    /// Programmatic on/off switch (tests); the VBATCH_TRACE environment
    /// variable arms the same flag at startup.
    static void set_enabled(bool on);

    /// Append an event to the calling thread's buffer. No-op when
    /// tracing is disabled.
    void record(const TraceEvent& event);

    /// Label the calling thread in the exported trace (Chrome metadata).
    void set_thread_name(std::string name);

    /// Microseconds since the tracer's epoch (process start-ish).
    double now_us() const noexcept;

    /// Region nesting bookkeeping for the calling thread. Returns the
    /// depth *before* the increment (the depth the region runs at).
    std::uint32_t enter_region() noexcept;
    void exit_region() noexcept;

    // -- export / inspection ------------------------------------------
    std::vector<ThreadTrace> snapshot() const;
    void write_chrome_trace(std::ostream& os) const;
    void write_ndjson(std::ostream& os) const;
    /// Write `format` to `path`; returns false if the file can't be
    /// opened. Never throws.
    bool write_file(const std::string& path, TraceFormat format) const;

    /// Drop all collected events (buffers stay registered).
    void clear();

    /// Events discarded because a thread buffer hit its cap.
    size_type total_dropped() const;

    /// Upper bound on events retained per thread (drops beyond it).
    static constexpr size_type max_events_per_thread = 1u << 22;

private:
    Tracer();
    struct Impl;
    Impl* impl_;  // leaked on purpose: threads may outlive static dtors
};

/// RAII region: records a complete event covering the enclosed scope.
class TraceRegion {
public:
    explicit TraceRegion(const char* name) noexcept
        : name_(name), armed_(trace_on()) {
        if (armed_) {
            auto& tracer = Tracer::instance();
            depth_ = tracer.enter_region();
            start_us_ = tracer.now_us();
        }
    }
    TraceRegion(const TraceRegion&) = delete;
    TraceRegion& operator=(const TraceRegion&) = delete;
    ~TraceRegion() {
        if (armed_) {
            auto& tracer = Tracer::instance();
            TraceEvent event;
            event.name = name_;
            event.phase = EventPhase::complete;
            event.depth = depth_;
            event.ts_us = start_us_;
            event.dur_us = tracer.now_us() - start_us_;
            tracer.record(event);
            tracer.exit_region();
        }
    }

private:
    const char* name_;
    bool armed_;
    std::uint32_t depth_ = 0;
    double start_us_ = 0.0;
};

/// Record a counter sample (e.g. the residual norm per iteration).
inline void counter(const char* name, double value) {
    if (!trace_on()) {
        return;
    }
    auto& tracer = Tracer::instance();
    TraceEvent event;
    event.name = name;
    event.phase = EventPhase::counter;
    event.ts_us = tracer.now_us();
    event.value = value;
    tracer.record(event);
}

/// Record a point marker.
inline void instant(const char* name) {
    if (!trace_on()) {
        return;
    }
    auto& tracer = Tracer::instance();
    TraceEvent event;
    event.name = name;
    event.phase = EventPhase::instant;
    event.ts_us = tracer.now_us();
    tracer.record(event);
}

/// Label the calling thread in the exported trace. Safe to call with
/// tracing disabled (the name sticks for a later enable).
void set_thread_name(std::string name);

}  // namespace vbatch::obs
