#include "obs/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace vbatch::obs {

namespace {

/// nullptr when disabled; "" means current directory, otherwise the
/// requested output directory.
const char* bench_json_dir() {
    const char* v = std::getenv("VBATCH_BENCH_JSON");
    if (v == nullptr || v[0] == '\0' || (v[0] == '0' && v[1] == '\0')) {
        return nullptr;
    }
    if (v[0] == '1' && v[1] == '\0') {
        return "";
    }
    return v;
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

bool BenchReport::enabled() { return bench_json_dir() != nullptr; }

void BenchReport::config(std::string key, std::string value) {
    config_.emplace_back(std::move(key), ConfigValue(std::move(value)));
}
void BenchReport::config(std::string key, const char* value) {
    config(std::move(key), std::string(value));
}
void BenchReport::config(std::string key, double value) {
    config_.emplace_back(std::move(key), ConfigValue(value));
}
void BenchReport::config(std::string key, index_type value) {
    config(std::move(key), static_cast<double>(value));
}
void BenchReport::config(std::string key, size_type value) {
    config(std::move(key), static_cast<double>(value));
}
void BenchReport::config(std::string key, bool value) {
    config_.emplace_back(std::move(key), ConfigValue(value));
}

void BenchReport::phase(std::string name, double seconds) {
    for (auto& existing : phases_) {
        if (existing.name == name) {
            existing.seconds += seconds;
            return;
        }
    }
    phases_.push_back({std::move(name), seconds});
}

void BenchReport::series(std::string name, std::string x_label,
                         std::vector<std::pair<double, double>> points,
                         std::string unit) {
    series_.push_back({std::move(name), std::move(x_label), std::move(unit),
                       std::move(points)});
}

std::string BenchReport::to_json() const {
    std::ostringstream os;
    JsonWriter json(os);
    json.begin_object();
    json.key("schema_version");
    json.value(std::int64_t{2});
    json.key("name");
    json.value(name_);
    json.key("generated_unix");
    json.value(static_cast<std::int64_t>(std::time(nullptr)));

    json.key("config");
    json.begin_object();
    for (const auto& [key, value] : config_) {
        json.key(key);
        if (const auto* s = std::get_if<std::string>(&value)) {
            json.value(*s);
        } else if (const auto* d = std::get_if<double>(&value)) {
            json.value(*d);
        } else {
            json.value(std::get<bool>(value));
        }
    }
    json.end_object();

    json.key("phases");
    json.begin_array();
    for (const auto& phase : phases_) {
        json.begin_object();
        json.key("name");
        json.value(phase.name);
        json.key("seconds");
        json.value(phase.seconds);
        json.end_object();
    }
    json.end_array();

    json.key("series");
    json.begin_array();
    for (const auto& series : series_) {
        json.begin_object();
        json.key("name");
        json.value(series.name);
        json.key("x_label");
        json.value(series.x_label);
        json.key("unit");
        json.value(series.unit);
        json.key("points");
        json.begin_array();
        for (const auto& [x, y] : series.points) {
            json.begin_array();
            json.value(x);
            json.value(y);
            json.end_array();
        }
        json.end_array();
        json.end_object();
    }
    json.end_array();

    Registry::global().write_json_members(json);
    json.key("wall_seconds");
    json.value(timer_.seconds());
    json.end_object();
    return os.str();
}

bool BenchReport::write_if_enabled() const {
    const char* dir = bench_json_dir();
    if (dir == nullptr) {
        return false;
    }
    std::string path(dir);
    if (!path.empty() && path.back() != '/') {
        path += '/';
    }
    path += "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "[vbatch-obs] cannot write %s\n", path.c_str());
        return false;
    }
    os << to_json() << "\n";
    if (!os.good()) {
        return false;
    }
    std::fprintf(stderr, "[vbatch-obs] bench report written to %s\n",
                 path.c_str());
    return true;
}

}  // namespace vbatch::obs
