// Instruction/transaction accounting for warp-emulated kernels.
//
// The emulator counts *warp-wide* instruction issues (on a GPU a predicated
// FMA occupies the issue slot regardless of how many lanes are active) and,
// separately, the number of *useful* floating-point operations actually
// contributing to the mathematical result. The device model (device_model.hpp)
// charges time for issues and bytes; benchmark GFLOPS are computed from
// useful flops, exactly like the paper does. The gap between the two is
// what produces the padding penalty of the eager right-looking LU for
// block sizes k < 32 (Section IV.B of the paper).
#pragma once

#include <cstdint>

#include "base/types.hpp"

namespace vbatch::simt {

struct KernelStats {
    // -- instruction issues (warp-wide) --
    size_type fp_instructions = 0;     ///< add/mul/fma issues
    size_type div_instructions = 0;    ///< divisions (expensive path)
    size_type shuffle_instructions = 0;///< __shfl-class issues
    size_type misc_instructions = 0;   ///< compares, selects, index math

    // -- useful mathematical work --
    size_type useful_flops = 0;        ///< flops counted as in the paper

    // -- global memory traffic (32-byte sectors, like nvprof's
    //    gld/gst_transactions) --
    size_type load_transactions = 0;
    size_type store_transactions = 0;  ///< DRAM sectors after L2 write-combining
    size_type load_requests = 0;       ///< warp-wide load instructions
    size_type store_requests = 0;
    /// LSU serialization: sectors beyond the first touched by one
    /// instruction replay through the load/store unit even when the L2
    /// absorbs the traffic -- the issue-side cost of non-coalesced access.
    size_type load_replays = 0;
    size_type store_replays = 0;

    // -- shared memory --
    size_type shared_accesses = 0;     ///< warp-wide shared ld/st issues
    size_type shared_bank_conflicts = 0;

    size_type load_bytes() const noexcept { return load_transactions * 32; }
    size_type store_bytes() const noexcept { return store_transactions * 32; }

    KernelStats& operator+=(const KernelStats& o) noexcept {
        fp_instructions += o.fp_instructions;
        div_instructions += o.div_instructions;
        shuffle_instructions += o.shuffle_instructions;
        misc_instructions += o.misc_instructions;
        useful_flops += o.useful_flops;
        load_transactions += o.load_transactions;
        store_transactions += o.store_transactions;
        load_requests += o.load_requests;
        store_requests += o.store_requests;
        load_replays += o.load_replays;
        store_replays += o.store_replays;
        shared_accesses += o.shared_accesses;
        shared_bank_conflicts += o.shared_bank_conflicts;
        return *this;
    }

    friend KernelStats operator+(KernelStats a, const KernelStats& b) {
        a += b;
        return a;
    }
};

}  // namespace vbatch::simt
