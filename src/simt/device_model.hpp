// Calibrated GPU device model.
//
// The warp emulator (warp.hpp) executes the paper's kernels on the host and
// produces exact instruction/transaction counts. This model converts those
// counts into an execution-time estimate on an NVIDIA Tesla P100 (the
// paper's machine), so that the Fig. 4-7 benchmark harness can report
// GFLOPS curves comparable in shape and magnitude to the paper.
//
// The model is deliberately simple and fully documented:
//
//   t = t_launch + max(t_compute, t_memory, t_latency)
//
//   t_compute : instruction issues divided by per-category issue rates
//               (FP32 2 warp-issues/SM/cycle, FP64 1, shuffle 1, ...)
//   t_memory  : 32-byte sectors moved divided by an effective bandwidth
//   t_latency : a lower bound from the per-warp dependent critical path
//               and the register-limited occupancy (a warp holding an
//               entire 32x32 block in registers limits resident warps/SM,
//               which is the physical reason these kernels cannot reach
//               peak bandwidth)
//
// Calibration constants live in device_model.cpp and are validated against
// the paper's headline numbers in EXPERIMENTS.md.
#pragma once

#include <string>

#include "base/types.hpp"
#include "simt/kernel_stats.hpp"

namespace vbatch::simt {

enum class Precision { single, dp };

inline Precision precision_of(float) { return Precision::single; }
inline Precision precision_of(double) { return Precision::dp; }

template <typename T>
Precision precision_v() {
    return sizeof(T) == 4 ? Precision::single : Precision::dp;
}

/// Per-warp resource footprint, used for the occupancy estimate.
struct WarpFootprint {
    /// 32-bit registers per lane (a DP value costs 2).
    int registers_per_lane = 32;
    /// Shared memory bytes per warp.
    int shared_bytes = 0;
};

/// Footprint of a register-resident kernel holding one m x m block
/// (one row per lane) plus bookkeeping.
WarpFootprint register_kernel_footprint(index_type block_size,
                                        Precision prec,
                                        int extra_regs = 16);

class DeviceModel {
public:
    /// The paper's machine: NVIDIA Tesla P100 (Pascal, 56 SMs, HBM2).
    static DeviceModel p100();

    std::string name() const { return name_; }

    /// Estimated wall time (seconds) of one batched kernel launch.
    ///
    /// `totals`    - stats summed over all warps of the launch
    /// `num_warps` - number of warp-problems in the batch
    /// `prec`      - arithmetic precision (selects FP issue rate)
    /// `footprint` - per-warp resource usage (drives occupancy)
    double estimate_seconds(const KernelStats& totals, size_type num_warps,
                            Precision prec,
                            const WarpFootprint& footprint) const;

    /// Resident warps across the whole device for a given footprint.
    size_type resident_warps(const WarpFootprint& footprint) const;

    double launch_overhead_seconds() const { return launch_overhead_s_; }

    // Calibration knobs (public so benchmarks can report the model config).
    int num_sms = 56;
    double clock_hz = 1.328e9;
    double fp32_issue_per_sm = 2.0;   ///< warp FMA issues / SM / cycle
    double fp64_issue_per_sm = 1.0;
    /// Effective shuffle throughput: nominally 1/cycle, derated for the
    /// dependent shuffle chains of these kernels. A 64-bit shuffle costs
    /// two 32-bit shuffle operations (handled in estimate_seconds).
    double shuffle_issue_per_sm = 0.6;
    double misc_issue_per_sm = 2.0;
    double div_issue_per_sm = 0.125;  ///< slow path
    double shared_issue_per_sm = 1.0;
    /// Warp-wide load/store issues (incl. replay slots) per SM per cycle.
    double lsu_issue_per_sm = 4.0;
    /// Sustained DRAM bandwidth for the short bursty accesses of these
    /// kernels (calibrated well below the 732 GB/s peak; EXPERIMENTS.md).
    double effective_bandwidth = 250e9;
    /// Warps in flight needed to reach the sustained bandwidth; smaller
    /// launches utilize proportionally less (the ramp of Fig. 4/6).
    double bw_saturation_warps = 5000;
    int registers_per_sm = 65536;
    int max_warps_per_sm = 64;
    int shared_bytes_per_sm = 64 * 1024;
    double latency_cycles = 10.0;     ///< per-issue dependent-chain latency
    double launch_overhead_s_ = 8e-6;

private:
    std::string name_ = "p100-model";
};

/// Performance envelope substituting for NVIDIA's closed-source cuBLAS
/// batched LU (getrfBatched) and solve (getrsBatched) kernels.
///
/// cuBLAS cannot be executed here (closed source, no GPU), so Fig. 4-7
/// reproduce its curves from the envelope the paper reports: roughly flat
/// ~100 GFLOPS at m=32 with size-specific tuned kernels producing local
/// peaks (m = 8, 16, 29 in single precision; m = 8, 20 in double), and the
/// same launch/ramp behaviour as the device model. The numbers are tabled
/// per size and documented as a substitution in DESIGN.md.
class VendorModel {
public:
    explicit VendorModel(const DeviceModel& device) : device_(device) {}

    /// Asymptotic GFLOPS of vendor batched GETRF at block size m.
    double getrf_gflops(index_type m, Precision prec) const;

    /// Asymptotic GFLOPS of vendor batched GETRS (permute + 2 TRSV).
    double getrs_gflops(index_type m, Precision prec) const;

    /// Wall-time estimate honouring the batch-size ramp.
    double estimate_seconds(double useful_flops, double asymptotic_gflops,
                            size_type num_problems) const;

private:
    const DeviceModel& device_;
};

}  // namespace vbatch::simt
