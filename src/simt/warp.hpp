// Lockstep SIMT warp emulation.
//
// A CUDA warp kernel of the kind the paper builds ("one matrix row per
// thread, everything in registers, warp shuffles for communication") is an
// SPMD program over 32 lanes that execute in lockstep. The emulator
// represents each per-lane register as a Reg<T> = std::array<T, 32> and
// expresses every warp instruction as an operation over all 32 entries,
// predicated by an active-lane mask -- which is exactly how the hardware
// executes it, and lets the host compiler vectorize the emulation.
//
// All arithmetic, shuffle and memory operations go through the Warp object
// so that instruction issues and memory transactions are counted once, in
// one place (see kernel_stats.hpp). Kernels built on this API:
//   core/simt_kernels.cpp  - small-size LU, GH, GH-T, TRSV
//   blocking/extraction_simt.cpp - shared-memory diagonal block extraction
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <utility>

#include "base/macros.hpp"
#include "base/types.hpp"
#include "simt/kernel_stats.hpp"

namespace vbatch::simt {

/// One per-lane register: value for each of the 32 lanes of the warp.
template <typename T>
using Reg = std::array<T, warp_size>;

/// Lane activity mask; bit l set <=> lane l executes the instruction.
using lane_mask = std::uint32_t;

inline constexpr lane_mask full_mask = 0xffffffffu;

/// Mask with bits [0, n) set: the "first n lanes" predicate used to map an
/// m-row matrix onto the first m lanes.
inline constexpr lane_mask first_lanes(index_type n) noexcept {
    return n >= warp_size ? full_mask : ((1u << n) - 1u);
}

/// Mask with bits [lo, hi) set.
inline constexpr lane_mask lane_range(index_type lo, index_type hi) noexcept {
    return first_lanes(hi) & ~first_lanes(lo);
}

inline int popcount(lane_mask m) noexcept { return std::popcount(m); }

/// Warp execution context: owns the instruction/transaction counters and
/// provides the instruction set the kernels are written against.
class Warp {
public:
    static constexpr int width = warp_size;

    Warp() = default;

    KernelStats& stats() noexcept { return stats_; }
    const KernelStats& stats() const noexcept { return stats_; }
    void reset_stats() noexcept { stats_ = {}; }

    // ---------------------------------------------------------------
    // Register initialization
    // ---------------------------------------------------------------

    template <typename T>
    static Reg<T> broadcast_value(T v) {
        Reg<T> r;
        r.fill(v);
        return r;
    }

    /// r[l] = l for every lane (threadIdx.x within the warp).
    static Reg<index_type> lane_id() {
        Reg<index_type> r;
        for (index_type l = 0; l < width; ++l) {
            r[l] = l;
        }
        return r;
    }

    // ---------------------------------------------------------------
    // Shuffles (warp communication)
    // ---------------------------------------------------------------

    /// __shfl_sync(v, src_lane): every active lane reads lane `src`'s value.
    /// Returns the broadcast scalar.
    template <typename T>
    T shfl(const Reg<T>& v, index_type src) {
        VBATCH_ASSERT(src >= 0 && src < width);
        ++stats_.shuffle_instructions;
        return v[src];
    }

    /// __shfl_sync with per-lane source index.
    template <typename T>
    Reg<T> shfl_indexed(lane_mask mask, const Reg<T>& v,
                        const Reg<index_type>& src) {
        ++stats_.shuffle_instructions;
        Reg<T> r{};
        for_each_lane(mask, [&](int l) {
            VBATCH_ASSERT(src[l] >= 0 && src[l] < width);
            r[l] = v[src[l]];
        });
        return r;
    }

    /// __ballot_sync: bit l of the result is pred[l] != 0 for active lanes.
    template <typename T>
    lane_mask ballot(lane_mask mask, const Reg<T>& pred) {
        ++stats_.misc_instructions;
        lane_mask out = 0;
        for_each_lane(mask, [&](int l) {
            if (pred[l] != T{}) {
                out |= (1u << l);
            }
        });
        return out;
    }

    /// Butterfly argmax reduction over |v| restricted to `mask`:
    /// returns {max |v[l]|, lane achieving it}. Mirrors the 5-step
    /// __shfl_xor reduction used for pivot selection; charges 5 shuffle
    /// issues + 5 compare issues.
    template <typename T>
    std::pair<T, index_type> reduce_absmax(lane_mask mask, const Reg<T>& v) {
        VBATCH_ASSERT(mask != 0);
        stats_.shuffle_instructions += 5;
        stats_.misc_instructions += 5;
        T best_val = T{};
        index_type best_lane = -1;
        for (int l = 0; l < width; ++l) {
            if (!(mask & (1u << l))) {
                continue;
            }
            const T a = std::abs(v[l]);
            if (best_lane < 0 || a > std::abs(best_val)) {
                best_val = a;
                best_lane = l;
            }
        }
        return {best_val, best_lane};
    }

    /// Butterfly sum reduction over active lanes (5 shuffle + 5 add issues).
    /// The result is the broadcast scalar sum.
    template <typename T>
    T reduce_sum(lane_mask mask, const Reg<T>& v) {
        stats_.shuffle_instructions += 5;
        stats_.fp_instructions += 5;
        stats_.useful_flops += std::max(0, popcount(mask) - 1);
        T sum = T{};
        for_each_lane(mask, [&](int l) { sum += v[l]; });
        return sum;
    }

    // ---------------------------------------------------------------
    // Arithmetic (one warp-wide issue each; useful flops counted on the
    // active lanes only when `useful` lanes are provided)
    // ---------------------------------------------------------------

    /// r[l] = a[l] * s  on active lanes.
    template <typename T>
    Reg<T> mul_scalar(lane_mask mask, const Reg<T>& a, T s,
                      lane_mask useful_lanes) {
        ++stats_.fp_instructions;
        stats_.useful_flops += popcount(mask & useful_lanes);
        Reg<T> r = a;
        for_each_lane(mask, [&](int l) { r[l] = a[l] * s; });
        return r;
    }

    /// r[l] = a[l] / s  on active lanes (charged as an expensive division).
    template <typename T>
    Reg<T> div_scalar(lane_mask mask, const Reg<T>& a, T s,
                      lane_mask useful_lanes) {
        ++stats_.div_instructions;
        stats_.useful_flops += popcount(mask & useful_lanes);
        Reg<T> r = a;
        for_each_lane(mask, [&](int l) { r[l] = a[l] / s; });
        return r;
    }

    /// r[l] = c[l] - a[l] * s  (fused negated multiply-add; the GER /
    /// AXPY building block). 2 useful flops per counted lane.
    template <typename T>
    Reg<T> fnma_scalar(lane_mask mask, const Reg<T>& a, T s, const Reg<T>& c,
                       lane_mask useful_lanes) {
        ++stats_.fp_instructions;
        stats_.useful_flops += 2 * popcount(mask & useful_lanes);
        Reg<T> r = c;
        for_each_lane(mask, [&](int l) { r[l] = c[l] - a[l] * s; });
        return r;
    }

    /// r[l] = a[l] * b[l] on active lanes.
    template <typename T>
    Reg<T> mul(lane_mask mask, const Reg<T>& a, const Reg<T>& b,
               lane_mask useful_lanes) {
        ++stats_.fp_instructions;
        stats_.useful_flops += popcount(mask & useful_lanes);
        Reg<T> r{};
        for_each_lane(mask, [&](int l) { r[l] = a[l] * b[l]; });
        return r;
    }

    /// r[l] = a[l] / s[l] with a per-lane divisor (used by the packed
    /// sub-warp kernels, where each half has its own pivot).
    template <typename T>
    Reg<T> div(lane_mask mask, const Reg<T>& a, const Reg<T>& s,
               lane_mask useful_lanes) {
        ++stats_.div_instructions;
        stats_.useful_flops += popcount(mask & useful_lanes);
        Reg<T> r = a;
        for_each_lane(mask, [&](int l) { r[l] = a[l] / s[l]; });
        return r;
    }

    /// r[l] = c[l] - a[l] * s[l] with a per-lane multiplier.
    template <typename T>
    Reg<T> fnma(lane_mask mask, const Reg<T>& a, const Reg<T>& s,
                const Reg<T>& c, lane_mask useful_lanes) {
        ++stats_.fp_instructions;
        stats_.useful_flops += 2 * popcount(mask & useful_lanes);
        Reg<T> r = c;
        for_each_lane(mask, [&](int l) { r[l] = c[l] - a[l] * s[l]; });
        return r;
    }

    /// Butterfly argmax of |v| restricted to each half-warp segment of
    /// `mask` independently (a 4-step __shfl_xor reduction serves both
    /// halves simultaneously). Returns {value, lane} per half; a half with
    /// empty mask yields {0, -1}.
    template <typename T>
    std::array<std::pair<T, index_type>, 2> reduce_absmax_halves(
        lane_mask mask, const Reg<T>& v) {
        stats_.shuffle_instructions += 4;
        stats_.misc_instructions += 4;
        std::array<std::pair<T, index_type>, 2> out{
            std::pair<T, index_type>{T{}, -1},
            std::pair<T, index_type>{T{}, -1}};
        for (int half = 0; half < 2; ++half) {
            const lane_mask seg = half == 0 ? (mask & 0xffffu)
                                            : (mask & 0xffff0000u);
            T best{};
            index_type lane = -1;
            for_each_lane(seg, [&](int l) {
                const T a = std::abs(v[l]);
                if (lane < 0 || a > std::abs(best)) {
                    best = a;
                    lane = l;
                }
            });
            out[half] = {best, lane};
        }
        return out;
    }

    // ---------------------------------------------------------------
    // Global memory (sector-based transaction counting)
    //
    // Like the hardware, a warp-wide load/store instruction touches a set
    // of 32-byte sectors; the number of distinct sectors is the number of
    // transactions. A fully coalesced load of 32 consecutive floats costs
    // 4 transactions; a strided (non-coalesced) one costs up to 32.
    // ---------------------------------------------------------------

    template <typename T>
    Reg<T> load_global(lane_mask mask, const Reg<const T*>& addr) {
        account_load(mask, addr);
        Reg<T> r{};
        for_each_lane(mask, [&](int l) { r[l] = *addr[l]; });
        return r;
    }

    template <typename T>
    void store_global(lane_mask mask, const Reg<T*>& addr, const Reg<T>& v) {
        account_store(mask, addr);
        for_each_lane(mask, [&](int l) { *addr[l] = v[l]; });
    }

    /// Coalesced helper: lane l accesses base[l] (the common fast path).
    template <typename T>
    Reg<T> load_global_strided(lane_mask mask, const T* base,
                               index_type stride = 1) {
        Reg<const T*> addr{};
        for (int l = 0; l < width; ++l) {
            addr[l] = base + static_cast<std::ptrdiff_t>(l) * stride;
        }
        return load_global(mask, addr);
    }

    template <typename T>
    void store_global_strided(lane_mask mask, T* base, const Reg<T>& v,
                              index_type stride = 1) {
        Reg<T*> addr{};
        for (int l = 0; l < width; ++l) {
            addr[l] = base + static_cast<std::ptrdiff_t>(l) * stride;
        }
        store_global(mask, addr, v);
    }

    /// Accounting-only load: charge the transactions of a warp load at the
    /// given addresses without moving data. Used when a kernel reads from
    /// an auxiliary layout (e.g. GH-T's transpose-friendly multiplier
    /// copy) that the emulation keeps fused in the primary buffer.
    ///
    /// Loads are streamed (these kernels touch every element once): each
    /// distinct sector of one instruction is a transaction; sectors beyond
    /// the first also count as LSU replays.
    template <typename P>
    void account_load(lane_mask mask, const Reg<P>& addr) {
        ++stats_.load_requests;
        const auto sectors = count_sectors(mask, addr);
        stats_.load_transactions += sectors;
        stats_.load_replays += sectors > 0 ? sectors - 1 : 0;
    }

    /// Accounting-only store (see account_load).
    ///
    /// Stores go through a write-back L2: a sector already dirtied by this
    /// kernel run is combined and produces no new DRAM transaction, but
    /// every per-instruction sector beyond the first still replays through
    /// the LSU. This is why the paper sees GH-T's non-coalesced factor
    /// writes cost only a few percent (issue pressure), not a bandwidth
    /// multiple.
    template <typename P>
    void account_store(lane_mask mask, const Reg<P>& addr) {
        ++stats_.store_requests;
        std::array<std::uintptr_t, warp_size> sectors{};
        const int n = collect_sectors(mask, addr, sectors);
        stats_.store_replays += n > 0 ? n - 1 : 0;
        for (int i = 0; i < n; ++i) {
            if (dirty_sectors_.insert(sectors[i]).second) {
                ++stats_.store_transactions;
            }
        }
    }

    /// Drop the write-combining history (e.g. between unrelated launches).
    void flush_write_combiner() { dirty_sectors_.clear(); }

    // ---------------------------------------------------------------
    // Shared memory (32 banks x 4 bytes; conflict = serialized replays)
    // ---------------------------------------------------------------

    /// Account a warp-wide shared-memory access at the given per-lane word
    /// offsets; returns nothing (data movement is done by the caller on
    /// host memory), only accounting happens here.
    void shared_access(lane_mask mask, const Reg<index_type>& word_offset,
                       int words_per_element = 1) {
        ++stats_.shared_accesses;
        // Bank b serves lanes with (offset * words) % 32 == b; the access
        // replays max-multiplicity times.
        std::array<int, warp_size> hits{};
        int replays = 1;
        for_each_lane(mask, [&](int l) {
            const int bank = static_cast<int>(
                (static_cast<std::uint32_t>(word_offset[l]) *
                 static_cast<std::uint32_t>(words_per_element)) %
                warp_size);
            ++hits[bank];
            replays = std::max(replays, hits[bank]);
        });
        stats_.shared_bank_conflicts += replays - 1;
    }

    // ---------------------------------------------------------------

    /// Invoke f(l) for each active lane l in mask (emulation helper, not
    /// an instruction; does not touch the counters).
    template <typename F>
    static void for_each_lane(lane_mask mask, F&& f) {
        while (mask != 0) {
            const int l = std::countr_zero(mask);
            f(l);
            mask &= mask - 1;
        }
    }

private:
    /// Collect distinct 32-byte sector ids of one instruction; n <= 32, so
    /// a small insertion set beats hashing.
    template <typename P>
    static int collect_sectors(lane_mask mask, const Reg<P>& addr,
                               std::array<std::uintptr_t, warp_size>& out) {
        int n = 0;
        for_each_lane(mask, [&](int l) {
            const auto sec =
                reinterpret_cast<std::uintptr_t>(addr[l]) / 32u;
            for (int i = 0; i < n; ++i) {
                if (out[i] == sec) {
                    return;
                }
            }
            out[n++] = sec;
        });
        return n;
    }

    template <typename P>
    static size_type count_sectors(lane_mask mask, const Reg<P>& addr) {
        std::array<std::uintptr_t, warp_size> sectors{};
        return collect_sectors(mask, addr, sectors);
    }

    KernelStats stats_;
    std::unordered_set<std::uintptr_t> dirty_sectors_;
};

}  // namespace vbatch::simt
