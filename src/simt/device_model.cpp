#include "simt/device_model.hpp"

#include <algorithm>
#include <cmath>

#include "base/macros.hpp"

namespace vbatch::simt {

WarpFootprint register_kernel_footprint(index_type /*block_size*/,
                                        Precision prec, int extra_regs) {
    // The padded kernels hold a full warp-width row regardless of the
    // block size, so the footprint depends on the precision only.
    WarpFootprint fp;
    const int words = prec == Precision::dp ? 2 : 1;
    // One padded row of `warp_size` values per lane, plus bookkeeping
    // (pivot flags, pointers, loop counters).
    fp.registers_per_lane = warp_size * words + extra_regs;
    fp.shared_bytes = 0;
    return fp;
}

DeviceModel DeviceModel::p100() { return DeviceModel{}; }

size_type DeviceModel::resident_warps(const WarpFootprint& fp) const {
    const int regs_per_warp = fp.registers_per_lane * warp_size;
    int warps_by_regs = registers_per_sm / std::max(1, regs_per_warp);
    int warps_by_smem = fp.shared_bytes > 0
                            ? shared_bytes_per_sm / fp.shared_bytes
                            : max_warps_per_sm;
    const int per_sm = std::clamp(std::min(warps_by_regs, warps_by_smem), 1,
                                  max_warps_per_sm);
    return static_cast<size_type>(per_sm) * num_sms;
}

double DeviceModel::estimate_seconds(const KernelStats& totals,
                                     size_type num_warps, Precision prec,
                                     const WarpFootprint& fp) const {
    VBATCH_ENSURE(num_warps > 0, "empty launch");
    const double fp_rate =
        (prec == Precision::dp ? fp64_issue_per_sm : fp32_issue_per_sm);
    // A 64-bit shuffle moves its value as two 32-bit shuffle operations.
    const double shuffle_words = prec == Precision::dp ? 2.0 : 1.0;

    // Issue-cycle budget across the whole device (cycles summed per SM).
    const double issue_cycles =
        static_cast<double>(totals.fp_instructions) / fp_rate +
        static_cast<double>(totals.div_instructions) / div_issue_per_sm +
        static_cast<double>(totals.shuffle_instructions) * shuffle_words /
            shuffle_issue_per_sm +
        static_cast<double>(totals.misc_instructions) / misc_issue_per_sm +
        static_cast<double>(totals.shared_accesses +
                            totals.shared_bank_conflicts) /
            shared_issue_per_sm +
        static_cast<double>(totals.load_requests + totals.store_requests +
                            totals.load_replays + totals.store_replays) /
            lsu_issue_per_sm;
    const double t_compute = issue_cycles / (num_sms * clock_hz);

    const double bytes = static_cast<double>(totals.load_bytes() +
                                             totals.store_bytes());
    // Memory-level parallelism ramp: a launch with few warps cannot keep
    // the HBM pipeline full. Smooth saturation w / (w + w_half), with
    // w_half chosen so the knee sits near 5-10k problems like Fig. 4/6.
    const double w = static_cast<double>(num_warps);
    const double w_half = bw_saturation_warps * 0.3;
    const double bw_utilization = w / (w + w_half);
    const double t_memory = bytes / (effective_bandwidth * bw_utilization);

    // Latency bound: each wave of resident warps cannot finish faster than
    // one warp's dependent critical path. Low register-limited occupancy
    // makes this bound bite, which is what keeps these register-heavy
    // kernels below peak bandwidth.
    const size_type resident = resident_warps(fp);
    const double waves =
        std::ceil(static_cast<double>(num_warps) /
                  static_cast<double>(resident));
    const double per_warp_issues =
        static_cast<double>(totals.fp_instructions +
                            totals.div_instructions +
                            totals.shuffle_instructions +
                            totals.misc_instructions +
                            totals.load_requests + totals.store_requests +
                            totals.load_replays + totals.store_replays) /
        static_cast<double>(num_warps);
    const double t_crit = per_warp_issues * latency_cycles / clock_hz;
    const double t_latency = waves * t_crit;

    return launch_overhead_s_ + std::max({t_compute, t_memory, t_latency});
}

namespace {

/// Linear interpolation in a (size -> GFLOPS) table with entries for every
/// size in 4..32. Tables are transcribed from the curves in the paper's
/// Fig. 5 (GETRF) and Fig. 7 (GETRS): a slowly rising envelope with tuned
/// kernels at specific sizes producing local peaks.
double table_lookup(const double* table, index_type m) {
    const index_type mm = std::clamp<index_type>(m, 4, 32);
    return table[mm - 4];
}

// cuBLAS getrfBatched, single precision: local peaks at m = 8, 16, 29.
constexpr double vendor_getrf_sp[29] = {
    //  4      5      6      7      8      9     10     11     12
    8.0,  11.0,  15.0,  20.0,  42.0,  26.0,  30.0,  34.0,  40.0,
    // 13     14     15     16     17     18     19     20     21
    46.0,  54.0,  70.0, 110.0,  62.0,  66.0,  72.0,  80.0,  84.0,
    // 22     23     24     25     26     27     28     29     30
    88.0,  92.0, 100.0, 104.0, 110.0, 118.0, 128.0, 150.0, 120.0,
    // 31     32
    130.0, 170.0};

// cuBLAS getrfBatched, double precision: local peaks at m = 8, 20.
constexpr double vendor_getrf_dp[29] = {
    6.0,   9.0,  12.0,  16.0,  34.0,  20.0,  24.0,  28.0,  33.0,
    38.0,  43.0,  48.0,  54.0,  58.0,  62.0,  68.0,  92.0,  70.0,
    74.0,  78.0,  82.0,  85.0,  88.0,  91.0,  94.0,  96.0,  97.0,
    99.0, 100.0};

// cuBLAS getrsBatched (permute + two TRSV), single precision. The paper
// reports it optimized for m < 16 and ~4.5x slower than the small-size LU
// TRSV at m = 32 (90+ GFLOPS -> ~20).
constexpr double vendor_getrs_sp[29] = {
    3.0,   4.0,   5.5,   7.0,  12.0,   9.0,  10.0,  11.0,  12.5,
    13.5,  14.5,  16.0,  18.0,  15.0,  15.5,  16.0,  16.5,  17.0,
    17.5,  18.0,  18.5,  19.0,  19.2,  19.5,  19.7,  20.0,  20.2,
    20.5,  20.5};

// cuBLAS getrsBatched, double precision (~4x slower than small-size LU at
// m = 32: close to 80 -> ~19).
constexpr double vendor_getrs_dp[29] = {
    2.5,   3.5,   5.0,   6.5,  11.0,   8.0,   9.0,  10.0,  11.0,
    12.0,  13.0,  14.5,  16.5,  13.5,  14.0,  14.5,  15.0,  15.5,
    16.0,  16.5,  17.0,  17.5,  17.8,  18.0,  18.3,  18.5,  18.7,
    19.0,  19.0};

}  // namespace

double VendorModel::getrf_gflops(index_type m, Precision prec) const {
    return prec == Precision::dp ? table_lookup(vendor_getrf_dp, m)
                                 : table_lookup(vendor_getrf_sp, m);
}

double VendorModel::getrs_gflops(index_type m, Precision prec) const {
    return prec == Precision::dp ? table_lookup(vendor_getrs_dp, m)
                                 : table_lookup(vendor_getrs_sp, m);
}

double VendorModel::estimate_seconds(double useful_flops,
                                     double asymptotic_gflops,
                                     size_type num_problems) const {
    VBATCH_ENSURE(num_problems > 0, "empty launch");
    const double t_throughput = useful_flops / (asymptotic_gflops * 1e9);
    // Same ramp behaviour as the open kernels: a launch cannot beat the
    // per-wave latency floor. Vendor kernels use one thread-block per
    // problem; assume a comparable occupancy of 2048 problems in flight
    // and a 3 us critical path per problem wave.
    const double waves = std::ceil(static_cast<double>(num_problems) / 2048.0);
    const double t_latency = waves * 3e-6;
    return device_.launch_overhead_seconds() +
           std::max(t_throughput, t_latency);
}

}  // namespace vbatch::simt
