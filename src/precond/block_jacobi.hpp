// Block-Jacobi preconditioner -- the complete ecosystem of the paper
// (Section III.C): supervariable blocking -> diagonal block extraction ->
// batched factorization (setup), batched triangular solves (application).
//
// The interchangeable factorization backends reproduce the paper's
// comparison:
//   lu             - the small-size LU with implicit pivoting (this work)
//   lu_simd        - the same LU routed through the interleaved SIMD
//                    kernels: same-size classes of the block layout run
//                    lane-parallel, ragged leftovers take the scalar path;
//                    numerically identical to `lu` with eager solves
//   gauss_huard    - GH factorization, solve reads the factors row-wise
//   gauss_huard_t  - GH with transpose-friendly factor storage
//   gje_inversion  - explicit inversion via Gauss-Jordan; application is a
//                    batched GEMV (the strategy of [4])
//   cholesky       - batched Cholesky for SPD blocks (the paper's future
//                    work, Section V); throws if a block is not SPD
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/timer.hpp"
#include "blocking/extraction.hpp"
#include "blocking/gather_plan.hpp"
#include "blocking/size_classes.hpp"
#include "blocking/supervariable.hpp"
#include "core/cholesky.hpp"
#include "core/gauss_huard.hpp"
#include "core/gauss_jordan.hpp"
#include "core/getrf.hpp"
#include "core/rbt.hpp"
#include "core/trsv.hpp"
#include "core/vectorized.hpp"
#include "precond/preconditioner.hpp"
#include "precond/recovery.hpp"
#include "sparse/csr.hpp"

namespace vbatch::precond {

enum class BlockJacobiBackend { lu, lu_simd, gauss_huard, gauss_huard_t,
                                gje_inversion, cholesky };

std::string backend_name(BlockJacobiBackend backend);

/// The complete symbolic (pattern-only) state of a block-Jacobi setup:
/// block layout, extraction gather plan, interleaved group shapes +
/// lane gather maps, and the fused task lists. Everything in here
/// depends only on the sparsity pattern, the block bound and (for the
/// lane path) the vector width -- never on the values -- so one
/// immutable instance can be shared by any number of preconditioners
/// over same-pattern matrices (the service layer's plan cache holds
/// exactly these, refcounted through the shared_ptr).
struct BlockJacobiSymbolic {
    core::BatchLayoutPtr layout;
    /// Cached CSR -> block extraction plan (carries the 64-bit pattern
    /// fingerprint adoption is validated against).
    blocking::GatherPlan plan;
    /// ISA the lane-path groups were built for; scalar when lanes == 1.
    core::SimdIsa isa = core::SimdIsa::scalar;
    /// Matrices per vector instruction. 1 = scalar path only (shared by
    /// every non-lane backend of the same T-independent task split).
    index_type lanes = 1;
    /// The agglomeration bound the layout was derived under.
    index_type max_block_size = 0;

    /// One same-size class of the lane path (empty when lanes == 1).
    struct Group {
        index_type size = 0;
        /// Block ids assigned to the lanes, in lane order.
        std::vector<size_type> indices;
        /// CSR-value -> lane-slot gather map.
        core::InterleavedGatherMap gather;
        /// row_offsets[l] = flat row offset of lane l's block.
        std::vector<size_type> row_offsets;
        /// Lane chunks of the group (= ceil(indices.size() / lanes)).
        size_type chunks = 0;
    };
    std::vector<Group> groups;
    /// Ragged leftovers taking the scalar path (lane path only).
    std::vector<size_type> scalar_blocks;
    /// Blocks solved through the interleaved lanes.
    size_type simd_block_count = 0;

    /// One unit of fused numeric work: either chunk `chunk` of
    /// groups[group] (group != no_group) or a scalar block range
    /// [lo, hi).
    struct Task {
        size_type group = no_group;
        size_type chunk = 0;
        size_type lo = 0;
        size_type hi = 0;
    };
    static constexpr size_type no_group = -1;
    std::vector<Task> tasks;
    /// Every group's chunks flattened (the lane-path apply task list).
    struct Chunk {
        size_type group;
        size_type chunk;
    };
    std::vector<Chunk> apply_chunks;

    /// Build-time attribution (copied into SetupPhases when a
    /// preconditioner builds its own symbolic; adoption costs zero).
    double blocking_seconds = 0.0;
    double plan_seconds = 0.0;

    /// Heap footprint of the index arrays; the service-layer cache
    /// charges entries against its byte budget with this.
    std::size_t byte_size() const noexcept;
};

using BlockJacobiSymbolicPtr = std::shared_ptr<const BlockJacobiSymbolic>;

struct BlockJacobiOptions {
    BlockJacobiBackend backend = BlockJacobiBackend::lu;
    /// Upper bound for the supervariable agglomeration (Table I sweeps
    /// {8, 12, 16, 24, 32}).
    index_type max_block_size = 32;
    /// Eager or lazy triangular solves (LU backend only; lu_simd always
    /// solves eagerly, which is the variant the paper selects).
    core::TrsvVariant trsv_variant = core::TrsvVariant::eager;
    /// Instruction set for the lu_simd backend (clamped by availability;
    /// defaults to the widest the machine supports).
    core::SimdIsa simd = core::detect_simd_isa();
    /// Pivoting scheme of the lu / lu_simd backends. PivotScheme::rbt
    /// preprocesses every block with a seeded random butterfly transform
    /// and factorizes without pivoting (core/rbt.hpp); blocks the
    /// butterflies fail to regularize are refactorized with implicit
    /// pivoting through the recovery chain, so the setup stays total --
    /// which is why rbt requires a non-strict recovery policy.
    PivotScheme pivot = PivotScheme::implicit;
    /// Butterfly seed for pivot == PivotScheme::rbt (default:
    /// VBATCH_RBT_SEED when set, else 42).
    std::uint64_t rbt_seed = core::default_rbt_seed();
    /// Butterfly recursion depth for pivot == PivotScheme::rbt (clamped
    /// to [1, core::rbt::max_rbt_depth]).
    index_type rbt_depth = 2;
    /// Parallelize setup/application over the blocks.
    bool parallel = true;
    /// Reuse a precomputed block structure instead of running
    /// supervariable blocking (empty = detect).
    core::BatchLayoutPtr layout;
    /// Per-block breakdown handling. The default (Mode::full) makes the
    /// setup total: it never throws, and degraded blocks are recorded in
    /// block_status() / recovery_summary(). RecoveryPolicy::strict()
    /// restores the old throwing behavior.
    RecoveryPolicy recovery;
    /// Adopt a prebuilt symbolic analysis (see
    /// build_block_jacobi_symbolic) instead of running blocking +
    /// analysis here. The instance must have been built for the same
    /// pattern, block bound, and -- for lu_simd -- the same ISA/lane
    /// width as this setup; adoption validates all of that and throws
    /// vbatch::BadParameter on a mismatch. Takes precedence over
    /// `layout`. Empty = analyze locally.
    BlockJacobiSymbolicPtr symbolic;
};

/// Run only the symbolic layer of a block-Jacobi setup for `a` under
/// `options` (blocking, gather-plan analysis, size-class bucketing,
/// lane gather maps, fused task lists) and return it as an immutable
/// shareable object. T matters only through the lane width of the
/// lu_simd backend; every scalar-path backend of either precision can
/// adopt the same instance.
template <typename T>
BlockJacobiSymbolicPtr build_block_jacobi_symbolic(
    const sparse::Csr<T>& a, const BlockJacobiOptions& options);

template <typename T>
class BlockJacobi final : public Preconditioner<T> {
public:
    /// Setup in two layers. The *symbolic* phase (once per sparsity
    /// pattern) runs supervariable blocking, size-class bucketing and
    /// builds the cached extraction gather plan + fused task list; the
    /// *numeric* phase gathers the values straight into the persistent
    /// factor storage and factorizes them in one fused parallel pass,
    /// then recovers per-block breakdowns. Under the default
    /// RecoveryPolicy the setup is total (degraded blocks are boosted or
    /// fall back, see recovery.hpp); under RecoveryPolicy::strict() it
    /// throws vbatch::SingularMatrix if a diagonal block breaks down.
    BlockJacobi(const sparse::Csr<T>& a, BlockJacobiOptions options);

    /// Numeric re-setup: re-runs only the numeric phase on `a`'s values
    /// through the cached symbolic plan (the time-stepping / Newton case
    /// after sparse::Csr::set_values). Factors, pivots, statuses and
    /// recovery outcomes are bitwise identical to a fresh setup on `a`;
    /// throws vbatch::BadParameter when `a`'s sparsity pattern differs
    /// from the one analyzed at construction.
    void refresh(const sparse::Csr<T>& a) override;

    /// z := M^{-1} r. Performs no heap allocation: the lu_simd path runs
    /// on persistent per-group workspaces and precomputed row-offset maps
    /// built at setup. Consequently apply is NOT safe to call concurrently
    /// on the same object (distinct objects are fine); the Krylov solvers
    /// apply strictly one at a time.
    void apply(std::span<const T> r, std::span<T> z) const override;

    std::string name() const override;
    double setup_seconds() const override { return setup_seconds_; }
    size_type num_blocks() const override { return layout_->count(); }
    /// Canonical per-apply traffic (sum of getrs flop/byte models over
    /// the blocks), for the solvers' roofline attribution.
    double apply_flops() const override { return apply_flops_; }
    double apply_bytes() const override { return apply_bytes_; }

    /// Per-phase breakdown of setup_seconds() (the paper's cost model
    /// separates blocking, extraction and factorization; Figs. 4-9).
    /// After refresh() the numeric fields (gather/factorize/pack/
    /// recovery) describe the most recent numeric pass; the symbolic
    /// fields (blocking/plan) keep their construction-time values.
    struct SetupPhases {
        /// Supervariable blocking (symbolic; zero when a layout is given).
        double blocking_seconds = 0.0;
        /// Symbolic analysis: gather-plan build, size-class bucketing,
        /// interleaved-group layout and the fused task list.
        double plan_seconds = 0.0;
        /// Numeric gather of the CSR values into the factor storage (the
        /// former extraction phase, now fused into the chunk tasks).
        double gather_seconds = 0.0;
        double factorize_seconds = 0.0;
        /// Interleaved -> packed factor/pivot writeback of the SIMD
        /// chunks (previously folded into factorize_seconds).
        double pack_seconds = 0.0;
        /// Degeneracy scan + boosting/fallback work (0 when no block
        /// needed recovery or under the strict policy).
        double recovery_seconds = 0.0;
    };
    const SetupPhases& setup_phases() const { return setup_phases_; }

    /// Per-block setup outcome (one entry per diagonal block).
    const std::vector<core::BlockStatus>& block_status() const {
        return block_status_;
    }
    core::RecoverySummary recovery_summary() const override {
        return recovery_;
    }

    const core::BatchLayout& layout() const { return *layout_; }
    const BlockJacobiOptions& options() const { return options_; }

    /// The factored blocks (for tests / inspection).
    const core::BatchedMatrices<T>& factors() const { return factors_; }
    const core::BatchedPivots& pivots() const { return pivots_; }

    /// The cached symbolic extraction plan (for tests / inspection).
    const blocking::GatherPlan& gather_plan() const { return sym_->plan; }
    /// The full symbolic state -- either built here or adopted from
    /// options.symbolic; hand it to further same-pattern setups to skip
    /// their symbolic phase entirely.
    const BlockJacobiSymbolicPtr& symbolic() const { return sym_; }
    /// True when this setup adopted a shared symbolic instead of
    /// building one.
    bool symbolic_shared() const noexcept { return symbolic_shared_; }
    /// Wall time of the last refresh() (0 before the first refresh).
    double refresh_seconds() const noexcept { return refresh_seconds_; }

    /// Conditioning diagnostics of the extracted diagonal blocks (the
    /// stability aspect Sections II.C/IV.D discuss: ill-conditioned blocks
    /// are where the factorization strategies' rounding differences show).
    struct Diagnostics {
        size_type num_blocks = 0;
        index_type min_block_size = 0;
        index_type max_block_size = 0;
        double mean_block_size = 0.0;
        /// 1-norm condition numbers of the blocks (inf for singular).
        double min_condition = 0.0;
        double max_condition = 0.0;
        double geomean_condition = 0.0;
    };

    /// Recomputes block condition numbers from `a` (setup-time matrix is
    /// not retained); cost O(sum m_i^3), intended for analysis runs.
    Diagnostics diagnostics(const sparse::Csr<T>& a) const;

    /// Blocks solved through the interleaved lanes (lu_simd backend only;
    /// the remainder takes the scalar per-block path).
    size_type num_simd_blocks() const noexcept {
        return sym_ ? sym_->simd_block_count : 0;
    }

private:
    /// The *numeric* state of one same-size class; the group shapes,
    /// lane assignments and gather maps live in the shared symbolic
    /// (sym_->groups, indexed in parallel with this vector).
    struct SimdGroup {
        core::InterleavedGroup<T> group;
        /// Per-lane entry/pivot statistics scratch of the fused numeric
        /// pass (monitored setups only). Chunk tasks write disjoint lane
        /// ranges.
        std::vector<core::FactorInfo> lane_infos;
        /// Persistent right-hand-side workspace, sized once at setup; the
        /// chunk tasks gather into / scatter out of it on every apply so
        /// no InterleavedVectors is ever constructed per application.
        /// mutable: apply is logically const but stages data here. Owned
        /// exclusively by the chunk tasks of this group, each of which
        /// touches a disjoint chunk.
        mutable core::InterleavedVectors<T> rhs;
        /// Lane-interleaved butterfly coefficient tables of the group
        /// (PivotScheme::rbt only; empty otherwise). Laid out
        /// coef[((chunk*depth + t)*m + i)*lanes + lane], padding lanes
        /// all-ones; filled once at construction -- the butterflies are
        /// a pure function of (seed, block), so refresh() reuses them.
        AlignedBuffer<T> ucoef;
        AlignedBuffer<T> vcoef;
    };

    static constexpr size_type no_group = BlockJacobiSymbolic::no_group;

    /// Check an adopted shared symbolic against `a` and the options
    /// (pattern fingerprint, block bound, ISA/lane width).
    void validate_symbolic(const sparse::Csr<T>& a) const;
    /// Fused numeric phase: one parallel pass gathering + factorizing all
    /// blocks into the persistent storage, then breakdown recovery.
    /// Shared by construction and refresh(); resets all numeric state.
    void run_numeric(const sparse::Csr<T>& a);
    /// i-th block of the scalar (non-lane) path.
    size_type scalar_block(size_type i) const {
        return sym_->lanes > 1
                   ? sym_->scalar_blocks[static_cast<std::size_t>(i)]
                   : i;
    }
    size_type scalar_count() const {
        return sym_->lanes > 1
                   ? static_cast<size_type>(sym_->scalar_blocks.size())
                   : layout_->count();
    }
    /// Build the persistent rhs workspaces, offset maps and the flat
    /// chunk-task list apply_simd dispatches over (setup-time only).
    void build_apply_workspaces();
    void apply_simd(std::span<const T> r, std::span<T> z) const;
    /// Degeneracy scan + boost/fallback pipeline (non-strict setup only).
    void recover(std::span<const T> values, core::FactorizeStatus& status);
    /// Run the backend's single-block factorization on block b in place;
    /// fills the pivot statistics when `info` is non-null.
    index_type factorize_block(size_type b, core::FactorInfo* info);
    /// Scalar fast-path factorization of one RBT block: pristine entry
    /// stats, butterfly transform, identity pivots, pivot-free LU,
    /// post-hoc diagonal pivot scan -- the op-for-op scalar mirror of
    /// the lane chunk pipeline, so both paths report identical bits.
    index_type factorize_block_rbt(size_type b, core::FactorInfo* info);
    bool rbt_enabled() const noexcept {
        return options_.pivot == PivotScheme::rbt;
    }
    /// Export the numeric-phase timings and per-status block counters
    /// to the metrics registry (shared by construction and refresh()).
    void record_numeric_metrics() const;
    /// Overwrite a degraded block's factors/pivots with the identity so
    /// factors()/pivots() and any stray factored-path application of the
    /// block stay finite.
    void set_identity_block(size_type b);
    void apply_fallback_block(size_type b, std::span<const T> r,
                              std::span<T> z) const;

    BlockJacobiOptions options_;
    /// The (possibly shared) symbolic state: layout, gather plan, group
    /// shapes + lane maps and the fused task lists. Immutable; refresh()
    /// and all numeric passes only read it.
    BlockJacobiSymbolicPtr sym_;
    bool symbolic_shared_ = false;
    core::BatchLayoutPtr layout_;  // alias of sym_->layout
    core::BatchedMatrices<T> factors_;
    core::BatchedPivots pivots_;
    /// Numeric lane-path state, indexed in parallel with sym_->groups.
    std::vector<SimdGroup> simd_groups_;
    /// Bytes one apply streams (factors + r + z) and the flops of the
    /// batched triangular solves, precomputed at setup and fed to the
    /// metrics registry / roofline attribution per application.
    double apply_bytes_ = 0.0;
    double apply_flops_ = 0.0;
    double setup_seconds_ = 0.0;
    double refresh_seconds_ = 0.0;
    SetupPhases setup_phases_;
    /// Per-block outcomes; all `ok` under the strict policy.
    std::vector<core::BlockStatus> block_status_;
    core::RecoverySummary recovery_;
    /// Row-wise inverse diagonal used by fell_back/singular blocks
    /// (1 where the pristine diagonal was zero/non-finite); empty when
    /// no block fell back.
    std::vector<T> fallback_inv_diag_;
    /// Blocks applied through fallback_inv_diag_ instead of the factors.
    std::vector<size_type> degraded_blocks_;
    /// Butterfly generator (PivotScheme::rbt; default-constructed and
    /// unused otherwise).
    core::RbtTransforms<T> rbt_;
    /// rbt_applied_[b] != 0 when block b's factors are its butterfly-
    /// transformed pivot-free LU (apply wraps the solve in forward/
    /// backward vector transforms). Empty unless PivotScheme::rbt.
    std::vector<char> rbt_applied_;
    /// Blocks that left the fast path but hold usable *pivoted* factors
    /// (recovered clean or boosted). Their lanes still run the group's
    /// pivot-free solve; a per-apply fix-up pass re-solves them through
    /// the scalar pivoted path.
    std::vector<size_type> rbt_pivoted_blocks_;
    /// Blocks the degeneracy monitor flagged on the fast path, and the
    /// subset (currently all of them) refactorized off it.
    size_type rbt_monitored_ = 0;
    size_type rbt_fellback_ = 0;

public:
    /// True when block b applies through its butterfly-transformed
    /// pivot-free factors (always false unless PivotScheme::rbt).
    bool rbt_applied(size_type b) const noexcept {
        return !rbt_applied_.empty() &&
               rbt_applied_[static_cast<std::size_t>(b)] != 0;
    }
    /// Fast-path robustness counters of the last numeric pass
    /// (PivotScheme::rbt): blocks flagged degenerate by the monitor and
    /// blocks refactorized off the fast path.
    size_type rbt_monitored() const noexcept { return rbt_monitored_; }
    size_type rbt_fellback() const noexcept { return rbt_fellback_; }
};

}  // namespace vbatch::precond
