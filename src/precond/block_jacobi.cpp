#include "precond/block_jacobi.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>

#include "base/thread_pool.hpp"
#include "blas/lapack.hpp"
#include "core/bytes.hpp"
#include "core/flops.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"

namespace vbatch::precond {

namespace {

/// Lock-free accumulation of the per-task phase timings (the tasks of
/// one numeric pass add their slices concurrently).
void atomic_add(std::atomic<double>& acc, double v) {
    double cur = acc.load(std::memory_order_relaxed);
    while (!acc.compare_exchange_weak(cur, cur + v,
                                      std::memory_order_relaxed)) {
    }
}

/// Blocks per timing sub-batch of a scalar-range task: coarse enough to
/// amortize the clock reads against small-block work, fine enough to
/// split the gather/factorize attribution honestly.
constexpr size_type scalar_stats_batch = 8;

}  // namespace

std::string backend_name(BlockJacobiBackend backend) {
    switch (backend) {
    case BlockJacobiBackend::lu: return "lu";
    case BlockJacobiBackend::lu_simd: return "lu-simd";
    case BlockJacobiBackend::gauss_huard: return "gh";
    case BlockJacobiBackend::gauss_huard_t: return "gh-t";
    case BlockJacobiBackend::gje_inversion: return "gje-inv";
    case BlockJacobiBackend::cholesky: return "cholesky";
    }
    return "unknown";
}

std::size_t BlockJacobiSymbolic::byte_size() const noexcept {
    std::size_t bytes = sizeof(BlockJacobiSymbolic);
    if (layout) {
        // sizes + row offsets of the partition.
        bytes += static_cast<std::size_t>(layout->count()) *
                 (sizeof(index_type) + sizeof(size_type));
    }
    bytes += plan.byte_size();
    for (const auto& g : groups) {
        bytes += g.indices.capacity() * sizeof(size_type) +
                 g.row_offsets.capacity() * sizeof(size_type) +
                 (g.gather.lane_ptrs.capacity() + g.gather.src.capacity() +
                  g.gather.dst.capacity()) *
                     sizeof(size_type) +
                 sizeof(Group);
    }
    bytes += scalar_blocks.capacity() * sizeof(size_type) +
             tasks.capacity() * sizeof(Task) +
             apply_chunks.capacity() * sizeof(Chunk);
    return bytes;
}

template <typename T>
BlockJacobiSymbolicPtr build_block_jacobi_symbolic(
    const sparse::Csr<T>& a, const BlockJacobiOptions& options) {
    auto sym = std::make_shared<BlockJacobiSymbolic>();
    sym->max_block_size = options.max_block_size;
    {
        ScopedTimer phase(sym->blocking_seconds);
        if (options.layout) {
            sym->layout = options.layout;
        } else {
            blocking::BlockingOptions bopts;
            bopts.max_block_size = options.max_block_size;
            sym->layout = blocking::supervariable_layout(a, bopts);
        }
    }
    ScopedTimer phase(sym->plan_seconds);
    sym->plan = blocking::GatherPlan(a, sym->layout);
    if (options.backend == BlockJacobiBackend::lu_simd) {
        // Clamp once so the kept groups, metrics and name() agree on the
        // ISA actually executed.
        auto isa = options.simd;
        if (!core::simd_isa_available(isa)) {
            isa = core::detect_simd_isa();
        }
        sym->isa = isa;
        sym->lanes = core::simd_lanes<T>(isa);
        const auto plan =
            blocking::build_size_class_plan(*sym->layout, sym->lanes);
        sym->groups.reserve(plan.vector_groups.size());
        for (const auto& cls : plan.vector_groups) {
            BlockJacobiSymbolic::Group g;
            g.size = cls.size;
            g.indices = cls.indices;
            g.gather = sym->plan.interleaved_map(g.indices, sym->lanes);
            g.row_offsets.resize(g.indices.size());
            for (std::size_t l = 0; l < g.indices.size(); ++l) {
                g.row_offsets[l] = sym->layout->row_offset(g.indices[l]);
            }
            const auto count = static_cast<size_type>(g.indices.size());
            g.chunks = (count + sym->lanes - 1) / sym->lanes;
            const auto gi = static_cast<size_type>(sym->groups.size());
            for (size_type c = 0; c < g.chunks; ++c) {
                sym->tasks.push_back({gi, c, 0, 0});
                sym->apply_chunks.push_back({gi, c});
            }
            sym->groups.push_back(std::move(g));
        }
        sym->simd_block_count = plan.vector_block_count();
        sym->scalar_blocks = plan.scalar_indices;
    }
    // Scalar-path blocks (all blocks for the non-lane backends) run in
    // ranges of batch_entry_grain -- task units of a weight comparable
    // to one SIMD chunk, matching the grain the batch drivers used.
    const auto nscalar =
        sym->lanes > 1 ? static_cast<size_type>(sym->scalar_blocks.size())
                       : sym->layout->count();
    for (size_type lo = 0; lo < nscalar; lo += batch_entry_grain) {
        sym->tasks.push_back({BlockJacobiSymbolic::no_group, 0, lo,
                              std::min(lo + batch_entry_grain, nscalar)});
    }
    // Every symbolic construction is one plan build, whether it happens
    // inline in a BlockJacobi setup or ahead of time for sharing (the
    // service plan cache); adopters count plan_reuses instead.
    obs::Registry::global().add("block_jacobi.plan_builds", 1.0);
    return sym;
}

template <typename T>
void BlockJacobi<T>::validate_symbolic(const sparse::Csr<T>& a) const {
    VBATCH_ENSURE(sym_->plan.matches(a),
                  "block-Jacobi setup: shared symbolic was analyzed for a "
                  "different sparsity pattern");
    VBATCH_ENSURE(sym_->max_block_size == options_.max_block_size,
                  "block-Jacobi setup: shared symbolic was built under a "
                  "different block bound");
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        auto isa = options_.simd;
        if (!core::simd_isa_available(isa)) {
            isa = core::detect_simd_isa();
        }
        VBATCH_ENSURE(sym_->lanes == core::simd_lanes<T>(isa) &&
                          sym_->isa == isa,
                      "block-Jacobi setup: shared symbolic was built for a "
                      "different ISA or lane width");
    } else {
        VBATCH_ENSURE(sym_->lanes == 1,
                      "block-Jacobi setup: scalar-path backend handed a "
                      "lane-interleaved symbolic");
    }
}

template <typename T>
BlockJacobi<T>::BlockJacobi(const sparse::Csr<T>& a,
                            BlockJacobiOptions options)
    : options_(std::move(options)) {
    obs::TraceRegion trace("block_jacobi::setup");
    obs::PerfRegion perf("block_jacobi::setup");
    Timer timer;
    if (options_.pivot == PivotScheme::rbt) {
        VBATCH_ENSURE(options_.backend == BlockJacobiBackend::lu ||
                          options_.backend == BlockJacobiBackend::lu_simd,
                      "block-Jacobi setup: pivot=rbt requires the lu or "
                      "lu-simd backend");
        VBATCH_ENSURE(
            options_.recovery.mode != RecoveryPolicy::Mode::strict,
            "block-Jacobi setup: pivot=rbt requires a non-strict recovery "
            "policy (degenerate blocks must be able to fall back to the "
            "pivoted path)");
        rbt_ = core::RbtTransforms<T>(options_.rbt_seed,
                                      options_.rbt_depth);
    }
    if (options_.symbolic) {
        sym_ = options_.symbolic;
        symbolic_shared_ = true;
        validate_symbolic(a);
        // Adoption is free: blocking/plan_seconds stay zero -- that *is*
        // the point of sharing the symbolic across tenants.
    } else {
        obs::TraceRegion plan_trace("setup_plan");
        sym_ = build_block_jacobi_symbolic(a, options_);
        setup_phases_.blocking_seconds = sym_->blocking_seconds;
        setup_phases_.plan_seconds = sym_->plan_seconds;
    }
    layout_ = sym_->layout;
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        options_.simd = sym_->isa;  // clamped by the builder
    }
    factors_ = core::BatchedMatrices<T>(layout_);
    pivots_ = core::BatchedPivots(layout_);
    const bool monitor =
        options_.recovery.mode != RecoveryPolicy::Mode::strict;
    simd_groups_.reserve(sym_->groups.size());
    for (const auto& g : sym_->groups) {
        SimdGroup sg;
        sg.group = core::InterleavedGroup<T>(
            g.size, static_cast<size_type>(g.indices.size()), sym_->isa);
        if (monitor) {
            sg.lane_infos.resize(g.indices.size());
        }
        if (rbt_enabled()) {
            const size_type tab =
                sg.group.lane_stride() *
                static_cast<size_type>(rbt_.depth()) *
                static_cast<size_type>(g.size);
            sg.ucoef = AlignedBuffer<T>(tab);
            sg.vcoef = AlignedBuffer<T>(tab);
            rbt_.fill_group_coeffs(g.indices, g.size, sg.group.lanes(),
                                   sg.group.lane_stride(),
                                   sg.ucoef.data(), sg.vcoef.data());
        }
        simd_groups_.push_back(std::move(sg));
    }
    run_numeric(a);
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        build_apply_workspaces();
    }
    for (size_type b = 0; b < layout_->count(); ++b) {
        const auto m = static_cast<double>(layout_->size(b));
        apply_bytes_ += (m * m + 2.0 * m) * sizeof(T);
        apply_flops_ += core::getrs_flops(layout_->size(b));
        if (rbt_enabled()) {
            // Forward (U^T b) + backward (V y) vector transforms wrap
            // every block solve on the fast path.
            apply_flops_ +=
                2.0 * core::rbt_vector_flops(layout_->size(b),
                                             rbt_.depth());
            apply_bytes_ +=
                2.0 * core::rbt_vector_bytes<T>(layout_->size(b),
                                                rbt_.depth());
        }
    }
    setup_seconds_ = timer.seconds();
    auto& registry = obs::Registry::global();
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        registry.add("block_jacobi.simd_blocks",
                     static_cast<double>(sym_->simd_block_count));
        registry.add("block_jacobi.simd_scalar_blocks",
                     static_cast<double>(sym_->scalar_blocks.size()));
        registry.add("block_jacobi.simd_groups",
                     static_cast<double>(simd_groups_.size()));
    }
    registry.add("block_jacobi.setups", 1.0);
    // A zero delta still creates the counter, keeping the bench-JSON
    // key contract stable whether or not this setup built the plan (the
    // builder itself counts the +1).
    registry.add("block_jacobi.plan_builds", 0.0);
    if (symbolic_shared_) {
        registry.add("block_jacobi.plan_reuses", 1.0);
    }
    registry.add("block_jacobi.blocking_seconds",
                 setup_phases_.blocking_seconds);
    registry.add("block_jacobi.plan_seconds", setup_phases_.plan_seconds);
    record_numeric_metrics();
    registry.set("block_jacobi.num_blocks",
                 static_cast<double>(layout_->count()));
}

template <typename T>
void BlockJacobi<T>::refresh(const sparse::Csr<T>& a) {
    VBATCH_ENSURE(sym_->plan.matches(a),
                  "block-Jacobi refresh: matrix sparsity pattern differs "
                  "from the one the preconditioner was set up with");
    obs::TraceRegion trace("block_jacobi::refresh");
    obs::PerfRegion perf("block_jacobi::refresh");
    Timer timer;
    run_numeric(a);
    refresh_seconds_ = timer.seconds();
    auto& registry = obs::Registry::global();
    registry.add("block_jacobi.refreshes", 1.0);
    registry.add("block_jacobi.plan_reuses", 1.0);
    registry.add("block_jacobi.refresh_seconds", refresh_seconds_);
    record_numeric_metrics();
}

template <typename T>
void BlockJacobi<T>::record_numeric_metrics() const {
    auto& registry = obs::Registry::global();
    registry.add("block_jacobi.gather_seconds",
                 setup_phases_.gather_seconds);
    registry.add("block_jacobi.factorize_seconds",
                 setup_phases_.factorize_seconds);
    registry.add("block_jacobi.pack_seconds", setup_phases_.pack_seconds);
    registry.add("block_jacobi.recovery_seconds",
                 setup_phases_.recovery_seconds);
    registry.add("block_jacobi.blocks_ok",
                 static_cast<double>(recovery_.ok));
    registry.add("block_jacobi.blocks_boosted",
                 static_cast<double>(recovery_.boosted));
    registry.add("block_jacobi.blocks_fell_back",
                 static_cast<double>(recovery_.fell_back));
    registry.add("block_jacobi.blocks_singular",
                 static_cast<double>(recovery_.singular));
    registry.set("block_jacobi.max_pivot_growth", recovery_.max_growth);
    // Roofline traffic of this numeric pass's factorization phase under
    // the canonical models. run_numeric() resets factorize_seconds per
    // episode, so each call records exactly one pass.
    if (setup_phases_.factorize_seconds > 0.0) {
        double flops = 0.0;
        double bytes = 0.0;
        for (size_type b = 0; b < layout_->count(); ++b) {
            flops += core::getrf_flops(layout_->size(b));
            bytes += core::getrf_bytes<T>(layout_->size(b));
            if (rbt_enabled()) {
                // The two-sided butterfly transform runs inside the
                // factorize phase, so its canonical traffic belongs here.
                flops += core::rbt_transform_flops(layout_->size(b),
                                                   rbt_.depth());
                bytes += core::rbt_transform_bytes<T>(layout_->size(b),
                                                      rbt_.depth());
            }
        }
        registry.record_traffic("block_jacobi.factorize", flops, bytes,
                                setup_phases_.factorize_seconds,
                                layout_->count());
    }
    if (rbt_enabled()) {
        registry.add("block_jacobi.rbt_transformed",
                     static_cast<double>(layout_->count() - rbt_fellback_));
        registry.add("block_jacobi.rbt_monitored",
                     static_cast<double>(rbt_monitored_));
        registry.add("block_jacobi.rbt_fellback",
                     static_cast<double>(rbt_fellback_));
    }
}

template <typename T>
void BlockJacobi<T>::run_numeric(const sparse::Csr<T>& a) {
    obs::TraceRegion trace("fused_numeric_setup");
    const bool strict =
        options_.recovery.mode == RecoveryPolicy::Mode::strict;
    const bool monitor = !strict;
    const size_type nb = layout_->count();
    const auto values = a.values();

    setup_phases_.gather_seconds = 0.0;
    setup_phases_.factorize_seconds = 0.0;
    setup_phases_.pack_seconds = 0.0;
    setup_phases_.recovery_seconds = 0.0;
    recovery_ = {};
    degraded_blocks_.clear();
    fallback_inv_diag_.clear();
    rbt_pivoted_blocks_.clear();
    rbt_monitored_ = 0;
    rbt_fellback_ = 0;
    if (rbt_enabled()) {
        rbt_applied_.assign(static_cast<std::size_t>(nb), 1);
    } else {
        rbt_applied_.clear();
    }

    core::FactorizeStatus status;
    if (monitor) {
        status.block_status.assign(static_cast<std::size_t>(nb),
                                   core::BlockStatus::ok);
        status.block_info.assign(static_cast<std::size_t>(nb), {});
    }
    std::atomic<double> gather_s{0.0};
    std::atomic<double> factor_s{0.0};
    std::atomic<double> pack_s{0.0};
    // Breakdowns are rare; a mutex keeps (first_failure, step) coherent
    // without an atomic two-field dance on the common path.
    std::mutex failure_mutex;
    const auto note_failure = [&](size_type block, index_type step) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (status.failures == 0 || block < status.first_failure) {
            status.first_failure = block;
            status.first_failure_step = step;
        }
        ++status.failures;
    };

    // One fused pass: every task gathers its blocks straight into the
    // persistent factor storage and factorizes them cache-hot -- no
    // intermediate batch container, no extract/pack/factorize barriers.
    const auto body = [&](size_type t) {
        const auto& task = sym_->tasks[static_cast<std::size_t>(t)];
        if (task.group != no_group) {
            auto& sg = simd_groups_[static_cast<std::size_t>(task.group)];
            const auto& gsym =
                sym_->groups[static_cast<std::size_t>(task.group)];
            core::FactorInfo* infos =
                monitor ? sg.lane_infos.data() : nullptr;
            Timer tg;
            core::gather_interleaved_chunk(sg.group, gsym.gather, values,
                                           task.chunk, infos);
            atomic_add(gather_s, tg.seconds());
            Timer tf;
            if (rbt_enabled()) {
                core::rbt_transform_interleaved_chunk(
                    sg.group, sg.ucoef.data(), sg.vcoef.data(),
                    rbt_.depth(), task.chunk);
                core::getrf_interleaved_chunk(sg.group, task.chunk,
                                              core::PivotPolicy::none);
            } else {
                core::getrf_interleaved_chunk(sg.group, task.chunk);
            }
            if (monitor) {
                core::scan_interleaved_chunk(sg.group, task.chunk, infos);
            }
            atomic_add(factor_s, tf.seconds());
            // Scatter factors and pivots back while the chunk is hot so
            // factors()/pivots() and the diagnostics stay truthful
            // regardless of the apply path taken.
            Timer tp;
            sg.group.unpack_matrices_chunk(factors_, gsym.indices,
                                           task.chunk);
            sg.group.unpack_pivots_chunk(pivots_, gsym.indices,
                                         task.chunk);
            atomic_add(pack_s, tp.seconds());
            const auto lanes = static_cast<size_type>(sg.group.lanes());
            const size_type lane_lo = task.chunk * lanes;
            const size_type lane_hi =
                std::min(lane_lo + lanes, sg.group.count());
            for (size_type l = lane_lo; l < lane_hi; ++l) {
                const auto step = sg.group.info()[l];
                const auto gi =
                    gsym.indices[static_cast<std::size_t>(l)];
                if (monitor) {
                    status.block_info[static_cast<std::size_t>(gi)] =
                        sg.lane_infos[static_cast<std::size_t>(l)];
                    if (step != 0) {
                        status
                            .block_status[static_cast<std::size_t>(gi)] =
                            core::BlockStatus::singular;
                    }
                }
                if (step != 0) {
                    note_failure(gi, step);
                }
            }
            return;
        }
        double gsec = 0.0;
        double fsec = 0.0;
        for (size_type lo = task.lo; lo < task.hi;
             lo += scalar_stats_batch) {
            const size_type hi =
                std::min(lo + scalar_stats_batch, task.hi);
            Timer tg;
            for (size_type i = lo; i < hi; ++i) {
                const auto b = scalar_block(i);
                sym_->plan.gather_block(values, b, factors_.view(b));
            }
            gsec += tg.seconds();
            Timer tf;
            for (size_type i = lo; i < hi; ++i) {
                const auto b = scalar_block(i);
                core::FactorInfo* info =
                    monitor
                        ? &status.block_info[static_cast<std::size_t>(b)]
                        : nullptr;
                const auto step = rbt_enabled()
                                      ? factorize_block_rbt(b, info)
                                      : factorize_block(b, info);
                if (step != 0) {
                    if (monitor) {
                        status.block_status[static_cast<std::size_t>(b)] =
                            core::BlockStatus::singular;
                    }
                    note_failure(b, step);
                }
            }
            fsec += tf.seconds();
        }
        atomic_add(gather_s, gsec);
        atomic_add(factor_s, fsec);
    };
    {
        obs::TraceRegion fused_trace("fused_gather_factorize");
        const auto ntasks = static_cast<size_type>(sym_->tasks.size());
        if (options_.parallel) {
            ThreadPool::global().parallel_for(0, ntasks, body, 1);
        } else {
            for (size_type t = 0; t < ntasks; ++t) {
                body(t);
            }
        }
    }
    setup_phases_.gather_seconds = gather_s.load();
    setup_phases_.factorize_seconds = factor_s.load();
    setup_phases_.pack_seconds = pack_s.load();

    if (strict) {
        if (status.failures != 0) {
            throw SingularMatrix(
                "block-Jacobi setup: diagonal block factorization broke "
                "down",
                status.first_failure, status.first_failure_step);
        }
        block_status_.assign(static_cast<std::size_t>(nb),
                             core::BlockStatus::ok);
        recovery_.ok = nb;
    } else {
        ScopedTimer phase(setup_phases_.recovery_seconds);
        recover(values, status);
    }
}

template <typename T>
index_type BlockJacobi<T>::factorize_block(size_type b,
                                           core::FactorInfo* info) {
    switch (options_.backend) {
    case BlockJacobiBackend::lu:
    case BlockJacobiBackend::lu_simd:
        // The scalar implicit-pivoting kernel rounds identically to the
        // interleaved lanes, so a boosted block can stay on the SIMD
        // apply path after a repack.
        return info != nullptr
                   ? core::getrf_implicit(factors_.view(b),
                                          pivots_.span(b), *info)
                   : core::getrf_implicit(factors_.view(b),
                                          pivots_.span(b));
    case BlockJacobiBackend::gauss_huard:
        return info != nullptr
                   ? core::gauss_huard_factorize(
                         factors_.view(b), pivots_.span(b),
                         core::GhStorage::standard, *info)
                   : core::gauss_huard_factorize(
                         factors_.view(b), pivots_.span(b),
                         core::GhStorage::standard);
    case BlockJacobiBackend::gauss_huard_t:
        return info != nullptr
                   ? core::gauss_huard_factorize(
                         factors_.view(b), pivots_.span(b),
                         core::GhStorage::transposed, *info)
                   : core::gauss_huard_factorize(
                         factors_.view(b), pivots_.span(b),
                         core::GhStorage::transposed);
    case BlockJacobiBackend::gje_inversion:
        return info != nullptr
                   ? core::gauss_jordan_invert(factors_.view(b), *info)
                   : core::gauss_jordan_invert(factors_.view(b));
    case BlockJacobiBackend::cholesky:
        return info != nullptr
                   ? core::potrf_single(factors_.view(b), *info)
                   : core::potrf_single(factors_.view(b));
    }
    return 0;
}

template <typename T>
index_type BlockJacobi<T>::factorize_block_rbt(size_type b,
                                               core::FactorInfo* info) {
    auto v = factors_.view(b);
    const index_type m = v.rows();
    if (info != nullptr) {
        // Pristine entry statistics, taken before the transform so they
        // match the gather-fused lane statistics of the chunk path.
        *info = {};
        constexpr double inf = std::numeric_limits<double>::infinity();
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                const double av =
                    std::abs(static_cast<double>(v(i, j)));
                if (av < inf) {
                    info->max_entry = std::max(info->max_entry, av);
                } else {
                    info->finite = false;
                }
            }
        }
    }
    rbt_.transform_block(b, v);
    auto p = pivots_.span(b);
    for (index_type k = 0; k < m; ++k) {
        p[static_cast<std::size_t>(k)] = k;
    }
    const auto step = core::getrf_nopivot(v);
    if (info != nullptr) {
        info->step = step;
        if (step != 0) {
            info->min_pivot = 0.0;
            return step;
        }
        // Post-hoc diagonal scan: without pivoting |u_kk| *is* the pivot
        // sequence (the scalar mirror of scan_interleaved_chunk).
        constexpr double inf = std::numeric_limits<double>::infinity();
        for (index_type k = 0; k < m; ++k) {
            const double d = std::abs(static_cast<double>(v(k, k)));
            if (d < inf) {
                info->min_pivot = std::min(info->min_pivot, d);
                info->max_pivot = std::max(info->max_pivot, d);
            } else {
                info->finite = false;
            }
        }
    }
    return step;
}

template <typename T>
void BlockJacobi<T>::set_identity_block(size_type b) {
    auto v = factors_.view(b);
    const index_type m = v.rows();
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            v(i, j) = i == j ? T{1} : T{};
        }
    }
    auto p = pivots_.span(b);
    for (index_type k = 0; k < m; ++k) {
        p[static_cast<std::size_t>(k)] = k;
    }
}

template <typename T>
void BlockJacobi<T>::recover(std::span<const T> values,
                             core::FactorizeStatus& status) {
    const size_type nb = layout_->count();
    block_status_ = std::move(status.block_status);
    const auto& infos = status.block_info;
    const auto& policy = options_.recovery;
    const double eps =
        static_cast<double>(std::numeric_limits<T>::epsilon());
    // The pivot-free path is watched with the looser eps^1 auto
    // tolerance (see RecoveryPolicy::effective_tol_rbt); refactorized
    // and boosted blocks are pivoted again, so their health checks use
    // the standard tolerance.
    const double select_tol = rbt_enabled() ? policy.effective_tol_rbt(eps)
                                            : policy.effective_tol(eps);
    const double tol = policy.effective_tol(eps);

    std::vector<size_type> bad;
    for (size_type b = 0; b < nb; ++b) {
        const auto& fi = infos[static_cast<std::size_t>(b)];
        if (fi.degenerate(select_tol)) {
            bad.push_back(b);
        } else {
            recovery_.max_growth =
                std::max(recovery_.max_growth, fi.growth());
        }
    }
    if (rbt_enabled()) {
        rbt_monitored_ = static_cast<size_type>(bad.size());
    }
    if (bad.empty()) {
        recovery_.ok = nb;
        return;
    }

    // The failed blocks' storage holds partial factors; re-gather only
    // the degenerate blocks through the cached plan (the full-layout
    // re-extraction this replaces scaled with the matrix, not with the
    // handful of blocks that actually broke down).
    alignas(64) std::array<T, static_cast<std::size_t>(max_block_size) *
                                  max_block_size>
        pristine_buf;
    for (const auto b : bad) {
        const auto& fi0 = infos[static_cast<std::size_t>(b)];
        const index_type m = layout_->size(b);
        const MatrixView<T> src(pristine_buf.data(), m, m);
        sym_->plan.gather_block(values, b, src);
        // Boosting needs a finite magnitude to scale the shift by; an
        // all-zero or non-finite block goes straight to the fallback.
        const double scale =
            (fi0.finite && fi0.max_entry > 0.0) ? fi0.max_entry : 0.0;
        bool recovered = false;
        core::FactorInfo fi;
        if (rbt_enabled()) {
            // Leave the fast path: refactorize the pristine block with
            // implicit pivoting, unshifted, before any boosting -- most
            // blocks the butterfly monitor flags are merely hard, not
            // singular, and pivoting handles them outright.
            rbt_applied_[static_cast<std::size_t>(b)] = 0;
            ++rbt_fellback_;
            if (scale > 0.0) {
                auto dst = factors_.view(b);
                for (index_type j = 0; j < m; ++j) {
                    for (index_type i = 0; i < m; ++i) {
                        dst(i, j) = src(i, j);
                    }
                }
                fi = {};
                if (factorize_block(b, &fi) == 0 && !fi.degenerate(tol)) {
                    recovery_.max_growth =
                        std::max(recovery_.max_growth, fi.growth());
                    rbt_pivoted_blocks_.push_back(b);
                    continue;  // status stays ok: pivoted factors are fine
                }
            }
        }
        if (scale > 0.0) {
            double tau = policy.boost_scale * scale;
            for (index_type attempt = 0; attempt < policy.max_boosts;
                 ++attempt, tau *= policy.boost_growth) {
                auto dst = factors_.view(b);
                for (index_type j = 0; j < m; ++j) {
                    for (index_type i = 0; i < m; ++i) {
                        dst(i, j) = src(i, j);
                    }
                }
                const T shift = static_cast<T>(tau);
                for (index_type k = 0; k < m; ++k) {
                    dst(k, k) += shift;
                }
                fi = {};
                if (factorize_block(b, &fi) == 0 && !fi.degenerate(tol)) {
                    recovered = true;
                    break;
                }
            }
        }
        if (recovered) {
            block_status_[static_cast<std::size_t>(b)] =
                core::BlockStatus::boosted;
            recovery_.max_growth =
                std::max(recovery_.max_growth, fi.growth());
            if (rbt_enabled()) {
                rbt_pivoted_blocks_.push_back(b);
            }
            continue;
        }
        if (policy.mode == RecoveryPolicy::Mode::boost) {
            throw SingularMatrix(
                "block-Jacobi setup: diagonal block unrecoverable after "
                "boosting",
                b, fi0.step);
        }
        // Scalar-Jacobi fallback from the pristine diagonal; rows whose
        // diagonal is zero or non-finite apply as identity.
        if (fallback_inv_diag_.empty()) {
            fallback_inv_diag_.assign(
                static_cast<std::size_t>(layout_->total_rows()), T{1});
        }
        const auto off = static_cast<std::size_t>(layout_->row_offset(b));
        bool any_diag = false;
        for (index_type i = 0; i < m; ++i) {
            const T d = src(i, i);
            if (std::isfinite(static_cast<double>(d)) && d != T{}) {
                fallback_inv_diag_[off + static_cast<std::size_t>(i)] =
                    T{1} / d;
                any_diag = true;
            } else {
                fallback_inv_diag_[off + static_cast<std::size_t>(i)] =
                    T{1};
            }
        }
        block_status_[static_cast<std::size_t>(b)] =
            any_diag ? core::BlockStatus::fell_back
                     : core::BlockStatus::singular;
        // Keep the factored-path state finite even for degraded blocks.
        set_identity_block(b);
        degraded_blocks_.push_back(b);
    }

    for (const auto s : block_status_) {
        recovery_.record(s);
    }

    // lu_simd: every bad block was restored/refactorized through the
    // scalar kernel, but the interleaved groups still hold the pre-boost
    // lanes; repack the groups that contain one. Boosted blocks stay on
    // the SIMD apply path (scalar and lane kernels round identically).
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        std::vector<char> dirty(static_cast<std::size_t>(nb), 0);
        for (const auto b : bad) {
            dirty[static_cast<std::size_t>(b)] = 1;
        }
        for (std::size_t g = 0; g < simd_groups_.size(); ++g) {
            auto& sg = simd_groups_[g];
            const auto& indices = sym_->groups[g].indices;
            const bool needs_repack = std::any_of(
                indices.begin(), indices.end(), [&](size_type idx) {
                    return dirty[static_cast<std::size_t>(idx)] != 0;
                });
            if (needs_repack) {
                sg.group.pack_matrices(factors_, indices);
                sg.group.pack_pivots(pivots_, indices);
            }
        }
    }
}

template <typename T>
void BlockJacobi<T>::apply_fallback_block(size_type b, std::span<const T> r,
                                          std::span<T> z) const {
    const auto off = static_cast<std::size_t>(layout_->row_offset(b));
    const auto m = static_cast<std::size_t>(layout_->size(b));
    for (std::size_t i = 0; i < m; ++i) {
        z[off + i] = r[off + i] * fallback_inv_diag_[off + i];
    }
}

template <typename T>
void BlockJacobi<T>::build_apply_workspaces() {
    // The chunk task list and row-offset maps are symbolic (shared);
    // only the per-object rhs staging workspaces are allocated here.
    for (auto& sg : simd_groups_) {
        sg.rhs = core::InterleavedVectors<T>(sg.group.size(),
                                             sg.group.count(),
                                             sg.group.isa());
    }
}

template <typename T>
void BlockJacobi<T>::apply_simd(std::span<const T> r, std::span<T> z) const {
    // All groups' chunks plus the scalar leftovers form one flat task
    // list driven by a single parallel_for; each chunk task fuses
    // gather -> lane solve -> scatter on its slice of the persistent
    // workspace, with the row offsets resolved at setup (no per-element
    // div/mod, no per-apply InterleavedVectors, no zero-fill of padding
    // lanes -- the matrix padding is identity, so stale padding values
    // pass through the solve and stay finite without ever being read).
    const auto nchunks = static_cast<size_type>(sym_->apply_chunks.size());
    const auto total =
        nchunks + static_cast<size_type>(sym_->scalar_blocks.size());
    const auto body = [&](size_type t) {
        if (t < nchunks) {
            const auto& task =
                sym_->apply_chunks[static_cast<std::size_t>(t)];
            const auto& sg =
                simd_groups_[static_cast<std::size_t>(task.group)];
            const auto& row_offsets =
                sym_->groups[static_cast<std::size_t>(task.group)]
                    .row_offsets;
            const auto m = static_cast<size_type>(sg.group.size());
            const auto lanes = static_cast<size_type>(sg.group.lanes());
            const size_type lane_lo = task.chunk * lanes;
            const size_type lane_hi =
                std::min(lane_lo + lanes, sg.group.count());
            T* chunk_vals = sg.rhs.values() + task.chunk * m * lanes;
            for (size_type l = lane_lo; l < lane_hi; ++l) {
                const T* src =
                    r.data() + row_offsets[static_cast<std::size_t>(l)];
                T* dst = chunk_vals + (l - lane_lo);
                for (size_type i = 0; i < m; ++i) {
                    dst[i * lanes] = src[i];
                }
            }
            if (rbt_enabled()) {
                // y = V solve(LU, U^T b): vector transforms bracket the
                // pivot-free lane solve. Lanes holding blocks that left
                // the fast path produce finite garbage here and are
                // re-solved by the pivoted fix-up pass below.
                core::rbt_forward_interleaved_chunk(
                    sg.group, sg.rhs, sg.ucoef.data(), rbt_.depth(),
                    task.chunk);
                core::getrs_interleaved_chunk(sg.group, sg.rhs, task.chunk,
                                              core::PivotPolicy::none);
                core::rbt_backward_interleaved_chunk(
                    sg.group, sg.rhs, sg.vcoef.data(), rbt_.depth(),
                    task.chunk);
            } else {
                core::getrs_interleaved_chunk(sg.group, sg.rhs,
                                              task.chunk);
            }
            for (size_type l = lane_lo; l < lane_hi; ++l) {
                T* dst =
                    z.data() + row_offsets[static_cast<std::size_t>(l)];
                const T* src = chunk_vals + (l - lane_lo);
                for (size_type i = 0; i < m; ++i) {
                    dst[i] = src[i * lanes];
                }
            }
            return;
        }
        const auto b = sym_->scalar_blocks[static_cast<std::size_t>(
            t - nchunks)];
        const auto off = static_cast<std::size_t>(layout_->row_offset(b));
        const auto m = static_cast<std::size_t>(layout_->size(b));
        const std::span<T> zb = z.subspan(off, m);
        for (std::size_t k = 0; k < m; ++k) {
            zb[k] = r[off + k];
        }
        if (rbt_applied(b)) {
            rbt_.forward(b, zb);
            core::getrs_single_nopivot(factors_.view(b), zb,
                                       core::TrsvVariant::eager);
            rbt_.backward(b, zb);
        } else {
            core::getrs_single(factors_.view(b), pivots_.span(b), zb,
                               core::TrsvVariant::eager);
        }
    };
    if (options_.parallel) {
        ThreadPool::global().parallel_for(0, total, body, 1);
    } else {
        for (size_type t = 0; t < total; ++t) {
            body(t);
        }
    }
    // Blocks that left the RBT fast path but hold usable pivoted factors
    // are re-solved through the scalar pivoted path (their group lanes
    // ran the pivot-free solve on pivoted factors above).
    for (const auto b : rbt_pivoted_blocks_) {
        const auto off = static_cast<std::size_t>(layout_->row_offset(b));
        const auto m = static_cast<std::size_t>(layout_->size(b));
        const std::span<T> zb = z.subspan(off, m);
        for (std::size_t k = 0; k < m; ++k) {
            zb[k] = r[off + k];
        }
        core::getrs_single(factors_.view(b), pivots_.span(b), zb,
                           core::TrsvVariant::eager);
    }
    // Degraded blocks route through the inverse-diagonal fallback; the
    // fix-up pass overwrites whatever the group/leftover solve produced
    // for them (the few degraded blocks do not justify a lane path).
    for (const auto b : degraded_blocks_) {
        apply_fallback_block(b, r, z);
    }
}

template <typename T>
void BlockJacobi<T>::apply(std::span<const T> r, std::span<T> z) const {
    VBATCH_ENSURE_DIMS(static_cast<size_type>(r.size()) ==
                       layout_->total_rows());
    VBATCH_ENSURE_DIMS(r.size() == z.size());
    obs::TraceRegion trace("block_jacobi::apply");
    obs::PerfRegion perf("block_jacobi::apply");
    // Name the inner region after the per-block solve the backend runs.
    const char* solve_kind = nullptr;
    switch (options_.backend) {
    case BlockJacobiBackend::lu:
    case BlockJacobiBackend::lu_simd:
    case BlockJacobiBackend::cholesky:
        solve_kind = "trsv_apply";
        break;
    case BlockJacobiBackend::gauss_huard:
    case BlockJacobiBackend::gauss_huard_t:
        solve_kind = "gauss_huard_apply";
        break;
    case BlockJacobiBackend::gje_inversion:
        solve_kind = "gemv_apply";
        break;
    }
    obs::TraceRegion solve_trace(solve_kind);
    obs::count("block_jacobi.applies");
    obs::count("block_jacobi.apply.bytes_moved", apply_bytes_);
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        apply_simd(r, z);
        return;
    }
    const auto body = [&](size_type b) {
        if (!degraded_blocks_.empty()) {
            const auto s = block_status_[static_cast<std::size_t>(b)];
            if (s == core::BlockStatus::fell_back ||
                s == core::BlockStatus::singular) {
                apply_fallback_block(b, r, z);
                return;
            }
        }
        const auto off = static_cast<std::size_t>(layout_->row_offset(b));
        const auto m = static_cast<std::size_t>(layout_->size(b));
        const std::span<T> zb = z.subspan(off, m);
        for (std::size_t i = 0; i < m; ++i) {
            zb[i] = r[off + i];
        }
        switch (options_.backend) {
        case BlockJacobiBackend::lu:
        case BlockJacobiBackend::lu_simd:  // handled above; unreachable
            if (rbt_applied(b)) {
                rbt_.forward(b, zb);
                core::getrs_single_nopivot(factors_.view(b), zb,
                                           options_.trsv_variant);
                rbt_.backward(b, zb);
            } else {
                core::getrs_single(factors_.view(b), pivots_.span(b), zb,
                                   options_.trsv_variant);
            }
            break;
        case BlockJacobiBackend::gauss_huard:
            core::gauss_huard_solve(factors_.view(b), pivots_.span(b), zb,
                                    core::GhStorage::standard);
            break;
        case BlockJacobiBackend::gauss_huard_t:
            core::gauss_huard_solve(factors_.view(b), pivots_.span(b), zb,
                                    core::GhStorage::transposed);
            break;
        case BlockJacobiBackend::cholesky:
            core::potrs_single(factors_.view(b), zb, options_.trsv_variant);
            break;
        case BlockJacobiBackend::gje_inversion: {
            // z_b := D_b^{-1} r_b as a small GEMV from the inverted block.
            const auto inv = factors_.view(b);
            std::array<T, max_block_size> y{};
            for (index_type j = 0; j < inv.cols(); ++j) {
                const T xj = zb[static_cast<std::size_t>(j)];
                const T* col = inv.col(j);
                for (index_type i = 0; i < inv.rows(); ++i) {
                    y[static_cast<std::size_t>(i)] += col[i] * xj;
                }
            }
            for (std::size_t i = 0; i < m; ++i) {
                zb[i] = y[i];
            }
            break;
        }
        }
    };
    if (options_.parallel) {
        ThreadPool::global().parallel_for(0, layout_->count(), body,
                                          batch_entry_grain);
    } else {
        for (size_type b = 0; b < layout_->count(); ++b) {
            body(b);
        }
    }
}

template <typename T>
typename BlockJacobi<T>::Diagnostics BlockJacobi<T>::diagnostics(
    const sparse::Csr<T>& a) const {
    Diagnostics d;
    d.num_blocks = layout_->count();
    if (d.num_blocks == 0) {
        return d;
    }
    const auto blocks = blocking::extract_diagonal_blocks(a, layout_);
    d.min_block_size = layout_->max_size();
    double size_sum = 0.0;
    double log_sum = 0.0;
    d.min_condition = std::numeric_limits<double>::infinity();
    d.max_condition = 0.0;
    for (size_type b = 0; b < layout_->count(); ++b) {
        const index_type m = layout_->size(b);
        d.min_block_size = std::min(d.min_block_size, m);
        d.max_block_size = std::max(d.max_block_size, m);
        size_sum += m;
        const double cond = static_cast<double>(
            lapack::condition_number_1<T>(blocks.view(b)));
        d.min_condition = std::min(d.min_condition, cond);
        d.max_condition = std::max(d.max_condition, cond);
        log_sum += std::log(std::max(cond, 1.0));
    }
    d.mean_block_size = size_sum / static_cast<double>(d.num_blocks);
    d.geomean_condition =
        std::exp(log_sum / static_cast<double>(d.num_blocks));
    return d;
}

template <typename T>
std::string BlockJacobi<T>::name() const {
    std::string backend = backend_name(options_.backend);
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        backend += std::string("[") + core::simd_isa_name(options_.simd) +
                   "]";
    }
    if (options_.pivot == PivotScheme::rbt) {
        backend += "+rbt";
    }
    return "block-jacobi(" + backend + "," +
           std::to_string(options_.max_block_size) + ")";
}

template class BlockJacobi<float>;
template class BlockJacobi<double>;
template BlockJacobiSymbolicPtr build_block_jacobi_symbolic<float>(
    const sparse::Csr<float>&, const BlockJacobiOptions&);
template BlockJacobiSymbolicPtr build_block_jacobi_symbolic<double>(
    const sparse::Csr<double>&, const BlockJacobiOptions&);

}  // namespace vbatch::precond
