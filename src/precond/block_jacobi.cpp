#include "precond/block_jacobi.hpp"

#include <cmath>
#include <limits>

#include "base/thread_pool.hpp"
#include "blas/lapack.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vbatch::precond {

std::string backend_name(BlockJacobiBackend backend) {
    switch (backend) {
    case BlockJacobiBackend::lu: return "lu";
    case BlockJacobiBackend::lu_simd: return "lu-simd";
    case BlockJacobiBackend::gauss_huard: return "gh";
    case BlockJacobiBackend::gauss_huard_t: return "gh-t";
    case BlockJacobiBackend::gje_inversion: return "gje-inv";
    case BlockJacobiBackend::cholesky: return "cholesky";
    }
    return "unknown";
}

template <typename T>
BlockJacobi<T>::BlockJacobi(const sparse::Csr<T>& a,
                            BlockJacobiOptions options)
    : options_(std::move(options)) {
    obs::TraceRegion trace("block_jacobi::setup");
    Timer timer;
    {
        ScopedTimer phase(setup_phases_.blocking_seconds);
        if (options_.layout) {
            layout_ = options_.layout;
        } else {
            blocking::BlockingOptions bopts;
            bopts.max_block_size = options_.max_block_size;
            layout_ = blocking::supervariable_layout(a, bopts);
        }
    }
    {
        ScopedTimer phase(setup_phases_.extraction_seconds);
        factors_ = blocking::extract_diagonal_blocks(a, layout_);
        pivots_ = core::BatchedPivots(layout_);
    }
    {
        obs::TraceRegion factor_trace("factorize_blocks");
        ScopedTimer phase(setup_phases_.factorize_seconds);
        core::GetrfOptions fopts;
        fopts.parallel = options_.parallel;
        switch (options_.backend) {
        case BlockJacobiBackend::lu:
            core::getrf_batch(factors_, pivots_, fopts);
            break;
        case BlockJacobiBackend::lu_simd:
            factorize_simd();
            break;
        case BlockJacobiBackend::gauss_huard:
            core::gauss_huard_batch(factors_, pivots_,
                                    core::GhStorage::standard, fopts);
            break;
        case BlockJacobiBackend::gauss_huard_t:
            core::gauss_huard_batch(factors_, pivots_,
                                    core::GhStorage::transposed, fopts);
            break;
        case BlockJacobiBackend::gje_inversion:
            core::gauss_jordan_batch(factors_, fopts);
            break;
        case BlockJacobiBackend::cholesky:
            core::potrf_batch(factors_, fopts);
            break;
        }
    }
    setup_seconds_ = timer.seconds();
    auto& registry = obs::Registry::global();
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        registry.add("block_jacobi.simd_blocks",
                     static_cast<double>(simd_block_count_));
        registry.add("block_jacobi.simd_scalar_blocks",
                     static_cast<double>(simd_scalar_blocks_.size()));
        registry.add("block_jacobi.simd_groups",
                     static_cast<double>(simd_groups_.size()));
    }
    registry.add("block_jacobi.setups", 1.0);
    registry.add("block_jacobi.blocking_seconds",
                 setup_phases_.blocking_seconds);
    registry.add("block_jacobi.extraction_seconds",
                 setup_phases_.extraction_seconds);
    registry.add("block_jacobi.factorize_seconds",
                 setup_phases_.factorize_seconds);
    registry.set("block_jacobi.num_blocks",
                 static_cast<double>(layout_->count()));
}

template <typename T>
void BlockJacobi<T>::factorize_simd() {
    // Clamp once so the kept groups, metrics and name() agree on the ISA
    // actually executed.
    if (!core::simd_isa_available(options_.simd)) {
        options_.simd = core::detect_simd_isa();
    }
    const auto plan = blocking::build_size_class_plan(
        *layout_, core::simd_lanes<T>(options_.simd));

    core::VectorizedOptions vopts;
    vopts.isa = options_.simd;
    vopts.parallel = options_.parallel;
    vopts.on_singular = core::SingularPolicy::report;

    core::FactorizeStatus status;
    index_type first_step = 0;
    const auto note_failure = [&](size_type block, index_type step) {
        if (status.failures == 0 || block < status.first_failure) {
            status.first_failure = block;
            first_step = step;
        }
        ++status.failures;
    };

    simd_groups_.clear();
    simd_groups_.reserve(plan.vector_groups.size());
    for (const auto& cls : plan.vector_groups) {
        SimdGroup sg;
        sg.indices = cls.indices;
        sg.group = core::InterleavedGroup<T>(
            cls.size, static_cast<size_type>(cls.indices.size()),
            options_.simd);
        sg.group.pack_matrices(factors_, sg.indices);
        const auto st = core::getrf_interleaved(sg.group, vopts);
        // Scatter factors and pivots back so factors()/pivots() and the
        // diagnostics stay truthful regardless of the apply path taken.
        sg.group.unpack_matrices(factors_, sg.indices);
        sg.group.unpack_pivots(pivots_, sg.indices);
        if (!st.ok()) {
            for (size_type l = 0; l < sg.group.count(); ++l) {
                if (sg.group.info()[l] != 0) {
                    note_failure(
                        sg.indices[static_cast<std::size_t>(l)],
                        sg.group.info()[l]);
                }
            }
        }
        simd_groups_.push_back(std::move(sg));
    }
    simd_block_count_ = plan.vector_block_count();

    simd_scalar_blocks_ = plan.scalar_indices;
    for (const auto b : simd_scalar_blocks_) {
        const auto step =
            core::getrf_implicit(factors_.view(b), pivots_.span(b));
        if (step != 0) {
            note_failure(b, step);
        }
    }

    if (!status.ok()) {
        throw SingularMatrix(
            "block-Jacobi setup: diagonal block factorization broke down",
            status.first_failure, first_step);
    }
}

template <typename T>
void BlockJacobi<T>::apply_simd(std::span<const T> r, std::span<T> z) const {
    core::VectorizedOptions vopts;
    vopts.isa = options_.simd;
    vopts.parallel = options_.parallel;
    for (const auto& sg : simd_groups_) {
        core::InterleavedVectors<T> rhs(sg.group.size(), sg.group.count(),
                                        options_.simd);
        rhs.pack_flat(r, *layout_, sg.indices);
        core::getrs_interleaved(sg.group, rhs, vopts);
        rhs.unpack_flat(z, *layout_, sg.indices);
    }
    const auto leftovers = static_cast<size_type>(simd_scalar_blocks_.size());
    const auto body = [&](size_type i) {
        const auto b = simd_scalar_blocks_[static_cast<std::size_t>(i)];
        const auto off = static_cast<std::size_t>(layout_->row_offset(b));
        const auto m = static_cast<std::size_t>(layout_->size(b));
        const std::span<T> zb = z.subspan(off, m);
        for (std::size_t k = 0; k < m; ++k) {
            zb[k] = r[off + k];
        }
        core::getrs_single(factors_.view(b), pivots_.span(b), zb,
                           core::TrsvVariant::eager);
    };
    if (options_.parallel) {
        ThreadPool::global().parallel_for(0, leftovers, body,
                                          batch_entry_grain);
    } else {
        for (size_type i = 0; i < leftovers; ++i) {
            body(i);
        }
    }
}

template <typename T>
void BlockJacobi<T>::apply(std::span<const T> r, std::span<T> z) const {
    VBATCH_ENSURE_DIMS(static_cast<size_type>(r.size()) ==
                       layout_->total_rows());
    VBATCH_ENSURE_DIMS(r.size() == z.size());
    obs::TraceRegion trace("block_jacobi::apply");
    // Name the inner region after the per-block solve the backend runs.
    const char* solve_kind = nullptr;
    switch (options_.backend) {
    case BlockJacobiBackend::lu:
    case BlockJacobiBackend::lu_simd:
    case BlockJacobiBackend::cholesky:
        solve_kind = "trsv_apply";
        break;
    case BlockJacobiBackend::gauss_huard:
    case BlockJacobiBackend::gauss_huard_t:
        solve_kind = "gauss_huard_apply";
        break;
    case BlockJacobiBackend::gje_inversion:
        solve_kind = "gemv_apply";
        break;
    }
    obs::TraceRegion solve_trace(solve_kind);
    obs::count("block_jacobi.applies");
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        apply_simd(r, z);
        return;
    }
    const auto body = [&](size_type b) {
        const auto off = static_cast<std::size_t>(layout_->row_offset(b));
        const auto m = static_cast<std::size_t>(layout_->size(b));
        const std::span<T> zb = z.subspan(off, m);
        for (std::size_t i = 0; i < m; ++i) {
            zb[i] = r[off + i];
        }
        switch (options_.backend) {
        case BlockJacobiBackend::lu:
        case BlockJacobiBackend::lu_simd:  // handled above; unreachable
            core::getrs_single(factors_.view(b), pivots_.span(b), zb,
                               options_.trsv_variant);
            break;
        case BlockJacobiBackend::gauss_huard:
            core::gauss_huard_solve(factors_.view(b), pivots_.span(b), zb,
                                    core::GhStorage::standard);
            break;
        case BlockJacobiBackend::gauss_huard_t:
            core::gauss_huard_solve(factors_.view(b), pivots_.span(b), zb,
                                    core::GhStorage::transposed);
            break;
        case BlockJacobiBackend::cholesky:
            core::potrs_single(factors_.view(b), zb, options_.trsv_variant);
            break;
        case BlockJacobiBackend::gje_inversion: {
            // z_b := D_b^{-1} r_b as a small GEMV from the inverted block.
            const auto inv = factors_.view(b);
            std::array<T, max_block_size> y{};
            for (index_type j = 0; j < inv.cols(); ++j) {
                const T xj = zb[static_cast<std::size_t>(j)];
                const T* col = inv.col(j);
                for (index_type i = 0; i < inv.rows(); ++i) {
                    y[static_cast<std::size_t>(i)] += col[i] * xj;
                }
            }
            for (std::size_t i = 0; i < m; ++i) {
                zb[i] = y[i];
            }
            break;
        }
        }
    };
    if (options_.parallel) {
        ThreadPool::global().parallel_for(0, layout_->count(), body,
                                          batch_entry_grain);
    } else {
        for (size_type b = 0; b < layout_->count(); ++b) {
            body(b);
        }
    }
}

template <typename T>
typename BlockJacobi<T>::Diagnostics BlockJacobi<T>::diagnostics(
    const sparse::Csr<T>& a) const {
    Diagnostics d;
    d.num_blocks = layout_->count();
    if (d.num_blocks == 0) {
        return d;
    }
    const auto blocks = blocking::extract_diagonal_blocks(a, layout_);
    d.min_block_size = layout_->max_size();
    double size_sum = 0.0;
    double log_sum = 0.0;
    d.min_condition = std::numeric_limits<double>::infinity();
    d.max_condition = 0.0;
    for (size_type b = 0; b < layout_->count(); ++b) {
        const index_type m = layout_->size(b);
        d.min_block_size = std::min(d.min_block_size, m);
        d.max_block_size = std::max(d.max_block_size, m);
        size_sum += m;
        const double cond = static_cast<double>(
            lapack::condition_number_1<T>(blocks.view(b)));
        d.min_condition = std::min(d.min_condition, cond);
        d.max_condition = std::max(d.max_condition, cond);
        log_sum += std::log(std::max(cond, 1.0));
    }
    d.mean_block_size = size_sum / static_cast<double>(d.num_blocks);
    d.geomean_condition =
        std::exp(log_sum / static_cast<double>(d.num_blocks));
    return d;
}

template <typename T>
std::string BlockJacobi<T>::name() const {
    std::string backend = backend_name(options_.backend);
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        backend += std::string("[") + core::simd_isa_name(options_.simd) +
                   "]";
    }
    return "block-jacobi(" + backend + "," +
           std::to_string(options_.max_block_size) + ")";
}

template class BlockJacobi<float>;
template class BlockJacobi<double>;

}  // namespace vbatch::precond
