#include "precond/block_jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/thread_pool.hpp"
#include "blas/lapack.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vbatch::precond {

std::string backend_name(BlockJacobiBackend backend) {
    switch (backend) {
    case BlockJacobiBackend::lu: return "lu";
    case BlockJacobiBackend::lu_simd: return "lu-simd";
    case BlockJacobiBackend::gauss_huard: return "gh";
    case BlockJacobiBackend::gauss_huard_t: return "gh-t";
    case BlockJacobiBackend::gje_inversion: return "gje-inv";
    case BlockJacobiBackend::cholesky: return "cholesky";
    }
    return "unknown";
}

template <typename T>
BlockJacobi<T>::BlockJacobi(const sparse::Csr<T>& a,
                            BlockJacobiOptions options)
    : options_(std::move(options)) {
    obs::TraceRegion trace("block_jacobi::setup");
    Timer timer;
    {
        ScopedTimer phase(setup_phases_.blocking_seconds);
        if (options_.layout) {
            layout_ = options_.layout;
        } else {
            blocking::BlockingOptions bopts;
            bopts.max_block_size = options_.max_block_size;
            layout_ = blocking::supervariable_layout(a, bopts);
        }
    }
    {
        ScopedTimer phase(setup_phases_.extraction_seconds);
        factors_ = blocking::extract_diagonal_blocks(a, layout_);
        pivots_ = core::BatchedPivots(layout_);
    }
    const bool strict =
        options_.recovery.mode == RecoveryPolicy::Mode::strict;
    core::FactorizeStatus status;
    {
        obs::TraceRegion factor_trace("factorize_blocks");
        ScopedTimer phase(setup_phases_.factorize_seconds);
        core::GetrfOptions fopts;
        fopts.parallel = options_.parallel;
        // Non-strict setup: never abort mid-batch -- collect per-block
        // outcomes and let recover() decide what survives.
        fopts.monitor = !strict;
        if (!strict) {
            fopts.on_singular = core::SingularPolicy::report;
        }
        switch (options_.backend) {
        case BlockJacobiBackend::lu:
            status = core::getrf_batch(factors_, pivots_, fopts);
            break;
        case BlockJacobiBackend::lu_simd:
            status = factorize_simd(fopts.monitor);
            break;
        case BlockJacobiBackend::gauss_huard:
            status = core::gauss_huard_batch(
                factors_, pivots_, core::GhStorage::standard, fopts);
            break;
        case BlockJacobiBackend::gauss_huard_t:
            status = core::gauss_huard_batch(
                factors_, pivots_, core::GhStorage::transposed, fopts);
            break;
        case BlockJacobiBackend::gje_inversion:
            status = core::gauss_jordan_batch(factors_, fopts);
            break;
        case BlockJacobiBackend::cholesky:
            status = core::potrf_batch(factors_, fopts);
            break;
        }
    }
    if (strict) {
        // The factorization either threw or every block is clean.
        block_status_.assign(static_cast<std::size_t>(layout_->count()),
                             core::BlockStatus::ok);
        recovery_.ok = layout_->count();
    } else {
        ScopedTimer phase(setup_phases_.recovery_seconds);
        recover(a, status);
    }
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        build_apply_workspaces();
    }
    for (size_type b = 0; b < layout_->count(); ++b) {
        const auto m = static_cast<double>(layout_->size(b));
        apply_bytes_ += (m * m + 2.0 * m) * sizeof(T);
    }
    setup_seconds_ = timer.seconds();
    auto& registry = obs::Registry::global();
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        registry.add("block_jacobi.simd_blocks",
                     static_cast<double>(simd_block_count_));
        registry.add("block_jacobi.simd_scalar_blocks",
                     static_cast<double>(simd_scalar_blocks_.size()));
        registry.add("block_jacobi.simd_groups",
                     static_cast<double>(simd_groups_.size()));
    }
    registry.add("block_jacobi.setups", 1.0);
    registry.add("block_jacobi.blocking_seconds",
                 setup_phases_.blocking_seconds);
    registry.add("block_jacobi.extraction_seconds",
                 setup_phases_.extraction_seconds);
    registry.add("block_jacobi.factorize_seconds",
                 setup_phases_.factorize_seconds);
    registry.add("block_jacobi.recovery_seconds",
                 setup_phases_.recovery_seconds);
    registry.add("block_jacobi.blocks_ok",
                 static_cast<double>(recovery_.ok));
    registry.add("block_jacobi.blocks_boosted",
                 static_cast<double>(recovery_.boosted));
    registry.add("block_jacobi.blocks_fell_back",
                 static_cast<double>(recovery_.fell_back));
    registry.add("block_jacobi.blocks_singular",
                 static_cast<double>(recovery_.singular));
    registry.set("block_jacobi.max_pivot_growth", recovery_.max_growth);
    registry.set("block_jacobi.num_blocks",
                 static_cast<double>(layout_->count()));
}

template <typename T>
core::FactorizeStatus BlockJacobi<T>::factorize_simd(bool monitor) {
    // Clamp once so the kept groups, metrics and name() agree on the ISA
    // actually executed.
    if (!core::simd_isa_available(options_.simd)) {
        options_.simd = core::detect_simd_isa();
    }
    const auto plan = blocking::build_size_class_plan(
        *layout_, core::simd_lanes<T>(options_.simd));

    core::VectorizedOptions vopts;
    vopts.isa = options_.simd;
    vopts.parallel = options_.parallel;
    vopts.on_singular = core::SingularPolicy::report;
    vopts.monitor = monitor;

    core::FactorizeStatus status;
    if (monitor) {
        status.block_status.assign(
            static_cast<std::size_t>(layout_->count()),
            core::BlockStatus::ok);
        status.block_info.resize(
            static_cast<std::size_t>(layout_->count()));
    }
    const auto note_failure = [&](size_type block, index_type step) {
        if (status.failures == 0 || block < status.first_failure) {
            status.first_failure = block;
            status.first_failure_step = step;
        }
        ++status.failures;
    };

    simd_groups_.clear();
    simd_groups_.reserve(plan.vector_groups.size());
    for (const auto& cls : plan.vector_groups) {
        SimdGroup sg;
        sg.indices = cls.indices;
        sg.group = core::InterleavedGroup<T>(
            cls.size, static_cast<size_type>(cls.indices.size()),
            options_.simd);
        sg.group.pack_matrices(factors_, sg.indices);
        const auto st = core::getrf_interleaved(sg.group, vopts);
        // Scatter factors and pivots back so factors()/pivots() and the
        // diagnostics stay truthful regardless of the apply path taken.
        sg.group.unpack_matrices(factors_, sg.indices);
        sg.group.unpack_pivots(pivots_, sg.indices);
        if (monitor) {
            for (std::size_t l = 0; l < sg.indices.size(); ++l) {
                const auto gi = static_cast<std::size_t>(sg.indices[l]);
                status.block_status[gi] = st.block_status[l];
                status.block_info[gi] = st.block_info[l];
            }
        }
        if (!st.ok()) {
            for (size_type l = 0; l < sg.group.count(); ++l) {
                if (sg.group.info()[l] != 0) {
                    note_failure(
                        sg.indices[static_cast<std::size_t>(l)],
                        sg.group.info()[l]);
                }
            }
        }
        simd_groups_.push_back(std::move(sg));
    }
    simd_block_count_ = plan.vector_block_count();

    simd_scalar_blocks_ = plan.scalar_indices;
    for (const auto b : simd_scalar_blocks_) {
        index_type step;
        if (monitor) {
            step = core::getrf_implicit(
                factors_.view(b), pivots_.span(b),
                status.block_info[static_cast<std::size_t>(b)]);
            if (step != 0) {
                status.block_status[static_cast<std::size_t>(b)] =
                    core::BlockStatus::singular;
            }
        } else {
            step = core::getrf_implicit(factors_.view(b), pivots_.span(b));
        }
        if (step != 0) {
            note_failure(b, step);
        }
    }

    if (!monitor && !status.ok()) {
        throw SingularMatrix(
            "block-Jacobi setup: diagonal block factorization broke down",
            status.first_failure, status.first_failure_step);
    }
    return status;
}

template <typename T>
index_type BlockJacobi<T>::refactor_single(size_type b,
                                           core::FactorInfo& info) {
    switch (options_.backend) {
    case BlockJacobiBackend::lu:
    case BlockJacobiBackend::lu_simd:
        // The scalar implicit-pivoting kernel rounds identically to the
        // interleaved lanes, so a boosted block can stay on the SIMD
        // apply path after a repack.
        return core::getrf_implicit(factors_.view(b), pivots_.span(b),
                                    info);
    case BlockJacobiBackend::gauss_huard:
        return core::gauss_huard_factorize(factors_.view(b),
                                           pivots_.span(b),
                                           core::GhStorage::standard, info);
    case BlockJacobiBackend::gauss_huard_t:
        return core::gauss_huard_factorize(factors_.view(b),
                                           pivots_.span(b),
                                           core::GhStorage::transposed,
                                           info);
    case BlockJacobiBackend::gje_inversion:
        return core::gauss_jordan_invert(factors_.view(b), info);
    case BlockJacobiBackend::cholesky:
        return core::potrf_single(factors_.view(b), info);
    }
    return 0;
}

template <typename T>
void BlockJacobi<T>::set_identity_block(size_type b) {
    auto v = factors_.view(b);
    const index_type m = v.rows();
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            v(i, j) = i == j ? T{1} : T{};
        }
    }
    auto p = pivots_.span(b);
    for (index_type k = 0; k < m; ++k) {
        p[static_cast<std::size_t>(k)] = k;
    }
}

template <typename T>
void BlockJacobi<T>::recover(const sparse::Csr<T>& a,
                             core::FactorizeStatus& status) {
    const size_type nb = layout_->count();
    block_status_ = std::move(status.block_status);
    const auto& infos = status.block_info;
    const auto& policy = options_.recovery;
    const double tol = policy.effective_tol(
        static_cast<double>(std::numeric_limits<T>::epsilon()));

    std::vector<size_type> bad;
    for (size_type b = 0; b < nb; ++b) {
        const auto& fi = infos[static_cast<std::size_t>(b)];
        if (fi.degenerate(tol)) {
            bad.push_back(b);
        } else {
            recovery_.max_growth =
                std::max(recovery_.max_growth, fi.growth());
        }
    }
    if (bad.empty()) {
        recovery_.ok = nb;
        return;
    }

    // The failed blocks' storage holds partial factors; re-extract the
    // pristine data once for the restore/boost attempts and the
    // inverse-diagonal fallback.
    const auto pristine = blocking::extract_diagonal_blocks(a, layout_);
    for (const auto b : bad) {
        const auto& fi0 = infos[static_cast<std::size_t>(b)];
        const index_type m = layout_->size(b);
        const auto src = pristine.view(b);
        // Boosting needs a finite magnitude to scale the shift by; an
        // all-zero or non-finite block goes straight to the fallback.
        const double scale =
            (fi0.finite && fi0.max_entry > 0.0) ? fi0.max_entry : 0.0;
        bool recovered = false;
        core::FactorInfo fi;
        if (scale > 0.0) {
            double tau = policy.boost_scale * scale;
            for (index_type attempt = 0; attempt < policy.max_boosts;
                 ++attempt, tau *= policy.boost_growth) {
                auto dst = factors_.view(b);
                for (index_type j = 0; j < m; ++j) {
                    for (index_type i = 0; i < m; ++i) {
                        dst(i, j) = src(i, j);
                    }
                }
                const T shift = static_cast<T>(tau);
                for (index_type k = 0; k < m; ++k) {
                    dst(k, k) += shift;
                }
                fi = {};
                if (refactor_single(b, fi) == 0 && !fi.degenerate(tol)) {
                    recovered = true;
                    break;
                }
            }
        }
        if (recovered) {
            block_status_[static_cast<std::size_t>(b)] =
                core::BlockStatus::boosted;
            recovery_.max_growth =
                std::max(recovery_.max_growth, fi.growth());
            continue;
        }
        if (policy.mode == RecoveryPolicy::Mode::boost) {
            throw SingularMatrix(
                "block-Jacobi setup: diagonal block unrecoverable after "
                "boosting",
                b, fi0.step);
        }
        // Scalar-Jacobi fallback from the pristine diagonal; rows whose
        // diagonal is zero or non-finite apply as identity.
        if (fallback_inv_diag_.empty()) {
            fallback_inv_diag_.assign(
                static_cast<std::size_t>(layout_->total_rows()), T{1});
        }
        const auto off = static_cast<std::size_t>(layout_->row_offset(b));
        bool any_diag = false;
        for (index_type i = 0; i < m; ++i) {
            const T d = src(i, i);
            if (std::isfinite(static_cast<double>(d)) && d != T{}) {
                fallback_inv_diag_[off + static_cast<std::size_t>(i)] =
                    T{1} / d;
                any_diag = true;
            } else {
                fallback_inv_diag_[off + static_cast<std::size_t>(i)] =
                    T{1};
            }
        }
        block_status_[static_cast<std::size_t>(b)] =
            any_diag ? core::BlockStatus::fell_back
                     : core::BlockStatus::singular;
        // Keep the factored-path state finite even for degraded blocks.
        set_identity_block(b);
        degraded_blocks_.push_back(b);
    }

    for (const auto s : block_status_) {
        recovery_.record(s);
    }

    // lu_simd: every bad block was restored/refactorized through the
    // scalar kernel, but the interleaved groups still hold the pre-boost
    // lanes; repack the groups that contain one. Boosted blocks stay on
    // the SIMD apply path (scalar and lane kernels round identically).
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        std::vector<char> dirty(static_cast<std::size_t>(nb), 0);
        for (const auto b : bad) {
            dirty[static_cast<std::size_t>(b)] = 1;
        }
        for (auto& sg : simd_groups_) {
            const bool needs_repack = std::any_of(
                sg.indices.begin(), sg.indices.end(), [&](size_type idx) {
                    return dirty[static_cast<std::size_t>(idx)] != 0;
                });
            if (needs_repack) {
                sg.group.pack_matrices(factors_, sg.indices);
                sg.group.pack_pivots(pivots_, sg.indices);
            }
        }
    }
}

template <typename T>
void BlockJacobi<T>::apply_fallback_block(size_type b, std::span<const T> r,
                                          std::span<T> z) const {
    const auto off = static_cast<std::size_t>(layout_->row_offset(b));
    const auto m = static_cast<std::size_t>(layout_->size(b));
    for (std::size_t i = 0; i < m; ++i) {
        z[off + i] = r[off + i] * fallback_inv_diag_[off + i];
    }
}

template <typename T>
void BlockJacobi<T>::build_apply_workspaces() {
    apply_chunks_.clear();
    for (std::size_t g = 0; g < simd_groups_.size(); ++g) {
        auto& sg = simd_groups_[g];
        sg.rhs = core::InterleavedVectors<T>(sg.group.size(),
                                             sg.group.count(),
                                             sg.group.isa());
        sg.row_offsets.resize(sg.indices.size());
        for (std::size_t l = 0; l < sg.indices.size(); ++l) {
            sg.row_offsets[l] = layout_->row_offset(sg.indices[l]);
        }
        for (size_type c = 0; c < sg.group.chunks(); ++c) {
            apply_chunks_.push_back({static_cast<size_type>(g), c});
        }
    }
}

template <typename T>
void BlockJacobi<T>::apply_simd(std::span<const T> r, std::span<T> z) const {
    // All groups' chunks plus the scalar leftovers form one flat task
    // list driven by a single parallel_for; each chunk task fuses
    // gather -> lane solve -> scatter on its slice of the persistent
    // workspace, with the row offsets resolved at setup (no per-element
    // div/mod, no per-apply InterleavedVectors, no zero-fill of padding
    // lanes -- the matrix padding is identity, so stale padding values
    // pass through the solve and stay finite without ever being read).
    const auto nchunks = static_cast<size_type>(apply_chunks_.size());
    const auto total =
        nchunks + static_cast<size_type>(simd_scalar_blocks_.size());
    const auto body = [&](size_type t) {
        if (t < nchunks) {
            const auto& task = apply_chunks_[static_cast<std::size_t>(t)];
            const auto& sg =
                simd_groups_[static_cast<std::size_t>(task.group)];
            const auto m = static_cast<size_type>(sg.group.size());
            const auto lanes = static_cast<size_type>(sg.group.lanes());
            const size_type lane_lo = task.chunk * lanes;
            const size_type lane_hi =
                std::min(lane_lo + lanes, sg.group.count());
            T* chunk_vals = sg.rhs.values() + task.chunk * m * lanes;
            for (size_type l = lane_lo; l < lane_hi; ++l) {
                const T* src =
                    r.data() + sg.row_offsets[static_cast<std::size_t>(l)];
                T* dst = chunk_vals + (l - lane_lo);
                for (size_type i = 0; i < m; ++i) {
                    dst[i * lanes] = src[i];
                }
            }
            core::getrs_interleaved_chunk(sg.group, sg.rhs, task.chunk);
            for (size_type l = lane_lo; l < lane_hi; ++l) {
                T* dst =
                    z.data() + sg.row_offsets[static_cast<std::size_t>(l)];
                const T* src = chunk_vals + (l - lane_lo);
                for (size_type i = 0; i < m; ++i) {
                    dst[i] = src[i * lanes];
                }
            }
            return;
        }
        const auto b = simd_scalar_blocks_[static_cast<std::size_t>(
            t - nchunks)];
        const auto off = static_cast<std::size_t>(layout_->row_offset(b));
        const auto m = static_cast<std::size_t>(layout_->size(b));
        const std::span<T> zb = z.subspan(off, m);
        for (std::size_t k = 0; k < m; ++k) {
            zb[k] = r[off + k];
        }
        core::getrs_single(factors_.view(b), pivots_.span(b), zb,
                           core::TrsvVariant::eager);
    };
    if (options_.parallel) {
        ThreadPool::global().parallel_for(0, total, body, 1);
    } else {
        for (size_type t = 0; t < total; ++t) {
            body(t);
        }
    }
    // Degraded blocks route through the inverse-diagonal fallback; the
    // fix-up pass overwrites whatever the group/leftover solve produced
    // for them (the few degraded blocks do not justify a lane path).
    for (const auto b : degraded_blocks_) {
        apply_fallback_block(b, r, z);
    }
}

template <typename T>
void BlockJacobi<T>::apply(std::span<const T> r, std::span<T> z) const {
    VBATCH_ENSURE_DIMS(static_cast<size_type>(r.size()) ==
                       layout_->total_rows());
    VBATCH_ENSURE_DIMS(r.size() == z.size());
    obs::TraceRegion trace("block_jacobi::apply");
    // Name the inner region after the per-block solve the backend runs.
    const char* solve_kind = nullptr;
    switch (options_.backend) {
    case BlockJacobiBackend::lu:
    case BlockJacobiBackend::lu_simd:
    case BlockJacobiBackend::cholesky:
        solve_kind = "trsv_apply";
        break;
    case BlockJacobiBackend::gauss_huard:
    case BlockJacobiBackend::gauss_huard_t:
        solve_kind = "gauss_huard_apply";
        break;
    case BlockJacobiBackend::gje_inversion:
        solve_kind = "gemv_apply";
        break;
    }
    obs::TraceRegion solve_trace(solve_kind);
    obs::count("block_jacobi.applies");
    obs::count("block_jacobi.apply.bytes_moved", apply_bytes_);
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        apply_simd(r, z);
        return;
    }
    const auto body = [&](size_type b) {
        if (!degraded_blocks_.empty()) {
            const auto s = block_status_[static_cast<std::size_t>(b)];
            if (s == core::BlockStatus::fell_back ||
                s == core::BlockStatus::singular) {
                apply_fallback_block(b, r, z);
                return;
            }
        }
        const auto off = static_cast<std::size_t>(layout_->row_offset(b));
        const auto m = static_cast<std::size_t>(layout_->size(b));
        const std::span<T> zb = z.subspan(off, m);
        for (std::size_t i = 0; i < m; ++i) {
            zb[i] = r[off + i];
        }
        switch (options_.backend) {
        case BlockJacobiBackend::lu:
        case BlockJacobiBackend::lu_simd:  // handled above; unreachable
            core::getrs_single(factors_.view(b), pivots_.span(b), zb,
                               options_.trsv_variant);
            break;
        case BlockJacobiBackend::gauss_huard:
            core::gauss_huard_solve(factors_.view(b), pivots_.span(b), zb,
                                    core::GhStorage::standard);
            break;
        case BlockJacobiBackend::gauss_huard_t:
            core::gauss_huard_solve(factors_.view(b), pivots_.span(b), zb,
                                    core::GhStorage::transposed);
            break;
        case BlockJacobiBackend::cholesky:
            core::potrs_single(factors_.view(b), zb, options_.trsv_variant);
            break;
        case BlockJacobiBackend::gje_inversion: {
            // z_b := D_b^{-1} r_b as a small GEMV from the inverted block.
            const auto inv = factors_.view(b);
            std::array<T, max_block_size> y{};
            for (index_type j = 0; j < inv.cols(); ++j) {
                const T xj = zb[static_cast<std::size_t>(j)];
                const T* col = inv.col(j);
                for (index_type i = 0; i < inv.rows(); ++i) {
                    y[static_cast<std::size_t>(i)] += col[i] * xj;
                }
            }
            for (std::size_t i = 0; i < m; ++i) {
                zb[i] = y[i];
            }
            break;
        }
        }
    };
    if (options_.parallel) {
        ThreadPool::global().parallel_for(0, layout_->count(), body,
                                          batch_entry_grain);
    } else {
        for (size_type b = 0; b < layout_->count(); ++b) {
            body(b);
        }
    }
}

template <typename T>
typename BlockJacobi<T>::Diagnostics BlockJacobi<T>::diagnostics(
    const sparse::Csr<T>& a) const {
    Diagnostics d;
    d.num_blocks = layout_->count();
    if (d.num_blocks == 0) {
        return d;
    }
    const auto blocks = blocking::extract_diagonal_blocks(a, layout_);
    d.min_block_size = layout_->max_size();
    double size_sum = 0.0;
    double log_sum = 0.0;
    d.min_condition = std::numeric_limits<double>::infinity();
    d.max_condition = 0.0;
    for (size_type b = 0; b < layout_->count(); ++b) {
        const index_type m = layout_->size(b);
        d.min_block_size = std::min(d.min_block_size, m);
        d.max_block_size = std::max(d.max_block_size, m);
        size_sum += m;
        const double cond = static_cast<double>(
            lapack::condition_number_1<T>(blocks.view(b)));
        d.min_condition = std::min(d.min_condition, cond);
        d.max_condition = std::max(d.max_condition, cond);
        log_sum += std::log(std::max(cond, 1.0));
    }
    d.mean_block_size = size_sum / static_cast<double>(d.num_blocks);
    d.geomean_condition =
        std::exp(log_sum / static_cast<double>(d.num_blocks));
    return d;
}

template <typename T>
std::string BlockJacobi<T>::name() const {
    std::string backend = backend_name(options_.backend);
    if (options_.backend == BlockJacobiBackend::lu_simd) {
        backend += std::string("[") + core::simd_isa_name(options_.simd) +
                   "]";
    }
    return "block-jacobi(" + backend + "," +
           std::to_string(options_.max_block_size) + ")";
}

template class BlockJacobi<float>;
template class BlockJacobi<double>;

}  // namespace vbatch::precond
