#include "precond/config.hpp"

#include <map>
#include <utility>

#include "base/exception.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/scalar_jacobi.hpp"

namespace vbatch::precond {

namespace {

/// One registry row: a constructor per supported value type (either may
/// be empty when a custom backend registers only one precision).
struct Entry {
    PreconditionerFactory<float> f32;
    PreconditionerFactory<double> f64;
};

template <typename T>
PreconditionerFactory<T>& slot(Entry& e);
template <>
PreconditionerFactory<float>& slot<float>(Entry& e) {
    return e.f32;
}
template <>
PreconditionerFactory<double>& slot<double>(Entry& e) {
    return e.f64;
}

BlockJacobiOptions block_jacobi_options(const Config& config,
                                        BlockJacobiBackend backend) {
    BlockJacobiOptions opts;
    opts.backend = backend;
    opts.max_block_size = config.max_block_size;
    opts.trsv_variant = config.trsv_variant;
    opts.simd = config.simd;
    opts.parallel = config.parallel;
    opts.pivot = config.pivot;
    opts.rbt_seed = config.rbt_seed;
    opts.rbt_depth = config.rbt_depth;
    opts.layout = config.layout;
    opts.recovery = config.recovery;
    opts.symbolic = config.symbolic;
    return opts;
}

/// Backend keys whose setup has a shareable symbolic phase.
const std::map<std::string, BlockJacobiBackend>& block_jacobi_kinds() {
    static const std::map<std::string, BlockJacobiBackend> kinds = {
        {"lu", BlockJacobiBackend::lu},
        {"lu-simd", BlockJacobiBackend::lu_simd},
        {"gh", BlockJacobiBackend::gauss_huard},
        {"gh-t", BlockJacobiBackend::gauss_huard_t},
        {"gje-inv", BlockJacobiBackend::gje_inversion},
        {"gje", BlockJacobiBackend::gje_inversion},
        {"cholesky", BlockJacobiBackend::cholesky},
    };
    return kinds;
}

template <typename T>
PreconditionerPtr<T> make_block_jacobi(const sparse::Csr<T>& a,
                                       const Config& config,
                                       BlockJacobiBackend backend) {
    return std::make_unique<BlockJacobi<T>>(
        a, block_jacobi_options(config, backend));
}

Entry block_jacobi_entry(BlockJacobiBackend backend) {
    Entry e;
    e.f32 = [backend](const sparse::Csr<float>& a, const Config& c) {
        return make_block_jacobi<float>(a, c, backend);
    };
    e.f64 = [backend](const sparse::Csr<double>& a, const Config& c) {
        return make_block_jacobi<double>(a, c, backend);
    };
    return e;
}

std::map<std::string, Entry> builtin_entries() {
    std::map<std::string, Entry> entries;
    Entry none;
    none.f32 = [](const sparse::Csr<float>&, const Config&) {
        return PreconditionerPtr<float>(
            std::make_unique<IdentityPreconditioner<float>>());
    };
    none.f64 = [](const sparse::Csr<double>&, const Config&) {
        return PreconditionerPtr<double>(
            std::make_unique<IdentityPreconditioner<double>>());
    };
    entries.emplace("none", std::move(none));
    Entry jacobi;
    jacobi.f32 = [](const sparse::Csr<float>& a, const Config&) {
        return PreconditionerPtr<float>(
            std::make_unique<ScalarJacobi<float>>(a));
    };
    jacobi.f64 = [](const sparse::Csr<double>& a, const Config&) {
        return PreconditionerPtr<double>(
            std::make_unique<ScalarJacobi<double>>(a));
    };
    entries.emplace("jacobi", std::move(jacobi));
    for (const auto backend :
         {BlockJacobiBackend::lu, BlockJacobiBackend::lu_simd,
          BlockJacobiBackend::gauss_huard,
          BlockJacobiBackend::gauss_huard_t,
          BlockJacobiBackend::gje_inversion,
          BlockJacobiBackend::cholesky}) {
        entries.emplace(backend_name(backend),
                        block_jacobi_entry(backend));
    }
    // Short alias the CLI tools historically accepted.
    entries.emplace("gje",
                    block_jacobi_entry(BlockJacobiBackend::gje_inversion));
    return entries;
}

std::map<std::string, Entry>& registry() {
    static std::map<std::string, Entry> entries = builtin_entries();
    return entries;
}

}  // namespace

template <typename T>
PreconditionerPtr<T> make_preconditioner(const sparse::Csr<T>& a,
                                         const Config& config) {
    auto& entries = registry();
    const auto it = entries.find(config.backend);
    const PreconditionerFactory<T>* factory = nullptr;
    if (it != entries.end()) {
        const auto& f = slot<T>(it->second);
        if (f) {
            factory = &f;
        }
    }
    if (factory == nullptr) {
        std::string known;
        for (const auto& name : registered_backends()) {
            if (!known.empty()) {
                known += ", ";
            }
            known += name;
        }
        throw BadParameter("unknown preconditioner backend '" +
                           config.backend + "' (registered: " + known +
                           ")");
    }
    return (*factory)(a, config);
}

template <typename T>
void register_backend(const std::string& name,
                      PreconditionerFactory<T> factory) {
    slot<T>(registry()[name]) = std::move(factory);
}

std::vector<std::string> registered_backends() {
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto& [name, entry] : registry()) {
        if (entry.f32 || entry.f64) {
            names.push_back(name);
        }
    }
    return names;
}

bool backend_registered(const std::string& name) {
    const auto& entries = registry();
    const auto it = entries.find(name);
    return it != entries.end() && (it->second.f32 || it->second.f64);
}

bool symbolic_backend(const std::string& backend) {
    return block_jacobi_kinds().count(backend) > 0;
}

template <typename T>
std::shared_ptr<const BlockJacobiSymbolic> make_symbolic(
    const sparse::Csr<T>& a, const Config& config) {
    const auto& kinds = block_jacobi_kinds();
    const auto it = kinds.find(config.backend);
    if (it == kinds.end()) {
        return nullptr;
    }
    return build_block_jacobi_symbolic(
        a, block_jacobi_options(config, it->second));
}

template PreconditionerPtr<float> make_preconditioner<float>(
    const sparse::Csr<float>&, const Config&);
template PreconditionerPtr<double> make_preconditioner<double>(
    const sparse::Csr<double>&, const Config&);
template void register_backend<float>(const std::string&,
                                      PreconditionerFactory<float>);
template void register_backend<double>(const std::string&,
                                       PreconditionerFactory<double>);
template std::shared_ptr<const BlockJacobiSymbolic> make_symbolic<float>(
    const sparse::Csr<float>&, const Config&);
template std::shared_ptr<const BlockJacobiSymbolic> make_symbolic<double>(
    const sparse::Csr<double>&, const Config&);

}  // namespace vbatch::precond
