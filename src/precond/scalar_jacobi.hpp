// Scalar Jacobi preconditioner: M = diag(A) -- the "Jacobi" column of the
// paper's Table I.
#pragma once

#include <vector>

#include "base/macros.hpp"
#include "base/timer.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace vbatch::precond {

template <typename T>
class ScalarJacobi final : public Preconditioner<T> {
public:
    explicit ScalarJacobi(const sparse::Csr<T>& a) {
        VBATCH_ENSURE(a.num_rows() == a.num_cols(),
                      "Jacobi needs a square matrix");
        Timer timer;
        inv_diag_.resize(static_cast<std::size_t>(a.num_rows()));
        for (index_type i = 0; i < a.num_rows(); ++i) {
            const T d = a.at(i, i);
            VBATCH_ENSURE(d != T{}, "zero diagonal entry");
            inv_diag_[static_cast<std::size_t>(i)] = T{1} / d;
        }
        setup_seconds_ = timer.seconds();
    }

    void apply(std::span<const T> r, std::span<T> z) const override {
        VBATCH_ENSURE_DIMS(r.size() == inv_diag_.size() &&
                           z.size() == inv_diag_.size());
        for (std::size_t i = 0; i < r.size(); ++i) {
            z[i] = inv_diag_[i] * r[i];
        }
    }

    /// Recompute the inverse diagonal from `a`'s current values.
    void refresh(const sparse::Csr<T>& a) override {
        VBATCH_ENSURE(static_cast<std::size_t>(a.num_rows()) ==
                          inv_diag_.size(),
                      "Jacobi refresh: matrix size changed");
        Timer timer;
        for (index_type i = 0; i < a.num_rows(); ++i) {
            const T d = a.at(i, i);
            VBATCH_ENSURE(d != T{}, "zero diagonal entry");
            inv_diag_[static_cast<std::size_t>(i)] = T{1} / d;
        }
        setup_seconds_ = timer.seconds();
    }

    std::string name() const override { return "jacobi"; }
    double setup_seconds() const override { return setup_seconds_; }
    size_type num_blocks() const override {
        return static_cast<size_type>(inv_diag_.size());
    }

private:
    std::vector<T> inv_diag_;
    double setup_seconds_ = 0.0;
};

}  // namespace vbatch::precond
