// Unified preconditioner configuration and string-keyed factory.
//
// Benches, examples and studies used to hand-roll a switch over
// BlockJacobiBackend (plus special cases for "none" and scalar Jacobi)
// each time they built a preconditioner. The Config + make_preconditioner
// pair centralizes that: one POD carries every knob (backend key, block
// bound, solve variant, SIMD ISA, recovery policy, precomputed layout),
// and the registry maps backend keys to constructors so downstream tools
// never switch on the backend enum again.
//
// Built-in keys: "none" (identity), "jacobi" (scalar Jacobi), and the
// block-Jacobi backends "lu", "lu-simd", "gh", "gh-t", "gje-inv",
// "cholesky". register_backend() adds project-specific ones.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_layout.hpp"
#include "core/rbt.hpp"
#include "core/simd_dispatch.hpp"
#include "core/trsv.hpp"
#include "precond/preconditioner.hpp"
#include "precond/recovery.hpp"
#include "sparse/csr.hpp"

namespace vbatch::precond {

struct BlockJacobiSymbolic;

/// Everything needed to build a preconditioner, in one place. Fields a
/// backend does not use are ignored (e.g. "jacobi" ignores the block
/// bound and the recovery policy).
struct Config {
    /// Registered backend key; see registered_backends().
    std::string backend = "lu";
    /// Upper bound for the supervariable agglomeration.
    index_type max_block_size = 32;
    /// Eager or lazy triangular solves (LU backend).
    core::TrsvVariant trsv_variant = core::TrsvVariant::eager;
    /// Instruction set for the "lu-simd" backend.
    core::SimdIsa simd = core::detect_simd_isa();
    /// Parallelize setup/application over the blocks.
    bool parallel = true;
    /// Pivoting scheme of the "lu" / "lu-simd" backends.
    /// PivotScheme::rbt enables the butterfly-transformed pivot-free
    /// fast path (requires a non-strict recovery policy).
    PivotScheme pivot = PivotScheme::implicit;
    /// Butterfly seed for pivot == PivotScheme::rbt (default:
    /// VBATCH_RBT_SEED when set, else 42).
    std::uint64_t rbt_seed = core::default_rbt_seed();
    /// Butterfly recursion depth for pivot == PivotScheme::rbt (clamped
    /// to [1, core::rbt::max_rbt_depth]).
    index_type rbt_depth = 2;
    /// Per-block breakdown handling (block-Jacobi backends).
    RecoveryPolicy recovery;
    /// Reuse a precomputed block structure (empty = detect).
    core::BatchLayoutPtr layout;
    /// Adopt a shared symbolic analysis (block-Jacobi backends; see
    /// make_symbolic / build_block_jacobi_symbolic). Validated against
    /// the matrix at setup; takes precedence over `layout`. Empty =
    /// analyze locally.
    std::shared_ptr<const BlockJacobiSymbolic> symbolic;
};

template <typename T>
using PreconditionerPtr = std::unique_ptr<Preconditioner<T>>;

/// Constructor signature kept by the registry.
template <typename T>
using PreconditionerFactory =
    std::function<PreconditionerPtr<T>(const sparse::Csr<T>&,
                                       const Config&)>;

/// Build the preconditioner selected by config.backend. Throws
/// vbatch::BadParameter (listing the registered keys) on an unknown
/// backend; backend-specific setup failures propagate unchanged.
template <typename T>
PreconditionerPtr<T> make_preconditioner(const sparse::Csr<T>& a,
                                         const Config& config = {});

/// Register (or replace) a backend under `name` for value type T.
/// Registration is not thread-safe; do it during startup.
template <typename T>
void register_backend(const std::string& name,
                      PreconditionerFactory<T> factory);

/// Sorted list of keys with at least one registered value type.
std::vector<std::string> registered_backends();

bool backend_registered(const std::string& name);

/// True when `backend` names a built-in with a shareable symbolic phase
/// (the block-Jacobi family); make_symbolic returns non-null exactly for
/// these.
bool symbolic_backend(const std::string& backend);

/// Run only the symbolic (pattern-dependent) layer of the setup
/// config.backend would perform on `a`, for sharing across same-pattern
/// matrices via Config::symbolic. Returns nullptr for backends without
/// a symbolic phase ("none", "jacobi", and custom registrations) --
/// those are simply rebuilt per matrix.
template <typename T>
std::shared_ptr<const BlockJacobiSymbolic> make_symbolic(
    const sparse::Csr<T>& a, const Config& config);

}  // namespace vbatch::precond
