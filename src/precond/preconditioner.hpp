// Preconditioner interface for the Krylov solvers.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <string>

#include "base/macros.hpp"
#include "base/types.hpp"
#include "core/block_status.hpp"

namespace vbatch::sparse {
template <typename T>
class Csr;
}  // namespace vbatch::sparse

namespace vbatch::precond {

/// Left preconditioner M^{-1}: the solver calls apply(r, z) for z = M^{-1}r.
template <typename T>
class Preconditioner {
public:
    virtual ~Preconditioner() = default;

    /// z := M^{-1} r. r and z must not alias.
    virtual void apply(std::span<const T> r, std::span<T> z) const = 0;

    /// Numeric re-setup after `a`'s values changed under an unchanged
    /// sparsity pattern (the time-stepping / Newton / service
    /// update_values case). Preconditioners whose state depends on the
    /// values MUST override this to rerun their numeric phase; the
    /// default is a no-op for stateless preconditioners (identity).
    /// Implementations may throw vbatch::BadParameter when `a` does not
    /// match the pattern they were set up with.
    virtual void refresh(const sparse::Csr<T>& a) { (void)a; }

    virtual std::string name() const = 0;

    /// Wall time spent in the setup (generation) phase, seconds.
    virtual double setup_seconds() const = 0;

    /// Number of diagonal blocks (1 for scalar/identity preconditioners).
    virtual size_type num_blocks() const = 0;

    /// Per-status block counts of the setup. Preconditioners without a
    /// per-block recovery pipeline report an empty (all-zero) summary;
    /// block-Jacobi reports what happened to every diagonal block, so
    /// the solver can flag degraded preconditioning in its SolveStatus.
    virtual core::RecoverySummary recovery_summary() const { return {}; }

    /// Canonical traffic of one apply() under the core/flops.hpp and
    /// core/bytes.hpp models, for roofline attribution in the solvers.
    /// 0 = no model (the solver then skips traffic for this family).
    virtual double apply_flops() const { return 0.0; }
    virtual double apply_bytes() const { return 0.0; }
};

/// No preconditioning: z := r.
template <typename T>
class IdentityPreconditioner final : public Preconditioner<T> {
public:
    void apply(std::span<const T> r, std::span<T> z) const override {
        VBATCH_ENSURE_DIMS(r.size() == z.size());
        VBATCH_ASSERT(r.data() != z.data());
        std::copy(r.begin(), r.end(), z.begin());
    }
    std::string name() const override { return "identity"; }
    double setup_seconds() const override { return 0.0; }
    size_type num_blocks() const override { return 1; }
};

}  // namespace vbatch::precond
