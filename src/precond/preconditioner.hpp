// Preconditioner interface for the Krylov solvers.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "base/types.hpp"

namespace vbatch::precond {

/// Left preconditioner M^{-1}: the solver calls apply(r, z) for z = M^{-1}r.
template <typename T>
class Preconditioner {
public:
    virtual ~Preconditioner() = default;

    /// z := M^{-1} r. r and z must not alias.
    virtual void apply(std::span<const T> r, std::span<T> z) const = 0;

    virtual std::string name() const = 0;

    /// Wall time spent in the setup (generation) phase, seconds.
    virtual double setup_seconds() const = 0;

    /// Number of diagonal blocks (1 for scalar/identity preconditioners).
    virtual size_type num_blocks() const = 0;
};

/// No preconditioning: z := r.
template <typename T>
class IdentityPreconditioner final : public Preconditioner<T> {
public:
    void apply(std::span<const T> r, std::span<T> z) const override {
        for (std::size_t i = 0; i < r.size(); ++i) {
            z[i] = r[i];
        }
    }
    std::string name() const override { return "identity"; }
    double setup_seconds() const override { return 0.0; }
    size_type num_blocks() const override { return 1; }
};

}  // namespace vbatch::precond
