// Per-block breakdown recovery for the block-Jacobi setup.
//
// The paper's protocol simply reports "-" when a diagonal block breaks
// down (Table I); production block-Jacobi preconditioning cannot afford
// that, because one singular 4x4 block would abort the setup for the
// whole matrix. The recovery pipeline keeps the setup total: a block
// whose factorization breaks down (or whose pivots are numerically
// negligible) is re-tried with an escalating scaled-identity diagonal
// shift ("boosting"), then degraded to scalar-Jacobi application from
// its pristine diagonal, then to the identity -- so the preconditioner
// always exists and the solver can report degradation instead of dying.
#pragma once

#include "base/types.hpp"

namespace vbatch::precond {

/// Pivoting scheme of the lu / lu-simd block factorization backends.
enum class PivotScheme {
    /// The paper's implicit partial pivoting (default).
    implicit,
    /// Random butterfly transform preprocessing + pivot-free LU
    /// (core/rbt.hpp): blocks are replaced by U^T A V before a
    /// no-pivoting factorization, removing the pivot search and the
    /// row-gather from the hot loop. Degenerate blocks are refactorized
    /// with implicit pivoting through the recovery chain, so the setup
    /// stays total -- which is why this scheme requires a non-strict
    /// RecoveryPolicy.
    rbt,
};

/// What to do when a diagonal block's factorization breaks down or its
/// pivot sequence is numerically degenerate.
struct RecoveryPolicy {
    enum class Mode {
        /// Pre-recovery behavior: the first breakdown throws
        /// vbatch::SingularMatrix out of the setup (the paper's "-").
        strict,
        /// Diagonal boosting only; throws once the boosts are exhausted.
        boost,
        /// Boosting, then scalar-Jacobi fallback, then identity: the
        /// setup always succeeds.
        full,
    };
    Mode mode = Mode::full;

    /// A block counts as degenerate when min_pivot <= rel_tol * max_entry.
    /// Negative = auto: eps(T)^2, which catches exact breakdowns and
    /// essentially-zero pivots (~1e-300 in double) but never perturbs a
    /// merely ill-conditioned block -- healthy blocks stay bitwise
    /// identical to the strict path.
    double pivot_rel_tol = -1.0;
    /// First boost shift, relative to the block's largest entry magnitude.
    double boost_scale = 1e-8;
    /// Escalation factor between consecutive boost attempts.
    double boost_growth = 1e4;
    /// Boost attempts before falling back. The final shift is
    /// boost_scale * boost_growth^(max_boosts-1) * max_entry; with the
    /// defaults that is 1e4 * max_entry, which exceeds the Gershgorin
    /// radius of any block of size <= 32 and therefore guarantees
    /// diagonal dominance on the last attempt.
    index_type max_boosts = 4;

    /// Effective degeneracy tolerance for a value type with epsilon `eps`.
    double effective_tol(double eps) const noexcept {
        return pivot_rel_tol >= 0.0 ? pivot_rel_tol : eps * eps;
    }

    /// Effective tolerance of the pivot-free (PivotScheme::rbt) path.
    /// Without pivoting a small |u_kk| means real element growth, not
    /// just an ill-conditioned block, so the auto tolerance watches with
    /// eps^1 instead of eps^2: any block the butterflies failed to
    /// regularize is handed back to the pivoted path long before its
    /// factors turn worthless.
    double effective_tol_rbt(double eps) const noexcept {
        return pivot_rel_tol >= 0.0 ? pivot_rel_tol : eps;
    }

    static RecoveryPolicy strict() noexcept {
        RecoveryPolicy p;
        p.mode = Mode::strict;
        return p;
    }
    static RecoveryPolicy boost_only() noexcept {
        RecoveryPolicy p;
        p.mode = Mode::boost;
        return p;
    }
};

}  // namespace vbatch::precond
