// Supervariable blocking (Section II.A, citing Chow & Scott [5]).
//
// Variables arising from the same finite element share their sparsity
// pattern. Supervariable blocking detects consecutive rows with identical
// nonzero pattern ("supervariables") and agglomerates adjacent
// supervariables into diagonal blocks up to a user-specified upper bound
// -- the knob the paper's Table I sweeps over {8, 12, 16, 24, 32}.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "core/batch_layout.hpp"
#include "sparse/csr.hpp"

namespace vbatch::blocking {

struct BlockingOptions {
    /// Upper bound for the agglomerated diagonal block size (<= 32).
    index_type max_block_size = 32;
    /// If false, every variable is its own supervariable and blocks are
    /// formed by plain chunking (useful as an ablation of the pattern
    /// detection).
    bool detect_supervariables = true;
};

/// Compute the diagonal block sizes for block-Jacobi preconditioning.
/// The returned sizes partition [0, n): block b covers rows
/// [sum(sizes[0..b)), ...). Supervariables larger than the bound are
/// split; smaller adjacent ones are merged while they fit.
template <typename T>
std::vector<index_type> supervariable_blocking(const sparse::Csr<T>& a,
                                               const BlockingOptions& opts);

/// Convenience: wrap the sizes into a batch layout.
template <typename T>
core::BatchLayoutPtr supervariable_layout(const sparse::Csr<T>& a,
                                          const BlockingOptions& opts) {
    return core::make_layout(supervariable_blocking(a, opts));
}

/// Find the supervariables only (no agglomeration): sizes of maximal runs
/// of consecutive rows with identical column pattern.
template <typename T>
std::vector<index_type> find_supervariables(const sparse::Csr<T>& a);

}  // namespace vbatch::blocking
