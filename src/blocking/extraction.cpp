#include "blocking/extraction.hpp"

#include <algorithm>
#include <cmath>

#include "base/macros.hpp"
#include "base/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vbatch::blocking {

using simt::first_lanes;
using simt::lane_mask;
using simt::Reg;
using simt::Warp;

template <typename T>
core::BatchedMatrices<T> extract_diagonal_blocks(
    const sparse::Csr<T>& a, core::BatchLayoutPtr layout) {
    VBATCH_ENSURE(layout->total_rows() == a.num_rows(),
                  "block sizes must partition the matrix");
    obs::TraceRegion trace("extract_diagonal_blocks");
    core::BatchedMatrices<T> blocks(layout);
    const auto row_ptrs = a.row_ptrs();
    const auto col_idxs = a.col_idxs();
    const auto values = a.values();
    const auto body = [&](size_type b) {
        auto block = blocks.view(b);
        const auto r0 = static_cast<index_type>(layout->row_offset(b));
        const index_type m = layout->size(b);
        for (index_type i = 0; i < m; ++i) {
            const auto row = static_cast<std::size_t>(r0 + i);
            auto p = row_ptrs[row];
            const auto end = row_ptrs[row + 1];
            // Skip to the first column inside the block.
            while (p < end &&
                   col_idxs[static_cast<std::size_t>(p)] < r0) {
                ++p;
            }
            for (; p < end &&
                   col_idxs[static_cast<std::size_t>(p)] < r0 + m; ++p) {
                block(i, col_idxs[static_cast<std::size_t>(p)] - r0) =
                    values[static_cast<std::size_t>(p)];
            }
        }
    };
    ThreadPool::global().parallel_for(0, layout->count(), body);
    return blocks;
}

template <typename T>
SimtExtractionResult<T> extract_blocks_simt_row(const sparse::Csr<T>& a,
                                                core::BatchLayoutPtr layout) {
    VBATCH_ENSURE(layout->total_rows() == a.num_rows(),
                  "block sizes must partition the matrix");
    obs::TraceRegion trace("extract_blocks_simt_row");
    SimtExtractionResult<T> result{core::BatchedMatrices<T>(layout), {}};
    Warp warp;
    const auto row_ptrs = a.row_ptrs();
    const auto col_idxs = a.col_idxs();
    const auto values = a.values();

    for (size_type b = 0; b < layout->count(); ++b) {
        auto block = result.blocks.view(b);
        const auto r0 = static_cast<index_type>(layout->row_offset(b));
        const index_type m = layout->size(b);
        const lane_mask rows_m = first_lanes(m);

        // Lane i walks row r0+i on its own. The warp executes as many
        // steps as the *longest* row -- shorter rows' lanes idle, which is
        // the load-imbalance cost of this strategy.
        std::array<size_type, warp_size> pos{};
        std::array<size_type, warp_size> end{};
        size_type max_len = 0;
        for (index_type i = 0; i < m; ++i) {
            pos[i] = row_ptrs[static_cast<std::size_t>(r0 + i)];
            end[i] = row_ptrs[static_cast<std::size_t>(r0 + i) + 1];
            max_len = std::max(max_len, end[i] - pos[i]);
        }
        for (size_type step = 0; step < max_len; ++step) {
            // Gathered (non-coalesced) load of one column index per lane.
            Reg<const index_type*> addr{};
            lane_mask active = 0;
            Warp::for_each_lane(rows_m, [&](int l) {
                if (pos[l] + step < end[l]) {
                    active |= (1u << l);
                    addr[l] = col_idxs.data() + pos[l] + step;
                }
            });
            if (active == 0) {
                break;
            }
            const auto cols = warp.load_global(active, addr);
            warp.stats().misc_instructions += 2;  // range compares
            // Lanes that hit the diagonal block load the value and keep it.
            lane_mask hits = 0;
            Reg<const T*> vaddr{};
            Warp::for_each_lane(active, [&](int l) {
                const auto c = cols[l];
                if (c >= r0 && c < r0 + m) {
                    hits |= (1u << l);
                    vaddr[l] = values.data() + pos[l] + step;
                }
            });
            if (hits != 0) {
                const auto vals = warp.load_global(hits, vaddr);
                Warp::for_each_lane(hits, [&](int l) {
                    block(l, cols[l] - r0) = vals[l];
                });
            }
        }
    }
    result.stats = warp.stats();
    obs::Registry::global().record_kernel("extraction", result.stats,
                                          layout->count());
    return result;
}

template <typename T>
SimtExtractionResult<T> extract_blocks_simt_shared(
    const sparse::Csr<T>& a, core::BatchLayoutPtr layout) {
    VBATCH_ENSURE(layout->total_rows() == a.num_rows(),
                  "block sizes must partition the matrix");
    obs::TraceRegion trace("extract_blocks_simt_shared");
    SimtExtractionResult<T> result{core::BatchedMatrices<T>(layout), {}};
    Warp warp;
    const auto row_ptrs = a.row_ptrs();
    const auto col_idxs = a.col_idxs();
    const auto values = a.values();
    const int words_per_value = sizeof(T) / 4;

    for (size_type b = 0; b < layout->count(); ++b) {
        auto block = result.blocks.view(b);
        const auto r0 = static_cast<index_type>(layout->row_offset(b));
        const index_type m = layout->size(b);

        // All 32 lanes cooperate on each row: coalesced 32-wide chunks of
        // the col-indices stream; hits go to shared memory (Fig. 3). Load
        // imbalance is limited to the tail chunk of each row.
        for (index_type i = 0; i < m; ++i) {
            const auto beg = row_ptrs[static_cast<std::size_t>(r0 + i)];
            const auto len =
                row_ptrs[static_cast<std::size_t>(r0 + i) + 1] - beg;
            for (size_type chunk = 0; chunk < len; chunk += warp_size) {
                const auto count = std::min<size_type>(warp_size,
                                                       len - chunk);
                const lane_mask active =
                    first_lanes(static_cast<index_type>(count));
                const auto cols = warp.load_global_strided(
                    active, col_idxs.data() + beg + chunk);
                warp.stats().misc_instructions += 2;  // range compares
                lane_mask hits = 0;
                Reg<const T*> vaddr{};
                Reg<index_type> smem_offset{};
                Warp::for_each_lane(active, [&](int l) {
                    const auto c = cols[l];
                    if (c >= r0 && c < r0 + m) {
                        hits |= (1u << l);
                        vaddr[l] = values.data() + beg + chunk + l;
                        smem_offset[l] =
                            (i * m + (c - r0)) * words_per_value;
                    }
                });
                if (hits != 0) {
                    const auto vals = warp.load_global(hits, vaddr);
                    warp.shared_access(hits, smem_offset, words_per_value);
                    Warp::for_each_lane(hits, [&](int l) {
                        block(i, cols[l] - r0) = vals[l];
                    });
                }
            }
        }
        // Move the assembled block from shared memory into the registers
        // of the owning lanes (one shared read per block column).
        for (index_type j = 0; j < m; ++j) {
            Reg<index_type> offs{};
            Warp::for_each_lane(first_lanes(m), [&](int l) {
                offs[l] = (l * m + j) * words_per_value;
            });
            warp.shared_access(first_lanes(m), offs, words_per_value);
        }
    }
    result.stats = warp.stats();
    obs::Registry::global().record_kernel("extraction", result.stats,
                                          layout->count());
    return result;
}

template <typename T>
size_type make_blocks_singular(sparse::Csr<T>& a,
                               const core::BatchLayout& layout,
                               size_type count) {
    VBATCH_ENSURE(layout.total_rows() == a.num_rows(),
                  "block sizes must partition the matrix");
    const auto nb = layout.count();
    const auto n = std::min(count, nb);
    if (n == 0) {
        return 0;
    }
    const auto row_ptrs = a.row_ptrs();
    const auto col_idxs = a.col_idxs();
    auto values = a.values();
    for (size_type k = 0; k < n; ++k) {
        // Evenly spaced choice so the zeroed blocks spread over the
        // matrix instead of clustering at the top.
        const auto b = k * nb / n;
        const auto r0 = static_cast<index_type>(layout.row_offset(b));
        const index_type m = layout.size(b);
        for (index_type i = 0; i < m; ++i) {
            const auto row = static_cast<std::size_t>(r0 + i);
            for (auto p = row_ptrs[row]; p < row_ptrs[row + 1]; ++p) {
                const auto c = col_idxs[static_cast<std::size_t>(p)];
                if (c >= r0 && c < r0 + m) {
                    values[static_cast<std::size_t>(p)] = T{};
                }
            }
        }
    }
    return n;
}

template <typename T>
size_type make_blocks_illcond(sparse::Csr<T>& a,
                              const core::BatchLayout& layout,
                              size_type count, double grade) {
    VBATCH_ENSURE(layout.total_rows() == a.num_rows(),
                  "block sizes must partition the matrix");
    VBATCH_ENSURE(grade > 0.0 && grade <= 1.0,
                  "illcond grade must be in (0, 1]");
    const auto nb = layout.count();
    const auto n = std::min(count, nb);
    if (n == 0) {
        return 0;
    }
    const auto row_ptrs = a.row_ptrs();
    const auto col_idxs = a.col_idxs();
    auto values = a.values();
    for (size_type k = 0; k < n; ++k) {
        const auto b = k * nb / n;
        const auto r0 = static_cast<index_type>(layout.row_offset(b));
        const index_type m = layout.size(b);
        for (index_type i = 0; i < m; ++i) {
            // Geometric row grading: top row untouched, bottom row
            // scaled by `grade`. Single-row blocks stay untouched (a 1x1
            // block cannot be ill-conditioned).
            const double e =
                m > 1 ? static_cast<double>(i) /
                            static_cast<double>(m - 1)
                      : 0.0;
            const T scale = static_cast<T>(std::pow(grade, e));
            const auto row = static_cast<std::size_t>(r0 + i);
            for (auto p = row_ptrs[row]; p < row_ptrs[row + 1]; ++p) {
                const auto c = col_idxs[static_cast<std::size_t>(p)];
                if (c >= r0 && c < r0 + m) {
                    values[static_cast<std::size_t>(p)] *= scale;
                }
            }
        }
    }
    return n;
}

#define VBATCH_INSTANTIATE_EXTRACT(T)                                       \
    template core::BatchedMatrices<T> extract_diagonal_blocks<T>(           \
        const sparse::Csr<T>&, core::BatchLayoutPtr);                       \
    template SimtExtractionResult<T> extract_blocks_simt_row<T>(            \
        const sparse::Csr<T>&, core::BatchLayoutPtr);                       \
    template SimtExtractionResult<T> extract_blocks_simt_shared<T>(         \
        const sparse::Csr<T>&, core::BatchLayoutPtr);                       \
    template size_type make_blocks_singular<T>(                             \
        sparse::Csr<T>&, const core::BatchLayout&, size_type);             \
    template size_type make_blocks_illcond<T>(                              \
        sparse::Csr<T>&, const core::BatchLayout&, size_type, double)

VBATCH_INSTANTIATE_EXTRACT(float);
VBATCH_INSTANTIATE_EXTRACT(double);

#undef VBATCH_INSTANTIATE_EXTRACT

}  // namespace vbatch::blocking
