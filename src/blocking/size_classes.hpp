// Size-class bucketing of a variable-size batch for the vectorized
// (lane-parallel) backend.
//
// The interleaved SIMD kernels require every lane of a chunk to run the
// same elimination steps, i.e. all matrices of a group must share one
// order. Block-Jacobi layouts produced by supervariable agglomeration are
// ragged but heavily clustered (most blocks hit max_block_size or a few
// popular smaller orders), so bucketing by size recovers near-uniform
// groups: each size class with at least `min_group` members becomes a
// vector group, the rest fall back to the scalar per-block path.
#pragma once

#include <vector>

#include "core/batch_layout.hpp"

namespace vbatch::blocking {

/// One same-size group routed to the vectorized kernels.
struct SizeClassGroup {
    index_type size = 0;
    /// Batch indices of the member blocks, in ascending order.
    std::vector<size_type> indices;
};

struct SizeClassPlan {
    std::vector<SizeClassGroup> vector_groups;
    /// Leftover blocks (size classes below min_group, and empty blocks).
    std::vector<size_type> scalar_indices;

    size_type vector_block_count() const noexcept {
        size_type n = 0;
        for (const auto& g : vector_groups) {
            n += static_cast<size_type>(g.indices.size());
        }
        return n;
    }
};

/// Bucket `layout` into same-size vector groups of at least `min_group`
/// blocks (typically the SIMD lane count: any smaller class would leave
/// most lanes padded) plus scalar leftovers.
SizeClassPlan build_size_class_plan(const core::BatchLayout& layout,
                                    index_type min_group);

}  // namespace vbatch::blocking
