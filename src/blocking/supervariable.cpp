#include "blocking/supervariable.hpp"

#include <algorithm>

#include "base/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vbatch::blocking {

namespace {

/// True if rows i and i+1 of `a` have the same column pattern.
template <typename T>
bool same_pattern(const sparse::Csr<T>& a, index_type i) {
    const auto row_ptrs = a.row_ptrs();
    const auto col_idxs = a.col_idxs();
    const auto b0 = row_ptrs[static_cast<std::size_t>(i)];
    const auto e0 = row_ptrs[static_cast<std::size_t>(i) + 1];
    const auto b1 = row_ptrs[static_cast<std::size_t>(i) + 1];
    const auto e1 = row_ptrs[static_cast<std::size_t>(i) + 2];
    if (e0 - b0 != e1 - b1) {
        return false;
    }
    for (size_type k = 0; k < e0 - b0; ++k) {
        if (col_idxs[static_cast<std::size_t>(b0 + k)] !=
            col_idxs[static_cast<std::size_t>(b1 + k)]) {
            return false;
        }
    }
    return true;
}

}  // namespace

template <typename T>
std::vector<index_type> find_supervariables(const sparse::Csr<T>& a) {
    VBATCH_ENSURE(a.num_rows() == a.num_cols(),
                  "blocking needs a square matrix");
    std::vector<index_type> sizes;
    const index_type n = a.num_rows();
    index_type run = n > 0 ? 1 : 0;
    for (index_type i = 0; i + 1 < n; ++i) {
        if (same_pattern(a, i)) {
            ++run;
        } else {
            sizes.push_back(run);
            run = 1;
        }
    }
    if (run > 0) {
        sizes.push_back(run);
    }
    return sizes;
}

template <typename T>
std::vector<index_type> supervariable_blocking(const sparse::Csr<T>& a,
                                               const BlockingOptions& opts) {
    VBATCH_ENSURE(opts.max_block_size >= 1 &&
                      opts.max_block_size <= max_block_size,
                  "block bound out of [1, 32]");
    VBATCH_ENSURE(a.num_rows() == a.num_cols(),
                  "blocking needs a square matrix");
    obs::TraceRegion trace("supervariable_blocking");
    const index_type bound = opts.max_block_size;
    const index_type n = a.num_rows();

    std::vector<index_type> supervars;
    if (opts.detect_supervariables) {
        supervars = find_supervariables(a);
    } else {
        supervars.assign(static_cast<std::size_t>(n), 1);
    }

    // Agglomerate adjacent supervariables into blocks up to the bound;
    // supervariables exceeding the bound are split into bound-sized chunks
    // (clustering "multiple supervariables adjacent in the coefficient
    // matrix ... within the same diagonal block", Section II.A).
    std::vector<index_type> blocks;
    index_type current = 0;
    for (index_type sv : supervars) {
        while (sv > bound) {
            if (current > 0) {
                blocks.push_back(current);
                current = 0;
            }
            blocks.push_back(bound);
            sv -= bound;
        }
        if (sv == 0) {
            continue;
        }
        if (current + sv <= bound) {
            current += sv;
        } else {
            blocks.push_back(current);
            current = sv;
        }
    }
    if (current > 0) {
        blocks.push_back(current);
    }
    auto& registry = obs::Registry::global();
    registry.add("blocking.calls", 1.0);
    registry.set("blocking.blocks",
                 static_cast<double>(blocks.size()));
    registry.set("blocking.supervariables",
                 static_cast<double>(supervars.size()));
    return blocks;
}

#define VBATCH_INSTANTIATE_SV(T)                                            \
    template std::vector<index_type> find_supervariables<T>(                \
        const sparse::Csr<T>&);                                             \
    template std::vector<index_type> supervariable_blocking<T>(             \
        const sparse::Csr<T>&, const BlockingOptions&)

VBATCH_INSTANTIATE_SV(float);
VBATCH_INSTANTIATE_SV(double);

#undef VBATCH_INSTANTIATE_SV

}  // namespace vbatch::blocking
