// Symbolic extraction analysis: cached CSR -> diagonal-block gather plans.
//
// extract_diagonal_blocks re-discovers on every setup which stored
// entries of each row fall inside the diagonal block -- a per-entry
// column scan that depends only on the sparsity pattern, not on the
// values. Following the symbolic/numeric split of sparse direct solvers
// (Bollhoefer et al., PAPERS.md), the gather plan runs that scan once
// per pattern and records, for every block, the flat CSR value index of
// each in-block entry together with its destination slot in the packed
// block storage. The repeatable numeric phase is then a branch-free
// indexed copy, and re-preconditioning a matrix whose pattern is
// unchanged (time stepping, Newton) skips all structural work.
//
// The plan also carries a fingerprint of the analyzed structure so
// BlockJacobi::refresh can reject a matrix with a different pattern.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/macros.hpp"
#include "base/span2d.hpp"
#include "core/batch_layout.hpp"
#include "core/vectorized.hpp"
#include "sparse/csr.hpp"

namespace vbatch::blocking {

/// The pattern fingerprint lives in the sparse layer (Csr memoizes it);
/// re-exported here for the plan's existing callers.
using sparse::csr_pattern_hash;

class GatherPlan {
public:
    GatherPlan() = default;

    /// Analyze the pattern (row_ptrs, col_idxs) against the block
    /// partition `layout`. O(nnz-scan) once; every numeric gather after
    /// that is a flat indexed copy.
    GatherPlan(std::span<const size_type> row_ptrs,
               std::span<const index_type> col_idxs,
               core::BatchLayoutPtr layout);

    /// Same, with the pattern fingerprint already in hand (saves the
    /// O(nnz) rehash when the matrix memoized it).
    GatherPlan(std::span<const size_type> row_ptrs,
               std::span<const index_type> col_idxs,
               core::BatchLayoutPtr layout, std::uint64_t pattern_hash);

    template <typename T>
    GatherPlan(const sparse::Csr<T>& a, core::BatchLayoutPtr layout)
        : GatherPlan(a.row_ptrs(), a.col_idxs(), std::move(layout),
                     a.pattern_hash()) {}

    bool empty() const noexcept { return layout_ == nullptr; }
    const core::BatchLayout& layout() const noexcept { return *layout_; }
    /// Shared handle to the analyzed block partition; lets plan consumers
    /// (preconditioners, the service-layer plan cache) alias one layout
    /// instead of re-deriving it per tenant.
    const core::BatchLayoutPtr& layout_ptr() const noexcept {
        return layout_;
    }

    /// Heap footprint of the plan's index arrays; the service-layer cache
    /// charges entries against its byte budget with this.
    std::size_t byte_size() const noexcept {
        return entry_ptrs_.capacity() * sizeof(size_type) +
               src_.capacity() * sizeof(size_type) +
               dst_.capacity() * sizeof(index_type);
    }

    /// Number of stored entries that land inside block b.
    size_type block_entries(size_type b) const noexcept {
        return entry_ptrs_[static_cast<std::size_t>(b) + 1] -
               entry_ptrs_[static_cast<std::size_t>(b)];
    }

    /// Block b's slice of src()/dst().
    size_type entry_begin(size_type b) const noexcept {
        return entry_ptrs_[static_cast<std::size_t>(b)];
    }

    /// Flat CSR value index of each gathered entry, grouped by block.
    std::span<const size_type> src() const noexcept { return src_; }
    /// Block-local column-major offset (c*m + r) of each gathered entry;
    /// index_type is enough because blocks are at most max_block_size.
    std::span<const index_type> dst() const noexcept { return dst_; }

    index_type num_rows() const noexcept { return num_rows_; }
    size_type nnz() const noexcept { return nnz_; }
    std::uint64_t pattern_hash() const noexcept { return pattern_hash_; }

    /// True when `a`'s sparsity structure is the analyzed pattern (row
    /// count, nnz and structure fingerprint all agree).
    template <typename T>
    bool matches(const sparse::Csr<T>& a) const {
        return num_rows_ == a.num_rows() && nnz_ == a.nnz() &&
               pattern_hash_ == a.pattern_hash();
    }

    /// Numeric gather of one block: zero `out` and scatter the stored
    /// entries of `values`. Produces exactly the block
    /// extract_diagonal_blocks builds (entries outside the pattern stay
    /// zero). `out` must be a contiguous view of order layout().size(b).
    template <typename T>
    void gather_block(std::span<const T> values, size_type b,
                      MatrixView<T> out) const {
        const index_type m = layout_->size(b);
        VBATCH_ASSERT(out.rows() == m && out.cols() == m && out.ld() == m);
        T* data = out.data();
        const auto mm = static_cast<size_type>(m) * m;
        for (size_type q = 0; q < mm; ++q) {
            data[q] = T{};
        }
        const auto beg = entry_begin(b);
        const auto end = entry_begin(b + 1);
        for (size_type e = beg; e < end; ++e) {
            data[dst_[static_cast<std::size_t>(e)]] =
                values[static_cast<std::size_t>(
                    src_[static_cast<std::size_t>(e)])];
        }
    }

    /// Lane-slot gather map for one interleaved size-class group: lane l
    /// holds block indices[l], destinations are offsets into the group's
    /// values() array (value_index(r, c, l) with m = group size and the
    /// given vector width).
    core::InterleavedGatherMap interleaved_map(
        std::span<const size_type> indices, index_type lanes) const;

private:
    core::BatchLayoutPtr layout_;
    /// Block b's entries occupy [entry_ptrs_[b], entry_ptrs_[b+1]).
    std::vector<size_type> entry_ptrs_;
    std::vector<size_type> src_;
    std::vector<index_type> dst_;
    index_type num_rows_ = 0;
    size_type nnz_ = 0;
    std::uint64_t pattern_hash_ = 0;
};

}  // namespace vbatch::blocking
