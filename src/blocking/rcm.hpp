// Reverse Cuthill-McKee reordering.
//
// Section II.A of the paper: supervariable blocking works best when
// "variables ordered close-by in the matrix representation belong to
// elements that are nearby in the PDE mesh", and cites reverse
// Cuthill-McKee as an ordering that preserves this locality. This module
// provides RCM so a user can pre-order an arbitrarily-permuted matrix
// before handing it to the block-Jacobi preconditioner.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "sparse/csr.hpp"

namespace vbatch::blocking {

/// Compute the reverse Cuthill-McKee permutation of the symmetrized
/// pattern of `a`. Returns `perm` with perm[new_index] = old_index.
/// Disconnected components are processed in order of their lowest-degree
/// vertex, each from a pseudo-peripheral-ish start (lowest degree).
template <typename T>
std::vector<index_type> reverse_cuthill_mckee(const sparse::Csr<T>& a);

/// Symmetrically permute a square matrix: result(i, j) = a(p[i], p[j]).
template <typename T>
sparse::Csr<T> permute_symmetric(const sparse::Csr<T>& a,
                                 std::span<const index_type> perm);

/// Permute a vector into the reordered numbering:
/// out[new_index] = in[perm[new_index]].
template <typename T>
void permute_vector(std::span<const index_type> perm, std::span<const T> in,
                    std::span<T> out);

/// Scatter a reordered vector back to the original numbering:
/// out[perm[new_index]] = in[new_index].
template <typename T>
void unpermute_vector(std::span<const index_type> perm,
                      std::span<const T> in, std::span<T> out);

/// Half bandwidth max_i max_{j in row i} |i - j| (reordering metric).
template <typename T>
index_type bandwidth(const sparse::Csr<T>& a);

}  // namespace vbatch::blocking
