// Diagonal block extraction from CSR (Section III.C, Fig. 3).
//
// Pulling a dense diagonal block out of a CSR matrix is the non-trivial
// part of the block-Jacobi setup: a thread-per-row strategy suffers
// non-coalesced reads and, on matrices with unbalanced rows (circuit
// simulation), severe warp-internal load imbalance. The paper's
// shared-memory strategy has all 32 lanes of the warp cooperate on every
// row: they stream the row's column indices in coalesced 32-wide chunks,
// push the hits into shared memory, and finally move the block into the
// registers of the owning lane.
//
// Three implementations:
//   extract_diagonal_blocks       - functional CPU version (used by the
//                                   block-Jacobi preconditioner setup)
//   extract_blocks_simt_row       - warp-emulated thread-per-row kernel
//   extract_blocks_simt_shared    - warp-emulated shared-memory kernel
// The two emulated kernels produce identical blocks and their transaction
// counters quantify the paper's Fig. 3 argument (bench_extraction).
#pragma once

#include "core/batch_storage.hpp"
#include "simt/warp.hpp"
#include "sparse/csr.hpp"

namespace vbatch::blocking {

/// Extract the diagonal blocks described by `layout` from `a` (CPU).
/// Entries of the block not present in the sparse pattern are zero.
template <typename T>
core::BatchedMatrices<T> extract_diagonal_blocks(
    const sparse::Csr<T>& a, core::BatchLayoutPtr layout);

/// Result of an emulated extraction: the blocks plus the warp counters.
template <typename T>
struct SimtExtractionResult {
    core::BatchedMatrices<T> blocks;
    simt::KernelStats stats;
};

/// Thread-per-row extraction (the baseline strategy the paper improves).
template <typename T>
SimtExtractionResult<T> extract_blocks_simt_row(const sparse::Csr<T>& a,
                                                core::BatchLayoutPtr layout);

/// Warp-cooperative shared-memory extraction (the paper's strategy).
template <typename T>
SimtExtractionResult<T> extract_blocks_simt_shared(
    const sparse::Csr<T>& a, core::BatchLayoutPtr layout);

/// Test/bench helper: make `count` evenly spaced diagonal blocks of `a`
/// exactly singular by zeroing the stored values that fall inside the
/// block (rows and columns of the block's range). Only values change --
/// the sparsity pattern stays intact, so a supervariable layout computed
/// from the pattern remains valid. Returns the number of blocks zeroed
/// (min(count, layout.count())).
template <typename T>
size_type make_blocks_singular(sparse::Csr<T>& a,
                               const core::BatchLayout& layout,
                               size_type count);

/// Test/bench helper: make `count` evenly spaced diagonal blocks of `a`
/// *ill-conditioned but nonsingular* by grading their rows -- row i of a
/// selected block is scaled by grade^(i/(m-1)), so the block's condition
/// number approaches 1/grade while every pivot stays exactly nonzero.
/// With the default grade (1e-30 in double) the graded pivots sit above
/// the implicit path's eps^2 degeneracy tolerance but below the RBT
/// path's eps tolerance: the pivoted setup keeps the blocks, the
/// pivot-free fast path must detect them and fall back -- the robustness
/// ablation of the butterfly monitor. Values only; the pattern (and any
/// layout derived from it) stays intact. Returns the number of blocks
/// graded.
template <typename T>
size_type make_blocks_illcond(sparse::Csr<T>& a,
                              const core::BatchLayout& layout,
                              size_type count, double grade = 1e-30);

}  // namespace vbatch::blocking
