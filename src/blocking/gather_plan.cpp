#include "blocking/gather_plan.hpp"

#include "base/thread_pool.hpp"
#include "obs/trace.hpp"

namespace vbatch::blocking {

GatherPlan::GatherPlan(std::span<const size_type> row_ptrs,
                       std::span<const index_type> col_idxs,
                       core::BatchLayoutPtr layout)
    : GatherPlan(row_ptrs, col_idxs, std::move(layout),
                 csr_pattern_hash(row_ptrs, col_idxs)) {}

GatherPlan::GatherPlan(std::span<const size_type> row_ptrs,
                       std::span<const index_type> col_idxs,
                       core::BatchLayoutPtr layout,
                       std::uint64_t pattern_hash)
    : layout_(std::move(layout)),
      num_rows_(static_cast<index_type>(row_ptrs.size()) - 1),
      nnz_(static_cast<size_type>(col_idxs.size())),
      pattern_hash_(pattern_hash) {
    VBATCH_ENSURE(layout_ != nullptr, "gather plan needs a block layout");
    VBATCH_ENSURE(layout_->total_rows() == num_rows_,
                  "block sizes must partition the matrix");
    obs::TraceRegion trace("build_gather_plan");
    const size_type nb = layout_->count();
    entry_ptrs_.assign(static_cast<std::size_t>(nb) + 1, 0);

    // Count pass: find each row's in-block column range once and memoize
    // it, so the fill pass below is a straight indexed copy instead of a
    // second column scan. Every block owns a disjoint row slice.
    std::vector<size_type> row_beg(static_cast<std::size_t>(num_rows_));
    std::vector<size_type> row_end(static_cast<std::size_t>(num_rows_));
    ThreadPool::global().parallel_for(
        0, nb,
        [&](size_type b) {
            const auto r0 = static_cast<index_type>(layout_->row_offset(b));
            const index_type m = layout_->size(b);
            size_type n = 0;
            for (index_type i = 0; i < m; ++i) {
                const auto row = static_cast<std::size_t>(r0 + i);
                auto p = row_ptrs[row];
                const auto row_stop = row_ptrs[row + 1];
                while (p < row_stop &&
                       col_idxs[static_cast<std::size_t>(p)] < r0) {
                    ++p;
                }
                row_beg[row] = p;
                while (p < row_stop &&
                       col_idxs[static_cast<std::size_t>(p)] < r0 + m) {
                    ++p;
                }
                row_end[row] = p;
                n += p - row_beg[row];
            }
            entry_ptrs_[static_cast<std::size_t>(b) + 1] = n;
        },
        batch_entry_grain);
    for (size_type b = 0; b < nb; ++b) {
        entry_ptrs_[static_cast<std::size_t>(b) + 1] +=
            entry_ptrs_[static_cast<std::size_t>(b)];
    }
    src_.resize(static_cast<std::size_t>(entry_ptrs_.back()));
    dst_.resize(src_.size());
    ThreadPool::global().parallel_for(
        0, nb,
        [&](size_type b) {
            const auto r0 = static_cast<index_type>(layout_->row_offset(b));
            const index_type m = layout_->size(b);
            auto e = static_cast<std::size_t>(
                entry_ptrs_[static_cast<std::size_t>(b)]);
            for (index_type i = 0; i < m; ++i) {
                const auto row = static_cast<std::size_t>(r0 + i);
                const auto end = row_end[row];
                for (auto p = row_beg[row]; p < end; ++p, ++e) {
                    src_[e] = p;
                    // Column-major slot (c_local * m + r_local); fits in
                    // index_type because m <= max_block_size.
                    dst_[e] =
                        (col_idxs[static_cast<std::size_t>(p)] - r0) * m + i;
                }
            }
        },
        batch_entry_grain);
}

core::InterleavedGatherMap GatherPlan::interleaved_map(
    std::span<const size_type> indices, index_type lanes) const {
    VBATCH_ENSURE(!indices.empty(),
                  "interleaved gather map needs at least one lane");
    core::InterleavedGatherMap map;
    const auto count = static_cast<size_type>(indices.size());
    map.lane_ptrs.resize(static_cast<std::size_t>(count) + 1, 0);
    for (size_type l = 0; l < count; ++l) {
        map.lane_ptrs[static_cast<std::size_t>(l) + 1] =
            map.lane_ptrs[static_cast<std::size_t>(l)] +
            block_entries(indices[static_cast<std::size_t>(l)]);
    }
    map.src.resize(static_cast<std::size_t>(map.lane_ptrs.back()));
    map.dst.resize(map.src.size());
    const auto m =
        static_cast<size_type>(layout_->size(indices.front()));
    const auto mm = m * m;
    std::size_t out = 0;
    for (size_type l = 0; l < count; ++l) {
        const auto b = indices[static_cast<std::size_t>(l)];
        VBATCH_ASSERT(static_cast<size_type>(layout_->size(b)) == m);
        const auto beg = entry_begin(b);
        const auto end = entry_begin(b + 1);
        const size_type chunk_base = (l / lanes) * mm;
        const size_type lane = l % lanes;
        for (size_type e = beg; e < end; ++e, ++out) {
            map.src[out] = src_[static_cast<std::size_t>(e)];
            map.dst[out] =
                (chunk_base +
                 static_cast<size_type>(dst_[static_cast<std::size_t>(e)])) *
                    lanes +
                lane;
        }
    }
    return map;
}

}  // namespace vbatch::blocking
