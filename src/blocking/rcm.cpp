#include "blocking/rcm.hpp"

#include <algorithm>
#include <queue>

#include "base/macros.hpp"

namespace vbatch::blocking {

template <typename T>
std::vector<index_type> reverse_cuthill_mckee(const sparse::Csr<T>& a) {
    VBATCH_ENSURE(a.num_rows() == a.num_cols(),
                  "RCM needs a square matrix");
    const index_type n = a.num_rows();
    // Symmetrize the pattern: adjacency = pattern(A) | pattern(A^T).
    const auto at = a.transpose();
    std::vector<std::vector<index_type>> adj(static_cast<std::size_t>(n));
    const auto add_edges = [&](const sparse::Csr<T>& m) {
        for (index_type i = 0; i < n; ++i) {
            for (auto p = m.row_ptrs()[static_cast<std::size_t>(i)];
                 p < m.row_ptrs()[static_cast<std::size_t>(i) + 1]; ++p) {
                const auto j = m.col_idxs()[static_cast<std::size_t>(p)];
                if (j != i) {
                    adj[static_cast<std::size_t>(i)].push_back(j);
                }
            }
        }
    };
    add_edges(a);
    add_edges(at);
    std::vector<index_type> degree(static_cast<std::size_t>(n));
    for (index_type i = 0; i < n; ++i) {
        auto& nb = adj[static_cast<std::size_t>(i)];
        std::sort(nb.begin(), nb.end());
        nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
        degree[static_cast<std::size_t>(i)] =
            static_cast<index_type>(nb.size());
    }

    // Cuthill-McKee BFS with degree-sorted neighbor visits.
    std::vector<index_type> order;
    order.reserve(static_cast<std::size_t>(n));
    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    // Process vertices grouped by component; seeds in increasing degree.
    std::vector<index_type> seeds(static_cast<std::size_t>(n));
    for (index_type i = 0; i < n; ++i) {
        seeds[static_cast<std::size_t>(i)] = i;
    }
    std::sort(seeds.begin(), seeds.end(),
              [&](index_type x, index_type y) {
                  const auto dx = degree[static_cast<std::size_t>(x)];
                  const auto dy = degree[static_cast<std::size_t>(y)];
                  return dx != dy ? dx < dy : x < y;
              });
    std::vector<index_type> scratch;
    for (const auto seed : seeds) {
        if (visited[static_cast<std::size_t>(seed)]) {
            continue;
        }
        std::queue<index_type> queue;
        queue.push(seed);
        visited[static_cast<std::size_t>(seed)] = true;
        while (!queue.empty()) {
            const auto v = queue.front();
            queue.pop();
            order.push_back(v);
            scratch.clear();
            for (const auto w : adj[static_cast<std::size_t>(v)]) {
                if (!visited[static_cast<std::size_t>(w)]) {
                    visited[static_cast<std::size_t>(w)] = true;
                    scratch.push_back(w);
                }
            }
            std::sort(scratch.begin(), scratch.end(),
                      [&](index_type x, index_type y) {
                          const auto dx =
                              degree[static_cast<std::size_t>(x)];
                          const auto dy =
                              degree[static_cast<std::size_t>(y)];
                          return dx != dy ? dx < dy : x < y;
                      });
            for (const auto w : scratch) {
                queue.push(w);
            }
        }
    }
    // Reverse for RCM.
    std::reverse(order.begin(), order.end());
    return order;
}

template <typename T>
sparse::Csr<T> permute_symmetric(const sparse::Csr<T>& a,
                                 std::span<const index_type> perm) {
    VBATCH_ENSURE(a.num_rows() == a.num_cols(),
                  "symmetric permutation needs a square matrix");
    VBATCH_ENSURE_DIMS(static_cast<index_type>(perm.size()) == a.num_rows());
    const index_type n = a.num_rows();
    // inverse permutation: iperm[old] = new
    std::vector<index_type> iperm(static_cast<std::size_t>(n));
    for (index_type k = 0; k < n; ++k) {
        const auto old = perm[static_cast<std::size_t>(k)];
        VBATCH_ENSURE(old >= 0 && old < n, "invalid permutation entry");
        iperm[static_cast<std::size_t>(old)] = k;
    }
    std::vector<sparse::Triplet<T>> triplets;
    triplets.reserve(static_cast<std::size_t>(a.nnz()));
    for (index_type i = 0; i < n; ++i) {
        for (auto p = a.row_ptrs()[static_cast<std::size_t>(i)];
             p < a.row_ptrs()[static_cast<std::size_t>(i) + 1]; ++p) {
            triplets.push_back(
                {iperm[static_cast<std::size_t>(i)],
                 iperm[static_cast<std::size_t>(
                     a.col_idxs()[static_cast<std::size_t>(p)])],
                 a.values()[static_cast<std::size_t>(p)]});
        }
    }
    return sparse::Csr<T>::from_triplets(n, n, std::move(triplets));
}

template <typename T>
void permute_vector(std::span<const index_type> perm, std::span<const T> in,
                    std::span<T> out) {
    VBATCH_ENSURE_DIMS(perm.size() == in.size() && in.size() == out.size());
    for (std::size_t k = 0; k < perm.size(); ++k) {
        out[k] = in[static_cast<std::size_t>(perm[k])];
    }
}

template <typename T>
void unpermute_vector(std::span<const index_type> perm,
                      std::span<const T> in, std::span<T> out) {
    VBATCH_ENSURE_DIMS(perm.size() == in.size() && in.size() == out.size());
    for (std::size_t k = 0; k < perm.size(); ++k) {
        out[static_cast<std::size_t>(perm[k])] = in[k];
    }
}

template <typename T>
index_type bandwidth(const sparse::Csr<T>& a) {
    index_type bw = 0;
    for (index_type i = 0; i < a.num_rows(); ++i) {
        for (auto p = a.row_ptrs()[static_cast<std::size_t>(i)];
             p < a.row_ptrs()[static_cast<std::size_t>(i) + 1]; ++p) {
            bw = std::max(bw, std::abs(
                a.col_idxs()[static_cast<std::size_t>(p)] - i));
        }
    }
    return bw;
}

#define VBATCH_INSTANTIATE_RCM(T)                                           \
    template std::vector<index_type> reverse_cuthill_mckee<T>(              \
        const sparse::Csr<T>&);                                             \
    template sparse::Csr<T> permute_symmetric<T>(                           \
        const sparse::Csr<T>&, std::span<const index_type>);                \
    template void permute_vector<T>(std::span<const index_type>,            \
                                    std::span<const T>, std::span<T>);      \
    template void unpermute_vector<T>(std::span<const index_type>,          \
                                      std::span<const T>, std::span<T>);    \
    template index_type bandwidth<T>(const sparse::Csr<T>&)

VBATCH_INSTANTIATE_RCM(float);
VBATCH_INSTANTIATE_RCM(double);

#undef VBATCH_INSTANTIATE_RCM

}  // namespace vbatch::blocking
