#include "blocking/size_classes.hpp"

#include <algorithm>

#include "base/macros.hpp"

namespace vbatch::blocking {

SizeClassPlan build_size_class_plan(const core::BatchLayout& layout,
                                    index_type min_group) {
    VBATCH_ENSURE(min_group >= 1, "min_group must be positive");
    std::vector<std::vector<size_type>> buckets(
        static_cast<std::size_t>(max_block_size) + 1);
    for (size_type i = 0; i < layout.count(); ++i) {
        buckets[static_cast<std::size_t>(layout.size(i))].push_back(i);
    }

    SizeClassPlan plan;
    // Size-0 blocks carry no work; always leave them to the scalar path.
    plan.scalar_indices = std::move(buckets[0]);
    for (index_type m = 1; m <= max_block_size; ++m) {
        auto& bucket = buckets[static_cast<std::size_t>(m)];
        if (bucket.empty()) {
            continue;
        }
        if (static_cast<index_type>(bucket.size()) >= min_group) {
            plan.vector_groups.push_back({m, std::move(bucket)});
        } else {
            plan.scalar_indices.insert(plan.scalar_indices.end(),
                                       bucket.begin(), bucket.end());
        }
    }
    std::sort(plan.scalar_indices.begin(), plan.scalar_indices.end());
    return plan;
}

}  // namespace vbatch::blocking
