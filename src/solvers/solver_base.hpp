// Common options/result types for the iterative solvers.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "base/types.hpp"
#include "core/block_status.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "precond/preconditioner.hpp"

namespace vbatch::solvers {

struct SolverOptions {
    /// Stop when ||r|| <= rel_tol * ||r0|| (the paper stops after the
    /// relative residual norm dropped six orders of magnitude).
    double rel_tol = 1e-6;
    /// Iteration budget; the paper allows up to 10,000.
    index_type max_iters = 10000;
    /// Record ||r|| after every iteration (costs memory, for plots/tests).
    bool keep_residual_history = false;
    /// Attribute wall time to the spmv / preconditioner-apply / BLAS-1 /
    /// orthogonalization phases and export roofline traffic for them.
    /// Costs two clock reads per bracketed operation when on; the
    /// disarmed cost is one branch per operation.
    bool collect_phase_times = false;
};

/// Wall-time attribution of one solve across its hot-path phases.
struct PhaseSeconds {
    double spmv = 0.0;     ///< operator applications
    double precond = 0.0;  ///< preconditioner applies
    double blas1 = 0.0;    ///< vector updates, dots, norms
    double orth = 0.0;     ///< (re)orthogonalization sweeps (IDR/GMRES)
    double total() const noexcept { return spmv + precond + blas1 + orth; }
};

/// Scope guard accumulating its lifetime into one PhaseSeconds field.
/// Disarmed cost is a branch -- no clock reads.
class PhaseTimer {
public:
    PhaseTimer(bool armed, double& acc) noexcept
        : acc_(armed ? &acc : nullptr) {
        if (acc_ != nullptr) {
            start_ = std::chrono::steady_clock::now();
        }
    }
    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;
    ~PhaseTimer() {
        if (acc_ != nullptr) {
            *acc_ += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
        }
    }

private:
    double* acc_;
    std::chrono::steady_clock::time_point start_{};
};

/// Why the iteration stopped.
enum class SolveStatus {
    /// Reached the relative-residual tolerance.
    converged,
    /// Exhausted the iteration budget.
    max_iters,
    /// The method broke down (division by a vanishing inner product)
    /// before reaching the tolerance.
    breakdown,
    /// Did not converge, and the preconditioner reported degraded blocks
    /// during its setup (boosted/fallback/identity) -- the likely cause.
    preconditioner_degraded,
};

inline const char* to_string(SolveStatus status) noexcept {
    switch (status) {
    case SolveStatus::converged: return "converged";
    case SolveStatus::max_iters: return "max_iters";
    case SolveStatus::breakdown: return "breakdown";
    case SolveStatus::preconditioner_degraded:
        return "preconditioner_degraded";
    }
    return "unknown";
}

struct SolveResult {
    SolveStatus status = SolveStatus::max_iters;
    /// Consumed iterations. One iteration = one operator (SpMV)
    /// application, the convention MAGMA-sparse reports.
    index_type iterations = 0;
    double initial_residual = 0.0;
    double final_residual = 0.0;
    /// Wall time of the iterative phase (excludes preconditioner setup).
    double solve_seconds = 0.0;
    /// Per-status block counts of the preconditioner setup (all zero for
    /// preconditioners without a recovery pipeline).
    core::RecoverySummary preconditioner;
    std::vector<double> residual_history;
    /// Wall time attributed to each hot-path phase (all zero unless
    /// SolverOptions::collect_phase_times was set).
    PhaseSeconds phase_seconds;
    /// Cumulative phase_seconds snapshot at every recorded residual
    /// sample, parallel to residual_history (filled when both
    /// keep_residual_history and collect_phase_times are set). Diff
    /// consecutive entries for per-iteration attribution.
    std::vector<PhaseSeconds> phase_history;

    bool converged() const noexcept {
        return status == SolveStatus::converged;
    }
    bool breakdown() const noexcept {
        return status == SolveStatus::breakdown;
    }

    double relative_residual() const {
        return initial_residual > 0.0 ? final_residual / initial_residual
                                      : final_residual;
    }
};

/// Record one residual sample: appends to the public residual_history
/// when the caller asked for it, and emits a per-iteration trace counter
/// when tracing is armed. All solvers funnel their per-iteration
/// recording through this helper so the trace and the history stay
/// consistent.
inline void record_residual(const SolverOptions& opts, SolveResult& result,
                            double normr) {
    if (opts.keep_residual_history) {
        result.residual_history.push_back(normr);
        if (opts.collect_phase_times) {
            result.phase_history.push_back(result.phase_seconds);
        }
    }
    obs::counter("residual", normr);
}

/// Canonical flop/byte totals of a finished solve, per phase family,
/// under the core/flops.hpp + core/bytes.hpp models. Phases without a
/// byte model (e.g. orthogonalization) stay zero and are skipped.
struct SolverTraffic {
    double spmv_flops = 0.0;
    double spmv_bytes = 0.0;
    double blas1_flops = 0.0;
    double blas1_bytes = 0.0;
    double precond_flops = 0.0;
    double precond_bytes = 0.0;
};

/// Export a finished solve's phase attribution into the metrics
/// registry: per-phase seconds counters (solver.<phase>_seconds) plus
/// roofline traffic for the phases with canonical byte models. No-op
/// when attribution was off.
inline void export_phase_attribution(const SolverOptions& opts,
                                     const SolveResult& result,
                                     const SolverTraffic& traffic) {
    if (!opts.collect_phase_times) {
        return;
    }
    auto& registry = obs::Registry::global();
    const auto& ph = result.phase_seconds;
    registry.add("solver.spmv_seconds", ph.spmv);
    registry.add("solver.precond_seconds", ph.precond);
    registry.add("solver.blas1_seconds", ph.blas1);
    registry.add("solver.orth_seconds", ph.orth);
    registry.add("solver.attributed_solves", 1.0);
    const auto problems = static_cast<size_type>(result.iterations);
    if (ph.spmv > 0.0 && traffic.spmv_bytes > 0.0) {
        registry.record_traffic("solver.spmv", traffic.spmv_flops,
                                traffic.spmv_bytes, ph.spmv, problems);
    }
    if (ph.blas1 > 0.0 && traffic.blas1_bytes > 0.0) {
        registry.record_traffic("solver.blas1", traffic.blas1_flops,
                                traffic.blas1_bytes, ph.blas1, problems);
    }
    if (ph.precond > 0.0 && traffic.precond_bytes > 0.0) {
        registry.record_traffic("solver.precond", traffic.precond_flops,
                                traffic.precond_bytes, ph.precond,
                                problems);
    }
}

/// Resolve the final SolveStatus from what the iteration observed, in
/// precedence order: converged > breakdown > preconditioner_degraded >
/// max_iters. Also snapshots the preconditioner's recovery summary so
/// callers can see what they iterated with.
template <typename T>
void finalize_result(SolveResult& result, bool converged, bool broke_down,
                     const precond::Preconditioner<T>& prec) {
    result.preconditioner = prec.recovery_summary();
    if (converged) {
        result.status = SolveStatus::converged;
    } else if (broke_down) {
        result.status = SolveStatus::breakdown;
    } else if (result.preconditioner.degraded() > 0) {
        result.status = SolveStatus::preconditioner_degraded;
    } else {
        result.status = SolveStatus::max_iters;
    }
}

}  // namespace vbatch::solvers
