// Common options/result types for the iterative solvers.
#pragma once

#include <string>
#include <vector>

#include "base/types.hpp"
#include "core/block_status.hpp"
#include "obs/trace.hpp"
#include "precond/preconditioner.hpp"

namespace vbatch::solvers {

struct SolverOptions {
    /// Stop when ||r|| <= rel_tol * ||r0|| (the paper stops after the
    /// relative residual norm dropped six orders of magnitude).
    double rel_tol = 1e-6;
    /// Iteration budget; the paper allows up to 10,000.
    index_type max_iters = 10000;
    /// Record ||r|| after every iteration (costs memory, for plots/tests).
    bool keep_residual_history = false;
};

/// Why the iteration stopped.
enum class SolveStatus {
    /// Reached the relative-residual tolerance.
    converged,
    /// Exhausted the iteration budget.
    max_iters,
    /// The method broke down (division by a vanishing inner product)
    /// before reaching the tolerance.
    breakdown,
    /// Did not converge, and the preconditioner reported degraded blocks
    /// during its setup (boosted/fallback/identity) -- the likely cause.
    preconditioner_degraded,
};

inline const char* to_string(SolveStatus status) noexcept {
    switch (status) {
    case SolveStatus::converged: return "converged";
    case SolveStatus::max_iters: return "max_iters";
    case SolveStatus::breakdown: return "breakdown";
    case SolveStatus::preconditioner_degraded:
        return "preconditioner_degraded";
    }
    return "unknown";
}

struct SolveResult {
    SolveStatus status = SolveStatus::max_iters;
    /// Consumed iterations. One iteration = one operator (SpMV)
    /// application, the convention MAGMA-sparse reports.
    index_type iterations = 0;
    double initial_residual = 0.0;
    double final_residual = 0.0;
    /// Wall time of the iterative phase (excludes preconditioner setup).
    double solve_seconds = 0.0;
    /// Per-status block counts of the preconditioner setup (all zero for
    /// preconditioners without a recovery pipeline).
    core::RecoverySummary preconditioner;
    std::vector<double> residual_history;

    bool converged() const noexcept {
        return status == SolveStatus::converged;
    }
    bool breakdown() const noexcept {
        return status == SolveStatus::breakdown;
    }

    double relative_residual() const {
        return initial_residual > 0.0 ? final_residual / initial_residual
                                      : final_residual;
    }
};

/// Record one residual sample: appends to the public residual_history
/// when the caller asked for it, and emits a per-iteration trace counter
/// when tracing is armed. All solvers funnel their per-iteration
/// recording through this helper so the trace and the history stay
/// consistent.
inline void record_residual(const SolverOptions& opts, SolveResult& result,
                            double normr) {
    if (opts.keep_residual_history) {
        result.residual_history.push_back(normr);
    }
    obs::counter("residual", normr);
}

/// Resolve the final SolveStatus from what the iteration observed, in
/// precedence order: converged > breakdown > preconditioner_degraded >
/// max_iters. Also snapshots the preconditioner's recovery summary so
/// callers can see what they iterated with.
template <typename T>
void finalize_result(SolveResult& result, bool converged, bool broke_down,
                     const precond::Preconditioner<T>& prec) {
    result.preconditioner = prec.recovery_summary();
    if (converged) {
        result.status = SolveStatus::converged;
    } else if (broke_down) {
        result.status = SolveStatus::breakdown;
    } else if (result.preconditioner.degraded() > 0) {
        result.status = SolveStatus::preconditioner_degraded;
    } else {
        result.status = SolveStatus::max_iters;
    }
}

}  // namespace vbatch::solvers
