// Common options/result types for the iterative solvers.
#pragma once

#include <string>
#include <vector>

#include "base/types.hpp"
#include "obs/trace.hpp"

namespace vbatch::solvers {

struct SolverOptions {
    /// Stop when ||r|| <= rel_tol * ||r0|| (the paper stops after the
    /// relative residual norm dropped six orders of magnitude).
    double rel_tol = 1e-6;
    /// Iteration budget; the paper allows up to 10,000.
    index_type max_iters = 10000;
    /// Record ||r|| after every iteration (costs memory, for plots/tests).
    bool keep_residual_history = false;
};

struct SolveResult {
    bool converged = false;
    /// Consumed iterations. One iteration = one operator (SpMV)
    /// application, the convention MAGMA-sparse reports.
    index_type iterations = 0;
    double initial_residual = 0.0;
    double final_residual = 0.0;
    /// Wall time of the iterative phase (excludes preconditioner setup).
    double solve_seconds = 0.0;
    /// True if the method broke down (division by a vanishing inner
    /// product) before reaching the tolerance.
    bool breakdown = false;
    std::vector<double> residual_history;

    double relative_residual() const {
        return initial_residual > 0.0 ? final_residual / initial_residual
                                      : final_residual;
    }
};

/// Record one residual sample: appends to the public residual_history
/// when the caller asked for it, and emits a per-iteration trace counter
/// when tracing is armed. All solvers funnel their per-iteration
/// recording through this helper so the trace and the history stay
/// consistent.
inline void record_residual(const SolverOptions& opts, SolveResult& result,
                            double normr) {
    if (opts.keep_residual_history) {
        result.residual_history.push_back(normr);
    }
    obs::counter("residual", normr);
}

}  // namespace vbatch::solvers
