// Restarted GMRES(m) with left preconditioning (Saad & Schultz), rounding
// out the Krylov family of the library.
#pragma once

#include "precond/preconditioner.hpp"
#include "solvers/solver_base.hpp"
#include "sparse/csr.hpp"

namespace vbatch::solvers {

struct GmresOptions : SolverOptions {
    /// Restart length.
    index_type restart = 30;
};

template <typename T>
SolveResult gmres(const sparse::Csr<T>& a, std::span<const T> b,
                  std::span<T> x, const precond::Preconditioner<T>& prec,
                  const GmresOptions& opts = {});

}  // namespace vbatch::solvers
