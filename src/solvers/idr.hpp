// IDR(s) -- the Krylov method of the paper's solver study (IDR(4),
// Section IV.D), in the "biortho" variant of van Gijzen & Sonneveld
// (Algorithm 913, ACM TOMS 2011), with left preconditioning, exactly the
// configuration MAGMA-sparse's IDR uses.
//
// IDR(s) forces the residual into a shrinking sequence of Sonneveld spaces
// G_j; each cycle performs s preconditioned "directions" plus one
// dimension-reduction step, i.e. s+1 operator applications.
#pragma once

#include "precond/preconditioner.hpp"
#include "solvers/solver_base.hpp"
#include "sparse/csr.hpp"

namespace vbatch::solvers {

struct IdrOptions : SolverOptions {
    /// Shadow-space dimension (the paper uses s = 4).
    index_type s = 4;
    /// Seed for the random shadow space P (fixed for reproducibility).
    std::uint64_t shadow_seed = 7;
    /// Angle safeguard for the omega computation (van Gijzen's kappa).
    double kappa = 0.7;
    /// Minimal-residual smoothing (the option MAGMA-sparse's IDR exposes):
    /// returns the smoothed iterate whose residual norm is monotonically
    /// non-increasing, at the cost of two extra vectors and a dot/axpy
    /// pair per iteration.
    bool smoothing = false;
};

/// Solve A x = b with IDR(s); x holds the initial guess on entry and the
/// solution on exit.
template <typename T>
SolveResult idr(const sparse::Csr<T>& a, std::span<const T> b,
                std::span<T> x, const precond::Preconditioner<T>& prec,
                const IdrOptions& opts = {});

}  // namespace vbatch::solvers
