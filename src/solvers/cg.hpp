// Preconditioned Conjugate Gradients for symmetric positive definite
// systems (Hestenes-Stiefel), completing the solver family; the
// future-work Cholesky variant of the paper targets exactly this pairing.
#pragma once

#include "precond/preconditioner.hpp"
#include "solvers/solver_base.hpp"
#include "sparse/csr.hpp"

namespace vbatch::solvers {

template <typename T>
SolveResult cg(const sparse::Csr<T>& a, std::span<const T> b, std::span<T> x,
               const precond::Preconditioner<T>& prec,
               const SolverOptions& opts = {});

}  // namespace vbatch::solvers
