#include "solvers/gmres.hpp"

#include <cmath>
#include <vector>

#include "base/macros.hpp"
#include "base/timer.hpp"
#include "blas/blas1.hpp"
#include "blas/dense_matrix.hpp"
#include "blas/fused.hpp"
#include "core/bytes.hpp"
#include "obs/perf_counters.hpp"

namespace vbatch::solvers {

template <typename T>
SolveResult gmres(const sparse::Csr<T>& a, std::span<const T> b,
                  std::span<T> x, const precond::Preconditioner<T>& prec,
                  const GmresOptions& opts) {
    VBATCH_ENSURE(a.num_rows() == a.num_cols(), "square system required");
    VBATCH_ENSURE_DIMS(static_cast<index_type>(b.size()) == a.num_rows());
    VBATCH_ENSURE_DIMS(b.size() == x.size());
    VBATCH_ENSURE(opts.restart >= 1, "restart length must be positive");
    const auto nz = static_cast<std::size_t>(a.num_rows());
    const index_type m = opts.restart;

    obs::TraceRegion trace("gmres::solve");
    obs::PerfRegion perf("gmres::solve");
    Timer timer;
    SolveResult result;
    const bool phases = opts.collect_phase_times;
    auto& ph = result.phase_seconds;

    index_type applies = 0;
    index_type spmvs = 0;
    std::vector<T> r(nz), w(nz), z(nz);
    // Left-preconditioned residual: z = M^{-1}(b - A x).
    const auto compute_residual = [&] {
        {
            PhaseTimer pt(phases, ph.spmv);
            a.spmv(std::span<const T>(x), std::span<T>(w));
        }
        ++spmvs;
        T norm;
        {
            PhaseTimer pt(phases, ph.blas1);
            blas::xpby(b, T{-1}, std::span<T>(w));
        }
        {
            PhaseTimer pt(phases, ph.precond);
            prec.apply(std::span<const T>(w), std::span<T>(r));
        }
        ++applies;
        {
            PhaseTimer pt(phases, ph.blas1);
            norm = blas::nrm2(std::span<const T>(r));
        }
        return norm;
    };

    T beta = compute_residual();
    result.initial_residual = static_cast<double>(beta);
    const T tol = static_cast<T>(opts.rel_tol) * beta;
    record_residual(opts, result, static_cast<double>(beta));

    // Krylov basis (n x (m+1)) and Hessenberg ((m+1) x m).
    auto v = DenseMatrix<T>::zeros(a.num_rows(), m + 1);
    auto h = DenseMatrix<T>::zeros(m + 1, m);
    std::vector<T> cs(static_cast<std::size_t>(m)),
        sn(static_cast<std::size_t>(m)), g(static_cast<std::size_t>(m) + 1),
        y(static_cast<std::size_t>(m));
    // Projection coefficients of one Arnoldi step: first-pass h column,
    // reorthogonalization correction, and their negation for multi_axpy.
    std::vector<T> hcol(static_cast<std::size_t>(m) + 1),
        corr(static_cast<std::size_t>(m) + 1),
        neg(static_cast<std::size_t>(m) + 1);
    const auto vcol = [&](index_type j) {
        return std::span<T>{v.data() + static_cast<size_type>(j) *
                                           a.num_rows(),
                            nz};
    };

    index_type iters = 0;
    bool broke_down = false;
    bool converged = beta <= tol;
    while (!converged && iters < opts.max_iters && !broke_down) {
        // Start/restart the Arnoldi process from the current residual.
        if (beta == T{}) {
            converged = true;
            break;
        }
        {
            PhaseTimer pt(phases, ph.blas1);
            blas::fused_div_copy(std::span<const T>(r), beta, vcol(0));
            blas::fill(std::span<T>(g), T{});
        }
        g[0] = beta;
        index_type j = 0;
        for (; j < m && iters < opts.max_iters; ++j) {
            // w = M^{-1} A v_j
            {
                PhaseTimer pt(phases, ph.spmv);
                a.spmv(std::span<const T>(vcol(j)), std::span<T>(w));
            }
            ++spmvs;
            ++iters;
            {
                PhaseTimer pt(phases, ph.precond);
                prec.apply(std::span<const T>(w), std::span<T>(z));
            }
            ++applies;
            // Classical Gram-Schmidt with one reorthogonalization pass
            // (CGS2). Unlike modified Gram-Schmidt -- whose j+1 dependent
            // dot/axpy pairs each re-stream z -- the projection against
            // the whole basis is two multi_dot/multi_axpy sweeps, and the
            // second (correction) pass restores MGS-grade orthogonality.
            const index_type cols = j + 1;
            {
                PhaseTimer pt(phases, ph.orth);
                blas::multi_dot(v.data(), a.num_rows(), cols, z.data(),
                                hcol.data());
                for (index_type i = 0; i < cols; ++i) {
                    neg[static_cast<std::size_t>(i)] =
                        -hcol[static_cast<std::size_t>(i)];
                }
                blas::multi_axpy(v.data(), a.num_rows(), cols, neg.data(),
                                 z.data());
                blas::multi_dot(v.data(), a.num_rows(), cols, z.data(),
                                corr.data());
                for (index_type i = 0; i < cols; ++i) {
                    neg[static_cast<std::size_t>(i)] =
                        -corr[static_cast<std::size_t>(i)];
                }
                blas::multi_axpy(v.data(), a.num_rows(), cols, neg.data(),
                                 z.data());
                for (index_type i = 0; i < cols; ++i) {
                    h(i, j) = hcol[static_cast<std::size_t>(i)] +
                              corr[static_cast<std::size_t>(i)];
                }
                h(j + 1, j) = blas::nrm2(std::span<const T>(z));
                if (h(j + 1, j) != T{}) {
                    blas::fused_div_copy(std::span<const T>(z), h(j + 1, j),
                                         vcol(j + 1));
                }
            }
            // Apply the accumulated Givens rotations to column j.
            for (index_type i = 0; i < j; ++i) {
                const T tmp = cs[static_cast<std::size_t>(i)] * h(i, j) +
                              sn[static_cast<std::size_t>(i)] * h(i + 1, j);
                h(i + 1, j) = -sn[static_cast<std::size_t>(i)] * h(i, j) +
                              cs[static_cast<std::size_t>(i)] * h(i + 1, j);
                h(i, j) = tmp;
            }
            // New rotation annihilating h(j+1, j).
            const T denom = std::sqrt(h(j, j) * h(j, j) +
                                      h(j + 1, j) * h(j + 1, j));
            if (denom == T{}) {
                broke_down = true;
                ++j;
                break;
            }
            cs[static_cast<std::size_t>(j)] = h(j, j) / denom;
            sn[static_cast<std::size_t>(j)] = h(j + 1, j) / denom;
            h(j, j) = denom;
            h(j + 1, j) = T{};
            g[static_cast<std::size_t>(j) + 1] =
                -sn[static_cast<std::size_t>(j)] *
                g[static_cast<std::size_t>(j)];
            g[static_cast<std::size_t>(j)] =
                cs[static_cast<std::size_t>(j)] *
                g[static_cast<std::size_t>(j)];
            const T res = std::abs(g[static_cast<std::size_t>(j) + 1]);
            record_residual(opts, result, static_cast<double>(res));
            if (res <= tol) {
                converged = true;
                ++j;
                break;
            }
        }
        // Solve the (j x j) triangular system for y and update x with all
        // j basis columns in a single sweep.
        for (index_type i = j - 1; i >= 0; --i) {
            T acc = g[static_cast<std::size_t>(i)];
            for (index_type l = i + 1; l < j; ++l) {
                acc -= h(i, l) * y[static_cast<std::size_t>(l)];
            }
            y[static_cast<std::size_t>(i)] = acc / h(i, i);
        }
        {
            PhaseTimer pt(phases, ph.blas1);
            blas::multi_axpy(v.data(), a.num_rows(), j, y.data(), x.data());
        }
        beta = compute_residual();
        converged = beta <= tol;
    }

    finalize_result(result, converged, broke_down, prec);
    result.iterations = iters;
    result.final_residual = static_cast<double>(beta);
    result.solve_seconds = timer.seconds();
    if (phases) {
        // SpMV and preconditioner counts are exact (restart residual
        // recomputations included); the Arnoldi projection cost depends
        // on the basis length, so blas1/orth report seconds only.
        SolverTraffic traffic;
        const auto ns = static_cast<double>(spmvs);
        traffic.spmv_bytes =
            ns * core::spmv_bytes<T>(a.num_rows(), a.nnz());
        traffic.spmv_flops =
            ns * 2.0 * static_cast<double>(a.nnz());
        traffic.precond_flops =
            static_cast<double>(applies) * prec.apply_flops();
        traffic.precond_bytes =
            static_cast<double>(applies) * prec.apply_bytes();
        export_phase_attribution(opts, result, traffic);
    }
    return result;
}

template SolveResult gmres<float>(const sparse::Csr<float>&,
                                  std::span<const float>, std::span<float>,
                                  const precond::Preconditioner<float>&,
                                  const GmresOptions&);
template SolveResult gmres<double>(const sparse::Csr<double>&,
                                   std::span<const double>,
                                   std::span<double>,
                                   const precond::Preconditioner<double>&,
                                   const GmresOptions&);

}  // namespace vbatch::solvers
