#include "solvers/gmres.hpp"

#include <cmath>
#include <vector>

#include "base/macros.hpp"
#include "base/timer.hpp"
#include "blas/blas1.hpp"
#include "blas/dense_matrix.hpp"

namespace vbatch::solvers {

template <typename T>
SolveResult gmres(const sparse::Csr<T>& a, std::span<const T> b,
                  std::span<T> x, const precond::Preconditioner<T>& prec,
                  const GmresOptions& opts) {
    VBATCH_ENSURE(a.num_rows() == a.num_cols(), "square system required");
    VBATCH_ENSURE_DIMS(static_cast<index_type>(b.size()) == a.num_rows());
    VBATCH_ENSURE_DIMS(b.size() == x.size());
    VBATCH_ENSURE(opts.restart >= 1, "restart length must be positive");
    const auto nz = static_cast<std::size_t>(a.num_rows());
    const index_type m = opts.restart;

    obs::TraceRegion trace("gmres::solve");
    Timer timer;
    SolveResult result;

    std::vector<T> r(nz), w(nz), z(nz);
    // Left-preconditioned residual: z = M^{-1}(b - A x).
    const auto compute_residual = [&] {
        a.spmv(std::span<const T>(x), std::span<T>(w));
        for (std::size_t i = 0; i < nz; ++i) {
            w[i] = b[i] - w[i];
        }
        prec.apply(std::span<const T>(w), std::span<T>(r));
        return blas::nrm2(std::span<const T>(r));
    };

    T beta = compute_residual();
    result.initial_residual = static_cast<double>(beta);
    const T tol = static_cast<T>(opts.rel_tol) * beta;
    record_residual(opts, result, static_cast<double>(beta));

    // Krylov basis (n x (m+1)) and Hessenberg ((m+1) x m).
    auto v = DenseMatrix<T>::zeros(a.num_rows(), m + 1);
    auto h = DenseMatrix<T>::zeros(m + 1, m);
    std::vector<T> cs(static_cast<std::size_t>(m)),
        sn(static_cast<std::size_t>(m)), g(static_cast<std::size_t>(m) + 1),
        y(static_cast<std::size_t>(m));
    const auto vcol = [&](index_type j) {
        return std::span<T>{v.data() + static_cast<size_type>(j) *
                                           a.num_rows(),
                            nz};
    };

    index_type iters = 0;
    bool broke_down = false;
    bool converged = beta <= tol;
    while (!converged && iters < opts.max_iters && !broke_down) {
        // Start/restart the Arnoldi process from the current residual.
        if (beta == T{}) {
            converged = true;
            break;
        }
        {
            auto v0 = vcol(0);
            for (std::size_t i = 0; i < nz; ++i) {
                v0[i] = r[i] / beta;
            }
        }
        blas::fill(std::span<T>(g), T{});
        g[0] = beta;
        index_type j = 0;
        for (; j < m && iters < opts.max_iters; ++j) {
            // w = M^{-1} A v_j
            a.spmv(std::span<const T>(vcol(j)), std::span<T>(w));
            ++iters;
            prec.apply(std::span<const T>(w), std::span<T>(z));
            // Modified Gram-Schmidt.
            for (index_type i = 0; i <= j; ++i) {
                h(i, j) = blas::dot(std::span<const T>(vcol(i)),
                                    std::span<const T>(z));
                blas::axpy(-h(i, j), std::span<const T>(vcol(i)),
                           std::span<T>(z));
            }
            h(j + 1, j) = blas::nrm2(std::span<const T>(z));
            if (h(j + 1, j) != T{}) {
                auto vj1 = vcol(j + 1);
                for (std::size_t i = 0; i < nz; ++i) {
                    vj1[i] = z[i] / h(j + 1, j);
                }
            }
            // Apply the accumulated Givens rotations to column j.
            for (index_type i = 0; i < j; ++i) {
                const T tmp = cs[static_cast<std::size_t>(i)] * h(i, j) +
                              sn[static_cast<std::size_t>(i)] * h(i + 1, j);
                h(i + 1, j) = -sn[static_cast<std::size_t>(i)] * h(i, j) +
                              cs[static_cast<std::size_t>(i)] * h(i + 1, j);
                h(i, j) = tmp;
            }
            // New rotation annihilating h(j+1, j).
            const T denom = std::sqrt(h(j, j) * h(j, j) +
                                      h(j + 1, j) * h(j + 1, j));
            if (denom == T{}) {
                broke_down = true;
                ++j;
                break;
            }
            cs[static_cast<std::size_t>(j)] = h(j, j) / denom;
            sn[static_cast<std::size_t>(j)] = h(j + 1, j) / denom;
            h(j, j) = denom;
            h(j + 1, j) = T{};
            g[static_cast<std::size_t>(j) + 1] =
                -sn[static_cast<std::size_t>(j)] *
                g[static_cast<std::size_t>(j)];
            g[static_cast<std::size_t>(j)] =
                cs[static_cast<std::size_t>(j)] *
                g[static_cast<std::size_t>(j)];
            const T res = std::abs(g[static_cast<std::size_t>(j) + 1]);
            record_residual(opts, result, static_cast<double>(res));
            if (res <= tol) {
                converged = true;
                ++j;
                break;
            }
        }
        // Solve the (j x j) triangular system for y and update x.
        for (index_type i = j - 1; i >= 0; --i) {
            T acc = g[static_cast<std::size_t>(i)];
            for (index_type l = i + 1; l < j; ++l) {
                acc -= h(i, l) * y[static_cast<std::size_t>(l)];
            }
            y[static_cast<std::size_t>(i)] = acc / h(i, i);
        }
        for (index_type i = 0; i < j; ++i) {
            blas::axpy(y[static_cast<std::size_t>(i)],
                       std::span<const T>(vcol(i)), std::span<T>(x));
        }
        beta = compute_residual();
        converged = beta <= tol;
    }

    finalize_result(result, converged, broke_down, prec);
    result.iterations = iters;
    result.final_residual = static_cast<double>(beta);
    result.solve_seconds = timer.seconds();
    return result;
}

template SolveResult gmres<float>(const sparse::Csr<float>&,
                                  std::span<const float>, std::span<float>,
                                  const precond::Preconditioner<float>&,
                                  const GmresOptions&);
template SolveResult gmres<double>(const sparse::Csr<double>&,
                                   std::span<const double>,
                                   std::span<double>,
                                   const precond::Preconditioner<double>&,
                                   const GmresOptions&);

}  // namespace vbatch::solvers
