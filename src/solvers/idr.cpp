#include "solvers/idr.hpp"

#include <cmath>
#include <tuple>
#include <vector>

#include "base/macros.hpp"
#include "base/random.hpp"
#include "base/timer.hpp"
#include "blas/blas1.hpp"
#include "blas/dense_matrix.hpp"
#include "blas/fused.hpp"
#include "blas/lapack.hpp"
#include "core/bytes.hpp"
#include "obs/perf_counters.hpp"

namespace vbatch::solvers {

namespace {

/// Orthonormalize the columns of p (modified Gram-Schmidt); the shadow
/// space must have full rank for IDR to be well defined.
template <typename T>
void orthonormalize(DenseMatrix<T>& p) {
    const index_type n = p.rows();
    const index_type s = p.cols();
    for (index_type j = 0; j < s; ++j) {
        std::span<T> pj{p.data() + static_cast<size_type>(j) * n,
                        static_cast<std::size_t>(n)};
        for (index_type i = 0; i < j; ++i) {
            std::span<const T> pi{p.data() + static_cast<size_type>(i) * n,
                                  static_cast<std::size_t>(n)};
            const T proj = blas::dot(pi, std::span<const T>(pj));
            blas::axpy(-proj, pi, pj);
        }
        const T norm = blas::nrm2(std::span<const T>(pj));
        VBATCH_ENSURE(norm > T{}, "degenerate shadow space");
        blas::scal(T{1} / norm, pj);
    }
}

}  // namespace

template <typename T>
SolveResult idr(const sparse::Csr<T>& a, std::span<const T> b,
                std::span<T> x, const precond::Preconditioner<T>& prec,
                const IdrOptions& opts) {
    VBATCH_ENSURE(a.num_rows() == a.num_cols(), "square system required");
    VBATCH_ENSURE_DIMS(static_cast<index_type>(b.size()) == a.num_rows());
    VBATCH_ENSURE_DIMS(b.size() == x.size());
    VBATCH_ENSURE(opts.s >= 1, "shadow dimension must be positive");
    const index_type n = a.num_rows();
    const index_type s = opts.s;
    const auto nz = static_cast<std::size_t>(n);

    obs::TraceRegion trace("idr::solve");
    obs::PerfRegion perf("idr::solve");
    Timer timer;
    SolveResult result;
    const bool phases = opts.collect_phase_times;
    auto& ph = result.phase_seconds;

    // r = b - A x
    std::vector<T> r(nz);
    {
        PhaseTimer pt(phases, ph.spmv);
        a.spmv(std::span<const T>(x), std::span<T>(r));
    }
    T normr;
    {
        PhaseTimer pt(phases, ph.blas1);
        normr = blas::fused_residual_norm2(b, std::span<T>(r));
    }
    result.initial_residual = static_cast<double>(normr);
    const T tol = static_cast<T>(opts.rel_tol) * normr;
    record_residual(opts, result, static_cast<double>(normr));

    // Random orthonormal shadow space P (n x s), fixed seed.
    auto p = DenseMatrix<T>::random(n, s, opts.shadow_seed);
    {
        PhaseTimer pt(phases, ph.orth);
        orthonormalize(p);
    }
    const auto pcol = [&](index_type j) {
        return std::span<const T>{p.data() + static_cast<size_type>(j) * n,
                                  nz};
    };

    auto g = DenseMatrix<T>::zeros(n, s);
    auto u = DenseMatrix<T>::zeros(n, s);
    auto mmat = DenseMatrix<T>::identity(s);
    const auto gcol = [&](index_type j) {
        return std::span<T>{g.data() + static_cast<size_type>(j) * n, nz};
    };
    const auto ucol = [&](index_type j) {
        return std::span<T>{u.data() + static_cast<size_type>(j) * n, nz};
    };

    std::vector<T> f(static_cast<std::size_t>(s));
    std::vector<T> c(static_cast<std::size_t>(s));
    std::vector<T> negc(static_cast<std::size_t>(s));
    std::vector<T> v(nz), vhat(nz), t(nz);
    T om{1};
    index_type applies = 0;

    // Minimal-residual smoothing state: (xs, rs) track the smoothed
    // iterate; after every update of (x, r) we move (xs, rs) toward it by
    // the step that minimizes ||rs||.
    std::vector<T> xs, rs;
    T norm_rs = normr;
    if (opts.smoothing) {
        xs.assign(x.begin(), x.end());
        rs.assign(r.begin(), r.end());
    }
    const auto smooth = [&] {
        if (!opts.smoothing) {
            return;
        }
        PhaseTimer pt(phases, ph.blas1);
        // d = rs - r; gamma = (rs, d) / (d, d); rs -= gamma d. Both dots
        // come from one sweep, the update and ||rs|| from a second.
        const auto [dd, rd] = blas::fused_smoothing_dots(
            std::span<const T>(rs), std::span<const T>(r));
        if (dd == T{}) {
            return;
        }
        const T gamma = rd / dd;
        norm_rs = blas::fused_smooth_update(
            gamma, std::span<const T>(r), std::span<const T>(x),
            std::span<T>(rs), std::span<T>(xs));
    };

    index_type iters = 0;
    bool broke_down = false;
    bool converged = normr <= tol;
    while (!converged && iters < opts.max_iters && !broke_down) {
        {
            PhaseTimer pt(phases, ph.orth);
            // f = P^T r: all s shadow projections in one basis sweep.
            blas::multi_dot(p.data(), n, s, r.data(), f.data());
        }
        for (index_type k = 0; k < s && !converged; ++k) {
            // Solve the trailing (s-k) x (s-k) block of M for c.
            const index_type sk = s - k;
            DenseMatrix<T> msub(sk, sk);
            for (index_type j = 0; j < sk; ++j) {
                for (index_type i = 0; i < sk; ++i) {
                    msub(i, j) = mmat(k + i, k + j);
                }
                c[static_cast<std::size_t>(j)] =
                    f[static_cast<std::size_t>(k + j)];
            }
            if (lapack::gesv<T>(msub.view(),
                                std::span<T>(c.data(),
                                             static_cast<std::size_t>(sk))) !=
                0) {
                broke_down = true;
                break;
            }
            {
                PhaseTimer pt(phases, ph.blas1);
                // v = r - sum_i c_i g_{k+i}: one sweep over the g columns.
                blas::copy(std::span<const T>(r), std::span<T>(v));
                for (index_type i = 0; i < sk; ++i) {
                    negc[static_cast<std::size_t>(i)] =
                        -c[static_cast<std::size_t>(i)];
                }
                blas::multi_axpy(g.data() + static_cast<size_type>(k) * n,
                                 n, sk, negc.data(), v.data());
            }
            // Preconditioned direction.
            {
                PhaseTimer pt(phases, ph.precond);
                prec.apply(std::span<const T>(v), std::span<T>(vhat));
            }
            ++applies;
            // u_k = om * vhat + sum_i c_i u_{k+i}. The i = 0 term reads the
            // old u_k, so fold it into the overwriting pass.
            auto uk = ucol(k);
            {
                PhaseTimer pt(phases, ph.blas1);
                blas::fused_axpby(om, std::span<const T>(vhat), c[0], uk);
                blas::multi_axpy(
                    u.data() + static_cast<size_type>(k + 1) * n, n, sk - 1,
                    c.data() + 1, uk.data());
            }
            // g_k = A u_k
            {
                PhaseTimer pt(phases, ph.spmv);
                a.spmv(std::span<const T>(uk), std::span<T>(gcol(k)));
            }
            ++iters;
            {
                PhaseTimer pt(phases, ph.orth);
                // Bi-orthogonalize g_k (and u_k) against p_0..p_{k-1}.
                for (index_type i = 0; i < k; ++i) {
                    const T alpha =
                        blas::dot(pcol(i), std::span<const T>(gcol(k))) /
                        mmat(i, i);
                    blas::axpy(-alpha, std::span<const T>(gcol(i)),
                               std::span<T>(gcol(k)));
                    blas::axpy(-alpha, std::span<const T>(ucol(i)),
                               std::span<T>(uk));
                }
                // New column of M: rows k..s-1 are contiguous in column k,
                // so one batched sweep over p_k..p_{s-1} fills them
                // directly.
                blas::multi_dot(
                    p.data() + static_cast<size_type>(k) * n, n, sk,
                    gcol(k).data(),
                    mmat.data() + static_cast<size_type>(k) * s + k);
            }
            if (mmat(k, k) == T{}) {
                broke_down = true;
                break;
            }
            const T beta = f[static_cast<std::size_t>(k)] / mmat(k, k);
            {
                PhaseTimer pt(phases, ph.blas1);
                blas::axpy(beta, std::span<const T>(uk), x);
                normr = blas::fused_axpy_norm2(
                    -beta, std::span<const T>(gcol(k)), std::span<T>(r));
            }
            smooth();
            const T monitored = opts.smoothing ? norm_rs : normr;
            record_residual(opts, result, static_cast<double>(monitored));
            converged = monitored <= tol;
            for (index_type i = k + 1; i < s; ++i) {
                f[static_cast<std::size_t>(i)] -= beta * mmat(i, k);
            }
            if (iters >= opts.max_iters) {
                break;
            }
        }
        if (converged || broke_down || iters >= opts.max_iters) {
            break;
        }
        // Dimension-reduction step: r in G_j -> r in G_{j+1}.
        {
            PhaseTimer pt(phases, ph.precond);
            prec.apply(std::span<const T>(r), std::span<T>(vhat));
        }
        ++applies;
        {
            PhaseTimer pt(phases, ph.spmv);
            a.spmv(std::span<const T>(vhat), std::span<T>(t));
        }
        ++iters;
        T tt;
        T tr;
        {
            PhaseTimer pt(phases, ph.blas1);
            // (t, t) and (t, r) from a single pass over t.
            std::tie(tt, tr) = blas::fused_dot2(std::span<const T>(t),
                                                std::span<const T>(t),
                                                std::span<const T>(r));
        }
        if (tt == T{}) {
            broke_down = true;
            break;
        }
        om = tr / tt;
        // Angle safeguard (van Gijzen): avoid tiny omega.
        const T rho = std::abs(tr) / (std::sqrt(tt) * normr);
        if (rho < static_cast<T>(opts.kappa) && rho > T{}) {
            om *= static_cast<T>(opts.kappa) / rho;
        }
        if (om == T{}) {
            broke_down = true;
            break;
        }
        {
            PhaseTimer pt(phases, ph.blas1);
            blas::axpy(om, std::span<const T>(vhat), x);
            normr = blas::fused_axpy_norm2(-om, std::span<const T>(t),
                                           std::span<T>(r));
        }
        smooth();
        const T monitored = opts.smoothing ? norm_rs : normr;
        record_residual(opts, result, static_cast<double>(monitored));
        converged = monitored <= tol;
    }

    if (opts.smoothing) {
        blas::copy(std::span<const T>(xs), std::span<T>(x));
        normr = norm_rs;
    }
    finalize_result(result, converged, broke_down, prec);
    result.iterations = iters;
    result.final_residual = static_cast<double>(normr);
    result.solve_seconds = timer.seconds();
    if (phases) {
        // SpMV and preconditioner counts are exact; the BLAS-1 and
        // orthogonalization work depends on the inner index k, so those
        // phases report seconds only (no canonical byte model -> the
        // exporter skips their roofline rows).
        SolverTraffic traffic;
        const auto spmvs = static_cast<double>(iters) + 1.0;
        traffic.spmv_bytes =
            spmvs * core::spmv_bytes<T>(a.num_rows(), a.nnz());
        traffic.spmv_flops =
            spmvs * 2.0 * static_cast<double>(a.nnz());
        traffic.precond_flops =
            static_cast<double>(applies) * prec.apply_flops();
        traffic.precond_bytes =
            static_cast<double>(applies) * prec.apply_bytes();
        export_phase_attribution(opts, result, traffic);
    }
    return result;
}

template SolveResult idr<float>(const sparse::Csr<float>&,
                                std::span<const float>, std::span<float>,
                                const precond::Preconditioner<float>&,
                                const IdrOptions&);
template SolveResult idr<double>(const sparse::Csr<double>&,
                                 std::span<const double>, std::span<double>,
                                 const precond::Preconditioner<double>&,
                                 const IdrOptions&);

}  // namespace vbatch::solvers
