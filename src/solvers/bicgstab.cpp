#include "solvers/bicgstab.hpp"

#include <cmath>
#include <tuple>
#include <vector>

#include "base/macros.hpp"
#include "base/timer.hpp"
#include "blas/blas1.hpp"
#include "blas/fused.hpp"
#include "core/bytes.hpp"
#include "obs/perf_counters.hpp"

namespace vbatch::solvers {

template <typename T>
SolveResult bicgstab(const sparse::Csr<T>& a, std::span<const T> b,
                     std::span<T> x, const precond::Preconditioner<T>& prec,
                     const SolverOptions& opts) {
    VBATCH_ENSURE(a.num_rows() == a.num_cols(), "square system required");
    VBATCH_ENSURE_DIMS(static_cast<index_type>(b.size()) == a.num_rows());
    VBATCH_ENSURE_DIMS(b.size() == x.size());
    const auto nz = static_cast<std::size_t>(a.num_rows());

    obs::TraceRegion trace("bicgstab::solve");
    obs::PerfRegion perf("bicgstab::solve");
    Timer timer;
    SolveResult result;
    const bool phases = opts.collect_phase_times;
    auto& ph = result.phase_seconds;

    std::vector<T> r(nz), r0(nz), p(nz), v(nz), s(nz), t(nz), phat(nz),
        shat(nz);
    {
        PhaseTimer pt(phases, ph.spmv);
        a.spmv(std::span<const T>(x), std::span<T>(r));
    }
    T normr;
    {
        PhaseTimer pt(phases, ph.blas1);
        normr = blas::fused_residual_norm2(b, std::span<T>(r));
        blas::copy(std::span<const T>(r), std::span<T>(r0));
    }
    result.initial_residual = static_cast<double>(normr);
    const T tol = static_cast<T>(opts.rel_tol) * normr;
    record_residual(opts, result, static_cast<double>(normr));

    T rho_old{1}, alpha{1}, omega{1};
    {
        PhaseTimer pt(phases, ph.blas1);
        blas::fill(std::span<T>(p), T{});
        blas::fill(std::span<T>(v), T{});
    }
    index_type applies = 0;

    index_type iters = 0;
    bool broke_down = false;
    bool converged = normr <= tol;
    while (!converged && iters < opts.max_iters) {
        T rho;
        {
            PhaseTimer pt(phases, ph.blas1);
            rho = blas::dot(std::span<const T>(r0), std::span<const T>(r));
        }
        if (rho == T{} || omega == T{}) {
            broke_down = true;
            break;
        }
        const T beta = (rho / rho_old) * (alpha / omega);
        {
            PhaseTimer pt(phases, ph.blas1);
            blas::fused_bicg_p_update(beta, omega, std::span<const T>(r),
                                      std::span<const T>(v),
                                      std::span<T>(p));
        }
        {
            PhaseTimer pt(phases, ph.precond);
            prec.apply(std::span<const T>(p), std::span<T>(phat));
        }
        ++applies;
        {
            PhaseTimer pt(phases, ph.spmv);
            a.spmv(std::span<const T>(phat), std::span<T>(v));
        }
        ++iters;
        T r0v;
        {
            PhaseTimer pt(phases, ph.blas1);
            r0v = blas::dot(std::span<const T>(r0), std::span<const T>(v));
        }
        if (r0v == T{}) {
            broke_down = true;
            break;
        }
        alpha = rho / r0v;
        T norms;
        {
            PhaseTimer pt(phases, ph.blas1);
            // s = r - alpha v and ||s|| in one sweep.
            norms = blas::fused_sub_axpy_norm2(alpha, std::span<const T>(r),
                                               std::span<const T>(v),
                                               std::span<T>(s));
        }
        if (norms <= tol) {
            PhaseTimer pt(phases, ph.blas1);
            blas::axpy(alpha, std::span<const T>(phat), std::span<T>(x));
            blas::copy(std::span<const T>(s), std::span<T>(r));
            normr = norms;
            converged = true;
            record_residual(opts, result, static_cast<double>(normr));
            break;
        }
        {
            PhaseTimer pt(phases, ph.precond);
            prec.apply(std::span<const T>(s), std::span<T>(shat));
        }
        ++applies;
        {
            PhaseTimer pt(phases, ph.spmv);
            a.spmv(std::span<const T>(shat), std::span<T>(t));
        }
        ++iters;
        T tt;
        T ts;
        {
            PhaseTimer pt(phases, ph.blas1);
            // (t, t) and (t, s) from a single pass over t.
            std::tie(tt, ts) = blas::fused_dot2(std::span<const T>(t),
                                                std::span<const T>(t),
                                                std::span<const T>(s));
        }
        if (tt == T{}) {
            broke_down = true;
            break;
        }
        omega = ts / tt;
        {
            PhaseTimer pt(phases, ph.blas1);
            // x += alpha phat + omega shat; r = s - omega t; ||r|| fused.
            normr = blas::fused_bicg_xr_update(
                alpha, std::span<const T>(phat), omega,
                std::span<const T>(shat), std::span<const T>(s),
                std::span<const T>(t), x, std::span<T>(r));
        }
        record_residual(opts, result, static_cast<double>(normr));
        converged = normr <= tol;
        rho_old = rho;
    }

    finalize_result(result, converged, broke_down, prec);
    result.iterations = iters;
    result.final_residual = static_cast<double>(normr);
    result.solve_seconds = timer.seconds();
    if (phases) {
        // Coarse per-iteration BLAS-1 model (~9n values moved, ~11n
        // flops per operator application: the fused kernels average out
        // over the half/full cycles), exact counts for SpMV and the
        // preconditioner.
        SolverTraffic traffic;
        const auto spmvs = static_cast<double>(iters) + 1.0;
        traffic.spmv_bytes =
            spmvs * core::spmv_bytes<T>(a.num_rows(), a.nnz());
        traffic.spmv_flops =
            spmvs * 2.0 * static_cast<double>(a.nnz());
        const double n = static_cast<double>(nz);
        const auto it = static_cast<double>(iters);
        traffic.blas1_bytes = (it * 9.0 + 7.0) * n * sizeof(T);
        traffic.blas1_flops = (it * 11.0 + 3.0) * n;
        traffic.precond_flops =
            static_cast<double>(applies) * prec.apply_flops();
        traffic.precond_bytes =
            static_cast<double>(applies) * prec.apply_bytes();
        export_phase_attribution(opts, result, traffic);
    }
    return result;
}

template SolveResult bicgstab<float>(const sparse::Csr<float>&,
                                     std::span<const float>,
                                     std::span<float>,
                                     const precond::Preconditioner<float>&,
                                     const SolverOptions&);
template SolveResult bicgstab<double>(const sparse::Csr<double>&,
                                      std::span<const double>,
                                      std::span<double>,
                                      const precond::Preconditioner<double>&,
                                      const SolverOptions&);

}  // namespace vbatch::solvers
