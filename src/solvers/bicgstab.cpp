#include "solvers/bicgstab.hpp"

#include <cmath>
#include <vector>

#include "base/macros.hpp"
#include "base/timer.hpp"
#include "blas/blas1.hpp"
#include "blas/fused.hpp"

namespace vbatch::solvers {

template <typename T>
SolveResult bicgstab(const sparse::Csr<T>& a, std::span<const T> b,
                     std::span<T> x, const precond::Preconditioner<T>& prec,
                     const SolverOptions& opts) {
    VBATCH_ENSURE(a.num_rows() == a.num_cols(), "square system required");
    VBATCH_ENSURE_DIMS(static_cast<index_type>(b.size()) == a.num_rows());
    VBATCH_ENSURE_DIMS(b.size() == x.size());
    const auto nz = static_cast<std::size_t>(a.num_rows());

    obs::TraceRegion trace("bicgstab::solve");
    Timer timer;
    SolveResult result;

    std::vector<T> r(nz), r0(nz), p(nz), v(nz), s(nz), t(nz), phat(nz),
        shat(nz);
    a.spmv(std::span<const T>(x), std::span<T>(r));
    T normr = blas::fused_residual_norm2(b, std::span<T>(r));
    blas::copy(std::span<const T>(r), std::span<T>(r0));
    result.initial_residual = static_cast<double>(normr);
    const T tol = static_cast<T>(opts.rel_tol) * normr;
    record_residual(opts, result, static_cast<double>(normr));

    T rho_old{1}, alpha{1}, omega{1};
    blas::fill(std::span<T>(p), T{});
    blas::fill(std::span<T>(v), T{});

    index_type iters = 0;
    bool broke_down = false;
    bool converged = normr <= tol;
    while (!converged && iters < opts.max_iters) {
        const T rho = blas::dot(std::span<const T>(r0),
                                std::span<const T>(r));
        if (rho == T{} || omega == T{}) {
            broke_down = true;
            break;
        }
        const T beta = (rho / rho_old) * (alpha / omega);
        blas::fused_bicg_p_update(beta, omega, std::span<const T>(r),
                                  std::span<const T>(v), std::span<T>(p));
        prec.apply(std::span<const T>(p), std::span<T>(phat));
        a.spmv(std::span<const T>(phat), std::span<T>(v));
        ++iters;
        const T r0v = blas::dot(std::span<const T>(r0),
                                std::span<const T>(v));
        if (r0v == T{}) {
            broke_down = true;
            break;
        }
        alpha = rho / r0v;
        // s = r - alpha v and ||s|| in one sweep.
        const T norms = blas::fused_sub_axpy_norm2(
            alpha, std::span<const T>(r), std::span<const T>(v),
            std::span<T>(s));
        if (norms <= tol) {
            blas::axpy(alpha, std::span<const T>(phat), std::span<T>(x));
            blas::copy(std::span<const T>(s), std::span<T>(r));
            normr = norms;
            converged = true;
            record_residual(opts, result, static_cast<double>(normr));
            break;
        }
        prec.apply(std::span<const T>(s), std::span<T>(shat));
        a.spmv(std::span<const T>(shat), std::span<T>(t));
        ++iters;
        // (t, t) and (t, s) from a single pass over t.
        const auto [tt, ts] = blas::fused_dot2(std::span<const T>(t),
                                               std::span<const T>(t),
                                               std::span<const T>(s));
        if (tt == T{}) {
            broke_down = true;
            break;
        }
        omega = ts / tt;
        // x += alpha phat + omega shat; r = s - omega t; ||r|| fused.
        normr = blas::fused_bicg_xr_update(
            alpha, std::span<const T>(phat), omega,
            std::span<const T>(shat), std::span<const T>(s),
            std::span<const T>(t), x, std::span<T>(r));
        record_residual(opts, result, static_cast<double>(normr));
        converged = normr <= tol;
        rho_old = rho;
    }

    finalize_result(result, converged, broke_down, prec);
    result.iterations = iters;
    result.final_residual = static_cast<double>(normr);
    result.solve_seconds = timer.seconds();
    return result;
}

template SolveResult bicgstab<float>(const sparse::Csr<float>&,
                                     std::span<const float>,
                                     std::span<float>,
                                     const precond::Preconditioner<float>&,
                                     const SolverOptions&);
template SolveResult bicgstab<double>(const sparse::Csr<double>&,
                                      std::span<const double>,
                                      std::span<double>,
                                      const precond::Preconditioner<double>&,
                                      const SolverOptions&);

}  // namespace vbatch::solvers
