#include "solvers/config.hpp"

#include <map>
#include <utility>

#include "base/exception.hpp"
#include "solvers/bicgstab.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "solvers/idr.hpp"

namespace vbatch::solvers {

namespace {

/// One registry row: a constructor per supported value type (either may
/// be empty when a custom method registers only one precision).
struct Entry {
    SolverFactory<float> f32;
    SolverFactory<double> f64;
};

template <typename T>
SolverFactory<T>& slot(Entry& e);
template <>
SolverFactory<float>& slot<float>(Entry& e) {
    return e.f32;
}
template <>
SolverFactory<double>& slot<double>(Entry& e) {
    return e.f64;
}

/// Adapter turning one solver free function + its options struct into
/// the type-erased Solver interface.
template <typename T, typename Opts>
class FnSolver final : public Solver<T> {
public:
    using Fn = SolveResult (*)(const sparse::Csr<T>&, std::span<const T>,
                               std::span<T>,
                               const precond::Preconditioner<T>&,
                               const Opts&);
    FnSolver(std::string key, Fn fn, Opts opts)
        : key_(std::move(key)), fn_(fn), opts_(std::move(opts)) {}
    SolveResult solve(const sparse::Csr<T>& a, std::span<const T> b,
                      std::span<T> x,
                      const precond::Preconditioner<T>& prec)
        const override {
        return fn_(a, b, x, prec, opts_);
    }
    std::string name() const override { return key_; }

private:
    std::string key_;
    Fn fn_;
    Opts opts_;
};

template <typename T>
SolverPtr<T> make_cg(const Config& c) {
    return std::make_unique<FnSolver<T, SolverOptions>>("cg", &cg<T>,
                                                        c.base());
}

template <typename T>
SolverPtr<T> make_bicgstab(const Config& c) {
    return std::make_unique<FnSolver<T, SolverOptions>>(
        "bicgstab", &bicgstab<T>, c.base());
}

template <typename T>
SolverPtr<T> make_idr(const Config& c) {
    IdrOptions opts;
    static_cast<SolverOptions&>(opts) = c.base();
    opts.s = c.idr_s;
    opts.shadow_seed = c.idr_shadow_seed;
    opts.kappa = c.idr_kappa;
    opts.smoothing = c.idr_smoothing;
    return std::make_unique<FnSolver<T, IdrOptions>>("idr", &idr<T>,
                                                     opts);
}

template <typename T>
SolverPtr<T> make_gmres(const Config& c) {
    GmresOptions opts;
    static_cast<SolverOptions&>(opts) = c.base();
    opts.restart = c.gmres_restart;
    return std::make_unique<FnSolver<T, GmresOptions>>("gmres", &gmres<T>,
                                                       opts);
}

template <SolverPtr<float> (*F32)(const Config&),
          SolverPtr<double> (*F64)(const Config&)>
Entry builtin_entry() {
    Entry e;
    e.f32 = [](const Config& c) { return F32(c); };
    e.f64 = [](const Config& c) { return F64(c); };
    return e;
}

std::map<std::string, Entry> builtin_entries() {
    std::map<std::string, Entry> entries;
    entries.emplace("cg", builtin_entry<&make_cg<float>, &make_cg<double>>());
    entries.emplace(
        "bicgstab",
        builtin_entry<&make_bicgstab<float>, &make_bicgstab<double>>());
    entries.emplace("idr",
                    builtin_entry<&make_idr<float>, &make_idr<double>>());
    entries.emplace(
        "gmres", builtin_entry<&make_gmres<float>, &make_gmres<double>>());
    return entries;
}

std::map<std::string, Entry>& registry() {
    static std::map<std::string, Entry> entries = builtin_entries();
    return entries;
}

}  // namespace

template <typename T>
SolverPtr<T> make_solver(const Config& config) {
    auto& entries = registry();
    const auto it = entries.find(config.method);
    const SolverFactory<T>* factory = nullptr;
    if (it != entries.end()) {
        const auto& f = slot<T>(it->second);
        if (f) {
            factory = &f;
        }
    }
    if (factory == nullptr) {
        std::string known;
        for (const auto& name : registered_solvers()) {
            if (!known.empty()) {
                known += ", ";
            }
            known += name;
        }
        throw BadParameter("unknown solver method '" + config.method +
                           "' (registered: " + known + ")");
    }
    return (*factory)(config);
}

template <typename T>
void register_solver(const std::string& name, SolverFactory<T> factory) {
    slot<T>(registry()[name]) = std::move(factory);
}

std::vector<std::string> registered_solvers() {
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto& [name, entry] : registry()) {
        if (entry.f32 || entry.f64) {
            names.push_back(name);
        }
    }
    return names;
}

bool solver_registered(const std::string& name) {
    const auto& entries = registry();
    const auto it = entries.find(name);
    return it != entries.end() && (it->second.f32 || it->second.f64);
}

template SolverPtr<float> make_solver<float>(const Config&);
template SolverPtr<double> make_solver<double>(const Config&);
template void register_solver<float>(const std::string&,
                                     SolverFactory<float>);
template void register_solver<double>(const std::string&,
                                      SolverFactory<double>);

}  // namespace vbatch::solvers
