// Preconditioned BiCGSTAB (van der Vorst 1992): the classic nonsymmetric
// workhorse, provided alongside IDR(4) for cross-checks -- IDR(1) is
// mathematically equivalent to BiCGSTAB, a property the test suite uses.
#pragma once

#include "precond/preconditioner.hpp"
#include "solvers/solver_base.hpp"
#include "sparse/csr.hpp"

namespace vbatch::solvers {

template <typename T>
SolveResult bicgstab(const sparse::Csr<T>& a, std::span<const T> b,
                     std::span<T> x, const precond::Preconditioner<T>& prec,
                     const SolverOptions& opts = {});

}  // namespace vbatch::solvers
