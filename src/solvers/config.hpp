// Unified solver configuration and string-keyed factory, mirroring
// precond::Config / make_preconditioner.
//
// Benches, examples and the service layer used to hand-roll an if/else
// chain over the solver free functions (idr/bicgstab/gmres/cg) each time
// a method name arrived from a CLI flag or a request. The Config +
// make_solver pair centralizes that: one POD carries the method key and
// every per-method knob, and the registry maps keys to type-erased
// Solver objects so downstream tools never switch on the method again.
//
// Built-in keys: "cg", "bicgstab", "idr", "gmres". register_solver()
// adds project-specific ones.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "solvers/solver_base.hpp"
#include "sparse/csr.hpp"

namespace vbatch::solvers {

/// Everything needed to select and tune a solver, in one place. Fields a
/// method does not use are ignored (e.g. "cg" ignores the IDR shadow
/// space and the GMRES restart).
struct Config {
    /// Registered method key; see registered_solvers().
    std::string method = "idr";
    /// Stop when ||r|| <= rel_tol * ||r0||.
    double rel_tol = 1e-6;
    /// Iteration budget.
    index_type max_iters = 10000;
    /// Record ||r|| after every iteration (memory; plots/tests).
    bool keep_residual_history = false;
    /// Phase-time attribution + roofline traffic export.
    bool collect_phase_times = false;
    /// IDR(s): shadow-space dimension.
    index_type idr_s = 4;
    /// IDR(s): seed of the random shadow space P.
    std::uint64_t idr_shadow_seed = 7;
    /// IDR(s): angle safeguard for the omega computation.
    double idr_kappa = 0.7;
    /// IDR(s): minimal-residual smoothing.
    bool idr_smoothing = false;
    /// GMRES: restart length.
    index_type gmres_restart = 30;

    /// The base options shared by every method, extracted once.
    SolverOptions base() const {
        SolverOptions o;
        o.rel_tol = rel_tol;
        o.max_iters = max_iters;
        o.keep_residual_history = keep_residual_history;
        o.collect_phase_times = collect_phase_times;
        return o;
    }
};

/// Type-erased solver handle: solve A x = b with the method and knobs
/// baked in at make_solver time. x holds the initial guess on entry and
/// the solution on exit. Stateless and immutable after construction, so
/// one instance may be shared by concurrent solves on distinct vectors.
template <typename T>
class Solver {
public:
    virtual ~Solver() = default;
    virtual SolveResult solve(const sparse::Csr<T>& a, std::span<const T> b,
                              std::span<T> x,
                              const precond::Preconditioner<T>& prec)
        const = 0;
    /// The registered key this solver was built from.
    virtual std::string name() const = 0;
};

template <typename T>
using SolverPtr = std::unique_ptr<Solver<T>>;

/// Constructor signature kept by the registry.
template <typename T>
using SolverFactory = std::function<SolverPtr<T>(const Config&)>;

/// Build the solver selected by config.method. Throws
/// vbatch::BadParameter (listing the registered keys) on an unknown
/// method.
template <typename T>
SolverPtr<T> make_solver(const Config& config = {});

/// Register (or replace) a method under `name` for value type T.
/// Registration is not thread-safe; do it during startup.
template <typename T>
void register_solver(const std::string& name, SolverFactory<T> factory);

/// Sorted list of keys with at least one registered value type.
std::vector<std::string> registered_solvers();

bool solver_registered(const std::string& name);

}  // namespace vbatch::solvers
