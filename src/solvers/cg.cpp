#include "solvers/cg.hpp"

#include <vector>

#include "base/macros.hpp"
#include "base/timer.hpp"
#include "blas/blas1.hpp"
#include "blas/fused.hpp"
#include "core/bytes.hpp"
#include "obs/perf_counters.hpp"

namespace vbatch::solvers {

template <typename T>
SolveResult cg(const sparse::Csr<T>& a, std::span<const T> b, std::span<T> x,
               const precond::Preconditioner<T>& prec,
               const SolverOptions& opts) {
    VBATCH_ENSURE(a.num_rows() == a.num_cols(), "square system required");
    VBATCH_ENSURE_DIMS(static_cast<index_type>(b.size()) == a.num_rows());
    VBATCH_ENSURE_DIMS(b.size() == x.size());
    const auto nz = static_cast<std::size_t>(a.num_rows());

    obs::TraceRegion trace("cg::solve");
    obs::PerfRegion perf("cg::solve");
    Timer timer;
    SolveResult result;
    const bool phases = opts.collect_phase_times;
    auto& ph = result.phase_seconds;

    std::vector<T> r(nz), z(nz), p(nz), q(nz);
    {
        PhaseTimer t(phases, ph.spmv);
        a.spmv(std::span<const T>(x), std::span<T>(r));
    }
    T normr;
    {
        PhaseTimer t(phases, ph.blas1);
        normr = blas::fused_residual_norm2(b, std::span<T>(r));
    }
    result.initial_residual = static_cast<double>(normr);
    const T tol = static_cast<T>(opts.rel_tol) * normr;
    record_residual(opts, result, static_cast<double>(normr));

    {
        PhaseTimer t(phases, ph.precond);
        prec.apply(std::span<const T>(r), std::span<T>(z));
    }
    T rz;
    {
        PhaseTimer t(phases, ph.blas1);
        blas::copy(std::span<const T>(z), std::span<T>(p));
        rz = blas::dot(std::span<const T>(r), std::span<const T>(z));
    }
    index_type applies = 1;  // preconditioner applications so far

    index_type iters = 0;
    bool broke_down = false;
    bool converged = normr <= tol;
    while (!converged && iters < opts.max_iters) {
        {
            PhaseTimer t(phases, ph.spmv);
            a.spmv(std::span<const T>(p), std::span<T>(q));
        }
        ++iters;
        T pq;
        {
            PhaseTimer t(phases, ph.blas1);
            pq = blas::dot(std::span<const T>(p), std::span<const T>(q));
        }
        if (pq == T{}) {
            broke_down = true;
            break;
        }
        const T alpha = rz / pq;
        {
            PhaseTimer t(phases, ph.blas1);
            // x += alpha p; r -= alpha q; ||r|| -- one sweep, not three.
            normr = blas::fused_cg_update(alpha, std::span<const T>(p),
                                          std::span<const T>(q), x,
                                          std::span<T>(r));
        }
        record_residual(opts, result, static_cast<double>(normr));
        converged = normr <= tol;
        if (converged) {
            break;
        }
        {
            PhaseTimer t(phases, ph.precond);
            prec.apply(std::span<const T>(r), std::span<T>(z));
        }
        ++applies;
        T rz_new;
        {
            PhaseTimer t(phases, ph.blas1);
            rz_new = blas::dot(std::span<const T>(r), std::span<const T>(z));
        }
        if (rz == T{}) {
            broke_down = true;
            break;
        }
        const T beta = rz_new / rz;
        {
            PhaseTimer t(phases, ph.blas1);
            blas::xpby(std::span<const T>(z), beta, std::span<T>(p));
        }
        rz = rz_new;
    }

    finalize_result(result, converged, broke_down, prec);
    result.iterations = iters;
    result.final_residual = static_cast<double>(normr);
    result.solve_seconds = timer.seconds();
    if (phases) {
        // Canonical traffic under the core/bytes.hpp models. SpMV runs
        // iters + 1 times (initial residual); BLAS-1 per iteration is
        // two dots, the fused update and the xpby, plus the setup
        // residual norm, copy and dot.
        SolverTraffic traffic;
        const auto spmvs = static_cast<double>(iters) + 1.0;
        traffic.spmv_bytes =
            spmvs * core::spmv_bytes<T>(a.num_rows(), a.nnz());
        traffic.spmv_flops =
            spmvs * 2.0 * static_cast<double>(a.nnz());
        const auto n = static_cast<size_type>(nz);
        const auto it = static_cast<double>(iters);
        traffic.blas1_bytes =
            it * (2.0 * core::dot_bytes<T>(n) +
                  core::fused_cg_update_bytes<T>(n) + core::xpby_bytes<T>(n)) +
            core::fused_residual_norm2_bytes<T>(n) + core::copy_bytes<T>(n) +
            core::dot_bytes<T>(n);
        traffic.blas1_flops = it * 12.0 * static_cast<double>(n) +
                              7.0 * static_cast<double>(n);
        traffic.precond_flops =
            static_cast<double>(applies) * prec.apply_flops();
        traffic.precond_bytes =
            static_cast<double>(applies) * prec.apply_bytes();
        export_phase_attribution(opts, result, traffic);
    }
    return result;
}

template SolveResult cg<float>(const sparse::Csr<float>&,
                               std::span<const float>, std::span<float>,
                               const precond::Preconditioner<float>&,
                               const SolverOptions&);
template SolveResult cg<double>(const sparse::Csr<double>&,
                                std::span<const double>, std::span<double>,
                                const precond::Preconditioner<double>&,
                                const SolverOptions&);

}  // namespace vbatch::solvers
