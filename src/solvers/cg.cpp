#include "solvers/cg.hpp"

#include <vector>

#include "base/macros.hpp"
#include "base/timer.hpp"
#include "blas/blas1.hpp"
#include "blas/fused.hpp"

namespace vbatch::solvers {

template <typename T>
SolveResult cg(const sparse::Csr<T>& a, std::span<const T> b, std::span<T> x,
               const precond::Preconditioner<T>& prec,
               const SolverOptions& opts) {
    VBATCH_ENSURE(a.num_rows() == a.num_cols(), "square system required");
    VBATCH_ENSURE_DIMS(static_cast<index_type>(b.size()) == a.num_rows());
    VBATCH_ENSURE_DIMS(b.size() == x.size());
    const auto nz = static_cast<std::size_t>(a.num_rows());

    obs::TraceRegion trace("cg::solve");
    Timer timer;
    SolveResult result;

    std::vector<T> r(nz), z(nz), p(nz), q(nz);
    a.spmv(std::span<const T>(x), std::span<T>(r));
    T normr = blas::fused_residual_norm2(b, std::span<T>(r));
    result.initial_residual = static_cast<double>(normr);
    const T tol = static_cast<T>(opts.rel_tol) * normr;
    record_residual(opts, result, static_cast<double>(normr));

    prec.apply(std::span<const T>(r), std::span<T>(z));
    blas::copy(std::span<const T>(z), std::span<T>(p));
    T rz = blas::dot(std::span<const T>(r), std::span<const T>(z));

    index_type iters = 0;
    bool broke_down = false;
    bool converged = normr <= tol;
    while (!converged && iters < opts.max_iters) {
        a.spmv(std::span<const T>(p), std::span<T>(q));
        ++iters;
        const T pq = blas::dot(std::span<const T>(p), std::span<const T>(q));
        if (pq == T{}) {
            broke_down = true;
            break;
        }
        const T alpha = rz / pq;
        // x += alpha p; r -= alpha q; ||r|| -- one sweep instead of three.
        normr = blas::fused_cg_update(alpha, std::span<const T>(p),
                                      std::span<const T>(q), x,
                                      std::span<T>(r));
        record_residual(opts, result, static_cast<double>(normr));
        converged = normr <= tol;
        if (converged) {
            break;
        }
        prec.apply(std::span<const T>(r), std::span<T>(z));
        const T rz_new = blas::dot(std::span<const T>(r),
                                   std::span<const T>(z));
        if (rz == T{}) {
            broke_down = true;
            break;
        }
        const T beta = rz_new / rz;
        blas::xpby(std::span<const T>(z), beta, std::span<T>(p));
        rz = rz_new;
    }

    finalize_result(result, converged, broke_down, prec);
    result.iterations = iters;
    result.final_residual = static_cast<double>(normr);
    result.solve_seconds = timer.seconds();
    return result;
}

template SolveResult cg<float>(const sparse::Csr<float>&,
                               std::span<const float>, std::span<float>,
                               const precond::Preconditioner<float>&,
                               const SolverOptions&);
template SolveResult cg<double>(const sparse::Csr<double>&,
                                std::span<const double>, std::span<double>,
                                const precond::Preconditioner<double>&,
                                const SolverOptions&);

}  // namespace vbatch::solvers
