// Public entry point of the lanes-parametric SIMD facade.
//
// `Simd<T, Backend>` is a value type holding one vector register of T;
// `SimdMask<T, Backend>` holds that backend's lane predicate (a bool, a
// vector bit pattern, or an AVX-512 __mmask). Kernels written once
// against these types compile to full-width code for every backend whose
// header is active in the TU -- the interleaved LU kernels in
// core/chunk_kernels.hpp are the canonical consumer.
//
// Semantics every backend must honour (asserted by tests/test_simd.cpp
// against the scalar backend as oracle):
//   * arithmetic is plain IEEE per-lane (+ - * /), never contracted;
//     fma() is the separate single-rounding primitive,
//   * comparisons are ordered-quiet (NaN compares false),
//   * masks form a boolean lattice: lane l of any mask is exactly true
//     or false regardless of representation, and bits() maps lane l to
//     bit l,
//   * select(m, a, b) picks a where m is true; keep(a, m) zeroes lanes
//     where m is false (x - (+0) == x bitwise, which the kernels exploit
//     to skip a blend),
//   * gather_rows(col, rows, stride): lane l reads
//     col[int(rows[l]) * stride + l] (the interleaved pivot-row read).
#pragma once

#include "simd/backend.hpp"
#include "simd/scalar.hpp"
#include "simd/sse2.hpp"
#include "simd/avx2.hpp"
#include "simd/avx512.hpp"
#include "simd/neon.hpp"

namespace vbatch::simd {

template <typename T, typename Backend>
class SimdMask {
    using impl = SimdImpl<T, Backend>;

public:
    using mask_type = typename impl::mask_type;
    static constexpr index_type width = impl::width;

    mask_type m;

    /// All lanes true.
    static SimdMask all_lanes() { return {impl::mask_all()}; }
    /// Lane l true, every other lane false.
    static SimdMask only_lane(index_type l) {
        return {impl::mask_only_lane(l)};
    }

    friend SimdMask operator&(SimdMask a, SimdMask b) {
        return {impl::mask_and(a.m, b.m)};
    }
    friend SimdMask operator|(SimdMask a, SimdMask b) {
        return {impl::mask_or(a.m, b.m)};
    }
    /// a & ~b
    friend SimdMask andnot(SimdMask a, SimdMask b) {
        return {impl::mask_andnot(a.m, b.m)};
    }

    bool any() const { return impl::mask_any(m); }
    /// Bit l of the result is lane l.
    unsigned bits() const { return impl::mask_bits(m); }
};

template <typename T, typename Backend>
class Simd {
    using impl = SimdImpl<T, Backend>;

public:
    using value_type = T;
    using vector_type = typename impl::vector_type;
    using mask = SimdMask<T, Backend>;
    static constexpr index_type width = impl::width;

    vector_type v;

    static Simd broadcast(T x) { return {impl::broadcast(x)}; }
    static Simd zero() { return {impl::zero()}; }
    /// p must be aligned to BackendTraits<Backend>::alignment.
    static Simd load(const T* p) { return {impl::load(p)}; }
    void store(T* p) const { impl::store(p, v); }

    friend Simd operator+(Simd a, Simd b) { return {impl::add(a.v, b.v)}; }
    friend Simd operator-(Simd a, Simd b) { return {impl::sub(a.v, b.v)}; }
    friend Simd operator*(Simd a, Simd b) { return {impl::mul(a.v, b.v)}; }
    friend Simd operator/(Simd a, Simd b) { return {impl::div(a.v, b.v)}; }
    friend Simd abs(Simd a) { return {impl::abs_(a.v)}; }
    /// Single-rounding a * b + c.
    friend Simd fma(Simd a, Simd b, Simd c) {
        return {impl::fma_(a.v, b.v, c.v)};
    }

    friend mask operator>(Simd a, Simd b) {
        return {impl::cmp_gt(a.v, b.v)};
    }
    friend mask operator<(Simd a, Simd b) {
        return {impl::cmp_lt(a.v, b.v)};
    }
    friend mask operator==(Simd a, Simd b) {
        return {impl::cmp_eq(a.v, b.v)};
    }

    /// m ? a : b
    static Simd select(mask m, Simd a, Simd b) {
        return {impl::select(m.m, a.v, b.v)};
    }
    /// m ? a : +0
    static Simd keep(Simd a, mask m) { return {impl::keep(a.v, m.m)}; }

    /// lane l -> col[int(rows[l]) * stride + l]
    static Simd gather_rows(const T* col, Simd rows, size_type stride) {
        return {impl::gather_rows(col, rows.v, stride)};
    }
    /// Same with an integer index array (lane-contiguous).
    static Simd gather_rows_i(const T* col, const index_type* rows,
                              size_type stride) {
        return {impl::gather_rows_i(col, rows, stride)};
    }
};

}  // namespace vbatch::simd
