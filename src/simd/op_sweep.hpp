// POD in/out contract of the facade operation sweep (internal, testing).
//
// The facade's vector types only exist in TUs compiled with the matching
// ISA flags, so a test executable built with baseline flags cannot
// instantiate, say, the AVX-512 backend directly. Instead each per-ISA
// kernel TU exports `simd_op_sweep_<isa>` (see core/vectorized_kernels.hpp)
// which runs every facade operation at that backend's width and reports
// the lane results through these flag-neutral structs; tests compare them
// against scalar oracles. This header must stay free of backend includes.
#pragma once

#include "base/types.hpp"

namespace vbatch::simd {

/// Widest supported backend lane count (AVX-512 float).
inline constexpr index_type op_sweep_max_width = 16;

template <typename T>
struct OpSweepInput {
    alignas(64) T a[op_sweep_max_width];
    alignas(64) T b[op_sweep_max_width];
    alignas(64) T c[op_sweep_max_width];
    /// Gather source, indexed col[row * op_sweep_max_width + lane]; the
    /// row values must lie in [0, op_sweep_max_width).
    alignas(64) T col[op_sweep_max_width * op_sweep_max_width];
    /// Per-lane row indices, stored as T (gather_rows) ...
    alignas(64) T rows[op_sweep_max_width];
    /// ... and as integers (gather_rows_i).
    alignas(64) index_type rows_i[op_sweep_max_width];
};

/// Per-lane results; only the first `width` entries of each array are
/// written. Mask results are reported via bits() (bit l = lane l).
template <typename T>
struct OpSweepResult {
    index_type width = 0;

    alignas(64) T add[op_sweep_max_width];
    alignas(64) T sub[op_sweep_max_width];
    alignas(64) T mul[op_sweep_max_width];
    alignas(64) T div[op_sweep_max_width];
    alignas(64) T abs_v[op_sweep_max_width];
    alignas(64) T fma_v[op_sweep_max_width];
    alignas(64) T broadcast[op_sweep_max_width];

    /// select(a > b, a, b) -- per-lane max via mask-select.
    alignas(64) T select_gt[op_sweep_max_width];
    /// keep(a, a < b) -- zeroing blend.
    alignas(64) T keep_lt[op_sweep_max_width];
    /// select((a == b) | (a > b), c, a) -- mask algebra feeding a blend.
    alignas(64) T select_ge[op_sweep_max_width];
    alignas(64) T gather[op_sweep_max_width];
    alignas(64) T gather_i[op_sweep_max_width];

    unsigned gt_bits = 0;
    unsigned lt_bits = 0;
    unsigned eq_bits = 0;
    unsigned and_bits = 0;     ///< (a > b) & (a < c)
    unsigned or_bits = 0;      ///< (a > b) | (a < c)
    unsigned andnot_bits = 0;  ///< (a > b) & ~(a < c)
    unsigned all_bits = 0;     ///< all_lanes()
    bool any_gt = false;       ///< (a > b).any()
    bool any_none = false;     ///< andnot(m, m).any() -- must be false
    bool only_lane_ok = false; ///< only_lane(l).bits() == 1u << l for all l
};

}  // namespace vbatch::simd
