// SSE2 backend: 128-bit vectors, 2 doubles / 4 floats. Masks are vectors
// whose lanes are all-ones / all-zero bit patterns. SSE2 is part of the
// x86-64 baseline, so this header needs no special compile flags on that
// target.
#pragma once

#include "simd/backend.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cmath>

namespace vbatch::simd {

template <>
struct BackendTraits<Sse2Backend> {
    static constexpr bool compiled = true;
    static constexpr const char* name = "sse2";
    static constexpr std::size_t vector_bytes = 16;
    static constexpr std::size_t alignment = 16;
    template <typename T>
    static constexpr index_type width =
        static_cast<index_type>(vector_bytes / sizeof(T));
};

template <>
struct SimdImpl<double, Sse2Backend> {
    using vector_type = __m128d;
    using mask_type = __m128d;
    static constexpr index_type width = 2;

    static __m128d load(const double* p) { return _mm_load_pd(p); }
    static void store(double* p, __m128d v) { _mm_store_pd(p, v); }
    static __m128d broadcast(double x) { return _mm_set1_pd(x); }
    static __m128d zero() { return _mm_setzero_pd(); }

    static __m128d add(__m128d a, __m128d b) { return _mm_add_pd(a, b); }
    static __m128d sub(__m128d a, __m128d b) { return _mm_sub_pd(a, b); }
    static __m128d mul(__m128d a, __m128d b) { return _mm_mul_pd(a, b); }
    static __m128d div(__m128d a, __m128d b) { return _mm_div_pd(a, b); }
    static __m128d abs_(__m128d a) {
        return _mm_andnot_pd(_mm_set1_pd(-0.0), a);
    }
    /// SSE2 has no FMA instruction: exact per-lane std::fma fallback.
    static __m128d fma_(__m128d a, __m128d b, __m128d c) {
        alignas(16) double x[2], y[2], z[2];
        _mm_store_pd(x, a);
        _mm_store_pd(y, b);
        _mm_store_pd(z, c);
        return _mm_setr_pd(std::fma(x[0], y[0], z[0]),
                           std::fma(x[1], y[1], z[1]));
    }

    static __m128d cmp_gt(__m128d a, __m128d b) {
        return _mm_cmpgt_pd(a, b);
    }
    static __m128d cmp_lt(__m128d a, __m128d b) {
        return _mm_cmplt_pd(a, b);
    }
    static __m128d cmp_eq(__m128d a, __m128d b) {
        return _mm_cmpeq_pd(a, b);
    }

    /// SSE2 has no blendv: mask ? a : b via and/andnot/or.
    static __m128d select(__m128d m, __m128d a, __m128d b) {
        return _mm_or_pd(_mm_and_pd(m, a), _mm_andnot_pd(m, b));
    }
    static __m128d keep(__m128d a, __m128d m) { return _mm_and_pd(a, m); }

    static __m128d mask_all() {
        return _mm_castsi128_pd(_mm_set1_epi32(-1));
    }
    static __m128d mask_and(__m128d a, __m128d b) {
        return _mm_and_pd(a, b);
    }
    static __m128d mask_or(__m128d a, __m128d b) { return _mm_or_pd(a, b); }
    static __m128d mask_andnot(__m128d a, __m128d b) {
        return _mm_andnot_pd(b, a);
    }
    static bool mask_any(__m128d m) { return _mm_movemask_pd(m) != 0; }
    static unsigned mask_bits(__m128d m) {
        return static_cast<unsigned>(_mm_movemask_pd(m));
    }
    static __m128d mask_only_lane(index_type l) {
        return _mm_cmpeq_pd(_mm_setr_pd(0.0, 1.0),
                            _mm_set1_pd(static_cast<double>(l)));
    }

    /// lane l -> col[int(rows[l]) * stride + l]
    static __m128d gather_rows(const double* col, __m128d rows,
                               size_type stride) {
        alignas(16) double r[2];
        _mm_store_pd(r, rows);
        return _mm_setr_pd(
            col[static_cast<size_type>(r[0]) * stride + 0],
            col[static_cast<size_type>(r[1]) * stride + 1]);
    }
    static __m128d gather_rows_i(const double* col, const index_type* rows,
                                 size_type stride) {
        return _mm_setr_pd(
            col[static_cast<size_type>(rows[0]) * stride + 0],
            col[static_cast<size_type>(rows[1]) * stride + 1]);
    }
};

template <>
struct SimdImpl<float, Sse2Backend> {
    using vector_type = __m128;
    using mask_type = __m128;
    static constexpr index_type width = 4;

    static __m128 load(const float* p) { return _mm_load_ps(p); }
    static void store(float* p, __m128 v) { _mm_store_ps(p, v); }
    static __m128 broadcast(float x) { return _mm_set1_ps(x); }
    static __m128 zero() { return _mm_setzero_ps(); }

    static __m128 add(__m128 a, __m128 b) { return _mm_add_ps(a, b); }
    static __m128 sub(__m128 a, __m128 b) { return _mm_sub_ps(a, b); }
    static __m128 mul(__m128 a, __m128 b) { return _mm_mul_ps(a, b); }
    static __m128 div(__m128 a, __m128 b) { return _mm_div_ps(a, b); }
    static __m128 abs_(__m128 a) {
        return _mm_andnot_ps(_mm_set1_ps(-0.0f), a);
    }
    static __m128 fma_(__m128 a, __m128 b, __m128 c) {
        alignas(16) float x[4], y[4], z[4];
        _mm_store_ps(x, a);
        _mm_store_ps(y, b);
        _mm_store_ps(z, c);
        return _mm_setr_ps(
            std::fma(x[0], y[0], z[0]), std::fma(x[1], y[1], z[1]),
            std::fma(x[2], y[2], z[2]), std::fma(x[3], y[3], z[3]));
    }

    static __m128 cmp_gt(__m128 a, __m128 b) { return _mm_cmpgt_ps(a, b); }
    static __m128 cmp_lt(__m128 a, __m128 b) { return _mm_cmplt_ps(a, b); }
    static __m128 cmp_eq(__m128 a, __m128 b) { return _mm_cmpeq_ps(a, b); }

    static __m128 select(__m128 m, __m128 a, __m128 b) {
        return _mm_or_ps(_mm_and_ps(m, a), _mm_andnot_ps(m, b));
    }
    static __m128 keep(__m128 a, __m128 m) { return _mm_and_ps(a, m); }

    static __m128 mask_all() {
        return _mm_castsi128_ps(_mm_set1_epi32(-1));
    }
    static __m128 mask_and(__m128 a, __m128 b) { return _mm_and_ps(a, b); }
    static __m128 mask_or(__m128 a, __m128 b) { return _mm_or_ps(a, b); }
    static __m128 mask_andnot(__m128 a, __m128 b) {
        return _mm_andnot_ps(b, a);
    }
    static bool mask_any(__m128 m) { return _mm_movemask_ps(m) != 0; }
    static unsigned mask_bits(__m128 m) {
        return static_cast<unsigned>(_mm_movemask_ps(m));
    }
    static __m128 mask_only_lane(index_type l) {
        return _mm_cmpeq_ps(_mm_setr_ps(0.0f, 1.0f, 2.0f, 3.0f),
                            _mm_set1_ps(static_cast<float>(l)));
    }

    static __m128 gather_rows(const float* col, __m128 rows,
                              size_type stride) {
        alignas(16) float r[4];
        _mm_store_ps(r, rows);
        return _mm_setr_ps(
            col[static_cast<size_type>(r[0]) * stride + 0],
            col[static_cast<size_type>(r[1]) * stride + 1],
            col[static_cast<size_type>(r[2]) * stride + 2],
            col[static_cast<size_type>(r[3]) * stride + 3]);
    }
    static __m128 gather_rows_i(const float* col, const index_type* rows,
                                size_type stride) {
        return _mm_setr_ps(
            col[static_cast<size_type>(rows[0]) * stride + 0],
            col[static_cast<size_type>(rows[1]) * stride + 1],
            col[static_cast<size_type>(rows[2]) * stride + 2],
            col[static_cast<size_type>(rows[3]) * stride + 3]);
    }
};

}  // namespace vbatch::simd

#endif  // __SSE2__
