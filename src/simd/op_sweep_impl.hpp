// Backend-generic implementation of the facade operation sweep.
//
// Included only by the per-ISA kernel TUs (which have the right compile
// flags for their backend); see op_sweep.hpp for the contract.
#pragma once

#include "simd/op_sweep.hpp"
#include "simd/simd.hpp"

namespace vbatch::simd {

template <typename T, typename Backend>
void op_sweep_run(const OpSweepInput<T>& in, OpSweepResult<T>& out) {
    using V = Simd<T, Backend>;
    using M = typename V::mask;
    constexpr index_type w = V::width;
    static_assert(w <= op_sweep_max_width);
    out.width = w;

    // The sweep runs full vectors over the first w lanes of the 16-lane
    // input arrays; 64-byte input/output alignment covers every backend.
    const V a = V::load(in.a);
    const V b = V::load(in.b);
    const V c = V::load(in.c);

    (a + b).store(out.add);
    (a - b).store(out.sub);
    (a * b).store(out.mul);
    (a / b).store(out.div);
    abs(a).store(out.abs_v);
    fma(a, b, c).store(out.fma_v);
    V::broadcast(in.a[0]).store(out.broadcast);

    const M gt = a > b;
    const M lt = a < b;
    const M eq = a == b;
    const M ltc = a < c;
    out.gt_bits = gt.bits();
    out.lt_bits = lt.bits();
    out.eq_bits = eq.bits();
    out.and_bits = (gt & ltc).bits();
    out.or_bits = (gt | ltc).bits();
    out.andnot_bits = andnot(gt, ltc).bits();
    out.all_bits = M::all_lanes().bits();
    out.any_gt = gt.any();
    out.any_none = andnot(gt, gt).any();

    V::select(gt, a, b).store(out.select_gt);
    V::keep(a, lt).store(out.keep_lt);
    V::select(eq | gt, c, a).store(out.select_ge);

    V::gather_rows(in.col, V::load(in.rows),
                   static_cast<size_type>(op_sweep_max_width))
        .store(out.gather);
    V::gather_rows_i(in.col, in.rows_i,
                     static_cast<size_type>(op_sweep_max_width))
        .store(out.gather_i);

    out.only_lane_ok = true;
    for (index_type l = 0; l < w; ++l) {
        if (M::only_lane(l).bits() != (1u << l)) {
            out.only_lane_ok = false;
        }
    }
}

}  // namespace vbatch::simd
