// Backend tags and traits of the lanes-parametric SIMD facade.
//
// A *backend* names one vector instruction set; `SimdImpl<T, Backend>`
// (specialized in the per-ISA headers scalar.hpp / sse2.hpp / avx2.hpp /
// avx512.hpp / neon.hpp) binds the facade's operation set to that ISA's
// intrinsics for scalar type T. Each per-ISA header guards itself on the
// compiler's feature macros, so a translation unit only sees the
// specializations its compile flags can actually generate code for --
// which is also why the interleaved kernel TUs are compiled one per ISA
// (see src/core/CMakeLists.txt) and why `BackendTraits<B>::compiled`
// is a *per-TU* property, not a whole-binary one. Whether the executing
// CPU supports a compiled-in backend remains a runtime question answered
// by core::simd_isa_available.
#pragma once

#include <cstddef>

#include "base/types.hpp"

namespace vbatch::simd {

/// Width-1 portable reference; always compiled, the oracle every vector
/// backend is bitwise-tested against.
struct ScalarBackend {};
/// 128-bit x86 (2 doubles / 4 floats); part of the x86-64 baseline.
struct Sse2Backend {};
/// 256-bit x86 (4 doubles / 8 floats).
struct Avx2Backend {};
/// 512-bit x86 (8 doubles / 16 floats) with native predicate registers:
/// comparisons produce __mmask8/16 values instead of vector bit patterns.
struct Avx512Backend {};
/// 128-bit AArch64 Advanced SIMD (2 doubles / 4 floats).
struct NeonBackend {};

/// Low-level static operation table; specialized per (T, Backend) in the
/// per-ISA headers. The public value types Simd / SimdMask (simd.hpp)
/// wrap these.
template <typename T, typename Backend>
struct SimdImpl;

/// Compile-time shape of a backend. The primary template describes a
/// backend whose header is not active in this TU.
template <typename Backend>
struct BackendTraits {
    static constexpr bool compiled = false;
};

template <>
struct BackendTraits<ScalarBackend> {
    static constexpr bool compiled = true;
    static constexpr const char* name = "scalar";
    /// Bytes per vector register (scalar: one double lane).
    static constexpr std::size_t vector_bytes = sizeof(double);
    /// Required pointer alignment for Simd::load / store.
    static constexpr std::size_t alignment = alignof(double);
    template <typename T>
    static constexpr index_type width = 1;
};

}  // namespace vbatch::simd
