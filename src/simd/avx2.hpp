// AVX2 backend: 256-bit vectors, 4 doubles / 8 floats. Masks are vectors
// whose lanes are all-ones / all-zero bit patterns. Only visible in TUs
// compiled with -mavx2 (see src/core/CMakeLists.txt).
#pragma once

#include "simd/backend.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace vbatch::simd {

template <>
struct BackendTraits<Avx2Backend> {
    static constexpr bool compiled = true;
    static constexpr const char* name = "avx2";
    static constexpr std::size_t vector_bytes = 32;
    static constexpr std::size_t alignment = 32;
    template <typename T>
    static constexpr index_type width =
        static_cast<index_type>(vector_bytes / sizeof(T));
};

template <>
struct SimdImpl<double, Avx2Backend> {
    using vector_type = __m256d;
    using mask_type = __m256d;
    static constexpr index_type width = 4;

    static __m256d load(const double* p) { return _mm256_load_pd(p); }
    static void store(double* p, __m256d v) { _mm256_store_pd(p, v); }
    static __m256d broadcast(double x) { return _mm256_set1_pd(x); }
    static __m256d zero() { return _mm256_setzero_pd(); }

    static __m256d add(__m256d a, __m256d b) { return _mm256_add_pd(a, b); }
    static __m256d sub(__m256d a, __m256d b) { return _mm256_sub_pd(a, b); }
    static __m256d mul(__m256d a, __m256d b) { return _mm256_mul_pd(a, b); }
    static __m256d div(__m256d a, __m256d b) { return _mm256_div_pd(a, b); }
    static __m256d abs_(__m256d a) {
        return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
    }
    /// The TU is compiled without -mfma (AVX2 only): exact per-lane
    /// std::fma fallback keeps single-rounding semantics.
    static __m256d fma_(__m256d a, __m256d b, __m256d c) {
        alignas(32) double x[4], y[4], z[4];
        _mm256_store_pd(x, a);
        _mm256_store_pd(y, b);
        _mm256_store_pd(z, c);
        return _mm256_setr_pd(std::fma(x[0], y[0], z[0]),
                              std::fma(x[1], y[1], z[1]),
                              std::fma(x[2], y[2], z[2]),
                              std::fma(x[3], y[3], z[3]));
    }

    static __m256d cmp_gt(__m256d a, __m256d b) {
        return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
    }
    static __m256d cmp_lt(__m256d a, __m256d b) {
        return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
    }
    static __m256d cmp_eq(__m256d a, __m256d b) {
        return _mm256_cmp_pd(a, b, _CMP_EQ_OQ);
    }

    /// mask ? a : b
    static __m256d select(__m256d m, __m256d a, __m256d b) {
        return _mm256_blendv_pd(b, a, m);
    }
    static __m256d keep(__m256d a, __m256d m) {
        return _mm256_and_pd(a, m);
    }

    static __m256d mask_all() {
        return _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    }
    static __m256d mask_and(__m256d a, __m256d b) {
        return _mm256_and_pd(a, b);
    }
    static __m256d mask_or(__m256d a, __m256d b) {
        return _mm256_or_pd(a, b);
    }
    static __m256d mask_andnot(__m256d a, __m256d b) {
        return _mm256_andnot_pd(b, a);
    }
    static bool mask_any(__m256d m) { return _mm256_movemask_pd(m) != 0; }
    static unsigned mask_bits(__m256d m) {
        return static_cast<unsigned>(_mm256_movemask_pd(m));
    }
    static __m256d mask_only_lane(index_type l) {
        return _mm256_cmp_pd(_mm256_setr_pd(0.0, 1.0, 2.0, 3.0),
                             _mm256_set1_pd(static_cast<double>(l)),
                             _CMP_EQ_OQ);
    }

    /// lane l -> col[int(rows[l]) * stride + l]
    static __m256d gather_rows(const double* col, __m256d rows,
                               size_type stride) {
        __m128i idx = _mm256_cvttpd_epi32(rows);
        idx = _mm_mullo_epi32(idx, _mm_set1_epi32(static_cast<int>(stride)));
        idx = _mm_add_epi32(idx, _mm_setr_epi32(0, 1, 2, 3));
        // Masked gather with an explicit zero source: same result as the
        // plain gather, but avoids GCC's maybe-uninitialized false
        // positive on the undefined source operand.
        return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), col, idx,
                                        mask_all(), 8);
    }
    static __m256d gather_rows_i(const double* col, const index_type* rows,
                                 size_type stride) {
        __m128i idx =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows));
        idx = _mm_mullo_epi32(idx, _mm_set1_epi32(static_cast<int>(stride)));
        idx = _mm_add_epi32(idx, _mm_setr_epi32(0, 1, 2, 3));
        return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), col, idx,
                                        mask_all(), 8);
    }
};

template <>
struct SimdImpl<float, Avx2Backend> {
    using vector_type = __m256;
    using mask_type = __m256;
    static constexpr index_type width = 8;

    static __m256 load(const float* p) { return _mm256_load_ps(p); }
    static void store(float* p, __m256 v) { _mm256_store_ps(p, v); }
    static __m256 broadcast(float x) { return _mm256_set1_ps(x); }
    static __m256 zero() { return _mm256_setzero_ps(); }

    static __m256 add(__m256 a, __m256 b) { return _mm256_add_ps(a, b); }
    static __m256 sub(__m256 a, __m256 b) { return _mm256_sub_ps(a, b); }
    static __m256 mul(__m256 a, __m256 b) { return _mm256_mul_ps(a, b); }
    static __m256 div(__m256 a, __m256 b) { return _mm256_div_ps(a, b); }
    static __m256 abs_(__m256 a) {
        return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), a);
    }
    static __m256 fma_(__m256 a, __m256 b, __m256 c) {
        alignas(32) float x[8], y[8], z[8];
        _mm256_store_ps(x, a);
        _mm256_store_ps(y, b);
        _mm256_store_ps(z, c);
        return _mm256_setr_ps(
            std::fma(x[0], y[0], z[0]), std::fma(x[1], y[1], z[1]),
            std::fma(x[2], y[2], z[2]), std::fma(x[3], y[3], z[3]),
            std::fma(x[4], y[4], z[4]), std::fma(x[5], y[5], z[5]),
            std::fma(x[6], y[6], z[6]), std::fma(x[7], y[7], z[7]));
    }

    static __m256 cmp_gt(__m256 a, __m256 b) {
        return _mm256_cmp_ps(a, b, _CMP_GT_OQ);
    }
    static __m256 cmp_lt(__m256 a, __m256 b) {
        return _mm256_cmp_ps(a, b, _CMP_LT_OQ);
    }
    static __m256 cmp_eq(__m256 a, __m256 b) {
        return _mm256_cmp_ps(a, b, _CMP_EQ_OQ);
    }

    static __m256 select(__m256 m, __m256 a, __m256 b) {
        return _mm256_blendv_ps(b, a, m);
    }
    static __m256 keep(__m256 a, __m256 m) { return _mm256_and_ps(a, m); }

    static __m256 mask_all() {
        return _mm256_castsi256_ps(_mm256_set1_epi32(-1));
    }
    static __m256 mask_and(__m256 a, __m256 b) {
        return _mm256_and_ps(a, b);
    }
    static __m256 mask_or(__m256 a, __m256 b) { return _mm256_or_ps(a, b); }
    static __m256 mask_andnot(__m256 a, __m256 b) {
        return _mm256_andnot_ps(b, a);
    }
    static bool mask_any(__m256 m) { return _mm256_movemask_ps(m) != 0; }
    static unsigned mask_bits(__m256 m) {
        return static_cast<unsigned>(_mm256_movemask_ps(m));
    }
    static __m256 mask_only_lane(index_type l) {
        return _mm256_cmp_ps(
            _mm256_setr_ps(0.0f, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f),
            _mm256_set1_ps(static_cast<float>(l)), _CMP_EQ_OQ);
    }

    static __m256 gather_rows(const float* col, __m256 rows,
                              size_type stride) {
        __m256i idx = _mm256_cvttps_epi32(rows);
        idx = _mm256_mullo_epi32(idx,
                                 _mm256_set1_epi32(static_cast<int>(stride)));
        idx = _mm256_add_epi32(idx,
                               _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
        return _mm256_mask_i32gather_ps(_mm256_setzero_ps(), col, idx,
                                        mask_all(), 4);
    }
    static __m256 gather_rows_i(const float* col, const index_type* rows,
                                size_type stride) {
        __m256i idx =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows));
        idx = _mm256_mullo_epi32(idx,
                                 _mm256_set1_epi32(static_cast<int>(stride)));
        idx = _mm256_add_epi32(idx,
                               _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
        return _mm256_mask_i32gather_ps(_mm256_setzero_ps(), col, idx,
                                        mask_all(), 4);
    }
};

}  // namespace vbatch::simd

#endif  // __AVX2__
