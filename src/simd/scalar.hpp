// Scalar (width-1) backend: the portable fallback and the semantic
// reference of the facade. Masks are plain bools.
#pragma once

#include <cmath>

#include "simd/backend.hpp"

namespace vbatch::simd {

template <typename T>
struct SimdImpl<T, ScalarBackend> {
    using vector_type = T;
    using mask_type = bool;
    static constexpr index_type width = 1;

    static T load(const T* p) { return *p; }
    static void store(T* p, T v) { *p = v; }
    static T broadcast(T x) { return x; }
    static T zero() { return T{0}; }

    static T add(T a, T b) { return a + b; }
    static T sub(T a, T b) { return a - b; }
    static T mul(T a, T b) { return a * b; }
    static T div(T a, T b) { return a / b; }
    /// Sign-bit clear, like the vector backends (abs(-0) == +0).
    static T abs_(T a) { return std::fabs(a); }
    /// Single-rounding a*b + c.
    static T fma_(T a, T b, T c) { return std::fma(a, b, c); }

    static bool cmp_gt(T a, T b) { return a > b; }
    static bool cmp_lt(T a, T b) { return a < b; }
    static bool cmp_eq(T a, T b) { return a == b; }

    static T select(bool m, T a, T b) { return m ? a : b; }
    static T keep(T a, bool m) { return m ? a : T{0}; }

    static bool mask_all() { return true; }
    static bool mask_and(bool a, bool b) { return a && b; }
    static bool mask_or(bool a, bool b) { return a || b; }
    /// a & ~b
    static bool mask_andnot(bool a, bool b) { return a && !b; }
    static bool mask_any(bool m) { return m; }
    static unsigned mask_bits(bool m) { return m ? 1u : 0u; }
    static bool mask_only_lane(index_type l) { return l == 0; }

    static T gather_rows(const T* col, T rows, size_type stride) {
        return col[static_cast<size_type>(rows) * stride];
    }
    static T gather_rows_i(const T* col, const index_type* rows,
                           size_type stride) {
        return col[static_cast<size_type>(rows[0]) * stride];
    }
};

}  // namespace vbatch::simd
