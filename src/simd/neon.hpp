// NEON (AArch64 Advanced SIMD) backend: 128-bit vectors, 2 doubles /
// 4 floats. Masks are unsigned-integer vectors whose lanes are all-ones /
// all-zero, the representation the vcXXq comparisons produce natively.
// AdvSIMD is mandatory on AArch64, so this backend needs no special
// compile flags there and is the (sole) vector dispatch level on ARM.
#pragma once

#include "simd/backend.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace vbatch::simd {

template <>
struct BackendTraits<NeonBackend> {
    static constexpr bool compiled = true;
    static constexpr const char* name = "neon";
    static constexpr std::size_t vector_bytes = 16;
    static constexpr std::size_t alignment = 16;
    template <typename T>
    static constexpr index_type width =
        static_cast<index_type>(vector_bytes / sizeof(T));
};

template <>
struct SimdImpl<double, NeonBackend> {
    using vector_type = float64x2_t;
    using mask_type = uint64x2_t;
    static constexpr index_type width = 2;

    static float64x2_t load(const double* p) { return vld1q_f64(p); }
    static void store(double* p, float64x2_t v) { vst1q_f64(p, v); }
    static float64x2_t broadcast(double x) { return vdupq_n_f64(x); }
    static float64x2_t zero() { return vdupq_n_f64(0.0); }

    static float64x2_t add(float64x2_t a, float64x2_t b) {
        return vaddq_f64(a, b);
    }
    static float64x2_t sub(float64x2_t a, float64x2_t b) {
        return vsubq_f64(a, b);
    }
    static float64x2_t mul(float64x2_t a, float64x2_t b) {
        return vmulq_f64(a, b);
    }
    static float64x2_t div(float64x2_t a, float64x2_t b) {
        return vdivq_f64(a, b);
    }
    static float64x2_t abs_(float64x2_t a) { return vabsq_f64(a); }
    /// vfmaq(c, a, b) = a * b + c with a single rounding (== std::fma).
    static float64x2_t fma_(float64x2_t a, float64x2_t b, float64x2_t c) {
        return vfmaq_f64(c, a, b);
    }

    static uint64x2_t cmp_gt(float64x2_t a, float64x2_t b) {
        return vcgtq_f64(a, b);
    }
    static uint64x2_t cmp_lt(float64x2_t a, float64x2_t b) {
        return vcltq_f64(a, b);
    }
    static uint64x2_t cmp_eq(float64x2_t a, float64x2_t b) {
        return vceqq_f64(a, b);
    }

    /// mask ? a : b (bitwise select: mask lanes are all-ones/all-zero).
    static float64x2_t select(uint64x2_t m, float64x2_t a, float64x2_t b) {
        return vbslq_f64(m, a, b);
    }
    /// mask ? a : +0
    static float64x2_t keep(float64x2_t a, uint64x2_t m) {
        return vreinterpretq_f64_u64(
            vandq_u64(vreinterpretq_u64_f64(a), m));
    }

    static uint64x2_t mask_all() { return vdupq_n_u64(~0ull); }
    static uint64x2_t mask_and(uint64x2_t a, uint64x2_t b) {
        return vandq_u64(a, b);
    }
    static uint64x2_t mask_or(uint64x2_t a, uint64x2_t b) {
        return vorrq_u64(a, b);
    }
    /// a & ~b
    static uint64x2_t mask_andnot(uint64x2_t a, uint64x2_t b) {
        return vbicq_u64(a, b);
    }
    static bool mask_any(uint64x2_t m) {
        return (vgetq_lane_u64(m, 0) | vgetq_lane_u64(m, 1)) != 0;
    }
    static unsigned mask_bits(uint64x2_t m) {
        return static_cast<unsigned>(vgetq_lane_u64(m, 0) & 1u) |
               (static_cast<unsigned>(vgetq_lane_u64(m, 1) & 1u) << 1);
    }
    static uint64x2_t mask_only_lane(index_type l) {
        alignas(16) uint64_t lanes[2] = {l == 0 ? ~0ull : 0ull,
                                         l == 1 ? ~0ull : 0ull};
        return vld1q_u64(lanes);
    }

    /// lane l -> col[int(rows[l]) * stride + l]
    static float64x2_t gather_rows(const double* col, float64x2_t rows,
                                   size_type stride) {
        alignas(16) double r[2];
        vst1q_f64(r, rows);
        alignas(16) double out[2] = {
            col[static_cast<size_type>(r[0]) * stride + 0],
            col[static_cast<size_type>(r[1]) * stride + 1]};
        return vld1q_f64(out);
    }
    static float64x2_t gather_rows_i(const double* col,
                                     const index_type* rows,
                                     size_type stride) {
        alignas(16) double out[2] = {
            col[static_cast<size_type>(rows[0]) * stride + 0],
            col[static_cast<size_type>(rows[1]) * stride + 1]};
        return vld1q_f64(out);
    }
};

template <>
struct SimdImpl<float, NeonBackend> {
    using vector_type = float32x4_t;
    using mask_type = uint32x4_t;
    static constexpr index_type width = 4;

    static float32x4_t load(const float* p) { return vld1q_f32(p); }
    static void store(float* p, float32x4_t v) { vst1q_f32(p, v); }
    static float32x4_t broadcast(float x) { return vdupq_n_f32(x); }
    static float32x4_t zero() { return vdupq_n_f32(0.0f); }

    static float32x4_t add(float32x4_t a, float32x4_t b) {
        return vaddq_f32(a, b);
    }
    static float32x4_t sub(float32x4_t a, float32x4_t b) {
        return vsubq_f32(a, b);
    }
    static float32x4_t mul(float32x4_t a, float32x4_t b) {
        return vmulq_f32(a, b);
    }
    static float32x4_t div(float32x4_t a, float32x4_t b) {
        return vdivq_f32(a, b);
    }
    static float32x4_t abs_(float32x4_t a) { return vabsq_f32(a); }
    static float32x4_t fma_(float32x4_t a, float32x4_t b, float32x4_t c) {
        return vfmaq_f32(c, a, b);
    }

    static uint32x4_t cmp_gt(float32x4_t a, float32x4_t b) {
        return vcgtq_f32(a, b);
    }
    static uint32x4_t cmp_lt(float32x4_t a, float32x4_t b) {
        return vcltq_f32(a, b);
    }
    static uint32x4_t cmp_eq(float32x4_t a, float32x4_t b) {
        return vceqq_f32(a, b);
    }

    static float32x4_t select(uint32x4_t m, float32x4_t a, float32x4_t b) {
        return vbslq_f32(m, a, b);
    }
    static float32x4_t keep(float32x4_t a, uint32x4_t m) {
        return vreinterpretq_f32_u32(
            vandq_u32(vreinterpretq_u32_f32(a), m));
    }

    static uint32x4_t mask_all() { return vdupq_n_u32(~0u); }
    static uint32x4_t mask_and(uint32x4_t a, uint32x4_t b) {
        return vandq_u32(a, b);
    }
    static uint32x4_t mask_or(uint32x4_t a, uint32x4_t b) {
        return vorrq_u32(a, b);
    }
    static uint32x4_t mask_andnot(uint32x4_t a, uint32x4_t b) {
        return vbicq_u32(a, b);
    }
    static bool mask_any(uint32x4_t m) {
        return vmaxvq_u32(m) != 0;
    }
    static unsigned mask_bits(uint32x4_t m) {
        return (vgetq_lane_u32(m, 0) & 1u) |
               ((vgetq_lane_u32(m, 1) & 1u) << 1) |
               ((vgetq_lane_u32(m, 2) & 1u) << 2) |
               ((vgetq_lane_u32(m, 3) & 1u) << 3);
    }
    static uint32x4_t mask_only_lane(index_type l) {
        alignas(16) uint32_t lanes[4] = {
            l == 0 ? ~0u : 0u, l == 1 ? ~0u : 0u, l == 2 ? ~0u : 0u,
            l == 3 ? ~0u : 0u};
        return vld1q_u32(lanes);
    }

    static float32x4_t gather_rows(const float* col, float32x4_t rows,
                                   size_type stride) {
        alignas(16) float r[4];
        vst1q_f32(r, rows);
        alignas(16) float out[4] = {
            col[static_cast<size_type>(r[0]) * stride + 0],
            col[static_cast<size_type>(r[1]) * stride + 1],
            col[static_cast<size_type>(r[2]) * stride + 2],
            col[static_cast<size_type>(r[3]) * stride + 3]};
        return vld1q_f32(out);
    }
    static float32x4_t gather_rows_i(const float* col,
                                     const index_type* rows,
                                     size_type stride) {
        alignas(16) float out[4] = {
            col[static_cast<size_type>(rows[0]) * stride + 0],
            col[static_cast<size_type>(rows[1]) * stride + 1],
            col[static_cast<size_type>(rows[2]) * stride + 2],
            col[static_cast<size_type>(rows[3]) * stride + 3]};
        return vld1q_f32(out);
    }
};

}  // namespace vbatch::simd

#endif  // __aarch64__ && __ARM_NEON
