// AVX-512 backend: 512-bit vectors, 8 doubles / 16 floats, with native
// predicate registers -- comparisons produce __mmask8/__mmask16 values,
// and masked selection uses the hardware mask ports instead of the
// and/andnot/or bit-pattern emulation of the 128/256-bit backends. The
// mask values form the same boolean lattice as the vector bit patterns
// (bit set <=> lane all-ones), so kernels written against the facade are
// bitwise-identical across representations. Only visible in TUs compiled
// with -march=x86-64-v4 or equivalent (see src/core/CMakeLists.txt).
#pragma once

#include "simd/backend.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace vbatch::simd {

template <>
struct BackendTraits<Avx512Backend> {
    static constexpr bool compiled = true;
    static constexpr const char* name = "avx512";
    static constexpr std::size_t vector_bytes = 64;
    static constexpr std::size_t alignment = 64;
    template <typename T>
    static constexpr index_type width =
        static_cast<index_type>(vector_bytes / sizeof(T));
};

template <>
struct SimdImpl<double, Avx512Backend> {
    using vector_type = __m512d;
    using mask_type = __mmask8;
    static constexpr index_type width = 8;

    static __m512d load(const double* p) { return _mm512_load_pd(p); }
    static void store(double* p, __m512d v) { _mm512_store_pd(p, v); }
    static __m512d broadcast(double x) { return _mm512_set1_pd(x); }
    static __m512d zero() { return _mm512_setzero_pd(); }

    static __m512d add(__m512d a, __m512d b) { return _mm512_add_pd(a, b); }
    static __m512d sub(__m512d a, __m512d b) { return _mm512_sub_pd(a, b); }
    static __m512d mul(__m512d a, __m512d b) { return _mm512_mul_pd(a, b); }
    static __m512d div(__m512d a, __m512d b) { return _mm512_div_pd(a, b); }
    static __m512d abs_(__m512d a) { return _mm512_abs_pd(a); }
    static __m512d fma_(__m512d a, __m512d b, __m512d c) {
        return _mm512_fmadd_pd(a, b, c);
    }

    static __mmask8 cmp_gt(__m512d a, __m512d b) {
        return _mm512_cmp_pd_mask(a, b, _CMP_GT_OQ);
    }
    static __mmask8 cmp_lt(__m512d a, __m512d b) {
        return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ);
    }
    static __mmask8 cmp_eq(__m512d a, __m512d b) {
        return _mm512_cmp_pd_mask(a, b, _CMP_EQ_OQ);
    }

    /// mask ? a : b. _mm512_mask_blend_pd(k, x, y) picks y where k is
    /// set, so the arguments are swapped here.
    static __m512d select(__mmask8 m, __m512d a, __m512d b) {
        return _mm512_mask_blend_pd(m, b, a);
    }
    /// mask ? a : +0
    static __m512d keep(__m512d a, __mmask8 m) {
        return _mm512_maskz_mov_pd(m, a);
    }

    static __mmask8 mask_all() { return static_cast<__mmask8>(0xFFu); }
    static __mmask8 mask_and(__mmask8 a, __mmask8 b) {
        return static_cast<__mmask8>(a & b);
    }
    static __mmask8 mask_or(__mmask8 a, __mmask8 b) {
        return static_cast<__mmask8>(a | b);
    }
    static __mmask8 mask_andnot(__mmask8 a, __mmask8 b) {
        return static_cast<__mmask8>(a & static_cast<__mmask8>(~b));
    }
    static bool mask_any(__mmask8 m) { return m != 0; }
    static unsigned mask_bits(__mmask8 m) {
        return static_cast<unsigned>(m);
    }
    static __mmask8 mask_only_lane(index_type l) {
        return static_cast<__mmask8>(1u << l);
    }

    /// lane l -> col[int(rows[l]) * stride + l]
    static __m512d gather_rows(const double* col, __m512d rows,
                               size_type stride) {
        // Masked convert/gather forms with explicit zero sources: same
        // results as the plain intrinsics, but avoid GCC's
        // maybe-uninitialized false positive on undefined source operands.
        __m256i idx = _mm512_mask_cvttpd_epi32(_mm256_setzero_si256(),
                                               mask_all(), rows);
        idx = _mm256_mullo_epi32(idx,
                                 _mm256_set1_epi32(static_cast<int>(stride)));
        idx = _mm256_add_epi32(idx,
                               _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
        // Masked gather with an explicit zero source: same result as the
        // plain gather, but avoids GCC's maybe-uninitialized false
        // positive on the undefined source operand.
        return _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask_all(),
                                        idx, col, 8);
    }
    static __m512d gather_rows_i(const double* col, const index_type* rows,
                                 size_type stride) {
        __m256i idx =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows));
        idx = _mm256_mullo_epi32(idx,
                                 _mm256_set1_epi32(static_cast<int>(stride)));
        idx = _mm256_add_epi32(idx,
                               _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
        return _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask_all(),
                                        idx, col, 8);
    }
};

template <>
struct SimdImpl<float, Avx512Backend> {
    using vector_type = __m512;
    using mask_type = __mmask16;
    static constexpr index_type width = 16;

    static __m512 load(const float* p) { return _mm512_load_ps(p); }
    static void store(float* p, __m512 v) { _mm512_store_ps(p, v); }
    static __m512 broadcast(float x) { return _mm512_set1_ps(x); }
    static __m512 zero() { return _mm512_setzero_ps(); }

    static __m512 add(__m512 a, __m512 b) { return _mm512_add_ps(a, b); }
    static __m512 sub(__m512 a, __m512 b) { return _mm512_sub_ps(a, b); }
    static __m512 mul(__m512 a, __m512 b) { return _mm512_mul_ps(a, b); }
    static __m512 div(__m512 a, __m512 b) { return _mm512_div_ps(a, b); }
    static __m512 abs_(__m512 a) { return _mm512_abs_ps(a); }
    static __m512 fma_(__m512 a, __m512 b, __m512 c) {
        return _mm512_fmadd_ps(a, b, c);
    }

    static __mmask16 cmp_gt(__m512 a, __m512 b) {
        return _mm512_cmp_ps_mask(a, b, _CMP_GT_OQ);
    }
    static __mmask16 cmp_lt(__m512 a, __m512 b) {
        return _mm512_cmp_ps_mask(a, b, _CMP_LT_OQ);
    }
    static __mmask16 cmp_eq(__m512 a, __m512 b) {
        return _mm512_cmp_ps_mask(a, b, _CMP_EQ_OQ);
    }

    static __m512 select(__mmask16 m, __m512 a, __m512 b) {
        return _mm512_mask_blend_ps(m, b, a);
    }
    static __m512 keep(__m512 a, __mmask16 m) {
        return _mm512_maskz_mov_ps(m, a);
    }

    static __mmask16 mask_all() { return static_cast<__mmask16>(0xFFFFu); }
    static __mmask16 mask_and(__mmask16 a, __mmask16 b) {
        return static_cast<__mmask16>(a & b);
    }
    static __mmask16 mask_or(__mmask16 a, __mmask16 b) {
        return static_cast<__mmask16>(a | b);
    }
    static __mmask16 mask_andnot(__mmask16 a, __mmask16 b) {
        return static_cast<__mmask16>(a & static_cast<__mmask16>(~b));
    }
    static bool mask_any(__mmask16 m) { return m != 0; }
    static unsigned mask_bits(__mmask16 m) {
        return static_cast<unsigned>(m);
    }
    static __mmask16 mask_only_lane(index_type l) {
        return static_cast<__mmask16>(1u << l);
    }

    static __m512 gather_rows(const float* col, __m512 rows,
                              size_type stride) {
        __m512i idx = _mm512_mask_cvttps_epi32(_mm512_setzero_si512(),
                                               mask_all(), rows);
        idx = _mm512_mullo_epi32(idx,
                                 _mm512_set1_epi32(static_cast<int>(stride)));
        idx = _mm512_add_epi32(idx,
                               _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8,
                                                 9, 10, 11, 12, 13, 14, 15));
        return _mm512_mask_i32gather_ps(_mm512_setzero_ps(), mask_all(),
                                        idx, col, 4);
    }
    static __m512 gather_rows_i(const float* col, const index_type* rows,
                                size_type stride) {
        __m512i idx = _mm512_loadu_si512(rows);
        idx = _mm512_mullo_epi32(idx,
                                 _mm512_set1_epi32(static_cast<int>(stride)));
        idx = _mm512_add_epi32(idx,
                               _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8,
                                                 9, 10, 11, 12, 13, 14, 15));
        return _mm512_mask_i32gather_ps(_mm512_setzero_ps(), mask_all(),
                                        idx, col, 4);
    }
};

}  // namespace vbatch::simd

#endif  // __AVX512F__
