// Variable-size batched triangular solves (Section III.B).
//
// The solve of D_i x = b via the LU factors is: gather b through the pivot
// permutation (fused into the load, as the paper's kernel folds P into the
// register distribution of b), then a unit lower triangular solve, then an
// upper triangular solve.
//
// Both algorithmic variants of Fig. 2 are implemented:
//   eager - AXPY-based, walks columns of the factor (coalesced on the GPU;
//           the variant the paper selects)
//   lazy  - DOT-based, walks rows (requires a reduction per step)
// They perform the same flops; on the CPU backend they differ in access
// pattern only, and the emulated kernels (simt_kernels.hpp) expose the
// cost difference the paper discusses.
#pragma once

#include "core/batch_storage.hpp"

namespace vbatch::core {

enum class TrsvVariant { eager, lazy };

struct TrsvOptions {
    TrsvVariant variant = TrsvVariant::eager;
    bool parallel = true;
};

/// Batched solve of LU x = P b. `b` is overwritten with x.
template <typename T>
void getrs_batch(const BatchedMatrices<T>& lu, const BatchedPivots& perm,
                 BatchedVectors<T>& b, const TrsvOptions& opts = {});

/// Single-problem building blocks (exposed for tests / the preconditioner
/// application which drives them directly).

/// b := P b with gather indices perm (perm[k] = source position of k).
template <typename T>
void apply_permutation(std::span<const index_type> perm, std::span<T> b);

/// b := L^-1 b, L unit lower triangular stored in `lu`.
template <typename T>
void trsv_lower_unit(ConstMatrixView<T> lu, std::span<T> b,
                     TrsvVariant variant);

/// b := U^-1 b, U upper triangular stored in `lu`.
template <typename T>
void trsv_upper(ConstMatrixView<T> lu, std::span<T> b, TrsvVariant variant);

/// Full single-problem solve: permute + lower + upper.
template <typename T>
void getrs_single(ConstMatrixView<T> lu, std::span<const index_type> perm,
                  std::span<T> b, TrsvVariant variant = TrsvVariant::eager);

/// Solve with pivot-free factors (getrf_nopivot / PivotPolicy::none):
/// lower + upper only, no permutation gather.
template <typename T>
void getrs_single_nopivot(ConstMatrixView<T> lu, std::span<T> b,
                          TrsvVariant variant = TrsvVariant::eager);

}  // namespace vbatch::core
