// Pivoting strategy of the LU factorization kernels.
//
// The paper's kernels pivot implicitly on every column (magnitude scan +
// row-gather reads). After a two-sided random butterfly transform
// (core/rbt.hpp) pivoting is statistically unnecessary, so the chunk and
// scalar kernels also compile a `none` instantiation that drops the
// compare/select mask lattice and the pivot-row gathers entirely; the
// block-Jacobi recovery chain supplies the safety net the literature
// lacks (a degenerate no-pivot factorization is redone with implicit
// pivoting from pristine values).
#pragma once

namespace vbatch::core {

enum class PivotPolicy {
    /// Implicit partial pivoting (the paper's kernel; the default).
    implicit,
    /// No pivoting: row k is the pivot of step k. Exact-zero diagonal
    /// entries still report breakdown.
    none,
};

}  // namespace vbatch::core
