#include "core/vendor.hpp"

#include <atomic>

#include "base/macros.hpp"
#include "base/thread_pool.hpp"
#include "blas/lapack.hpp"

namespace vbatch::core {

template <typename T>
FactorizeStatus vendor_getrf_batched(BatchedMatrices<T>& a,
                                     BatchedPivots& ipiv,
                                     const GetrfOptions& opts) {
    if (!a.layout().is_uniform()) {
        VBATCH_THROW_NOT_SUPPORTED(
            "vendor batched LU supports fixed block size only");
    }
    VBATCH_ENSURE(a.layout() == ipiv.layout(),
                  "matrix and pivot batch layouts differ");
    std::atomic<size_type> failures{0};
    std::atomic<size_type> first_failure{-1};
    std::atomic<index_type> first_step{0};
    const auto body = [&](size_type i) {
        const index_type info = lapack::getrf<T>(a.view(i), ipiv.span(i));
        if (info != 0) {
            failures.fetch_add(1, std::memory_order_relaxed);
            size_type expected = -1;
            if (first_failure.compare_exchange_strong(expected, i)) {
                first_step.store(info, std::memory_order_relaxed);
            }
        }
    };
    if (opts.parallel) {
        ThreadPool::global().parallel_for(0, a.count(), body);
    } else {
        for (size_type i = 0; i < a.count(); ++i) {
            body(i);
        }
    }
    FactorizeStatus status;
    status.failures = failures.load();
    status.first_failure = first_failure.load();
    if (!status.ok() &&
        opts.on_singular == SingularPolicy::throw_on_breakdown) {
        throw SingularMatrix("vendor batched LU breakdown",
                             status.first_failure, first_step.load());
    }
    return status;
}

template <typename T>
void vendor_getrs_batched(const BatchedMatrices<T>& lu,
                          const BatchedPivots& ipiv, BatchedVectors<T>& b,
                          bool parallel) {
    if (!lu.layout().is_uniform()) {
        VBATCH_THROW_NOT_SUPPORTED(
            "vendor batched solve supports fixed block size only");
    }
    VBATCH_ENSURE(lu.layout() == ipiv.layout() && lu.layout() == b.layout(),
                  "batch layouts differ");
    const auto body = [&](size_type i) {
        lapack::getrs<T>(lu.view(i), ipiv.span(i), b.span(i));
    };
    if (parallel) {
        ThreadPool::global().parallel_for(0, lu.count(), body);
    } else {
        for (size_type i = 0; i < lu.count(); ++i) {
            body(i);
        }
    }
}

#define VBATCH_INSTANTIATE_VENDOR(T)                                        \
    template FactorizeStatus vendor_getrf_batched<T>(BatchedMatrices<T>&,   \
                                                     BatchedPivots&,        \
                                                     const GetrfOptions&);  \
    template void vendor_getrs_batched<T>(const BatchedMatrices<T>&,        \
                                          const BatchedPivots&,             \
                                          BatchedVectors<T>&, bool)

VBATCH_INSTANTIATE_VENDOR(float);
VBATCH_INSTANTIATE_VENDOR(double);

#undef VBATCH_INSTANTIATE_VENDOR

}  // namespace vbatch::core
