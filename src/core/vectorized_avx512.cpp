// AVX-512 (512-bit: 8 doubles / 16 floats per chunk) build of the
// interleaved chunk kernels. This TU is compiled with -march=x86-64-v4
// when the compiler supports it (CMake defines VBATCH_HAVE_AVX512 for
// the dispatcher in that case); otherwise it degrades to the scalar
// algorithm, which the runtime dispatcher then never selects.
#include "core/chunk_kernels.hpp"
#include "core/vectorized_kernels.hpp"
#include "simd/op_sweep_impl.hpp"

namespace vbatch::core {

namespace {
#if defined(__AVX512F__)
using ChunkBackend = simd::Avx512Backend;
#else
using ChunkBackend = simd::ScalarBackend;
#endif
}  // namespace

template <typename T>
void getrf_chunk_avx512(T* a, index_type* perm, index_type* info,
                        index_type m, size_type lane_stride) {
    getrf_chunk<T, ChunkBackend>(a, perm, info, m, lane_stride);
}

template <typename T>
void getrs_chunk_avx512(const T* lu, const index_type* perm, T* b,
                        index_type m, size_type lane_stride) {
    getrs_chunk<T, ChunkBackend>(lu, perm, b, m, lane_stride);
}

template <typename T>
void simd_op_sweep_avx512(const simd::OpSweepInput<T>& in,
                          simd::OpSweepResult<T>& out) {
    simd::op_sweep_run<T, ChunkBackend>(in, out);
}

#define VBATCH_INSTANTIATE_AVX512_CHUNK(T)                                   \
    template void getrf_chunk_avx512<T>(T*, index_type*, index_type*,        \
                                        index_type, size_type);              \
    template void getrs_chunk_avx512<T>(const T*, const index_type*, T*,     \
                                        index_type, size_type);              \
    template void simd_op_sweep_avx512<T>(const simd::OpSweepInput<T>&,      \
                                          simd::OpSweepResult<T>&)

VBATCH_INSTANTIATE_AVX512_CHUNK(float);
VBATCH_INSTANTIATE_AVX512_CHUNK(double);

#undef VBATCH_INSTANTIATE_AVX512_CHUNK

}  // namespace vbatch::core
