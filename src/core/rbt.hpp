// Deterministic seeded recursive butterfly transforms (RBT) for batches
// of small blocks -- the pivoting-free preprocessing of Lindquist/
// Luszczek/Dongarra (PAPERS.md, generalized to arbitrary sizes; no
// power-of-2 padding of storage).
//
// Each block b gets two independent depth-d butterflies U_b and V_b; the
// block is replaced by U_b^T A_b V_b before a *pivot-free* LU
// (getrf_nopivot / PivotPolicy::none), and each solve wraps the
// triangular sweeps in the matching vector transforms:
//
//   A' = U^T A V,  A' = L U  (no pivoting)
//   solve A x = b:  y' = solve(L U, U^T b),  x = V y'
//
// Coefficients are a pure counter-based function of
// (seed, block, side, level, index) -- see core/rbt_scheme.hpp -- so the
// transforms are identical regardless of thread count, scheduler mode,
// or grouping, and a refresh() regenerates exactly the same butterflies.
//
// The scalar entry points below mirror the chunk kernels
// (rbt_transform_chunk et al. in core/chunk_kernels.hpp) element for
// element, preserving the bitwise scalar==SIMD contract.
#pragma once

#include <cstdint>
#include <span>

#include "core/batch_storage.hpp"
#include "core/rbt_scheme.hpp"

namespace vbatch::core {

/// Process-wide default butterfly seed: VBATCH_RBT_SEED (decimal uint64)
/// when set, else 42.
std::uint64_t default_rbt_seed();

/// Butterfly generator + scalar apply for one preconditioner's blocks.
/// Stateless apart from (seed, depth): coefficients are regenerated on
/// the fly for the scalar paths and packed once per interleaved group
/// for the SIMD paths.
template <typename T>
class RbtTransforms {
public:
    RbtTransforms() = default;
    RbtTransforms(std::uint64_t seed, index_type depth)
        : seed_(seed), depth_(rbt::clamp_rbt_depth(depth)) {}

    std::uint64_t seed() const noexcept { return seed_; }
    index_type depth() const noexcept { return depth_; }

    /// All m coefficients of one level of block `block`'s side-`side`
    /// butterfly (side = rbt::rbt_side_u or rbt::rbt_side_v).
    void level_coeffs(size_type block, int side, index_type level,
                      index_type m, T* out) const;

    /// A := U^T A V of block `block`, in place.
    void transform_block(size_type block, MatrixView<T> a) const;

    /// b := U^T b (right-hand side preparation before the solve).
    void forward(size_type block, std::span<T> b) const;

    /// x := V y (solution recovery after the solve).
    void backward(size_type block, std::span<T> x) const;

    /// Fill the lane-interleaved coefficient tables of one interleaved
    /// group: lane l carries block `blocks[l]`'s butterflies, padding
    /// lanes (l >= blocks.size()) carry the all-ones identity butterfly
    /// (whose Gram matrix W^T W is SPD, so the pivot-free kernel never
    /// breaks down on padding). Buffers hold
    /// (lane_stride/lanes)*depth*m*lanes values laid out
    /// coef[((chunk*depth + t)*m + i)*lanes + lane].
    void fill_group_coeffs(std::span<const size_type> blocks, index_type m,
                           index_type lanes, size_type lane_stride,
                           T* ucoef, T* vcoef) const;

private:
    std::uint64_t seed_ = 42;
    index_type depth_ = 2;
};

}  // namespace vbatch::core
