// Batched Gauss-Huard factorization and solve -- the paper's primary
// open-source baseline (Sections II.C and IV, citing [7]).
//
// Gauss-Huard (GH) solves D x = b at the same 2/3 m^3 cost as LU, but
// with a different data flow: at step k it (lazily) updates only row k
// from the previously computed rows, picks a *column* pivot in that row,
// scales the row, and eliminates the entries of pivot column k **above**
// the diagonal. The application to a right-hand side costs 2 m^2 flops,
// like the LU triangular solves.
//
// Like the LU kernel, pivoting is implicit: columns are never swapped;
// cstate[] records which step each column was pivot of, cperm[] lists the
// pivot columns in order (the per-thread pivot list the paper mentions GH
// needs, unlike LU), and the accumulated column permutation is fused into
// the writeback. Column pivoting permutes the *unknowns*, so the solve
// finishes with the scatter x[cperm[k]] = y[k].
//
// The GH-T variant stores the factors transposed: the factorization pays
// extra (non-coalesced writes on the GPU) so that the solve's row accesses
// become column accesses. This is the storage trade-off Fig. 5/7 of the
// paper explores.
#pragma once

#include "core/batch_storage.hpp"
#include "core/getrf.hpp"

namespace vbatch::core {

/// Storage orientation of the GH factors.
enum class GhStorage { standard, transposed };

/// Single-problem GH factorization with implicit column pivoting.
/// On exit `a` holds the factors with columns gathered into pivot order
/// (transposed if requested) and cperm[k] = original column index of
/// pivot k. Returns 0 or the 1-based breakdown step.
template <typename T>
index_type gauss_huard_factorize(MatrixView<T> a, std::span<index_type> cperm,
                                 GhStorage storage = GhStorage::standard);

/// Monitored variant: identical arithmetic, additionally fills `info`
/// with the column-pivot statistics.
template <typename T>
index_type gauss_huard_factorize(MatrixView<T> a, std::span<index_type> cperm,
                                 GhStorage storage, FactorInfo& info);

/// Single-problem GH application: solves D x = b from the factors;
/// b is overwritten with x (including the unknown re-ordering).
template <typename T>
void gauss_huard_solve(ConstMatrixView<T> f, std::span<const index_type> cperm,
                       std::span<T> b, GhStorage storage = GhStorage::standard);

/// Batched GH factorization.
template <typename T>
FactorizeStatus gauss_huard_batch(BatchedMatrices<T>& a, BatchedPivots& cperm,
                                  GhStorage storage = GhStorage::standard,
                                  const GetrfOptions& opts = {});

/// Batched GH application.
template <typename T>
void gauss_huard_solve_batch(const BatchedMatrices<T>& f,
                             const BatchedPivots& cperm, BatchedVectors<T>& b,
                             GhStorage storage = GhStorage::standard,
                             bool parallel = true);

}  // namespace vbatch::core
