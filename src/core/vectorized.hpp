// Vectorized (lane-parallel SIMD) batched LU / triangular-solve backend.
//
// Drop-in counterparts of getrf_batch / getrs_batch that route same-size
// groups of the batch through the interleaved chunk kernels selected by
// runtime CPU-feature dispatch (core/simd_dispatch.hpp):
//
//   getrf_interleaved / getrs_interleaved  - operate on an already-packed
//       InterleavedGroup (the block-Jacobi preconditioner keeps its
//       uniform size classes in this form across many applications).
//
//   getrf_batch_vectorized / getrs_batch_vectorized  - accept the
//       standard packed batch containers, bucket the entries by size,
//       pack each bucket, run the kernels and scatter the results back.
//       Any batch (uniform or ragged) is accepted.
//
// Results are bitwise identical to the scalar implicit-pivoting reference
// (getrf_batch / getrs_batch with the eager variant): every lane performs
// the same IEEE operations in the same order, only `width` matrices at a
// time. The solve path implements the paper's selected eager variant.
#pragma once

#include "core/getrf.hpp"
#include "core/interleaved.hpp"
#include "core/pivot_policy.hpp"
#include "simd/op_sweep.hpp"

namespace vbatch::core {

/// Run the facade operation sweep (simd/op_sweep.hpp) at `isa`'s vector
/// width. Testing hook: lets a baseline-flags TU exercise every compiled
/// backend's facade ops through the same per-ISA TUs the kernels use.
template <typename T>
void run_simd_op_sweep(SimdIsa isa, const simd::OpSweepInput<T>& in,
                       simd::OpSweepResult<T>& out);

struct VectorizedOptions {
    /// ISA for packing/dispatch (drop-in drivers only; the group-level
    /// entry points use the ISA the group was built for).
    SimdIsa isa = detect_simd_isa();
    SingularPolicy on_singular = SingularPolicy::throw_on_breakdown;
    /// Distribute lane chunks over the global thread pool.
    bool parallel = true;
    /// Fill FactorizeStatus::block_status / block_info. The interleaved
    /// kernels stay untouched: the entry statistics come from a prepass
    /// over the packed lanes and the pivot statistics from the U diagonal
    /// after the factorization (the implicit-pivoting writeback gathers
    /// rows into pivot order, so the diagonal holds exactly the selected
    /// pivot magnitudes -- identical values to the scalar in-kernel
    /// monitor).
    bool monitor = false;
    /// Kernel pivoting strategy. PivotPolicy::none routes through the
    /// pivot-free instantiations (no compare/select pivot scan, no
    /// gather_rows) -- intended for blocks preprocessed with a random
    /// butterfly transform (core/rbt.hpp); the monitor scan still reads
    /// |u_kk| off the diagonal, which without pivoting *is* the pivot
    /// sequence.
    PivotPolicy pivot = PivotPolicy::implicit;
};

/// Factorize every lane of `g` in place. Pivots and per-lane breakdown
/// info are written into the group; the returned status aggregates them
/// (failure indices are lane indices within the group).
template <typename T>
FactorizeStatus getrf_interleaved(InterleavedGroup<T>& g,
                                  const VectorizedOptions& opts = {});

/// Solve LU x = P b for every lane of `g`; `b` is overwritten with x.
template <typename T>
void getrs_interleaved(const InterleavedGroup<T>& g,
                       InterleavedVectors<T>& b,
                       const VectorizedOptions& opts = {});

/// Solve one chunk (`lanes()` adjacent lanes) of the group, inline on the
/// calling thread -- no pool dispatch, no tracing, no option plumbing.
/// Building block for callers that schedule chunks themselves (the
/// allocation-free block-Jacobi apply fuses gather/solve/scatter per
/// chunk and drives all groups' chunks through one parallel loop).
template <typename T>
void getrs_interleaved_chunk(const InterleavedGroup<T>& g,
                             InterleavedVectors<T>& b, size_type chunk,
                             PivotPolicy pivot = PivotPolicy::implicit);

/// Factorize one chunk of the group, inline on the calling thread -- the
/// getrf counterpart of getrs_interleaved_chunk. Building block of the
/// fused gather+factorize setup pass.
template <typename T>
void getrf_interleaved_chunk(InterleavedGroup<T>& g, size_type chunk,
                             PivotPolicy pivot = PivotPolicy::implicit);

/// Two-sided random butterfly transform A := U^T A V of one chunk's
/// matrices in place. `ucoef`/`vcoef` point at the group's
/// lane-interleaved coefficient tables (core/rbt.hpp packs them):
/// coef[((chunk*depth + t)*m + i)*lanes + lane] is position i of level t
/// of lane `lane`'s butterfly.
template <typename T>
void rbt_transform_interleaved_chunk(InterleavedGroup<T>& g, const T* ucoef,
                                     const T* vcoef, index_type depth,
                                     size_type chunk);

/// Forward vector transform b := U^T b of one chunk (before the
/// pivot-free solve); coefficient layout as in
/// rbt_transform_interleaved_chunk.
template <typename T>
void rbt_forward_interleaved_chunk(const InterleavedGroup<T>& g,
                                   InterleavedVectors<T>& b, const T* ucoef,
                                   index_type depth, size_type chunk);

/// Backward vector transform x := V y of one chunk (after the pivot-free
/// solve, recovering the untransformed solution).
template <typename T>
void rbt_backward_interleaved_chunk(const InterleavedGroup<T>& g,
                                    InterleavedVectors<T>& b,
                                    const T* vcoef, index_type depth,
                                    size_type chunk);

/// Sparse gather map from a flat CSR value array into the lane slots of
/// one InterleavedGroup: lane l's entries occupy
/// [lane_ptrs[l], lane_ptrs[l+1]) of src/dst, src holds flat CSR value
/// indices and dst offsets into InterleavedGroup::values(). Built once
/// per sparsity pattern by blocking::GatherPlan::interleaved_map.
struct InterleavedGatherMap {
    std::vector<size_type> lane_ptrs;
    std::vector<size_type> src;
    std::vector<size_type> dst;
};

/// Numeric gather of one chunk: zero the chunk, restore the identity in
/// its padding lanes, then scatter `values` through `map`. With a
/// non-null `infos` (indexed by global lane, entries overwritten) the
/// per-lane entry statistics (max_entry, finite) are collected from the
/// gathered values -- identical to getrf_interleaved's dense prepass,
/// since pattern zeros can neither raise max|a_ij| nor be non-finite.
template <typename T>
void gather_interleaved_chunk(InterleavedGroup<T>& g,
                              const InterleavedGatherMap& map,
                              std::span<const T> values, size_type chunk,
                              FactorInfo* infos);

/// Post-factorization monitor scan of one chunk: fills step/min_pivot/
/// max_pivot of `infos` (indexed by global lane) exactly the way
/// getrf_interleaved's post-hoc pivot scan does -- the pivot-ordered
/// writeback leaves the selected pivot magnitudes on the U diagonal.
template <typename T>
void scan_interleaved_chunk(const InterleavedGroup<T>& g, size_type chunk,
                            FactorInfo* infos);

/// Drop-in vectorized getrf_batch: buckets `a` by block size, factorizes
/// each bucket through the interleaved kernels and scatters factors +
/// pivots back into the packed containers.
template <typename T>
FactorizeStatus getrf_batch_vectorized(BatchedMatrices<T>& a,
                                       BatchedPivots& perm,
                                       const VectorizedOptions& opts = {});

/// Drop-in vectorized getrs_batch (eager variant). Packs factors and
/// right-hand sides per bucket on every call; callers that solve with the
/// same factors repeatedly should keep an InterleavedGroup instead.
template <typename T>
void getrs_batch_vectorized(const BatchedMatrices<T>& lu,
                            const BatchedPivots& perm, BatchedVectors<T>& b,
                            const VectorizedOptions& opts = {});

}  // namespace vbatch::core
