// Shared driver for the one-problem-per-entry batched factorizations
// (getrf, Gauss-Huard, Gauss-Jordan, Cholesky).
//
// Centralizes the failure bookkeeping the kernels used to duplicate:
// runs the per-entry kernel (optionally on the global thread pool),
// aggregates breakdown counts with lock-free first-failure tracking,
// fills the per-block status/info vectors when monitoring is requested,
// and applies the SingularPolicy.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>

#include "base/exception.hpp"
#include "base/thread_pool.hpp"
#include "core/block_status.hpp"
#include "core/getrf.hpp"

namespace vbatch::core::detail {

/// Pivot-magnitude monitor threaded through the single-problem kernels.
/// The non-monitored instantiation compiles every hook to nothing, so
/// the fast path's codegen is identical to the pre-monitor kernels.
struct NoPivotMonitor {
    static constexpr bool enabled = false;
    void entry(double) noexcept {}
    void pivot(double) noexcept {}
};

struct PivotMonitor {
    static constexpr bool enabled = true;
    FactorInfo info;

    /// One input entry magnitude (prepass over the block).
    void entry(double v) noexcept {
        if (!std::isfinite(v)) {
            info.finite = false;
        } else if (v > info.max_entry) {
            info.max_entry = v;
        }
    }
    /// One selected pivot magnitude.
    void pivot(double v) noexcept {
        if (!std::isfinite(v)) {
            info.finite = false;
            return;
        }
        info.min_pivot = std::min(info.min_pivot, v);
        info.max_pivot = std::max(info.max_pivot, v);
    }
    FactorInfo finish(index_type step) noexcept {
        info.step = step;
        return info;
    }
};

/// Run `kernel(i, info_or_null)` over `count` batch entries. The kernel
/// returns the breakdown step (0 = clean) and, when handed a non-null
/// FactorInfo pointer, fills it (monitor mode). Throws SingularMatrix
/// with `breakdown_what` under the throwing policy.
template <typename Kernel>
FactorizeStatus run_factorize_batch(size_type count, const GetrfOptions& opts,
                                    const char* breakdown_what,
                                    Kernel&& kernel) {
    FactorizeStatus status;
    if (opts.monitor) {
        status.block_status.assign(static_cast<std::size_t>(count),
                                   BlockStatus::ok);
        status.block_info.resize(static_cast<std::size_t>(count));
    }
    std::atomic<size_type> failures{0};
    std::atomic<size_type> first_failure{-1};
    std::atomic<index_type> first_step{0};

    const auto body = [&](size_type i) {
        FactorInfo* info =
            opts.monitor ? &status.block_info[static_cast<std::size_t>(i)]
                         : nullptr;
        const index_type step = kernel(i, info);
        if (step != 0) {
            if (opts.monitor) {
                status.block_status[static_cast<std::size_t>(i)] =
                    BlockStatus::singular;
            }
            failures.fetch_add(1, std::memory_order_relaxed);
            size_type expected = -1;
            if (first_failure.compare_exchange_strong(expected, i)) {
                first_step.store(step, std::memory_order_relaxed);
            }
        }
    };
    if (opts.parallel) {
        ThreadPool::global().parallel_for(0, count, body, batch_entry_grain);
    } else {
        for (size_type i = 0; i < count; ++i) {
            body(i);
        }
    }

    status.failures = failures.load();
    status.first_failure = first_failure.load();
    status.first_failure_step = first_step.load();
    if (opts.monitor) {
        for (const auto& info : status.block_info) {
            if (info.ok()) {
                status.max_growth = std::max(status.max_growth,
                                             info.growth());
            }
        }
    }
    if (!status.ok() &&
        opts.on_singular == SingularPolicy::throw_on_breakdown) {
        throw SingularMatrix(breakdown_what, status.first_failure,
                             status.first_failure_step);
    }
    return status;
}

}  // namespace vbatch::core::detail
