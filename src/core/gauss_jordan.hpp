// Batched explicit inversion via Gauss-Jordan elimination (GJE) with
// implicit partial pivoting -- the inversion-based block-Jacobi strategy
// of the companion work [4] the paper compares against conceptually
// (Sections II.C and III).
//
// The inversion-based preconditioner front-loads 2 m^3 flops into the
// setup and turns every application into a GEMV (fast, no data
// dependencies), at the price of the numerical-stability caveats the
// paper discusses. We keep it as the third strategy of the block-Jacobi
// ecosystem so the trade-off study can be reproduced.
#pragma once

#include "core/batch_storage.hpp"
#include "core/getrf.hpp"

namespace vbatch::core {

/// Single-problem in-place inversion, A := A^{-1}, using GJE with implicit
/// partial pivoting (rows never move; the row and column permutations are
/// fused into the writeback). Returns 0 or the 1-based breakdown step.
template <typename T>
index_type gauss_jordan_invert(MatrixView<T> a);

/// Monitored variant: identical arithmetic, additionally fills `info`
/// with the pivot statistics (the explicit inverse erases the pivots, so
/// post-hoc monitoring is impossible for this backend).
template <typename T>
index_type gauss_jordan_invert(MatrixView<T> a, FactorInfo& info);

/// Batched in-place inversion.
template <typename T>
FactorizeStatus gauss_jordan_batch(BatchedMatrices<T>& a,
                                   const GetrfOptions& opts = {});

/// Batched application x := D^{-1} x given the inverted blocks (GEMV).
template <typename T>
void apply_inverse_batch(const BatchedMatrices<T>& inv, BatchedVectors<T>& x,
                         bool parallel = true);

}  // namespace vbatch::core
