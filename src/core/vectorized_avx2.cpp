// AVX2 (256-bit: 4 doubles / 8 floats per chunk) build of the interleaved
// chunk kernels. This TU is compiled with -mavx2 when the compiler
// supports it (CMake defines VBATCH_HAVE_AVX2 for the dispatcher in that
// case); otherwise it degrades to the scalar algorithm, which the runtime
// dispatcher then never selects.
#include <cstddef>

#include "core/vectorized_kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#define VBATCH_SIMD_IMPL_AVX2 1
#else
#define VBATCH_SIMD_IMPL_SCALAR 1
#endif

namespace vbatch::core {

namespace avx2_impl {
#include "core/interleaved_kernel_impl.inc"
}  // namespace avx2_impl

template <typename T>
void getrf_chunk_avx2(T* a, index_type* perm, index_type* info,
                      index_type m, size_type lane_stride) {
    avx2_impl::getrf_chunk<T>(a, perm, info, m, lane_stride);
}

template <typename T>
void getrs_chunk_avx2(const T* lu, const index_type* perm, T* b,
                      index_type m, size_type lane_stride) {
    avx2_impl::getrs_chunk<T>(lu, perm, b, m, lane_stride);
}

#define VBATCH_INSTANTIATE_AVX2_CHUNK(T)                                     \
    template void getrf_chunk_avx2<T>(T*, index_type*, index_type*,          \
                                      index_type, size_type);                \
    template void getrs_chunk_avx2<T>(const T*, const index_type*, T*,       \
                                      index_type, size_type)

VBATCH_INSTANTIATE_AVX2_CHUNK(float);
VBATCH_INSTANTIATE_AVX2_CHUNK(double);

#undef VBATCH_INSTANTIATE_AVX2_CHUNK

}  // namespace vbatch::core
