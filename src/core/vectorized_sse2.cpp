// SSE2 (128-bit: 2 doubles / 4 floats per chunk) build of the interleaved
// chunk kernels. SSE2 is part of the x86-64 baseline, so this TU needs no
// special compile flags; on other architectures it degrades to the scalar
// algorithm (and the dispatcher never selects it there).
#include <cstddef>

#include "core/vectorized_kernels.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#define VBATCH_SIMD_IMPL_SSE2 1
#else
#define VBATCH_SIMD_IMPL_SCALAR 1
#endif

namespace vbatch::core {

namespace sse2_impl {
#include "core/interleaved_kernel_impl.inc"
}  // namespace sse2_impl

template <typename T>
void getrf_chunk_sse2(T* a, index_type* perm, index_type* info,
                      index_type m, size_type lane_stride) {
    sse2_impl::getrf_chunk<T>(a, perm, info, m, lane_stride);
}

template <typename T>
void getrs_chunk_sse2(const T* lu, const index_type* perm, T* b,
                      index_type m, size_type lane_stride) {
    sse2_impl::getrs_chunk<T>(lu, perm, b, m, lane_stride);
}

#define VBATCH_INSTANTIATE_SSE2_CHUNK(T)                                     \
    template void getrf_chunk_sse2<T>(T*, index_type*, index_type*,          \
                                      index_type, size_type);                \
    template void getrs_chunk_sse2<T>(const T*, const index_type*, T*,       \
                                      index_type, size_type)

VBATCH_INSTANTIATE_SSE2_CHUNK(float);
VBATCH_INSTANTIATE_SSE2_CHUNK(double);

#undef VBATCH_INSTANTIATE_SSE2_CHUNK

}  // namespace vbatch::core
