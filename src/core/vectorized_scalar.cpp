// Scalar (width-1) build of the interleaved chunk kernels: the portable
// reference every vector backend is bitwise-compared against.
#include "core/chunk_kernels.hpp"
#include "core/vectorized_kernels.hpp"
#include "simd/op_sweep_impl.hpp"

namespace vbatch::core {

namespace {
using ChunkBackend = simd::ScalarBackend;
}  // namespace

template <typename T>
void getrf_chunk_scalar(T* a, index_type* perm, index_type* info,
                        index_type m, size_type lane_stride) {
    getrf_chunk<T, ChunkBackend>(a, perm, info, m, lane_stride);
}

template <typename T>
void getrs_chunk_scalar(const T* lu, const index_type* perm, T* b,
                        index_type m, size_type lane_stride) {
    getrs_chunk<T, ChunkBackend>(lu, perm, b, m, lane_stride);
}

template <typename T>
void getrf_nopivot_chunk_scalar(T* a, index_type* perm, index_type* info,
                                index_type m, size_type lane_stride) {
    getrf_chunk<T, ChunkBackend, PivotPolicy::none>(a, perm, info, m,
                                                    lane_stride);
}

template <typename T>
void getrs_nopivot_chunk_scalar(const T* lu, T* b, index_type m,
                                size_type lane_stride) {
    getrs_chunk<T, ChunkBackend, PivotPolicy::none>(lu, nullptr, b, m,
                                                    lane_stride);
}

template <typename T>
void pack_zero_chunk_scalar(T* vals, size_type n) {
    pack_zero_chunk<T, ChunkBackend>(vals, n);
}

template <typename T>
void pack_entry_stats_chunk_scalar(const T* vals, size_type n, T* max_entry,
                                   unsigned* nonfinite_bits) {
    pack_entry_stats_chunk<T, ChunkBackend>(vals, n, max_entry,
                                            nonfinite_bits);
}

template <typename T>
void diag_scan_chunk_scalar(const T* lu, index_type m, size_type lane_stride,
                            T* min_piv, T* max_piv,
                            unsigned* nonfinite_bits) {
    diag_scan_chunk<T, ChunkBackend>(lu, m, lane_stride, min_piv, max_piv,
                                     nonfinite_bits);
}

template <typename T>
void rbt_transform_chunk_scalar(T* a, const T* ucoef, const T* vcoef,
                                index_type m, index_type depth,
                                size_type lane_stride) {
    rbt_transform_chunk<T, ChunkBackend>(a, ucoef, vcoef, m, depth,
                                         lane_stride);
}

template <typename T>
void rbt_forward_chunk_scalar(T* b, const T* ucoef, index_type m,
                              index_type depth, size_type lane_stride) {
    rbt_forward_chunk<T, ChunkBackend>(b, ucoef, m, depth, lane_stride);
}

template <typename T>
void rbt_backward_chunk_scalar(T* x, const T* vcoef, index_type m,
                               index_type depth, size_type lane_stride) {
    rbt_backward_chunk<T, ChunkBackend>(x, vcoef, m, depth, lane_stride);
}

template <typename T>
void simd_op_sweep_scalar(const simd::OpSweepInput<T>& in,
                          simd::OpSweepResult<T>& out) {
    simd::op_sweep_run<T, ChunkBackend>(in, out);
}

#define VBATCH_INSTANTIATE_SCALAR_CHUNK(T)                                   \
    template void getrf_chunk_scalar<T>(T*, index_type*, index_type*,        \
                                        index_type, size_type);              \
    template void getrs_chunk_scalar<T>(const T*, const index_type*, T*,     \
                                        index_type, size_type);              \
    template void getrf_nopivot_chunk_scalar<T>(T*, index_type*,             \
                                                index_type*, index_type,     \
                                                size_type);                  \
    template void getrs_nopivot_chunk_scalar<T>(const T*, T*, index_type,    \
                                                size_type);                  \
    template void pack_zero_chunk_scalar<T>(T*, size_type);                  \
    template void pack_entry_stats_chunk_scalar<T>(const T*, size_type, T*,  \
                                                   unsigned*);               \
    template void diag_scan_chunk_scalar<T>(const T*, index_type,            \
                                            size_type, T*, T*, unsigned*);   \
    template void rbt_transform_chunk_scalar<T>(T*, const T*, const T*,      \
                                                index_type, index_type,      \
                                                size_type);                  \
    template void rbt_forward_chunk_scalar<T>(T*, const T*, index_type,      \
                                              index_type, size_type);        \
    template void rbt_backward_chunk_scalar<T>(T*, const T*, index_type,     \
                                               index_type, size_type);       \
    template void simd_op_sweep_scalar<T>(const simd::OpSweepInput<T>&,      \
                                          simd::OpSweepResult<T>&)

VBATCH_INSTANTIATE_SCALAR_CHUNK(float);
VBATCH_INSTANTIATE_SCALAR_CHUNK(double);

#undef VBATCH_INSTANTIATE_SCALAR_CHUNK

}  // namespace vbatch::core
