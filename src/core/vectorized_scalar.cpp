// Scalar (width-1) build of the interleaved chunk kernels: the portable
// fallback and the reference the SIMD builds are tested against.
#include <cstddef>

#include "core/vectorized_kernels.hpp"

namespace vbatch::core {

namespace scalar_impl {
#define VBATCH_SIMD_IMPL_SCALAR 1
#include "core/interleaved_kernel_impl.inc"
#undef VBATCH_SIMD_IMPL_SCALAR
}  // namespace scalar_impl

template <typename T>
void getrf_chunk_scalar(T* a, index_type* perm, index_type* info,
                        index_type m, size_type lane_stride) {
    scalar_impl::getrf_chunk<T>(a, perm, info, m, lane_stride);
}

template <typename T>
void getrs_chunk_scalar(const T* lu, const index_type* perm, T* b,
                        index_type m, size_type lane_stride) {
    scalar_impl::getrs_chunk<T>(lu, perm, b, m, lane_stride);
}

#define VBATCH_INSTANTIATE_SCALAR_CHUNK(T)                                   \
    template void getrf_chunk_scalar<T>(T*, index_type*, index_type*,        \
                                        index_type, size_type);              \
    template void getrs_chunk_scalar<T>(const T*, const index_type*, T*,     \
                                        index_type, size_type)

VBATCH_INSTANTIATE_SCALAR_CHUNK(float);
VBATCH_INSTANTIATE_SCALAR_CHUNK(double);

#undef VBATCH_INSTANTIATE_SCALAR_CHUNK

}  // namespace vbatch::core
