// Scalar (width-1) build of the interleaved chunk kernels: the portable
// reference every vector backend is bitwise-compared against.
#include "core/chunk_kernels.hpp"
#include "core/vectorized_kernels.hpp"
#include "simd/op_sweep_impl.hpp"

namespace vbatch::core {

namespace {
using ChunkBackend = simd::ScalarBackend;
}  // namespace

template <typename T>
void getrf_chunk_scalar(T* a, index_type* perm, index_type* info,
                        index_type m, size_type lane_stride) {
    getrf_chunk<T, ChunkBackend>(a, perm, info, m, lane_stride);
}

template <typename T>
void getrs_chunk_scalar(const T* lu, const index_type* perm, T* b,
                        index_type m, size_type lane_stride) {
    getrs_chunk<T, ChunkBackend>(lu, perm, b, m, lane_stride);
}

template <typename T>
void simd_op_sweep_scalar(const simd::OpSweepInput<T>& in,
                          simd::OpSweepResult<T>& out) {
    simd::op_sweep_run<T, ChunkBackend>(in, out);
}

#define VBATCH_INSTANTIATE_SCALAR_CHUNK(T)                                   \
    template void getrf_chunk_scalar<T>(T*, index_type*, index_type*,        \
                                        index_type, size_type);              \
    template void getrs_chunk_scalar<T>(const T*, const index_type*, T*,     \
                                        index_type, size_type);              \
    template void simd_op_sweep_scalar<T>(const simd::OpSweepInput<T>&,      \
                                          simd::OpSweepResult<T>&)

VBATCH_INSTANTIATE_SCALAR_CHUNK(float);
VBATCH_INSTANTIATE_SCALAR_CHUNK(double);

#undef VBATCH_INSTANTIATE_SCALAR_CHUNK

}  // namespace vbatch::core
