#include "core/simt_kernels.hpp"

#include <array>
#include <cmath>

#include "base/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vbatch::core {

using simt::first_lanes;
using simt::full_mask;
using simt::lane_mask;
using simt::lane_range;
using simt::Reg;
using simt::Warp;

namespace {

void fill_tail_permutation(std::span<index_type> perm, lane_mask unpivoted,
                           index_type m, index_type from_step) {
    index_type next = from_step;
    for (index_type i = 0; i < m; ++i) {
        if (unpivoted & (1u << i)) {
            perm[next++] = i;
        }
    }
}

}  // namespace

template <typename T>
index_type getrf_warp(Warp& warp, MatrixView<T> a,
                      std::span<index_type> perm, bool padded_update) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    const index_type m = a.rows();
    const lane_mask rows_m = first_lanes(m);

    // Read the system matrix once, one coalesced column per load; the
    // padded columns j >= m keep their zero registers.
    std::array<Reg<T>, warp_size> A{};
    for (index_type j = 0; j < m; ++j) {
        A[j] = warp.load_global_strided(rows_m, a.col(j));
    }

    // All 32 lanes carry the "not yet pivoted" predicate -- including the
    // padding lanes, which therefore join every SCAL/GER on zero data.
    lane_mask unpivoted = full_mask;
    for (index_type k = 0; k < m; ++k) {
        const auto [best, piv] = warp.reduce_absmax(unpivoted & rows_m, A[k]);
        if (best == T{}) {
            fill_tail_permutation(perm, unpivoted & rows_m, m, k);
            return k + 1;
        }
        perm[k] = piv;
        unpivoted &= ~(1u << piv);

        const T d = warp.shfl(A[k], piv);
        A[k] = warp.div_scalar(unpivoted, A[k], d, unpivoted & rows_m);
        // Eager right-looking update over the *padded* trailing block:
        // the loop bound is the warp width, not m (Section IV.B), unless
        // the unpadded future-work variant was requested.
        const index_type jmax = padded_update ? warp_size : m;
        for (index_type j = k + 1; j < jmax; ++j) {
            const T akj = warp.shfl(A[j], piv);
            const lane_mask useful = j < m ? (unpivoted & rows_m) : 0u;
            A[j] = warp.fnma_scalar(unpivoted, A[k], akj, A[j], useful);
        }
    }

    // Write back L and U with the combined row swap fused into the store:
    // lane l stores factor row l, whose data lives in lane perm[l].
    Reg<index_type> gather{};
    for (index_type l = 0; l < m; ++l) {
        gather[l] = perm[l];
    }
    for (index_type j = 0; j < m; ++j) {
        const auto permuted = warp.shfl_indexed(rows_m, A[j], gather);
        warp.store_global_strided(rows_m, a.col(j), permuted);
    }
    warp.store_global_strided(rows_m, perm.data(), gather);
    return 0;
}

template <typename T>
void getrs_warp(Warp& warp, ConstMatrixView<T> lu,
                std::span<const index_type> perm, std::span<T> b,
                TrsvVariant variant) {
    const index_type m = lu.rows();
    VBATCH_ENSURE_DIMS(m == static_cast<index_type>(b.size()));
    const lane_mask rows_m = first_lanes(m);

    // Load the pivot gather indices, then b with the permutation fused
    // into the load: lane l receives b[perm[l]].
    const auto gather = warp.load_global_strided(rows_m, perm.data());
    Reg<const T*> baddr{};
    Warp::for_each_lane(rows_m, [&](int l) {
        baddr[l] = b.data() + gather[l];
    });
    auto x = warp.load_global(rows_m, baddr);

    if (variant == TrsvVariant::eager) {
        // Unit lower solve: one coalesced column of L per step.
        for (index_type k = 0; k + 1 < m; ++k) {
            const lane_mask active = lane_range(k + 1, m);
            const auto lcol = warp.load_global_strided(active, lu.col(k));
            const T bk = warp.shfl(x, k);
            x = warp.fnma_scalar(active, lcol, bk, x, active);
        }
        // Upper solve: one coalesced column of U per step, backwards.
        for (index_type k = m - 1; k >= 0; --k) {
            const auto ucol =
                warp.load_global_strided(first_lanes(k + 1), lu.col(k));
            const T ukk = warp.shfl(ucol, k);
            x = warp.div_scalar(1u << k, x, ukk, 1u << k);
            const T bk = warp.shfl(x, k);
            x = warp.fnma_scalar(first_lanes(k), ucol, bk, x, first_lanes(k));
        }
    } else {
        // Lazy: per step, the lanes gather one *row* of the factor (a
        // strided, non-coalesced read) and reduce a dot product.
        for (index_type k = 1; k < m; ++k) {
            Reg<const T*> addr{};
            Warp::for_each_lane(first_lanes(k), [&](int j) {
                addr[j] = lu.data() +
                          static_cast<std::size_t>(j) * lu.ld() + k;
            });
            const auto lrow = warp.load_global(first_lanes(k), addr);
            const auto prod = warp.mul(first_lanes(k), lrow, x,
                                       first_lanes(k));
            const T acc = warp.reduce_sum(first_lanes(k), prod);
            const auto accreg = Warp::broadcast_value(acc);
            x = warp.fnma_scalar(1u << k, accreg, T{1}, x, 1u << k);
        }
        for (index_type k = m - 1; k >= 0; --k) {
            Reg<const T*> addr{};
            Warp::for_each_lane(lane_range(k + 1, m), [&](int j) {
                addr[j] = lu.data() +
                          static_cast<std::size_t>(j) * lu.ld() + k;
            });
            const auto urow = warp.load_global(lane_range(k + 1, m), addr);
            const auto prod =
                warp.mul(lane_range(k + 1, m), urow, x, lane_range(k + 1, m));
            const T acc = k + 1 < m
                              ? warp.reduce_sum(lane_range(k + 1, m), prod)
                              : T{};
            const auto accreg = Warp::broadcast_value(acc);
            x = warp.fnma_scalar(1u << k, accreg, T{1}, x, 1u << k);
            const T ukk = lu(k, k);
            warp.stats().load_requests += 1;  // diagonal element
            warp.stats().load_transactions += 1;
            x = warp.div_scalar(1u << k, x, ukk, 1u << k);
        }
    }

    warp.store_global_strided(rows_m, b.data(), x);
}

template <typename T>
index_type gauss_huard_warp(Warp& warp, MatrixView<T> a,
                            std::span<index_type> cperm, GhStorage storage) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    const index_type m = a.rows();
    const lane_mask cols_m = first_lanes(m);

    // Load coalesced column-by-column, then redistribute so that lane j
    // owns column j (a register transpose; a 32x32 butterfly transpose
    // amortizes to log2(32) = 5 shuffle issues per vector).
    std::array<Reg<T>, warp_size> R{};  // R[i][j] = a(i, j)
    for (index_type j = 0; j < m; ++j) {
        const auto col = warp.load_global_strided(first_lanes(m), a.col(j));
        warp.stats().shuffle_instructions += 5;
        for (index_type i = 0; i < m; ++i) {
            R[i][j] = col[i];
        }
    }

    lane_mask unpivoted = full_mask;  // padded columns participate
    for (index_type k = 0; k < m; ++k) {
        // Lazy update of row k, one AXPY per previous pivot. Unlike LU,
        // the multiplier needs the pivot-column list (cperm) -- the
        // per-thread replication the paper contrasts with LU's
        // history-free implicit pivoting.
        for (index_type i = 0; i < k; ++i) {
            const T mult = warp.shfl(R[k], cperm[i]);
            R[k] = warp.fnma_scalar(unpivoted, R[i], mult, R[k],
                                    unpivoted & cols_m);
        }
        const auto [best, piv] = warp.reduce_absmax(unpivoted & cols_m, R[k]);
        if (best == T{}) {
            fill_tail_permutation(cperm, unpivoted & cols_m, m, k);
            return k + 1;
        }
        cperm[k] = piv;
        unpivoted &= ~(1u << piv);

        const T d = warp.shfl(R[k], piv);
        R[k] = warp.div_scalar(unpivoted, R[k], d, unpivoted & cols_m);
        // Eliminate the pivot column above the diagonal.
        for (index_type i = 0; i < k; ++i) {
            const T mult = warp.shfl(R[i], piv);
            R[i] = warp.fnma_scalar(unpivoted, R[k], mult, R[i],
                                    unpivoted & cols_m);
        }
    }

    // Fused writeback of the column-gathered factors. pos[j] = pivot-order
    // position of column j. GH stores row-major -- for a store of factor
    // row i, the lane addresses {i*m + pos_j} are a permutation of a
    // contiguous range, hence coalesced. GH-T stores column-major: lane
    // addresses {pos_j*m + i} are m-strided, hence one transaction per
    // lane. The sector counter reproduces both effects without special
    // cases.
    std::array<index_type, warp_size> pos{};
    for (index_type k = 0; k < m; ++k) {
        pos[static_cast<std::size_t>(cperm[k])] = k;
    }
    for (index_type i = 0; i < m; ++i) {
        Reg<T*> addr{};
        Reg<T> vals{};
        Warp::for_each_lane(cols_m, [&](int j) {
            const auto p = static_cast<std::size_t>(pos[j]);
            if (storage == GhStorage::standard) {
                // factor element (i, pos_j) at row-major slot (i, pos_j)
                // = view position (pos_j, i)
                addr[j] = a.data() + static_cast<std::size_t>(i) * a.ld() + p;
            } else {
                addr[j] = a.data() + p * a.ld() + i;
            }
            vals[j] = R[i][j];
        });
        warp.store_global(cols_m, addr, vals);
    }
    if (storage == GhStorage::transposed) {
        // GH-T also writes the transpose-friendly copy of the row
        // multipliers consumed by the solve's forward dot (billing only;
        // the emulation keeps the data fused in the primary container).
        for (index_type k = 1; k < m; ++k) {
            Reg<T*> addr{};
            Warp::for_each_lane(first_lanes(k), [&](int i) {
                addr[i] = a.data() +
                          static_cast<std::size_t>(k) * a.ld() + i;
            });
            warp.account_store(first_lanes(k), addr);
        }
    }
    Reg<index_type> permreg{};
    for (index_type k = 0; k < m; ++k) {
        permreg[k] = cperm[k];
    }
    warp.store_global_strided(cols_m, cperm.data(), permreg);
    return 0;
}

template <typename T>
void gauss_huard_solve_warp(Warp& warp, ConstMatrixView<T> f,
                            std::span<const index_type> cperm,
                            std::span<T> b, GhStorage storage) {
    const index_type m = f.rows();
    VBATCH_ENSURE_DIMS(m == static_cast<index_type>(b.size()));
    const lane_mask rows_m = first_lanes(m);
    // Factor element (i, j) of the pivot-ordered decomposition; the two
    // storages put it at transposed container positions (gauss_huard.cpp).
    const auto fa = [&](index_type i, index_type j) {
        return storage == GhStorage::standard ? f(j, i) : f(i, j);
    };

    auto x = warp.load_global_strided(rows_m, b.data());
    for (index_type k = 0; k < m; ++k) {
        // Step k processes b like the factorization processes a column:
        // (1) dot of factor-row k's left part with the current b values,
        // (2) pivot division, (3) Jordan update of the leading entries.
        if (k > 0) {
            const lane_mask left = first_lanes(k);
            // (1) Row read fa(k, 0:k-1). GH (row-major) keeps this
            // contiguous; GH-T serves it from the transpose-friendly
            // auxiliary multiplier copy written during factorization --
            // contiguous as well, so we bill the same address shape.
            Reg<const T*> raddr{};
            Reg<T> lrow{};
            Warp::for_each_lane(left, [&](int i) {
                raddr[i] = f.data() +
                           static_cast<std::size_t>(k) * f.ld() + i;
                lrow[i] = fa(k, i);
            });
            warp.account_load(left, raddr);
            const auto prod = warp.mul(left, lrow, x, left);
            const T acc = warp.reduce_sum(left, prod);
            const auto accreg = Warp::broadcast_value(acc);
            x = warp.fnma_scalar(1u << k, accreg, T{1}, x, 1u << k);
        }
        // (2) divide by the pivot.
        const T dkk = fa(k, k);
        warp.stats().load_requests += 1;
        warp.stats().load_transactions += 1;
        x = warp.div_scalar(1u << k, x, dkk, 1u << k);
        const T yk = warp.shfl(x, k);
        // (3) Jordan column read fa(0:k-1, k): strided in GH's row-major
        // layout (the non-coalesced reads of Fig. 7), contiguous in GH-T.
        if (k > 0) {
            const lane_mask left = first_lanes(k);
            Reg<const T*> caddr{};
            Reg<T> ucol{};
            Warp::for_each_lane(left, [&](int i) {
                if (storage == GhStorage::standard) {
                    caddr[i] = f.data() +
                               static_cast<std::size_t>(i) * f.ld() + k;
                } else {
                    caddr[i] = f.data() +
                               static_cast<std::size_t>(k) * f.ld() + i;
                }
                ucol[i] = fa(i, k);
            });
            warp.account_load(left, caddr);
            x = warp.fnma_scalar(left, ucol, yk, x, left);
        }
    }

    // Column pivoting permuted the unknowns: scatter through cperm on the
    // way out (fused into the store, like the LU load fuses P).
    const auto gather = warp.load_global_strided(rows_m, cperm.data());
    Reg<T*> out{};
    Warp::for_each_lane(rows_m, [&](int k) {
        out[k] = b.data() + gather[k];
    });
    warp.store_global(rows_m, out, x);
}

// ---------------------------------------------------------------------
// Batch drivers
// ---------------------------------------------------------------------

simt::KernelStats SimtBatchResult::extrapolated() const {
    if (emulated == 0 || emulated == total) {
        return stats;
    }
    const double scale = static_cast<double>(total) /
                         static_cast<double>(emulated);
    auto scaled = stats;
    const auto mul = [scale](size_type v) {
        return static_cast<size_type>(static_cast<double>(v) * scale + 0.5);
    };
    scaled.fp_instructions = mul(stats.fp_instructions);
    scaled.div_instructions = mul(stats.div_instructions);
    scaled.shuffle_instructions = mul(stats.shuffle_instructions);
    scaled.misc_instructions = mul(stats.misc_instructions);
    scaled.useful_flops = mul(stats.useful_flops);
    scaled.load_transactions = mul(stats.load_transactions);
    scaled.store_transactions = mul(stats.store_transactions);
    scaled.load_requests = mul(stats.load_requests);
    scaled.store_requests = mul(stats.store_requests);
    scaled.load_replays = mul(stats.load_replays);
    scaled.store_replays = mul(stats.store_replays);
    scaled.shared_accesses = mul(stats.shared_accesses);
    scaled.shared_bank_conflicts = mul(stats.shared_bank_conflicts);
    return scaled;
}

namespace {

template <typename Body>
SimtBatchResult drive(size_type total, const SimtBatchOptions& opts,
                      Body&& body) {
    SimtBatchResult result;
    result.total = total;
    const size_type limit =
        (opts.sample_limit > 0 && opts.sample_limit < total)
            ? opts.sample_limit
            : total;
    Warp warp;
    for (size_type i = 0; i < limit; ++i) {
        const index_type info = body(warp, i);
        if (info != 0) {
            ++result.status.failures;
            if (result.status.first_failure < 0) {
                result.status.first_failure = i;
            }
        }
    }
    result.emulated = limit;
    result.stats = warp.stats();
    return result;
}

/// Fold one launch's (extrapolated) counters into the metrics registry
/// under the kernel family name.
SimtBatchResult record_family(const char* family, SimtBatchResult result) {
    obs::Registry::global().record_kernel(family, result.extrapolated(),
                                          result.total);
    return result;
}

}  // namespace

template <typename T>
SimtBatchResult getrf_batch_simt(BatchedMatrices<T>& a, BatchedPivots& perm,
                                 const SimtBatchOptions& opts) {
    VBATCH_ENSURE(a.layout() == perm.layout(), "batch layouts differ");
    obs::TraceRegion trace("getrf_batch_simt");
    return record_family(
        "getrf", drive(a.count(), opts, [&](Warp& w, size_type i) {
            return getrf_warp(w, a.view(i), perm.span(i),
                              opts.padded_update);
        }));
}

template <typename T>
SimtBatchResult getrs_batch_simt(const BatchedMatrices<T>& lu,
                                 const BatchedPivots& perm,
                                 BatchedVectors<T>& b, TrsvVariant variant,
                                 const SimtBatchOptions& opts) {
    VBATCH_ENSURE(lu.layout() == perm.layout() && lu.layout() == b.layout(),
                  "batch layouts differ");
    obs::TraceRegion trace("getrs_batch_simt");
    return record_family(
        "trsv", drive(lu.count(), opts, [&](Warp& w, size_type i) {
            getrs_warp(w, lu.view(i), perm.span(i), b.span(i), variant);
            return index_type{0};
        }));
}

template <typename T>
SimtBatchResult gauss_huard_batch_simt(BatchedMatrices<T>& a,
                                       BatchedPivots& cperm,
                                       GhStorage storage,
                                       const SimtBatchOptions& opts) {
    VBATCH_ENSURE(a.layout() == cperm.layout(), "batch layouts differ");
    obs::TraceRegion trace("gauss_huard_batch_simt");
    return record_family(
        "gauss_huard", drive(a.count(), opts, [&](Warp& w, size_type i) {
            return gauss_huard_warp(w, a.view(i), cperm.span(i), storage);
        }));
}

template <typename T>
SimtBatchResult gauss_huard_solve_batch_simt(const BatchedMatrices<T>& f,
                                             const BatchedPivots& cperm,
                                             BatchedVectors<T>& b,
                                             GhStorage storage,
                                             const SimtBatchOptions& opts) {
    VBATCH_ENSURE(f.layout() == cperm.layout() && f.layout() == b.layout(),
                  "batch layouts differ");
    obs::TraceRegion trace("gauss_huard_solve_batch_simt");
    return record_family(
        "gauss_huard_solve",
        drive(f.count(), opts, [&](Warp& w, size_type i) {
            gauss_huard_solve_warp(w, f.view(i), cperm.span(i), b.span(i),
                                   storage);
            return index_type{0};
        }));
}

#define VBATCH_INSTANTIATE_SIMT(T)                                           \
    template index_type getrf_warp<T>(Warp&, MatrixView<T>,                  \
                                      std::span<index_type>, bool);          \
    template void getrs_warp<T>(Warp&, ConstMatrixView<T>,                   \
                                std::span<const index_type>, std::span<T>,   \
                                TrsvVariant);                                \
    template index_type gauss_huard_warp<T>(Warp&, MatrixView<T>,            \
                                            std::span<index_type>,           \
                                            GhStorage);                      \
    template void gauss_huard_solve_warp<T>(Warp&, ConstMatrixView<T>,       \
                                            std::span<const index_type>,     \
                                            std::span<T>, GhStorage);        \
    template SimtBatchResult getrf_batch_simt<T>(BatchedMatrices<T>&,        \
                                                 BatchedPivots&,             \
                                                 const SimtBatchOptions&);   \
    template SimtBatchResult getrs_batch_simt<T>(                            \
        const BatchedMatrices<T>&, const BatchedPivots&, BatchedVectors<T>&, \
        TrsvVariant, const SimtBatchOptions&);                               \
    template SimtBatchResult gauss_huard_batch_simt<T>(                      \
        BatchedMatrices<T>&, BatchedPivots&, GhStorage,                      \
        const SimtBatchOptions&);                                            \
    template SimtBatchResult gauss_huard_solve_batch_simt<T>(                \
        const BatchedMatrices<T>&, const BatchedPivots&, BatchedVectors<T>&, \
        GhStorage, const SimtBatchOptions&)

VBATCH_INSTANTIATE_SIMT(float);
VBATCH_INSTANTIATE_SIMT(double);

#undef VBATCH_INSTANTIATE_SIMT

}  // namespace vbatch::core
