#include "core/gauss_jordan.hpp"

#include <array>
#include <cmath>

#include "base/macros.hpp"
#include "core/batch_driver.hpp"

namespace vbatch::core {

namespace {

/// Kernel body shared by the plain and monitored entry points (the
/// monitor hooks compile away for NoPivotMonitor).
template <typename T, typename Monitor>
index_type gauss_jordan_invert_impl(MatrixView<T> a, Monitor& mon) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    const index_type m = a.rows();
    if constexpr (Monitor::enabled) {
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                mon.entry(static_cast<double>(std::abs(a(i, j))));
            }
        }
    }
    std::array<index_type, max_block_size> pstate;
    std::array<index_type, max_block_size> perm;
    pstate.fill(-1);

    for (index_type k = 0; k < m; ++k) {
        // Implicit pivot: largest |a(i, k)| among rows not yet used.
        index_type piv = -1;
        T best{};
        for (index_type i = 0; i < m; ++i) {
            if (pstate[i] >= 0) {
                continue;
            }
            const T v = std::abs(a(i, k));
            if (piv < 0 || v > best) {
                best = v;
                piv = i;
            }
        }
        if (best == T{}) {
            return k + 1;
        }
        if constexpr (Monitor::enabled) {
            mon.pivot(static_cast<double>(best));
        }
        perm[k] = piv;
        pstate[piv] = k;

        // In-place Jordan transformation with the pivot row in place:
        //   pivot row    : row /= d, diagonal slot becomes 1/d
        //   other rows   : row -= e * pivot_row, column-k slot -e/d
        const T d = a(piv, k);
        const T dinv = T{1} / d;
        for (index_type j = 0; j < m; ++j) {
            if (j != k) {
                a(piv, j) *= dinv;
            }
        }
        a(piv, k) = dinv;
        for (index_type i = 0; i < m; ++i) {
            if (i == piv) {
                continue;
            }
            const T e = a(i, k);
            for (index_type j = 0; j < m; ++j) {
                if (j != k) {
                    a(i, j) -= e * a(piv, j);
                }
            }
            a(i, k) = -e * dinv;
        }
    }

    // Fused permutation writeback. With explicit pivoting the result of the
    // loop is (PA)^{-1} = A^{-1} P^T; undoing both the implicit row gather
    // and the trailing column permutation in one pass:
    //   out(r, perm[c]) = work(perm[r], c).
    std::array<T, static_cast<std::size_t>(max_block_size) * max_block_size>
        tmp;
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            tmp[static_cast<std::size_t>(j) * m + i] = a(i, j);
        }
    }
    for (index_type c = 0; c < m; ++c) {
        for (index_type r = 0; r < m; ++r) {
            a(r, perm[c]) = tmp[static_cast<std::size_t>(c) * m + perm[r]];
        }
    }
    return 0;
}

}  // namespace

template <typename T>
index_type gauss_jordan_invert(MatrixView<T> a) {
    detail::NoPivotMonitor mon;
    return gauss_jordan_invert_impl(a, mon);
}

template <typename T>
index_type gauss_jordan_invert(MatrixView<T> a, FactorInfo& info) {
    detail::PivotMonitor mon;
    const index_type step = gauss_jordan_invert_impl(a, mon);
    info = mon.finish(step);
    return step;
}

template <typename T>
FactorizeStatus gauss_jordan_batch(BatchedMatrices<T>& a,
                                   const GetrfOptions& opts) {
    return detail::run_factorize_batch(
        a.count(), opts, "batched Gauss-Jordan breakdown",
        [&](size_type i, FactorInfo* info) {
            return info != nullptr ? gauss_jordan_invert(a.view(i), *info)
                                   : gauss_jordan_invert(a.view(i));
        });
}

template <typename T>
void apply_inverse_batch(const BatchedMatrices<T>& inv, BatchedVectors<T>& x,
                         bool parallel) {
    VBATCH_ENSURE(inv.layout() == x.layout(), "batch layouts differ");
    const auto body = [&](size_type b) {
        const auto a = inv.view(b);
        auto xi = x.span(b);
        const index_type m = a.rows();
        std::array<T, max_block_size> y{};
        for (index_type j = 0; j < m; ++j) {
            const T xj = xi[static_cast<std::size_t>(j)];
            const T* col = a.col(j);
            for (index_type i = 0; i < m; ++i) {
                y[static_cast<std::size_t>(i)] += col[i] * xj;
            }
        }
        for (index_type i = 0; i < m; ++i) {
            xi[static_cast<std::size_t>(i)] = y[static_cast<std::size_t>(i)];
        }
    };
    if (parallel) {
        ThreadPool::global().parallel_for(0, inv.count(), body,
                                          batch_entry_grain);
    } else {
        for (size_type i = 0; i < inv.count(); ++i) {
            body(i);
        }
    }
}

#define VBATCH_INSTANTIATE_GJE(T)                                           \
    template index_type gauss_jordan_invert<T>(MatrixView<T>);              \
    template index_type gauss_jordan_invert<T>(MatrixView<T>, FactorInfo&); \
    template FactorizeStatus gauss_jordan_batch<T>(BatchedMatrices<T>&,     \
                                                   const GetrfOptions&);    \
    template void apply_inverse_batch<T>(const BatchedMatrices<T>&,         \
                                         BatchedVectors<T>&, bool)

VBATCH_INSTANTIATE_GJE(float);
VBATCH_INSTANTIATE_GJE(double);

#undef VBATCH_INSTANTIATE_GJE

}  // namespace vbatch::core
