// Index scheme and coefficient generation of recursive butterfly
// transforms for arbitrary sizes (Lindquist/Luszczek/Dongarra,
// PAPERS.md) -- the pure, SIMD-free layer shared by the scalar driver
// (core/rbt.cpp) and the backend-templated chunk kernels
// (core/chunk_kernels.hpp).
//
// A depth-d recursive butterfly W of size n is
//
//   W = B_n * diag(W_p, W_q),   p = ceil(n/2), q = floor(n/2),
//
// where the generalized butterfly B_n pairs element i with element p+i
// (i < q) and, for odd n, leaves the middle element q unpaired:
//
//   (B x)_i     = r_i x_i + s_i x_{p+i}
//   (B x)_{p+i} = r_i x_i - s_i x_{p+i}
//   (B x)_q     = u x_q                       (odd n only)
//
// No power-of-2 padding anywhere: the recursion halves exact lengths, so
// a level of a size-n butterfly holds exactly n coefficients (r_i at the
// top index of a pair, s_i at the bottom index, u at an unpaired index).
// The 1/sqrt(2) butterfly normalization is folded into the paired
// coefficients, making one pair application exactly 2 mul + 1 add +
// 1 sub.
//
// Coefficients are e^{rho/10} with rho uniform in [-1, 1) -- close to 1,
// as the RBT literature prescribes -- and are a pure counter-based
// function of (seed, block, side, level, index): generation order
// (threads, chunks, scheduler mode) cannot change them.
#pragma once

#include <cmath>
#include <cstdint>

#include "base/random.hpp"
#include "base/types.hpp"

namespace vbatch::core::rbt {

/// Depth bound: max_block_size = 32 halves to length-1 segments within
/// 6 levels; deeper levels would only rescale single elements.
inline constexpr index_type max_rbt_depth = 6;

inline index_type clamp_rbt_depth(index_type depth) {
    return depth < 1 ? 1 : (depth > max_rbt_depth ? max_rbt_depth : depth);
}

/// Visit every segment [lo, lo+len) of level `level` of the recursive
/// halving of [0, n): level 0 is the whole block, level t+1 splits each
/// level-t segment into its ceil/floor halves (a length-1 segment only
/// keeps its left child). fn(lo, len) is called in ascending lo order.
template <typename Fn>
void for_each_segment(index_type n, index_type level, Fn&& fn) {
    struct Rec {
        static void go(index_type lo, index_type len, index_type lvl,
                       Fn& f) {
            if (len <= 0) {
                return;
            }
            if (lvl == 0) {
                f(lo, len);
                return;
            }
            const index_type p = (len + 1) / 2;
            go(lo, p, lvl - 1, f);
            go(lo + p, len - p, lvl - 1, f);
        }
    };
    Rec::go(0, n, level, fn);
}

/// Sides of the two-sided transform U^T A V.
inline constexpr int rbt_side_u = 0;
inline constexpr int rbt_side_v = 1;

/// Counter-based key: one SplitMix64 avalanche over a mix of the
/// coordinates. Pure function -- no generation-order dependence.
inline std::uint64_t rbt_key(std::uint64_t seed, std::uint64_t block,
                             std::uint64_t side, std::uint64_t level,
                             std::uint64_t index) noexcept {
    std::uint64_t s = seed;
    s += 0x9e3779b97f4a7c15ULL * (block + 1);
    s += 0xbf58476d1ce4e5b9ULL * (side + 1);
    s += 0x94d049bb133111ebULL * (level + 1);
    s += 0xd1b54a32d192ed03ULL * (index + 1);
    return splitmix64(s);
}

/// Raw random factor e^{rho/10}, rho uniform in [-1, 1).
inline double rbt_factor(std::uint64_t key) noexcept {
    const double rho =
        static_cast<double>(key >> 11) * 0x1.0p-53 * 2.0 - 1.0;
    return std::exp(rho * 0.1);
}

/// Coefficient at absolute position `index` of (block, side, level).
/// Paired positions fold in the 1/sqrt(2) butterfly normalization;
/// unpaired (odd-middle) positions carry the raw factor.
template <typename T>
T rbt_coefficient(std::uint64_t seed, std::uint64_t block, int side,
                  index_type level, index_type index, bool paired) {
    constexpr double inv_sqrt2 = 0.70710678118654752440;
    const double f = rbt_factor(
        rbt_key(seed, block, static_cast<std::uint64_t>(side),
                static_cast<std::uint64_t>(level),
                static_cast<std::uint64_t>(index)));
    return static_cast<T>(paired ? f * inv_sqrt2 : f);
}

}  // namespace vbatch::core::rbt
