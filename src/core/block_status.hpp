// Per-block factorization outcome and pivot-growth monitoring.
//
// The batched kernels never abort mid-batch: each block either
// factorizes cleanly or is recorded as broken down, and the recovery
// pipeline in src/precond decides what to do with the survivors. The
// monitor piggybacks on the implicit-pivoting magnitude comparisons the
// kernels already perform (the pivot search computes max |a(i,k)| per
// step anyway), so tracking the smallest/largest selected pivot and the
// largest input entry costs a handful of scalar min/max updates per
// step -- and nothing at all on the non-monitored fast path, which is
// compiled separately.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "base/types.hpp"

namespace vbatch::core {

/// What happened to one diagonal block during preconditioner setup.
enum class BlockStatus : unsigned char {
    /// Factorized cleanly with a healthy pivot sequence.
    ok,
    /// Refactorized after a scaled-identity diagonal shift (boosting).
    boosted,
    /// Degraded to scalar Jacobi (inverse-diagonal) application.
    fell_back,
    /// No usable information (all-zero/non-finite diagonal); the block
    /// applies as identity.
    singular,
};

const char* to_string(BlockStatus status) noexcept;

/// Cheap conditioning estimate of one block's factorization, collected
/// from the pivot magnitudes the implicit-pivoting search computes.
struct FactorInfo {
    /// 0 = clean, k = 1-based step at which the factorization broke down.
    index_type step = 0;
    /// False when a non-finite value was seen in the block or its pivots.
    bool finite = true;
    /// Smallest / largest selected pivot magnitude over the steps.
    double min_pivot = std::numeric_limits<double>::infinity();
    double max_pivot = 0.0;
    /// Largest entry magnitude of the block on kernel entry.
    double max_entry = 0.0;

    bool ok() const noexcept { return step == 0; }

    /// Pivot-growth estimate: largest pivot relative to the largest
    /// input entry (>= 1 for a stable factorization; implicit partial
    /// pivoting keeps it modest, Section II.C).
    double growth() const noexcept {
        return (max_pivot > 0.0 && max_entry > 0.0) ? max_pivot / max_entry
                                                    : 0.0;
    }

    /// True when the block broke down, contains non-finite values, or
    /// its smallest pivot is negligible relative to the block magnitude
    /// (|p_min| <= rel_tol * max|a_ij|) -- i.e. the factors exist but
    /// are numerically worthless.
    bool degenerate(double rel_tol) const noexcept {
        if (step != 0 || !finite) {
            return true;
        }
        if (!std::isfinite(min_pivot)) {
            return min_pivot != std::numeric_limits<double>::infinity() ||
                   max_pivot != 0.0;  // inf/0 only for an empty block
        }
        return !(min_pivot > rel_tol * max_entry);
    }
};

/// Aggregate per-status block counts of one preconditioner setup.
struct RecoverySummary {
    size_type ok = 0;
    size_type boosted = 0;
    size_type fell_back = 0;
    size_type singular = 0;
    /// Largest pivot-growth estimate over the usable factorizations.
    double max_growth = 0.0;

    size_type total() const noexcept {
        return ok + boosted + fell_back + singular;
    }
    /// Blocks that do not apply their intended factorization.
    size_type degraded() const noexcept {
        return boosted + fell_back + singular;
    }
    void record(BlockStatus status) noexcept {
        switch (status) {
        case BlockStatus::ok: ++ok; break;
        case BlockStatus::boosted: ++boosted; break;
        case BlockStatus::fell_back: ++fell_back; break;
        case BlockStatus::singular: ++singular; break;
        }
    }
};

/// Per-batch factorization outcome. The per-block vectors are filled
/// only when GetrfOptions::monitor is set; the aggregate counters are
/// always valid.
struct FactorizeStatus {
    /// Number of blocks whose factorization broke down (exact zero pivot).
    size_type failures = 0;
    /// First failed batch entry (-1 if none).
    size_type first_failure = -1;
    /// 1-based breakdown step of the first failed entry (0 if none).
    index_type first_failure_step = 0;
    /// Per-entry outcome and pivot statistics (monitor mode only).
    std::vector<BlockStatus> block_status;
    std::vector<FactorInfo> block_info;
    /// Largest pivot-growth estimate over the clean entries (monitor
    /// mode only).
    double max_growth = 0.0;

    bool ok() const noexcept { return failures == 0; }
    bool monitored() const noexcept { return !block_info.empty(); }
};

inline const char* to_string(BlockStatus status) noexcept {
    switch (status) {
    case BlockStatus::ok: return "ok";
    case BlockStatus::boosted: return "boosted";
    case BlockStatus::fell_back: return "fell_back";
    case BlockStatus::singular: return "singular";
    }
    return "unknown";
}

}  // namespace vbatch::core
