// Canonical (nominal) flop counts used for GFLOPS reporting.
//
// Like the paper (Section II.B) we charge every factorization kernel the
// textbook LU cost of 2/3 m^3 flops and every solve (permute + lower +
// upper triangular solve) 2 m^2 flops, regardless of how many operations a
// particular algorithm actually executes. This makes the GFLOPS of LU,
// Gauss-Huard and the vendor kernels directly comparable -- a kernel that
// wastes work on padded zeros reports lower GFLOPS, which is exactly the
// effect Fig. 4/5 of the paper shows.
#pragma once

#include "base/types.hpp"

namespace vbatch::core {

/// Nominal flops of one m x m LU factorization.
inline double getrf_flops(index_type m) {
    const double d = m;
    return 2.0 / 3.0 * d * d * d;
}

/// Nominal flops of one permute + unit-lower + upper solve.
inline double getrs_flops(index_type m) {
    const double d = m;
    return 2.0 * d * d;
}

/// Nominal flops of one explicit m x m inversion (Gauss-Jordan).
inline double invert_flops(index_type m) {
    const double d = m;
    return 2.0 * d * d * d;
}

/// Nominal flops of one m x m matrix-vector product.
inline double gemv_flops(index_type m) {
    const double d = m;
    return 2.0 * d * d;
}

/// Nominal flops of one two-sided depth-d butterfly transform
/// A := U^T A V (core/rbt.hpp): each level touches every entry twice
/// (one add/sub + one multiply per side), so 2 * (2 m^2) per level.
inline double rbt_transform_flops(index_type m, index_type depth) {
    const double d = m;
    return 4.0 * static_cast<double>(depth) * d * d;
}

/// Nominal flops of one butterfly vector transform (U^T b or V y):
/// one add/sub + one multiply per entry per level.
inline double rbt_vector_flops(index_type m, index_type depth) {
    return 2.0 * static_cast<double>(depth) * static_cast<double>(m);
}

}  // namespace vbatch::core
