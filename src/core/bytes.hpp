// Canonical byte-traffic models used for bandwidth/roofline reporting,
// the companion of core/flops.hpp.
//
// Small-block batched kernels are memory-bandwidth bound, so the signal
// that explains where a kernel sits relative to the hardware is bytes
// moved, not flops. Like the flop models, these charge every kernel the
// *algorithmic* traffic of a cold cache -- each operand array is read
// (and, where in-place, written back) exactly once. Caches can only beat
// this bound, so effective bandwidth computed from these models is a
// lower bound on what the memory system delivered, which is the honest
// number for a roofline plot.
//
// Two layout families are modeled:
//  - dense row-major (the scalar/batched kernels): an m x m problem
//    touches exactly its own m^2 elements;
//  - interleaved SoA size classes (the _simd backends): lanes load and
//    store whole padded class-size matrices, so an m x m problem in a
//    class padded to mp >= m is charged mp^2 traffic. The padding waste
//    is exactly the gap between the two models.
#pragma once

#include <cstddef>

#include "base/types.hpp"

namespace vbatch::core {

/// Bytes of one in-place m x m LU factorization (panel read + write,
/// plus the pivot vector): 2 m^2 elem + m idx.
template <typename T>
double getrf_bytes(index_type m) {
    const double d = m;
    return 2.0 * d * d * static_cast<double>(sizeof(T)) +
           d * static_cast<double>(sizeof(index_type));
}

/// Same factorization stored in an interleaved SoA size class padded to
/// `padded_m` >= m: the lanes stream the whole padded matrix.
template <typename T>
double getrf_bytes_interleaved(index_type m, index_type padded_m) {
    return getrf_bytes<T>(padded_m >= m ? padded_m : m);
}

/// Bytes of one permute + unit-lower + upper triangular solve with
/// factored m x m data: factors m^2, rhs + solution 2 m, pivots m.
template <typename T>
double getrs_bytes(index_type m) {
    const double d = m;
    return (d * d + 2.0 * d) * static_cast<double>(sizeof(T)) +
           d * static_cast<double>(sizeof(index_type));
}

/// Interleaved-SoA variant of getrs_bytes (padded class size).
template <typename T>
double getrs_bytes_interleaved(index_type m, index_type padded_m) {
    return getrs_bytes<T>(padded_m >= m ? padded_m : m);
}

/// Bytes of one two-sided depth-d butterfly transform A := U^T A V: each
/// level reads + writes the whole matrix twice (column pass, row pass)
/// and reads the m-entry U and V coefficient rows of that level.
template <typename T>
double rbt_transform_bytes(index_type m, index_type depth) {
    const double d = m;
    return static_cast<double>(depth) * (4.0 * d * d + 2.0 * d) *
           static_cast<double>(sizeof(T));
}

/// Bytes of one butterfly vector transform (U^T b or V y): per level the
/// vector is read + written and the coefficient row is read.
template <typename T>
double rbt_vector_bytes(index_type m, index_type depth) {
    return static_cast<double>(depth) * 3.0 * static_cast<double>(m) *
           static_cast<double>(sizeof(T));
}

/// Bytes of one dense m x m matrix-vector product: matrix m^2 plus the
/// input and output vectors.
template <typename T>
double gemv_bytes(index_type m) {
    const double d = m;
    return (d * d + 2.0 * d) * static_cast<double>(sizeof(T));
}

/// Bytes of one CSR SpMV y = A x: values + column indices per nonzero,
/// the row-pointer array, and the two vectors. Matches the effective-
/// bandwidth accounting bench_solver_hotpath reports.
template <typename T>
double spmv_bytes(index_type rows, size_type nnz) {
    return static_cast<double>(nnz) *
               (sizeof(T) + sizeof(index_type)) +
           (static_cast<double>(rows) + 1.0) *
               static_cast<double>(sizeof(size_type)) +
           2.0 * static_cast<double>(rows) * static_cast<double>(sizeof(T));
}

// -- BLAS-1 building blocks (n-element vectors) ----------------------

/// y += alpha x: read x, read + write y.
template <typename T>
double axpy_bytes(size_type n) {
    return 3.0 * static_cast<double>(n) * static_cast<double>(sizeof(T));
}

/// dot(x, y): read both vectors.
template <typename T>
double dot_bytes(size_type n) {
    return 2.0 * static_cast<double>(n) * static_cast<double>(sizeof(T));
}

/// nrm2(x) and other single-vector reductions: read x.
template <typename T>
double nrm2_bytes(size_type n) {
    return static_cast<double>(n) * static_cast<double>(sizeof(T));
}

/// y := x (copy) or y *= alpha (scal): one read + one write stream.
template <typename T>
double copy_bytes(size_type n) {
    return 2.0 * static_cast<double>(n) * static_cast<double>(sizeof(T));
}

/// p := z + beta p: read z, read + write p.
template <typename T>
double xpby_bytes(size_type n) {
    return 3.0 * static_cast<double>(n) * static_cast<double>(sizeof(T));
}

/// Fused CG update (x += alpha p; r -= alpha q; ||r||): read p and q,
/// read + write x and r -- six streams in one sweep.
template <typename T>
double fused_cg_update_bytes(size_type n) {
    return 6.0 * static_cast<double>(n) * static_cast<double>(sizeof(T));
}

/// Fused residual (r := b - r; ||r||): read b, read + write r.
template <typename T>
double fused_residual_norm2_bytes(size_type n) {
    return 3.0 * static_cast<double>(n) * static_cast<double>(sizeof(T));
}

}  // namespace vbatch::core
