#include "core/vectorized.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "base/macros.hpp"
#include "base/thread_pool.hpp"
#include "core/vectorized_kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vbatch::core {

namespace {

/// Widest compiled vector width (AVX-512 float); bounds the per-lane
/// stat scratch arrays of the facade-ported pack/scan helpers.
constexpr size_type max_simd_lanes = 16;

template <typename T>
void run_getrf_chunk(SimdIsa isa, PivotPolicy pivot, T* a, index_type* perm,
                     index_type* info, index_type m, size_type stride) {
    if (pivot == PivotPolicy::none) {
        switch (isa) {
        case SimdIsa::scalar:
            getrf_nopivot_chunk_scalar(a, perm, info, m, stride);
            break;
        case SimdIsa::sse2:
            getrf_nopivot_chunk_sse2(a, perm, info, m, stride);
            break;
        case SimdIsa::avx2:
            getrf_nopivot_chunk_avx2(a, perm, info, m, stride);
            break;
        case SimdIsa::avx512:
            getrf_nopivot_chunk_avx512(a, perm, info, m, stride);
            break;
        case SimdIsa::neon:
            getrf_nopivot_chunk_neon(a, perm, info, m, stride);
            break;
        }
        return;
    }
    switch (isa) {
    case SimdIsa::scalar:
        getrf_chunk_scalar(a, perm, info, m, stride);
        break;
    case SimdIsa::sse2:
        getrf_chunk_sse2(a, perm, info, m, stride);
        break;
    case SimdIsa::avx2:
        getrf_chunk_avx2(a, perm, info, m, stride);
        break;
    case SimdIsa::avx512:
        getrf_chunk_avx512(a, perm, info, m, stride);
        break;
    case SimdIsa::neon:
        getrf_chunk_neon(a, perm, info, m, stride);
        break;
    }
}

template <typename T>
void run_getrs_chunk(SimdIsa isa, PivotPolicy pivot, const T* lu,
                     const index_type* perm, T* b, index_type m,
                     size_type stride) {
    if (pivot == PivotPolicy::none) {
        switch (isa) {
        case SimdIsa::scalar:
            getrs_nopivot_chunk_scalar(lu, b, m, stride);
            break;
        case SimdIsa::sse2:
            getrs_nopivot_chunk_sse2(lu, b, m, stride);
            break;
        case SimdIsa::avx2:
            getrs_nopivot_chunk_avx2(lu, b, m, stride);
            break;
        case SimdIsa::avx512:
            getrs_nopivot_chunk_avx512(lu, b, m, stride);
            break;
        case SimdIsa::neon:
            getrs_nopivot_chunk_neon(lu, b, m, stride);
            break;
        }
        return;
    }
    switch (isa) {
    case SimdIsa::scalar:
        getrs_chunk_scalar(lu, perm, b, m, stride);
        break;
    case SimdIsa::sse2:
        getrs_chunk_sse2(lu, perm, b, m, stride);
        break;
    case SimdIsa::avx2:
        getrs_chunk_avx2(lu, perm, b, m, stride);
        break;
    case SimdIsa::avx512:
        getrs_chunk_avx512(lu, perm, b, m, stride);
        break;
    case SimdIsa::neon:
        getrs_chunk_neon(lu, perm, b, m, stride);
        break;
    }
}

template <typename T>
void run_pack_zero_chunk(SimdIsa isa, T* vals, size_type n) {
    switch (isa) {
    case SimdIsa::scalar: pack_zero_chunk_scalar(vals, n); break;
    case SimdIsa::sse2: pack_zero_chunk_sse2(vals, n); break;
    case SimdIsa::avx2: pack_zero_chunk_avx2(vals, n); break;
    case SimdIsa::avx512: pack_zero_chunk_avx512(vals, n); break;
    case SimdIsa::neon: pack_zero_chunk_neon(vals, n); break;
    }
}

template <typename T>
void run_pack_entry_stats_chunk(SimdIsa isa, const T* vals, size_type n,
                                T* max_entry, unsigned* nonfinite_bits) {
    switch (isa) {
    case SimdIsa::scalar:
        pack_entry_stats_chunk_scalar(vals, n, max_entry, nonfinite_bits);
        break;
    case SimdIsa::sse2:
        pack_entry_stats_chunk_sse2(vals, n, max_entry, nonfinite_bits);
        break;
    case SimdIsa::avx2:
        pack_entry_stats_chunk_avx2(vals, n, max_entry, nonfinite_bits);
        break;
    case SimdIsa::avx512:
        pack_entry_stats_chunk_avx512(vals, n, max_entry, nonfinite_bits);
        break;
    case SimdIsa::neon:
        pack_entry_stats_chunk_neon(vals, n, max_entry, nonfinite_bits);
        break;
    }
}

template <typename T>
void run_diag_scan_chunk(SimdIsa isa, const T* lu, index_type m,
                         size_type stride, T* min_piv, T* max_piv,
                         unsigned* nonfinite_bits) {
    switch (isa) {
    case SimdIsa::scalar:
        diag_scan_chunk_scalar(lu, m, stride, min_piv, max_piv,
                               nonfinite_bits);
        break;
    case SimdIsa::sse2:
        diag_scan_chunk_sse2(lu, m, stride, min_piv, max_piv,
                             nonfinite_bits);
        break;
    case SimdIsa::avx2:
        diag_scan_chunk_avx2(lu, m, stride, min_piv, max_piv,
                             nonfinite_bits);
        break;
    case SimdIsa::avx512:
        diag_scan_chunk_avx512(lu, m, stride, min_piv, max_piv,
                               nonfinite_bits);
        break;
    case SimdIsa::neon:
        diag_scan_chunk_neon(lu, m, stride, min_piv, max_piv,
                             nonfinite_bits);
        break;
    }
}

template <typename T>
void run_rbt_transform_chunk(SimdIsa isa, T* a, const T* ucoef,
                             const T* vcoef, index_type m, index_type depth,
                             size_type stride) {
    switch (isa) {
    case SimdIsa::scalar:
        rbt_transform_chunk_scalar(a, ucoef, vcoef, m, depth, stride);
        break;
    case SimdIsa::sse2:
        rbt_transform_chunk_sse2(a, ucoef, vcoef, m, depth, stride);
        break;
    case SimdIsa::avx2:
        rbt_transform_chunk_avx2(a, ucoef, vcoef, m, depth, stride);
        break;
    case SimdIsa::avx512:
        rbt_transform_chunk_avx512(a, ucoef, vcoef, m, depth, stride);
        break;
    case SimdIsa::neon:
        rbt_transform_chunk_neon(a, ucoef, vcoef, m, depth, stride);
        break;
    }
}

template <typename T>
void run_rbt_forward_chunk(SimdIsa isa, T* b, const T* ucoef, index_type m,
                           index_type depth, size_type stride) {
    switch (isa) {
    case SimdIsa::scalar:
        rbt_forward_chunk_scalar(b, ucoef, m, depth, stride);
        break;
    case SimdIsa::sse2:
        rbt_forward_chunk_sse2(b, ucoef, m, depth, stride);
        break;
    case SimdIsa::avx2:
        rbt_forward_chunk_avx2(b, ucoef, m, depth, stride);
        break;
    case SimdIsa::avx512:
        rbt_forward_chunk_avx512(b, ucoef, m, depth, stride);
        break;
    case SimdIsa::neon:
        rbt_forward_chunk_neon(b, ucoef, m, depth, stride);
        break;
    }
}

template <typename T>
void run_rbt_backward_chunk(SimdIsa isa, T* x, const T* vcoef, index_type m,
                            index_type depth, size_type stride) {
    switch (isa) {
    case SimdIsa::scalar:
        rbt_backward_chunk_scalar(x, vcoef, m, depth, stride);
        break;
    case SimdIsa::sse2:
        rbt_backward_chunk_sse2(x, vcoef, m, depth, stride);
        break;
    case SimdIsa::avx2:
        rbt_backward_chunk_avx2(x, vcoef, m, depth, stride);
        break;
    case SimdIsa::avx512:
        rbt_backward_chunk_avx512(x, vcoef, m, depth, stride);
        break;
    case SimdIsa::neon:
        rbt_backward_chunk_neon(x, vcoef, m, depth, stride);
        break;
    }
}

void record_launch(const char* op, SimdIsa isa, size_type problems) {
    auto& registry = obs::Registry::global();
    const std::string prefix =
        std::string(op) + ".simd." + simd_isa_name(isa);
    registry.add(prefix + ".launches", 1.0);
    registry.add(prefix + ".problems", static_cast<double>(problems));
}

/// Requested ISA if this build/machine supports it, else the detected one.
SimdIsa resolve_isa(SimdIsa requested) {
    return simd_isa_available(requested) ? requested : detect_simd_isa();
}

/// Per-size index buckets of a (possibly ragged) batch layout.
std::vector<std::vector<size_type>> size_buckets(const BatchLayout& layout) {
    std::vector<std::vector<size_type>> buckets(
        static_cast<std::size_t>(max_block_size) + 1);
    for (size_type i = 0; i < layout.count(); ++i) {
        buckets[static_cast<std::size_t>(layout.size(i))].push_back(i);
    }
    return buckets;
}

}  // namespace

template <typename T>
void run_simd_op_sweep(SimdIsa isa, const simd::OpSweepInput<T>& in,
                       simd::OpSweepResult<T>& out) {
    switch (isa) {
    case SimdIsa::scalar:
        simd_op_sweep_scalar(in, out);
        break;
    case SimdIsa::sse2:
        simd_op_sweep_sse2(in, out);
        break;
    case SimdIsa::avx2:
        simd_op_sweep_avx2(in, out);
        break;
    case SimdIsa::avx512:
        simd_op_sweep_avx512(in, out);
        break;
    case SimdIsa::neon:
        simd_op_sweep_neon(in, out);
        break;
    }
}

template void run_simd_op_sweep<float>(SimdIsa,
                                       const simd::OpSweepInput<float>&,
                                       simd::OpSweepResult<float>&);
template void run_simd_op_sweep<double>(SimdIsa,
                                        const simd::OpSweepInput<double>&,
                                        simd::OpSweepResult<double>&);

template <typename T>
FactorizeStatus getrf_interleaved(InterleavedGroup<T>& g,
                                  const VectorizedOptions& opts) {
    obs::TraceRegion trace("getrf_interleaved");
    record_launch("getrf", g.isa(), g.count());
    const auto isa = g.isa();
    const auto m = g.size();
    const size_type lanes = g.lanes();

    FactorizeStatus status;
    if (opts.monitor) {
        status.block_status.assign(static_cast<std::size_t>(g.count()),
                                   BlockStatus::ok);
        status.block_info.resize(static_cast<std::size_t>(g.count()));
        // Entry prepass: the chunk kernels factorize in place, so the
        // input magnitudes must be taken before the launches.
        const auto prescan = [&](size_type l) {
            auto& info = status.block_info[static_cast<std::size_t>(l)];
            for (index_type c = 0; c < m; ++c) {
                for (index_type r = 0; r < m; ++r) {
                    const double v = std::abs(static_cast<double>(
                        g.values()[g.value_index(r, c, l)]));
                    if (!std::isfinite(v)) {
                        info.finite = false;
                    } else if (v > info.max_entry) {
                        info.max_entry = v;
                    }
                }
            }
        };
        if (opts.parallel) {
            ThreadPool::global().parallel_for(0, g.count(), prescan,
                                              batch_entry_grain);
        } else {
            for (size_type l = 0; l < g.count(); ++l) {
                prescan(l);
            }
        }
    }

    // Chunk-local layout: chunk c owns m*m*lanes contiguous values and
    // m*lanes pivots; the in-chunk lane stride is the vector width.
    const auto body = [&](size_type c) {
        run_getrf_chunk(isa, opts.pivot, g.values() + c * m * m * lanes,
                        g.pivots() + c * m * lanes, g.info() + c * lanes,
                        m, lanes);
    };
    if (opts.parallel) {
        ThreadPool::global().parallel_for(0, g.chunks(), body, 1);
    } else {
        for (size_type c = 0; c < g.chunks(); ++c) {
            body(c);
        }
    }

    for (size_type l = 0; l < g.count(); ++l) {
        if (g.info()[l] != 0) {
            if (status.failures == 0) {
                status.first_failure = l;
                status.first_failure_step = g.info()[l];
            }
            ++status.failures;
            if (opts.monitor) {
                auto& info = status.block_info[static_cast<std::size_t>(l)];
                info.step = g.info()[l];
                info.min_pivot = 0.0;
                status.block_status[static_cast<std::size_t>(l)] =
                    BlockStatus::singular;
            }
        } else if (opts.monitor) {
            // Post-hoc pivot scan: after the gathered writeback the U
            // diagonal of a clean lane is the sequence of selected pivots.
            auto& info = status.block_info[static_cast<std::size_t>(l)];
            for (index_type k = 0; k < m; ++k) {
                const double p = std::abs(static_cast<double>(
                    g.values()[g.value_index(k, k, l)]));
                if (!std::isfinite(p)) {
                    info.finite = false;
                } else {
                    info.min_pivot = std::min(info.min_pivot, p);
                    info.max_pivot = std::max(info.max_pivot, p);
                }
            }
            if (info.ok()) {
                status.max_growth = std::max(status.max_growth,
                                             info.growth());
            }
        }
    }
    if (!status.ok() &&
        opts.on_singular == SingularPolicy::throw_on_breakdown) {
        throw SingularMatrix("batched LU breakdown: exact zero pivot",
                             status.first_failure,
                             status.first_failure_step);
    }
    return status;
}

template <typename T>
void getrf_interleaved_chunk(InterleavedGroup<T>& g, size_type chunk,
                             PivotPolicy pivot) {
    const auto m = static_cast<size_type>(g.size());
    const size_type lanes = g.lanes();
    run_getrf_chunk(g.isa(), pivot, g.values() + chunk * m * m * lanes,
                    g.pivots() + chunk * m * lanes,
                    g.info() + chunk * lanes, g.size(), lanes);
}

template <typename T>
void rbt_transform_interleaved_chunk(InterleavedGroup<T>& g, const T* ucoef,
                                     const T* vcoef, index_type depth,
                                     size_type chunk) {
    const auto m = static_cast<size_type>(g.size());
    const size_type lanes = g.lanes();
    const size_type coff = chunk * static_cast<size_type>(depth) * m * lanes;
    run_rbt_transform_chunk(g.isa(), g.values() + chunk * m * m * lanes,
                            ucoef + coff, vcoef + coff, g.size(), depth,
                            lanes);
}

template <typename T>
void rbt_forward_interleaved_chunk(const InterleavedGroup<T>& g,
                                   InterleavedVectors<T>& b, const T* ucoef,
                                   index_type depth, size_type chunk) {
    const auto m = static_cast<size_type>(g.size());
    const size_type lanes = g.lanes();
    const size_type coff = chunk * static_cast<size_type>(depth) * m * lanes;
    run_rbt_forward_chunk(g.isa(), b.values() + chunk * m * lanes,
                          ucoef + coff, g.size(), depth, lanes);
}

template <typename T>
void rbt_backward_interleaved_chunk(const InterleavedGroup<T>& g,
                                    InterleavedVectors<T>& b,
                                    const T* vcoef, index_type depth,
                                    size_type chunk) {
    const auto m = static_cast<size_type>(g.size());
    const size_type lanes = g.lanes();
    const size_type coff = chunk * static_cast<size_type>(depth) * m * lanes;
    run_rbt_backward_chunk(g.isa(), b.values() + chunk * m * lanes,
                           vcoef + coff, g.size(), depth, lanes);
}

template <typename T>
void gather_interleaved_chunk(InterleavedGroup<T>& g,
                              const InterleavedGatherMap& map,
                              std::span<const T> values, size_type chunk,
                              FactorInfo* infos) {
    const auto m = static_cast<size_type>(g.size());
    const size_type lanes = g.lanes();
    const size_type lane_lo = chunk * lanes;
    const size_type lane_hi = std::min(lane_lo + lanes, g.count());
    T* chunk_vals = g.values() + chunk * m * m * lanes;
    run_pack_zero_chunk(g.isa(), chunk_vals, m * m * lanes);
    // Only the tail chunk has padding lanes; re-establish their identity
    // (the kernels rely on it to run full-width without masking).
    for (size_type l = lane_hi; l < lane_lo + lanes; ++l) {
        for (index_type d = 0; d < g.size(); ++d) {
            g.values()[g.value_index(d, d, l)] = T{1};
        }
    }
    // The scatter itself is irregular (per-lane index lists) and stays
    // scalar; the entry statistics moved off it onto a full-width sweep
    // over the packed chunk below.
    for (size_type l = lane_lo; l < lane_hi; ++l) {
        const auto beg =
            static_cast<std::size_t>(map.lane_ptrs[static_cast<std::size_t>(l)]);
        const auto end = static_cast<std::size_t>(
            map.lane_ptrs[static_cast<std::size_t>(l) + 1]);
        for (auto e = beg; e < end; ++e) {
            g.values()[map.dst[e]] =
                values[static_cast<std::size_t>(map.src[e])];
        }
    }
    if (infos == nullptr) {
        return;
    }
    // Entry statistics: vector per-lane max|a_ij| + finite sweep over the
    // packed chunk. Pattern zeros can neither raise max|a_ij| nor be
    // non-finite, so the stats equal the former gather-fused scalar scan
    // (and getrf_interleaved's dense prepass); padding lanes are swept
    // too but their slots are never read back.
    alignas(64) T max_entry[max_simd_lanes];
    unsigned nonfinite = 0;
    run_pack_entry_stats_chunk(g.isa(), chunk_vals, m * m * lanes,
                               max_entry, &nonfinite);
    for (size_type l = lane_lo; l < lane_hi; ++l) {
        const auto lane = l - lane_lo;
        FactorInfo fi;
        fi.max_entry = static_cast<double>(max_entry[lane]);
        fi.finite = ((nonfinite >> lane) & 1u) == 0;
        infos[l] = fi;
    }
}

template <typename T>
void scan_interleaved_chunk(const InterleavedGroup<T>& g, size_type chunk,
                            FactorInfo* infos) {
    const auto m = g.size();
    const size_type lanes = g.lanes();
    const size_type lane_lo = chunk * lanes;
    const size_type lane_hi = std::min(lane_lo + lanes, g.count());
    // Vector per-lane min/max |u_kk| sweep over the chunk's U diagonals
    // (non-finite entries excluded and flagged, like the former scalar
    // loop); the per-lane info fold below stays scalar.
    alignas(64) T min_piv[max_simd_lanes];
    alignas(64) T max_piv[max_simd_lanes];
    unsigned nonfinite = 0;
    run_diag_scan_chunk(g.isa(),
                        g.values() + chunk * static_cast<size_type>(m) * m *
                                         lanes,
                        m, lanes, min_piv, max_piv, &nonfinite);
    for (size_type l = lane_lo; l < lane_hi; ++l) {
        auto& info = infos[l];
        if (g.info()[l] != 0) {
            info.step = g.info()[l];
            info.min_pivot = 0.0;
            continue;
        }
        const auto lane = l - lane_lo;
        if ((nonfinite >> lane) & 1u) {
            info.finite = false;
        }
        info.min_pivot = std::min(info.min_pivot,
                                  static_cast<double>(min_piv[lane]));
        info.max_pivot = std::max(info.max_pivot,
                                  static_cast<double>(max_piv[lane]));
    }
}

template <typename T>
void getrs_interleaved_chunk(const InterleavedGroup<T>& g,
                             InterleavedVectors<T>& b, size_type chunk,
                             PivotPolicy pivot) {
    const auto m = static_cast<size_type>(g.size());
    const size_type lanes = g.lanes();
    run_getrs_chunk(g.isa(), pivot, g.values() + chunk * m * m * lanes,
                    g.pivots() + chunk * m * lanes,
                    b.values() + chunk * m * lanes, g.size(), lanes);
}

template <typename T>
void getrs_interleaved(const InterleavedGroup<T>& g,
                       InterleavedVectors<T>& b,
                       const VectorizedOptions& opts) {
    VBATCH_ENSURE(b.size() == g.size() &&
                      b.lane_stride() == g.lane_stride(),
                  "rhs group does not match the factor group");
    obs::TraceRegion trace("getrs_interleaved");
    record_launch("trsv", g.isa(), g.count());
    const auto body = [&](size_type c) {
        getrs_interleaved_chunk(g, b, c, opts.pivot);
    };
    if (opts.parallel) {
        ThreadPool::global().parallel_for(0, g.chunks(), body, 1);
    } else {
        for (size_type c = 0; c < g.chunks(); ++c) {
            body(c);
        }
    }
}

template <typename T>
FactorizeStatus getrf_batch_vectorized(BatchedMatrices<T>& a,
                                       BatchedPivots& perm,
                                       const VectorizedOptions& opts) {
    VBATCH_ENSURE(a.layout() == perm.layout(),
                  "matrix and pivot batch layouts differ");
    obs::TraceRegion trace("getrf_batch_vectorized");
    obs::count("getrf.launches");
    obs::count("getrf.problems", static_cast<double>(a.count()));

    FactorizeStatus status;
    if (opts.monitor) {
        status.block_status.assign(static_cast<std::size_t>(a.count()),
                                   BlockStatus::ok);
        status.block_info.resize(static_cast<std::size_t>(a.count()));
    }
    const SimdIsa isa = resolve_isa(opts.isa);
    VectorizedOptions group_opts = opts;
    group_opts.on_singular = SingularPolicy::report;
    for (const auto& bucket : size_buckets(a.layout())) {
        if (bucket.empty() || a.size(bucket.front()) == 0) {
            continue;
        }
        const index_type m = a.size(bucket.front());
        InterleavedGroup<T> g(m, static_cast<size_type>(bucket.size()),
                              isa);
        g.pack_matrices(a, bucket);
        const auto st = getrf_interleaved(g, group_opts);
        g.unpack_matrices(a, bucket);
        g.unpack_pivots(perm, bucket);
        if (opts.monitor) {
            for (std::size_t l = 0; l < bucket.size(); ++l) {
                const auto gi = static_cast<std::size_t>(bucket[l]);
                status.block_status[gi] = st.block_status[l];
                status.block_info[gi] = st.block_info[l];
            }
            status.max_growth = std::max(status.max_growth, st.max_growth);
        }
        if (!st.ok()) {
            const auto global_index =
                bucket[static_cast<std::size_t>(st.first_failure)];
            if (status.failures == 0 ||
                global_index < status.first_failure) {
                status.first_failure = global_index;
                status.first_failure_step = st.first_failure_step;
            }
            status.failures += st.failures;
        }
    }
    if (!status.ok() &&
        opts.on_singular == SingularPolicy::throw_on_breakdown) {
        throw SingularMatrix("batched LU breakdown: exact zero pivot",
                             status.first_failure,
                             status.first_failure_step);
    }
    return status;
}

template <typename T>
void getrs_batch_vectorized(const BatchedMatrices<T>& lu,
                            const BatchedPivots& perm, BatchedVectors<T>& b,
                            const VectorizedOptions& opts) {
    VBATCH_ENSURE(lu.layout() == perm.layout() && lu.layout() == b.layout(),
                  "batch layouts differ");
    obs::TraceRegion trace("getrs_batch_vectorized");
    obs::count("trsv.launches");
    obs::count("trsv.problems", static_cast<double>(lu.count()));

    const SimdIsa isa = resolve_isa(opts.isa);
    for (const auto& bucket : size_buckets(lu.layout())) {
        if (bucket.empty() || lu.size(bucket.front()) == 0) {
            continue;
        }
        const index_type m = lu.size(bucket.front());
        InterleavedGroup<T> g(m, static_cast<size_type>(bucket.size()),
                              isa);
        g.pack_matrices(lu, bucket);
        g.pack_pivots(perm, bucket);
        InterleavedVectors<T> rhs(m, static_cast<size_type>(bucket.size()),
                                  isa);
        rhs.pack(b, bucket);
        getrs_interleaved(g, rhs, opts);
        rhs.unpack(b, bucket);
    }
}

#define VBATCH_INSTANTIATE_VECTORIZED(T)                                     \
    template FactorizeStatus getrf_interleaved<T>(                           \
        InterleavedGroup<T>&, const VectorizedOptions&);                     \
    template void getrs_interleaved<T>(const InterleavedGroup<T>&,           \
                                       InterleavedVectors<T>&,               \
                                       const VectorizedOptions&);            \
    template void getrs_interleaved_chunk<T>(const InterleavedGroup<T>&,     \
                                             InterleavedVectors<T>&,         \
                                             size_type, PivotPolicy);        \
    template void getrf_interleaved_chunk<T>(InterleavedGroup<T>&,           \
                                             size_type, PivotPolicy);        \
    template void rbt_transform_interleaved_chunk<T>(                        \
        InterleavedGroup<T>&, const T*, const T*, index_type, size_type);    \
    template void rbt_forward_interleaved_chunk<T>(                          \
        const InterleavedGroup<T>&, InterleavedVectors<T>&, const T*,        \
        index_type, size_type);                                              \
    template void rbt_backward_interleaved_chunk<T>(                         \
        const InterleavedGroup<T>&, InterleavedVectors<T>&, const T*,        \
        index_type, size_type);                                              \
    template void gather_interleaved_chunk<T>(                               \
        InterleavedGroup<T>&, const InterleavedGatherMap&,                   \
        std::span<const T>, size_type, FactorInfo*);                         \
    template void scan_interleaved_chunk<T>(const InterleavedGroup<T>&,      \
                                            size_type, FactorInfo*);         \
    template FactorizeStatus getrf_batch_vectorized<T>(                      \
        BatchedMatrices<T>&, BatchedPivots&, const VectorizedOptions&);      \
    template void getrs_batch_vectorized<T>(const BatchedMatrices<T>&,       \
                                            const BatchedPivots&,            \
                                            BatchedVectors<T>&,              \
                                            const VectorizedOptions&)

VBATCH_INSTANTIATE_VECTORIZED(float);
VBATCH_INSTANTIATE_VECTORIZED(double);

#undef VBATCH_INSTANTIATE_VECTORIZED

}  // namespace vbatch::core
