// Warp-emulated (SIMT) versions of the batched kernels.
//
// These are the paper's CUDA kernels transcribed onto the simt::Warp
// emulation layer: one warp per problem, one matrix row (LU/TRSV) or one
// matrix column (GH) per lane, everything register-resident, warp shuffles
// for communication, and the implicit-pivoting permutations fused into the
// global-memory load/store. Executing them yields
//   (a) bit-identical numerical results to the plain CPU backend (the
//       test suite asserts this), and
//   (b) exact instruction/transaction counts, which device_model.hpp
//       converts into the P100 GFLOPS curves of Figs. 4-7.
//
// Padding semantics follow the paper (Section IV.B): a problem of size
// k < 32 still occupies a full warp; the eager right-looking LU update
// sweeps the full padded trailing block, executing more instructions than
// useful flops -- the effect responsible for the LU/GH crossover.
#pragma once

#include "core/batch_storage.hpp"
#include "core/gauss_huard.hpp"
#include "core/getrf.hpp"
#include "core/trsv.hpp"
#include "simt/warp.hpp"

namespace vbatch::core {

// ---------------------------------------------------------------------
// Single-warp kernels
// ---------------------------------------------------------------------

/// Small-size LU, implicit partial pivoting, register resident.
/// `padded_update` selects the paper's production kernel (trailing update
/// swept to the full warp width); false gives the "optimize for smaller
/// block sizes" variant the paper leaves as future work -- the ablation
/// bench_ablation_padding quantifies the difference.
template <typename T>
index_type getrf_warp(simt::Warp& warp, MatrixView<T> a,
                      std::span<index_type> perm, bool padded_update = true);

/// LU solve: permutation fused into the load of b, then unit-lower and
/// upper triangular solves in the chosen variant.
template <typename T>
void getrs_warp(simt::Warp& warp, ConstMatrixView<T> lu,
                std::span<const index_type> perm, std::span<T> b,
                TrsvVariant variant = TrsvVariant::eager);

/// Gauss-Huard factorization (lane per column, implicit column pivoting).
template <typename T>
index_type gauss_huard_warp(simt::Warp& warp, MatrixView<T> a,
                            std::span<index_type> cperm,
                            GhStorage storage = GhStorage::standard);

/// Gauss-Huard application (eager, one factor column per step).
template <typename T>
void gauss_huard_solve_warp(simt::Warp& warp, ConstMatrixView<T> f,
                            std::span<const index_type> cperm, std::span<T> b,
                            GhStorage storage = GhStorage::standard);

// ---------------------------------------------------------------------
// Batch drivers (instrumentation harness for the figure benchmarks)
// ---------------------------------------------------------------------

struct SimtBatchOptions {
    /// Emulate only the first `sample_limit` problems and extrapolate the
    /// counters to the full batch (0 = emulate everything). Valid because
    /// the instruction stream of these kernels depends on the problem
    /// *size* only, not on the matrix values; benchmarks use uniform-size
    /// batches. Sampled runs leave the tail of the batch unfactorized, so
    /// functional consumers must keep the default.
    size_type sample_limit = 0;
    /// Padded trailing updates in the LU kernel (see getrf_warp).
    bool padded_update = true;
};

struct SimtBatchResult {
    simt::KernelStats stats;    ///< counters summed over emulated warps
    size_type emulated = 0;     ///< number of warps actually emulated
    size_type total = 0;        ///< batch size the launch represents
    FactorizeStatus status;

    /// Counters linearly extrapolated from the emulated sample to the
    /// full batch (exact when emulated == total).
    simt::KernelStats extrapolated() const;
};

template <typename T>
SimtBatchResult getrf_batch_simt(BatchedMatrices<T>& a, BatchedPivots& perm,
                                 const SimtBatchOptions& opts = {});

template <typename T>
SimtBatchResult getrs_batch_simt(const BatchedMatrices<T>& lu,
                                 const BatchedPivots& perm,
                                 BatchedVectors<T>& b,
                                 TrsvVariant variant = TrsvVariant::eager,
                                 const SimtBatchOptions& opts = {});

template <typename T>
SimtBatchResult gauss_huard_batch_simt(BatchedMatrices<T>& a,
                                       BatchedPivots& cperm,
                                       GhStorage storage = GhStorage::standard,
                                       const SimtBatchOptions& opts = {});

template <typename T>
SimtBatchResult gauss_huard_solve_batch_simt(
    const BatchedMatrices<T>& f, const BatchedPivots& cperm,
    BatchedVectors<T>& b, GhStorage storage = GhStorage::standard,
    const SimtBatchOptions& opts = {});

}  // namespace vbatch::core
