// Lane-parallel batched GETRF / GETRS over the interleaved layout,
// written once against the lanes-parametric SIMD facade (src/simd).
//
// This header replaces the per-TU textual stamping of the former
// interleaved_kernel_impl.inc: each per-ISA translation unit
// (vectorized_{scalar,sse2,avx2,avx512,neon}.cpp) instantiates these
// templates with its backend tag, so the same algorithm compiles once
// per vector width with no ODR overlap -- the backend headers only
// activate under the TU's own compile flags.
//
// The algorithm is the implicit-pivoting LU of getrf.cpp verbatim, with
// the matrix index mapped onto the SIMD lane: every scalar operation
// becomes one vector operation serving `width` factorizations, per-lane
// pivot choices are tracked with lane masks (pstate < 0 = row still
// unpivoted), and the only non-contiguous accesses are the per-lane pivot
// row reads, implemented as gathers. All arithmetic is performed with
// explicit mul/sub/div lane operations (never FMA-contracted; the build
// sets -ffp-contract=off so no backend can fuse them either), so the
// results are bitwise identical to the scalar reference on every backend.
#pragma once

#include <cstddef>

#include "base/types.hpp"
#include "simd/simd.hpp"

namespace vbatch::core {

// ---------------------------------------------------------------------
// Chunk kernels: `a`, `perm`, `info` point at the chunk's first lane;
// lanes [0, Simd<T, Backend>::width) of this chunk are processed
// full-width.
// ---------------------------------------------------------------------

/// Implicit-pivoting LU of one lane chunk (the vector twin of
/// getrf_implicit). perm is written as a gather permutation, factors are
/// written back row-permuted; info[l] = 0 or the 1-based breakdown step,
/// and a broken lane's state matches the scalar kernel's early return.
template <typename T, typename Backend>
void getrf_chunk(T* a, index_type* perm, index_type* info,
                 const index_type m, const size_type stride) {
    using V = simd::Simd<T, Backend>;
    using M = typename V::mask;
    constexpr index_type w = V::width;
    if (m == 0) {
        for (index_type l = 0; l < w; ++l) {
            info[l] = 0;
        }
        return;
    }

    // Lane-interleaved workspaces (row index i lives at [i * w .. i*w+w)).
    alignas(64) T pstate[static_cast<std::size_t>(max_block_size) * w];
    alignas(64) T permw[static_cast<std::size_t>(max_block_size) * w];
    alignas(64) T tmp[static_cast<std::size_t>(max_block_size) * w];
    alignas(64) T pivw[w];
    // Per-step caches: the row-index vectors (int->T conversions hoisted
    // out of the hot loops) and the per-row update masks. updm[i] is the
    // mask "row i still updates in this lane" = active & (pstate[i] < 0);
    // it is maintained incrementally (one lane slot cleared per pivot, a
    // lane column wiped when it freezes) rather than recomputed per step.
    V rowidx[max_block_size];
    M updm[max_block_size];

    const V zero = V::zero();
    for (index_type i = 0; i < m; ++i) {
        V::broadcast(T{-1}).store(pstate + static_cast<std::size_t>(i) * w);
        const V idx = V::broadcast(static_cast<T>(i));
        idx.store(permw + static_cast<std::size_t>(i) * w);
        rowidx[i] = idx;
        updm[i] = M::all_lanes();
    }
    M active = M::all_lanes();
    V infov = zero;

    for (index_type k = 0; k < m; ++k) {
        T* colk = a + static_cast<size_type>(k) * m * stride;

        // Implicit pivot selection: per lane, the not-yet-pivoted row with
        // the largest |a(i, k)|; the first candidate is always taken so
        // ties (and NaNs) resolve exactly like the scalar reference.
        // updm doubles as the candidate mask (frozen lanes read all-false,
        // but their scan outputs are never consumed).
        V best = zero;
        V bestval = zero;
        V piv = zero;
        M unseen = M::all_lanes();
        for (index_type i = 0; i < m; ++i) {
            const M cand = updm[i];
            const V value = V::load(colk + static_cast<size_type>(i) * stride);
            const V mag = abs(value);
            const M take = cand & (unseen | (mag > best));
            best = V::select(take, mag, best);
            bestval = V::select(take, value, bestval);
            piv = V::select(take, rowidx[i], piv);
            unseen = andnot(unseen, cand);
        }

        // Exact-zero pivot: freeze the lane (its data and pivot state stop
        // changing, mirroring the scalar early return) and record the step.
        const M broke = active & (best == zero);
        if (broke.any()) {
            infov = V::select(broke, V::broadcast(static_cast<T>(k + 1)),
                              infov);
            active = andnot(active, broke);
            if (!active.any()) {
                break;
            }
            for (index_type i = 0; i < m; ++i) {
                updm[i] = andnot(updm[i], broke);
            }
        }

        V::select(active, piv,
                  V::load(permw + static_cast<std::size_t>(k) * w))
            .store(permw + static_cast<std::size_t>(k) * w);
        // Mark the chosen rows pivoted: one scalar store per active lane
        // beats a masked sweep over all m rows.
        piv.store(pivw);
        const unsigned act = active.bits();
        for (index_type l = 0; l < w; ++l) {
            if ((act >> l) & 1u) {
                const auto row = static_cast<index_type>(pivw[l]);
                pstate[static_cast<std::size_t>(row) * w +
                       static_cast<std::size_t>(l)] = static_cast<T>(k);
                updm[row] = andnot(updm[row], M::only_lane(l));
            }
        }

        // SCAL: divide the unpivoted part of column k by the pivot value
        // (captured during the scan; frozen lanes divide by 1 harmlessly).
        const V d = V::select(active, bestval, V::broadcast(T{1}));
        for (index_type i = 0; i < m; ++i) {
            const M upd = updm[i];
            T* elem = colk + static_cast<size_type>(i) * stride;
            const V x = V::load(elem);
            V::select(upd, x / d, x).store(elem);
        }

        // GER: rank-1 update of the trailing columns on unpivoted rows.
        // Masked rows subtract a zeroed product instead of blending:
        // x - (+0) == x bitwise for every x, so pivoted and frozen rows
        // stay untouched without a select. Column pairs share the mask
        // and multiplier loads.
        index_type j = k + 1;
        for (; j + 1 < m; j += 2) {
            T* colj0 = a + static_cast<size_type>(j) * m * stride;
            T* colj1 = colj0 + static_cast<size_type>(m) * stride;
            const V akj0 = V::gather_rows(colj0, piv, stride);
            const V akj1 = V::gather_rows(colj1, piv, stride);
            for (index_type i = 0; i < m; ++i) {
                const M upd = updm[i];
                const V colk_i =
                    V::load(colk + static_cast<size_type>(i) * stride);
                T* e0 = colj0 + static_cast<size_type>(i) * stride;
                T* e1 = colj1 + static_cast<size_type>(i) * stride;
                (V::load(e0) - V::keep(colk_i * akj0, upd)).store(e0);
                (V::load(e1) - V::keep(colk_i * akj1, upd)).store(e1);
            }
        }
        for (; j < m; ++j) {
            T* colj = a + static_cast<size_type>(j) * m * stride;
            const V akj = V::gather_rows(colj, piv, stride);
            for (index_type i = 0; i < m; ++i) {
                const M upd = updm[i];
                const V colk_i =
                    V::load(colk + static_cast<size_type>(i) * stride);
                T* elem = colj + static_cast<size_type>(i) * stride;
                (V::load(elem) - V::keep(colk_i * akj, upd)).store(elem);
            }
        }
    }

    // Combined row swap for the lanes that completed (the writeback
    // gather the scalar kernel applies at the end).
    const M ok = (infov == zero);
    if (ok.any()) {
        for (index_type j = 0; j < m; ++j) {
            T* colj = a + static_cast<size_type>(j) * m * stride;
            for (index_type r = 0; r < m; ++r) {
                V::load(colj + static_cast<size_type>(r) * stride)
                    .store(tmp + static_cast<std::size_t>(r) * w);
            }
            for (index_type k = 0; k < m; ++k) {
                const V rows =
                    V::load(permw + static_cast<std::size_t>(k) * w);
                const V val =
                    V::gather_rows(tmp, rows, static_cast<size_type>(w));
                T* elem = colj + static_cast<size_type>(k) * stride;
                V::select(ok, val, V::load(elem)).store(elem);
            }
        }
    }

    // Emit per-lane info and the integer permutation; failed lanes get
    // the scalar complete_permutation tail (unpivoted rows in order).
    alignas(64) T infow[w];
    infov.store(infow);
    for (index_type l = 0; l < w; ++l) {
        const auto fail = static_cast<index_type>(infow[l]);
        info[l] = fail;
        if (fail != 0) {
            index_type next = fail - 1;
            for (index_type i = 0; i < m; ++i) {
                if (pstate[static_cast<std::size_t>(i) * w + l] < T{0}) {
                    permw[static_cast<std::size_t>(next++) * w + l] =
                        static_cast<T>(i);
                }
            }
        }
        for (index_type k = 0; k < m; ++k) {
            perm[static_cast<size_type>(k) * stride + l] =
                static_cast<index_type>(
                    permw[static_cast<std::size_t>(k) * w + l]);
        }
    }
}

/// Permute + unit-lower + upper triangular solve of one lane chunk (the
/// vector twin of getrs_single with the eager variant).
template <typename T, typename Backend>
void getrs_chunk(const T* a, const index_type* perm, T* b,
                 const index_type m, const size_type stride) {
    using V = simd::Simd<T, Backend>;
    constexpr index_type w = V::width;
    if (m == 0) {
        return;
    }
    alignas(64) T tmp[static_cast<std::size_t>(max_block_size) * w];

    // b := P b, the gather fused into the load as in the paper's kernel.
    for (index_type k = 0; k < m; ++k) {
        V::gather_rows_i(b, perm + static_cast<size_type>(k) * stride,
                         stride)
            .store(tmp + static_cast<std::size_t>(k) * w);
    }
    for (index_type k = 0; k < m; ++k) {
        V::load(tmp + static_cast<std::size_t>(k) * w)
            .store(b + static_cast<size_type>(k) * stride);
    }

    // Eager (AXPY-based) unit lower triangular solve.
    for (index_type k = 0; k + 1 < m; ++k) {
        const V bk = V::load(b + static_cast<size_type>(k) * stride);
        const T* colk = a + static_cast<size_type>(k) * m * stride;
        for (index_type i = k + 1; i < m; ++i) {
            T* elem = b + static_cast<size_type>(i) * stride;
            const V colk_i =
                V::load(colk + static_cast<size_type>(i) * stride);
            (V::load(elem) - colk_i * bk).store(elem);
        }
    }

    // Eager upper triangular solve.
    for (index_type k = m - 1; k >= 0; --k) {
        const T* colk = a + static_cast<size_type>(k) * m * stride;
        T* bk_elem = b + static_cast<size_type>(k) * stride;
        const V diag = V::load(colk + static_cast<size_type>(k) * stride);
        const V bk = V::load(bk_elem) / diag;
        bk.store(bk_elem);
        for (index_type i = 0; i < k; ++i) {
            T* elem = b + static_cast<size_type>(i) * stride;
            const V colk_i =
                V::load(colk + static_cast<size_type>(i) * stride);
            (V::load(elem) - colk_i * bk).store(elem);
        }
    }
}

}  // namespace vbatch::core
