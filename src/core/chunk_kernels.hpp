// Lane-parallel batched GETRF / GETRS over the interleaved layout,
// written once against the lanes-parametric SIMD facade (src/simd).
//
// This header replaces the per-TU textual stamping of the former
// interleaved_kernel_impl.inc: each per-ISA translation unit
// (vectorized_{scalar,sse2,avx2,avx512,neon}.cpp) instantiates these
// templates with its backend tag, so the same algorithm compiles once
// per vector width with no ODR overlap -- the backend headers only
// activate under the TU's own compile flags.
//
// The algorithm is the implicit-pivoting LU of getrf.cpp verbatim, with
// the matrix index mapped onto the SIMD lane: every scalar operation
// becomes one vector operation serving `width` factorizations, per-lane
// pivot choices are tracked with lane masks (pstate < 0 = row still
// unpivoted), and the only non-contiguous accesses are the per-lane pivot
// row reads, implemented as gathers. All arithmetic is performed with
// explicit mul/sub/div lane operations (never FMA-contracted; the build
// sets -ffp-contract=off so no backend can fuse them either), so the
// results are bitwise identical to the scalar reference on every backend.
#pragma once

#include <cstddef>
#include <limits>

#include "base/types.hpp"
#include "core/pivot_policy.hpp"
#include "core/rbt_scheme.hpp"
#include "simd/simd.hpp"

namespace vbatch::core {

// ---------------------------------------------------------------------
// Chunk kernels: `a`, `perm`, `info` point at the chunk's first lane;
// lanes [0, Simd<T, Backend>::width) of this chunk are processed
// full-width.
// ---------------------------------------------------------------------

/// Implicit-pivoting LU of one lane chunk (the vector twin of
/// getrf_implicit). perm is written as a gather permutation, factors are
/// written back row-permuted; info[l] = 0 or the 1-based breakdown step,
/// and a broken lane's state matches the scalar kernel's early return.
///
/// The PivotPolicy::none instantiation (the vector twin of getrf_nopivot)
/// takes row k as the pivot of step k: the pivot scan, the per-row pivot
/// state, the compare/select mask lattice, the pivot-row `gather_rows`
/// reads, and the final writeback gather all disappear -- the pivot row
/// read becomes one contiguous vector load. perm is written as the
/// identity; lanes with an exact-zero diagonal freeze exactly like the
/// scalar getrf_nopivot early return.
template <typename T, typename Backend,
          PivotPolicy P = PivotPolicy::implicit>
void getrf_chunk(T* a, index_type* perm, index_type* info,
                 const index_type m, const size_type stride) {
    using V = simd::Simd<T, Backend>;
    using M = typename V::mask;
    constexpr index_type w = V::width;
    if (m == 0) {
        for (index_type l = 0; l < w; ++l) {
            info[l] = 0;
        }
        return;
    }

    if constexpr (P == PivotPolicy::none) {
        const V zero = V::zero();
        M active = M::all_lanes();
        V infov = zero;
        for (index_type k = 0; k < m; ++k) {
            T* colk = a + static_cast<size_type>(k) * m * stride;
            const V diag = V::load(colk + static_cast<size_type>(k) * stride);

            // Exact-zero diagonal: freeze the lane (its data stops
            // changing, mirroring the scalar early return).
            const M broke = active & (diag == zero);
            if (broke.any()) {
                infov = V::select(broke, V::broadcast(static_cast<T>(k + 1)),
                                  infov);
                active = andnot(active, broke);
                if (!active.any()) {
                    break;
                }
            }

            // SCAL below the diagonal (frozen lanes divide by 1 harmlessly).
            const V d = V::select(active, diag, V::broadcast(T{1}));
            for (index_type i = k + 1; i < m; ++i) {
                T* elem = colk + static_cast<size_type>(i) * stride;
                const V x = V::load(elem);
                V::select(active, x / d, x).store(elem);
            }

            // GER on the trailing submatrix; the pivot-row element a(k, j)
            // is a contiguous load. Frozen lanes subtract a zeroed product
            // (x - (+0) == x bitwise). Column pairs share the row loads.
            index_type j = k + 1;
            for (; j + 1 < m; j += 2) {
                T* colj0 = a + static_cast<size_type>(j) * m * stride;
                T* colj1 = colj0 + static_cast<size_type>(m) * stride;
                const V akj0 =
                    V::load(colj0 + static_cast<size_type>(k) * stride);
                const V akj1 =
                    V::load(colj1 + static_cast<size_type>(k) * stride);
                for (index_type i = k + 1; i < m; ++i) {
                    const V colk_i =
                        V::load(colk + static_cast<size_type>(i) * stride);
                    T* e0 = colj0 + static_cast<size_type>(i) * stride;
                    T* e1 = colj1 + static_cast<size_type>(i) * stride;
                    (V::load(e0) - V::keep(colk_i * akj0, active)).store(e0);
                    (V::load(e1) - V::keep(colk_i * akj1, active)).store(e1);
                }
            }
            for (; j < m; ++j) {
                T* colj = a + static_cast<size_type>(j) * m * stride;
                const V akj =
                    V::load(colj + static_cast<size_type>(k) * stride);
                for (index_type i = k + 1; i < m; ++i) {
                    const V colk_i =
                        V::load(colk + static_cast<size_type>(i) * stride);
                    T* elem = colj + static_cast<size_type>(i) * stride;
                    (V::load(elem) - V::keep(colk_i * akj, active))
                        .store(elem);
                }
            }
        }
        alignas(64) T infow[w];
        infov.store(infow);
        for (index_type l = 0; l < w; ++l) {
            info[l] = static_cast<index_type>(infow[l]);
            for (index_type k = 0; k < m; ++k) {
                perm[static_cast<size_type>(k) * stride + l] = k;
            }
        }
        return;
    }

    // Lane-interleaved workspaces (row index i lives at [i * w .. i*w+w)).
    alignas(64) T pstate[static_cast<std::size_t>(max_block_size) * w];
    alignas(64) T permw[static_cast<std::size_t>(max_block_size) * w];
    alignas(64) T tmp[static_cast<std::size_t>(max_block_size) * w];
    alignas(64) T pivw[w];
    // Per-step caches: the row-index vectors (int->T conversions hoisted
    // out of the hot loops) and the per-row update masks. updm[i] is the
    // mask "row i still updates in this lane" = active & (pstate[i] < 0);
    // it is maintained incrementally (one lane slot cleared per pivot, a
    // lane column wiped when it freezes) rather than recomputed per step.
    V rowidx[max_block_size];
    M updm[max_block_size];

    const V zero = V::zero();
    for (index_type i = 0; i < m; ++i) {
        V::broadcast(T{-1}).store(pstate + static_cast<std::size_t>(i) * w);
        const V idx = V::broadcast(static_cast<T>(i));
        idx.store(permw + static_cast<std::size_t>(i) * w);
        rowidx[i] = idx;
        updm[i] = M::all_lanes();
    }
    M active = M::all_lanes();
    V infov = zero;

    for (index_type k = 0; k < m; ++k) {
        T* colk = a + static_cast<size_type>(k) * m * stride;

        // Implicit pivot selection: per lane, the not-yet-pivoted row with
        // the largest |a(i, k)|; the first candidate is always taken so
        // ties (and NaNs) resolve exactly like the scalar reference.
        // updm doubles as the candidate mask (frozen lanes read all-false,
        // but their scan outputs are never consumed).
        V best = zero;
        V bestval = zero;
        V piv = zero;
        M unseen = M::all_lanes();
        for (index_type i = 0; i < m; ++i) {
            const M cand = updm[i];
            const V value = V::load(colk + static_cast<size_type>(i) * stride);
            const V mag = abs(value);
            const M take = cand & (unseen | (mag > best));
            best = V::select(take, mag, best);
            bestval = V::select(take, value, bestval);
            piv = V::select(take, rowidx[i], piv);
            unseen = andnot(unseen, cand);
        }

        // Exact-zero pivot: freeze the lane (its data and pivot state stop
        // changing, mirroring the scalar early return) and record the step.
        const M broke = active & (best == zero);
        if (broke.any()) {
            infov = V::select(broke, V::broadcast(static_cast<T>(k + 1)),
                              infov);
            active = andnot(active, broke);
            if (!active.any()) {
                break;
            }
            for (index_type i = 0; i < m; ++i) {
                updm[i] = andnot(updm[i], broke);
            }
        }

        V::select(active, piv,
                  V::load(permw + static_cast<std::size_t>(k) * w))
            .store(permw + static_cast<std::size_t>(k) * w);
        // Mark the chosen rows pivoted: one scalar store per active lane
        // beats a masked sweep over all m rows.
        piv.store(pivw);
        const unsigned act = active.bits();
        for (index_type l = 0; l < w; ++l) {
            if ((act >> l) & 1u) {
                const auto row = static_cast<index_type>(pivw[l]);
                pstate[static_cast<std::size_t>(row) * w +
                       static_cast<std::size_t>(l)] = static_cast<T>(k);
                updm[row] = andnot(updm[row], M::only_lane(l));
            }
        }

        // SCAL: divide the unpivoted part of column k by the pivot value
        // (captured during the scan; frozen lanes divide by 1 harmlessly).
        const V d = V::select(active, bestval, V::broadcast(T{1}));
        for (index_type i = 0; i < m; ++i) {
            const M upd = updm[i];
            T* elem = colk + static_cast<size_type>(i) * stride;
            const V x = V::load(elem);
            V::select(upd, x / d, x).store(elem);
        }

        // GER: rank-1 update of the trailing columns on unpivoted rows.
        // Masked rows subtract a zeroed product instead of blending:
        // x - (+0) == x bitwise for every x, so pivoted and frozen rows
        // stay untouched without a select. Column pairs share the mask
        // and multiplier loads.
        index_type j = k + 1;
        for (; j + 1 < m; j += 2) {
            T* colj0 = a + static_cast<size_type>(j) * m * stride;
            T* colj1 = colj0 + static_cast<size_type>(m) * stride;
            const V akj0 = V::gather_rows(colj0, piv, stride);
            const V akj1 = V::gather_rows(colj1, piv, stride);
            for (index_type i = 0; i < m; ++i) {
                const M upd = updm[i];
                const V colk_i =
                    V::load(colk + static_cast<size_type>(i) * stride);
                T* e0 = colj0 + static_cast<size_type>(i) * stride;
                T* e1 = colj1 + static_cast<size_type>(i) * stride;
                (V::load(e0) - V::keep(colk_i * akj0, upd)).store(e0);
                (V::load(e1) - V::keep(colk_i * akj1, upd)).store(e1);
            }
        }
        for (; j < m; ++j) {
            T* colj = a + static_cast<size_type>(j) * m * stride;
            const V akj = V::gather_rows(colj, piv, stride);
            for (index_type i = 0; i < m; ++i) {
                const M upd = updm[i];
                const V colk_i =
                    V::load(colk + static_cast<size_type>(i) * stride);
                T* elem = colj + static_cast<size_type>(i) * stride;
                (V::load(elem) - V::keep(colk_i * akj, upd)).store(elem);
            }
        }
    }

    // Combined row swap for the lanes that completed (the writeback
    // gather the scalar kernel applies at the end).
    const M ok = (infov == zero);
    if (ok.any()) {
        for (index_type j = 0; j < m; ++j) {
            T* colj = a + static_cast<size_type>(j) * m * stride;
            for (index_type r = 0; r < m; ++r) {
                V::load(colj + static_cast<size_type>(r) * stride)
                    .store(tmp + static_cast<std::size_t>(r) * w);
            }
            for (index_type k = 0; k < m; ++k) {
                const V rows =
                    V::load(permw + static_cast<std::size_t>(k) * w);
                const V val =
                    V::gather_rows(tmp, rows, static_cast<size_type>(w));
                T* elem = colj + static_cast<size_type>(k) * stride;
                V::select(ok, val, V::load(elem)).store(elem);
            }
        }
    }

    // Emit per-lane info and the integer permutation; failed lanes get
    // the scalar complete_permutation tail (unpivoted rows in order).
    alignas(64) T infow[w];
    infov.store(infow);
    for (index_type l = 0; l < w; ++l) {
        const auto fail = static_cast<index_type>(infow[l]);
        info[l] = fail;
        if (fail != 0) {
            index_type next = fail - 1;
            for (index_type i = 0; i < m; ++i) {
                if (pstate[static_cast<std::size_t>(i) * w + l] < T{0}) {
                    permw[static_cast<std::size_t>(next++) * w + l] =
                        static_cast<T>(i);
                }
            }
        }
        for (index_type k = 0; k < m; ++k) {
            perm[static_cast<size_type>(k) * stride + l] =
                static_cast<index_type>(
                    permw[static_cast<std::size_t>(k) * w + l]);
        }
    }
}

/// Permute + unit-lower + upper triangular solve of one lane chunk (the
/// vector twin of getrs_single with the eager variant). The
/// PivotPolicy::none instantiation skips the permutation gather entirely
/// (perm may be null).
template <typename T, typename Backend,
          PivotPolicy P = PivotPolicy::implicit>
void getrs_chunk(const T* a, const index_type* perm, T* b,
                 const index_type m, const size_type stride) {
    using V = simd::Simd<T, Backend>;
    constexpr index_type w = V::width;
    if (m == 0) {
        return;
    }

    if constexpr (P == PivotPolicy::implicit) {
        // b := P b, the gather fused into the load as in the paper's
        // kernel.
        alignas(64) T tmp[static_cast<std::size_t>(max_block_size) * w];
        for (index_type k = 0; k < m; ++k) {
            V::gather_rows_i(b, perm + static_cast<size_type>(k) * stride,
                             stride)
                .store(tmp + static_cast<std::size_t>(k) * w);
        }
        for (index_type k = 0; k < m; ++k) {
            V::load(tmp + static_cast<std::size_t>(k) * w)
                .store(b + static_cast<size_type>(k) * stride);
        }
    } else {
        (void)perm;
    }

    // Eager (AXPY-based) unit lower triangular solve.
    for (index_type k = 0; k + 1 < m; ++k) {
        const V bk = V::load(b + static_cast<size_type>(k) * stride);
        const T* colk = a + static_cast<size_type>(k) * m * stride;
        for (index_type i = k + 1; i < m; ++i) {
            T* elem = b + static_cast<size_type>(i) * stride;
            const V colk_i =
                V::load(colk + static_cast<size_type>(i) * stride);
            (V::load(elem) - colk_i * bk).store(elem);
        }
    }

    // Eager upper triangular solve.
    for (index_type k = m - 1; k >= 0; --k) {
        const T* colk = a + static_cast<size_type>(k) * m * stride;
        T* bk_elem = b + static_cast<size_type>(k) * stride;
        const V diag = V::load(colk + static_cast<size_type>(k) * stride);
        const V bk = V::load(bk_elem) / diag;
        bk.store(bk_elem);
        for (index_type i = 0; i < k; ++i) {
            T* elem = b + static_cast<size_type>(i) * stride;
            const V colk_i =
                V::load(colk + static_cast<size_type>(i) * stride);
            (V::load(elem) - colk_i * bk).store(elem);
        }
    }
}

// ---------------------------------------------------------------------
// Facade-ported pack/scan helpers (formerly scalar loops in
// vectorized.cpp): full-width vector sweeps over one chunk's contiguous
// interleaved storage. `n` counts elements and must be a multiple of the
// backend width; pointers carry the interleaved layout's natural
// alignment (every chunk offset is a multiple of the vector width).
// ---------------------------------------------------------------------

/// Zero fill of a chunk region (the pack prologue before the sparse
/// scatter re-populates the lane slots).
template <typename T, typename Backend>
void pack_zero_chunk(T* vals, const size_type n) {
    using V = simd::Simd<T, Backend>;
    const V z = V::zero();
    for (size_type i = 0; i < n; i += V::width) {
        z.store(vals + i);
    }
}

/// Per-lane max|entry| + non-finite detection over a chunk's values
/// (n = m*m*width). Non-finite entries are excluded from the max and
/// flagged per lane in `nonfinite_bits` (bit l = lane l); `max_entry`
/// receives width values. Pattern zeros can neither raise the max nor be
/// non-finite, so scanning the whole packed chunk equals scanning the
/// gathered entries only.
template <typename T, typename Backend>
void pack_entry_stats_chunk(const T* vals, const size_type n, T* max_entry,
                            unsigned* nonfinite_bits) {
    using V = simd::Simd<T, Backend>;
    using M = typename V::mask;
    const V inf = V::broadcast(std::numeric_limits<T>::infinity());
    V acc = V::zero();
    M allfinite = M::all_lanes();
    for (size_type i = 0; i < n; i += V::width) {
        const V mag = abs(V::load(vals + i));
        // Ordered-quiet compare: NaN < inf and inf < inf are both false.
        const M fin = mag < inf;
        allfinite = allfinite & fin;
        acc = V::select(fin & (mag > acc), mag, acc);
    }
    acc.store(max_entry);
    *nonfinite_bits = andnot(M::all_lanes(), allfinite).bits();
}

/// Per-lane min/max |u_kk| over the U diagonal of a factorized chunk (the
/// post-factorize pivot monitor scan; with implicit pivoting the gathered
/// writeback leaves the selected pivots on the diagonal, without pivoting
/// the diagonal *is* the pivot sequence). Non-finite diagonal entries are
/// excluded from min/max and flagged in `nonfinite_bits`; min_piv/max_piv
/// receive width values each.
template <typename T, typename Backend>
void diag_scan_chunk(const T* lu, const index_type m, const size_type stride,
                     T* min_piv, T* max_piv, unsigned* nonfinite_bits) {
    using V = simd::Simd<T, Backend>;
    using M = typename V::mask;
    const V inf = V::broadcast(std::numeric_limits<T>::infinity());
    V minacc = inf;
    V maxacc = V::zero();
    M allfinite = M::all_lanes();
    for (index_type k = 0; k < m; ++k) {
        const V mag = abs(V::load(
            lu + (static_cast<size_type>(k) * m + k) * stride));
        const M fin = mag < inf;
        allfinite = allfinite & fin;
        minacc = V::select(fin & (mag < minacc), mag, minacc);
        maxacc = V::select(fin & (mag > maxacc), mag, maxacc);
    }
    minacc.store(min_piv);
    maxacc.store(max_piv);
    *nonfinite_bits = andnot(M::all_lanes(), allfinite).bits();
}

// ---------------------------------------------------------------------
// Recursive butterfly transform kernels (core/rbt_scheme.hpp): each lane
// carries its own coefficients, so the tables are lane-interleaved like
// the values -- coef[(t*m + i)*stride + lane] is position i of level t.
// Padding lanes hold coefficient 1 everywhere (their identity matrices
// become W^T W, which is SPD, so the no-pivot kernel never breaks down
// on them). Pair op order is part of the bitwise scalar==SIMD contract
// (core/rbt.cpp mirrors it element for element):
//   B^T: t0 = x0 + x1; t1 = x0 - x1; y0 = r*t0; y1 = s*t1
//   B  : p0 = r*x0;    p1 = s*x1;    y0 = p0 + p1; y1 = p0 - p1
// ---------------------------------------------------------------------

namespace rbt_detail {

/// Apply B^T of one level to `m` interleaved elements at elem(i) =
/// base + i*estride, with level coefficients at coef + i*cstride.
template <typename T, typename Backend>
void butterfly_bt_level(T* base, const T* coef, const index_type m,
                        const index_type level, const size_type estride,
                        const size_type cstride) {
    using V = simd::Simd<T, Backend>;
    rbt::for_each_segment(m, level, [&](index_type lo, index_type len) {
        const index_type p = (len + 1) / 2;
        const index_type q = len - p;
        for (index_type i = 0; i < q; ++i) {
            const V r = V::load(coef + static_cast<size_type>(lo + i) *
                                           cstride);
            const V s = V::load(coef + static_cast<size_type>(lo + p + i) *
                                           cstride);
            T* e0 = base + static_cast<size_type>(lo + i) * estride;
            T* e1 = base + static_cast<size_type>(lo + p + i) * estride;
            const V v0 = V::load(e0);
            const V v1 = V::load(e1);
            const V t0 = v0 + v1;
            const V t1 = v0 - v1;
            (r * t0).store(e0);
            (s * t1).store(e1);
        }
        if (p > q) {
            const V u = V::load(coef + static_cast<size_type>(lo + q) *
                                           cstride);
            T* e = base + static_cast<size_type>(lo + q) * estride;
            (u * V::load(e)).store(e);
        }
    });
}

/// Apply B of one level (same addressing as butterfly_bt_level).
template <typename T, typename Backend>
void butterfly_b_level(T* base, const T* coef, const index_type m,
                       const index_type level, const size_type estride,
                       const size_type cstride) {
    using V = simd::Simd<T, Backend>;
    rbt::for_each_segment(m, level, [&](index_type lo, index_type len) {
        const index_type p = (len + 1) / 2;
        const index_type q = len - p;
        for (index_type i = 0; i < q; ++i) {
            const V r = V::load(coef + static_cast<size_type>(lo + i) *
                                           cstride);
            const V s = V::load(coef + static_cast<size_type>(lo + p + i) *
                                           cstride);
            T* e0 = base + static_cast<size_type>(lo + i) * estride;
            T* e1 = base + static_cast<size_type>(lo + p + i) * estride;
            const V p0 = r * V::load(e0);
            const V p1 = s * V::load(e1);
            (p0 + p1).store(e0);
            (p0 - p1).store(e1);
        }
        if (p > q) {
            const V u = V::load(coef + static_cast<size_type>(lo + q) *
                                           cstride);
            T* e = base + static_cast<size_type>(lo + q) * estride;
            (u * V::load(e)).store(e);
        }
    });
}

}  // namespace rbt_detail

/// Two-sided transform A := U^T A V of one lane chunk. ucoef/vcoef point
/// at the chunk's level tables (depth levels of m interleaved
/// coefficients each). Columns first (U^T A: B^T on row pairs within each
/// column, levels outer->inner), then rows (A V = (V^T A^T)^T: B^T on
/// column pairs, same level order) -- the scalar driver fixes the same
/// order.
template <typename T, typename Backend>
void rbt_transform_chunk(T* a, const T* ucoef, const T* vcoef,
                         const index_type m, const index_type depth,
                         const size_type stride) {
    for (index_type c = 0; c < m; ++c) {
        T* col = a + static_cast<size_type>(c) * m * stride;
        for (index_type t = 0; t < depth; ++t) {
            rbt_detail::butterfly_bt_level<T, Backend>(
                col, ucoef + static_cast<size_type>(t) * m * stride, m, t,
                stride, stride);
        }
    }
    using V = simd::Simd<T, Backend>;
    for (index_type t = 0; t < depth; ++t) {
        const T* lc = vcoef + static_cast<size_type>(t) * m * stride;
        rbt::for_each_segment(m, t, [&](index_type lo, index_type len) {
            const index_type p = (len + 1) / 2;
            const index_type q = len - p;
            for (index_type i = 0; i < q; ++i) {
                const V r = V::load(lc + static_cast<size_type>(lo + i) *
                                             stride);
                const V s = V::load(lc + static_cast<size_type>(lo + p + i) *
                                             stride);
                T* c0 = a + static_cast<size_type>(lo + i) * m * stride;
                T* c1 = a + static_cast<size_type>(lo + p + i) * m * stride;
                for (index_type rr = 0; rr < m; ++rr) {
                    T* e0 = c0 + static_cast<size_type>(rr) * stride;
                    T* e1 = c1 + static_cast<size_type>(rr) * stride;
                    const V v0 = V::load(e0);
                    const V v1 = V::load(e1);
                    const V t0 = v0 + v1;
                    const V t1 = v0 - v1;
                    (r * t0).store(e0);
                    (s * t1).store(e1);
                }
            }
            if (p > q) {
                const V u = V::load(lc + static_cast<size_type>(lo + q) *
                                             stride);
                T* cc = a + static_cast<size_type>(lo + q) * m * stride;
                for (index_type rr = 0; rr < m; ++rr) {
                    T* e = cc + static_cast<size_type>(rr) * stride;
                    (u * V::load(e)).store(e);
                }
            }
        });
    }
}

/// Forward vector transform b := U^T b of one lane chunk (applied to the
/// right-hand side before the pivot-free triangular solves).
template <typename T, typename Backend>
void rbt_forward_chunk(T* b, const T* ucoef, const index_type m,
                       const index_type depth, const size_type stride) {
    for (index_type t = 0; t < depth; ++t) {
        rbt_detail::butterfly_bt_level<T, Backend>(
            b, ucoef + static_cast<size_type>(t) * m * stride, m, t, stride,
            stride);
    }
}

/// Backward vector transform x := V y of one lane chunk (recovers the
/// solution of the untransformed system; levels inner->outer).
template <typename T, typename Backend>
void rbt_backward_chunk(T* x, const T* vcoef, const index_type m,
                        const index_type depth, const size_type stride) {
    for (index_type t = depth - 1; t >= 0; --t) {
        rbt_detail::butterfly_b_level<T, Backend>(
            x, vcoef + static_cast<size_type>(t) * m * stride, m, t, stride,
            stride);
    }
}

}  // namespace vbatch::core
