// Per-ISA entry points of the interleaved chunk kernels (internal).
//
// Each function factorizes / solves one full-width lane chunk of an
// interleaved group; the implementations live in vectorized_{scalar,sse2,
// avx2,avx512,neon}.cpp, which instantiate the backend-generic algorithm
// of core/chunk_kernels.hpp with the respective src/simd backend tag.
// `simd_op_sweep_*` runs the facade operation sweep (simd/op_sweep.hpp)
// at that backend's width so tests can validate every backend from a
// baseline-flags TU. The public dispatching drivers are in vectorized.hpp.
#pragma once

#include "base/types.hpp"
#include "simd/op_sweep.hpp"

namespace vbatch::core {

#define VBATCH_DECLARE_CHUNK_KERNELS(suffix)                                 \
    template <typename T>                                                    \
    void getrf_chunk_##suffix(T* a, index_type* perm, index_type* info,      \
                              index_type m, size_type lane_stride);          \
    template <typename T>                                                    \
    void getrs_chunk_##suffix(const T* lu, const index_type* perm, T* b,     \
                              index_type m, size_type lane_stride);          \
    template <typename T>                                                    \
    void getrf_nopivot_chunk_##suffix(T* a, index_type* perm,                \
                                      index_type* info, index_type m,        \
                                      size_type lane_stride);                \
    template <typename T>                                                    \
    void getrs_nopivot_chunk_##suffix(const T* lu, T* b, index_type m,       \
                                      size_type lane_stride);                \
    template <typename T>                                                    \
    void pack_zero_chunk_##suffix(T* vals, size_type n);                     \
    template <typename T>                                                    \
    void pack_entry_stats_chunk_##suffix(const T* vals, size_type n,         \
                                         T* max_entry,                       \
                                         unsigned* nonfinite_bits);          \
    template <typename T>                                                    \
    void diag_scan_chunk_##suffix(const T* lu, index_type m,                 \
                                  size_type lane_stride, T* min_piv,         \
                                  T* max_piv, unsigned* nonfinite_bits);     \
    template <typename T>                                                    \
    void rbt_transform_chunk_##suffix(T* a, const T* ucoef, const T* vcoef,  \
                                      index_type m, index_type depth,        \
                                      size_type lane_stride);                \
    template <typename T>                                                    \
    void rbt_forward_chunk_##suffix(T* b, const T* ucoef, index_type m,      \
                                    index_type depth,                        \
                                    size_type lane_stride);                  \
    template <typename T>                                                    \
    void rbt_backward_chunk_##suffix(T* x, const T* vcoef, index_type m,     \
                                     index_type depth,                       \
                                     size_type lane_stride);                 \
    template <typename T>                                                    \
    void simd_op_sweep_##suffix(const simd::OpSweepInput<T>& in,             \
                                simd::OpSweepResult<T>& out)

VBATCH_DECLARE_CHUNK_KERNELS(scalar);
VBATCH_DECLARE_CHUNK_KERNELS(sse2);
VBATCH_DECLARE_CHUNK_KERNELS(avx2);
VBATCH_DECLARE_CHUNK_KERNELS(avx512);
VBATCH_DECLARE_CHUNK_KERNELS(neon);

#undef VBATCH_DECLARE_CHUNK_KERNELS

}  // namespace vbatch::core
