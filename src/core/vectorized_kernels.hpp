// Per-ISA entry points of the interleaved chunk kernels (internal).
//
// Each function factorizes / solves one full-width lane chunk of an
// interleaved group; the implementations live in vectorized_{scalar,sse2,
// avx2}.cpp, which compile the shared algorithm of
// interleaved_kernel_impl.inc at the respective vector width. The public
// dispatching drivers are in vectorized.hpp.
#pragma once

#include "base/types.hpp"

namespace vbatch::core {

#define VBATCH_DECLARE_CHUNK_KERNELS(suffix)                                 \
    template <typename T>                                                    \
    void getrf_chunk_##suffix(T* a, index_type* perm, index_type* info,      \
                              index_type m, size_type lane_stride);          \
    template <typename T>                                                    \
    void getrs_chunk_##suffix(const T* lu, const index_type* perm, T* b,     \
                              index_type m, size_type lane_stride)

VBATCH_DECLARE_CHUNK_KERNELS(scalar);
VBATCH_DECLARE_CHUNK_KERNELS(sse2);
VBATCH_DECLARE_CHUNK_KERNELS(avx2);

#undef VBATCH_DECLARE_CHUNK_KERNELS

}  // namespace vbatch::core
