#include "core/trsv.hpp"

#include <array>

#include "base/macros.hpp"
#include "base/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vbatch::core {

template <typename T>
void apply_permutation(std::span<const index_type> perm, std::span<T> b) {
    VBATCH_ENSURE_DIMS(perm.size() == b.size());
    std::array<T, max_block_size> tmp;
    for (std::size_t k = 0; k < b.size(); ++k) {
        tmp[k] = b[static_cast<std::size_t>(perm[k])];
    }
    for (std::size_t k = 0; k < b.size(); ++k) {
        b[k] = tmp[k];
    }
}

template <typename T>
void trsv_lower_unit(ConstMatrixView<T> lu, std::span<T> b,
                     TrsvVariant variant) {
    const index_type m = lu.rows();
    VBATCH_ENSURE_DIMS(m == static_cast<index_type>(b.size()));
    if (variant == TrsvVariant::eager) {
        // AXPY-oriented: after y_k is final, update the trailing vector.
        for (index_type k = 0; k + 1 < m; ++k) {
            const T bk = b[k];
            const T* col = lu.col(k);
            for (index_type i = k + 1; i < m; ++i) {
                b[i] -= col[i] * bk;
            }
        }
    } else {
        // DOT-oriented: finalize y_k from the already-final prefix.
        for (index_type k = 1; k < m; ++k) {
            T acc{};
            for (index_type j = 0; j < k; ++j) {
                acc += lu(k, j) * b[j];
            }
            b[k] -= acc;
        }
    }
}

template <typename T>
void trsv_upper(ConstMatrixView<T> lu, std::span<T> b, TrsvVariant variant) {
    const index_type m = lu.rows();
    VBATCH_ENSURE_DIMS(m == static_cast<index_type>(b.size()));
    if (variant == TrsvVariant::eager) {
        for (index_type k = m - 1; k >= 0; --k) {
            b[k] /= lu(k, k);
            const T bk = b[k];
            const T* col = lu.col(k);
            for (index_type i = 0; i < k; ++i) {
                b[i] -= col[i] * bk;
            }
        }
    } else {
        for (index_type k = m - 1; k >= 0; --k) {
            T acc{};
            for (index_type j = k + 1; j < m; ++j) {
                acc += lu(k, j) * b[j];
            }
            b[k] = (b[k] - acc) / lu(k, k);
        }
    }
}

template <typename T>
void getrs_single(ConstMatrixView<T> lu, std::span<const index_type> perm,
                  std::span<T> b, TrsvVariant variant) {
    apply_permutation(perm, b);
    trsv_lower_unit(lu, b, variant);
    trsv_upper(lu, b, variant);
}

template <typename T>
void getrs_single_nopivot(ConstMatrixView<T> lu, std::span<T> b,
                          TrsvVariant variant) {
    trsv_lower_unit(lu, b, variant);
    trsv_upper(lu, b, variant);
}

template <typename T>
void getrs_batch(const BatchedMatrices<T>& lu, const BatchedPivots& perm,
                 BatchedVectors<T>& b, const TrsvOptions& opts) {
    VBATCH_ENSURE(lu.layout() == perm.layout() && lu.layout() == b.layout(),
                  "batch layouts differ");
    obs::TraceRegion trace("getrs_batch");
    obs::count("trsv.launches");
    obs::count("trsv.problems", static_cast<double>(lu.count()));
    const auto body = [&](size_type i) {
        getrs_single(lu.view(i), perm.span(i), b.span(i), opts.variant);
    };
    if (opts.parallel) {
        ThreadPool::global().parallel_for(0, lu.count(), body,
                                          batch_entry_grain);
    } else {
        for (size_type i = 0; i < lu.count(); ++i) {
            body(i);
        }
    }
}

#define VBATCH_INSTANTIATE_TRSV(T)                                          \
    template void apply_permutation<T>(std::span<const index_type>,          \
                                       std::span<T>);                        \
    template void trsv_lower_unit<T>(ConstMatrixView<T>, std::span<T>,       \
                                     TrsvVariant);                           \
    template void trsv_upper<T>(ConstMatrixView<T>, std::span<T>,            \
                                TrsvVariant);                                \
    template void getrs_single<T>(ConstMatrixView<T>,                        \
                                  std::span<const index_type>, std::span<T>, \
                                  TrsvVariant);                              \
    template void getrs_single_nopivot<T>(ConstMatrixView<T>, std::span<T>,  \
                                          TrsvVariant);                      \
    template void getrs_batch<T>(const BatchedMatrices<T>&,                  \
                                 const BatchedPivots&, BatchedVectors<T>&,   \
                                 const TrsvOptions&)

VBATCH_INSTANTIATE_TRSV(float);
VBATCH_INSTANTIATE_TRSV(double);

#undef VBATCH_INSTANTIATE_TRSV

}  // namespace vbatch::core
