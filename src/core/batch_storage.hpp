// Owning storage for batches of small matrices / vectors / pivot vectors.
//
// One cache-aligned allocation per batch (Per.14/Per.16): problem i's data
// lives at the offsets dictated by the shared BatchLayout. Views are cheap
// and kernels address their slice directly, so batch entries can be
// processed concurrently without sharing writable state.
#pragma once

#include <cmath>
#include <span>
#include <utility>

#include "base/macros.hpp"
#include "base/memory.hpp"
#include "base/random.hpp"
#include "base/span2d.hpp"
#include "base/types.hpp"
#include "core/batch_layout.hpp"

namespace vbatch::core {

/// Batch of square column-major matrices, packed back to back.
template <typename T>
class BatchedMatrices {
public:
    BatchedMatrices() = default;

    explicit BatchedMatrices(BatchLayoutPtr layout)
        : layout_(std::move(layout)),
          values_(AlignedBuffer<T>::zeros(layout_->total_values())) {}

    /// Batch of random diagonally-dominant blocks (the standard
    /// well-conditioned workload of the kernel benchmarks). Entry i's data
    /// depends only on (seed, i), not on the dispatch order.
    static BatchedMatrices random_diagonally_dominant(BatchLayoutPtr layout,
                                                      std::uint64_t seed) {
        BatchedMatrices batch(std::move(layout));
        for (size_type b = 0; b < batch.count(); ++b) {
            auto eng = make_engine(seed, static_cast<std::uint64_t>(b));
            auto v = batch.view(b);
            const index_type m = v.rows();
            for (index_type j = 0; j < m; ++j) {
                for (index_type i = 0; i < m; ++i) {
                    v(i, j) = uniform<T>(eng, T{-1}, T{1});
                }
            }
            for (index_type i = 0; i < m; ++i) {
                T row_sum{};
                for (index_type j = 0; j < m; ++j) {
                    row_sum += std::abs(v(i, j));
                }
                v(i, i) = (v(i, i) >= T{} ? T{1} : T{-1}) * (row_sum + T{1});
            }
        }
        return batch;
    }

    /// Batch of random general (non-dominant) blocks; these exercise the
    /// pivoting logic, since without pivoting most of them would blow up.
    static BatchedMatrices random_general(BatchLayoutPtr layout,
                                          std::uint64_t seed) {
        BatchedMatrices batch(std::move(layout));
        for (size_type b = 0; b < batch.count(); ++b) {
            auto eng = make_engine(seed, static_cast<std::uint64_t>(b));
            auto v = batch.view(b);
            for (index_type j = 0; j < v.cols(); ++j) {
                for (index_type i = 0; i < v.rows(); ++i) {
                    v(i, j) = uniform<T>(eng, T{-1}, T{1});
                }
            }
        }
        return batch;
    }

    const BatchLayout& layout() const noexcept { return *layout_; }
    BatchLayoutPtr layout_ptr() const noexcept { return layout_; }
    size_type count() const noexcept { return layout_->count(); }
    index_type size(size_type i) const noexcept { return layout_->size(i); }

    MatrixView<T> view(size_type i) noexcept {
        const auto m = layout_->size(i);
        return {values_.data() + layout_->value_offset(i), m, m, m};
    }
    ConstMatrixView<T> view(size_type i) const noexcept {
        const auto m = layout_->size(i);
        return {values_.data() + layout_->value_offset(i), m, m, m};
    }

    T* data() noexcept { return values_.data(); }
    const T* data() const noexcept { return values_.data(); }

    BatchedMatrices clone() const {
        BatchedMatrices copy(layout_);
        for (size_type i = 0; i < values_.size(); ++i) {
            copy.values_[i] = values_[i];
        }
        return copy;
    }

private:
    BatchLayoutPtr layout_;
    AlignedBuffer<T> values_;
};

/// Batch of per-problem vectors (right-hand sides / solutions), packed.
template <typename T>
class BatchedVectors {
public:
    BatchedVectors() = default;

    explicit BatchedVectors(BatchLayoutPtr layout)
        : layout_(std::move(layout)),
          values_(AlignedBuffer<T>::zeros(layout_->total_rows())) {}

    static BatchedVectors random(BatchLayoutPtr layout, std::uint64_t seed) {
        BatchedVectors batch(std::move(layout));
        for (size_type b = 0; b < batch.count(); ++b) {
            auto eng = make_engine(seed ^ 0x5eedbeefULL,
                                   static_cast<std::uint64_t>(b));
            auto s = batch.span(b);
            for (auto& v : s) {
                v = uniform<T>(eng, T{-1}, T{1});
            }
        }
        return batch;
    }

    static BatchedVectors ones(BatchLayoutPtr layout) {
        BatchedVectors batch(std::move(layout));
        for (size_type i = 0; i < batch.values_.size(); ++i) {
            batch.values_[i] = T{1};
        }
        return batch;
    }

    const BatchLayout& layout() const noexcept { return *layout_; }
    BatchLayoutPtr layout_ptr() const noexcept { return layout_; }
    size_type count() const noexcept { return layout_->count(); }

    std::span<T> span(size_type i) noexcept {
        return {values_.data() + layout_->row_offset(i),
                static_cast<std::size_t>(layout_->size(i))};
    }
    std::span<const T> span(size_type i) const noexcept {
        return {values_.data() + layout_->row_offset(i),
                static_cast<std::size_t>(layout_->size(i))};
    }

    T* data() noexcept { return values_.data(); }
    const T* data() const noexcept { return values_.data(); }

    BatchedVectors clone() const {
        BatchedVectors copy(layout_);
        for (size_type i = 0; i < values_.size(); ++i) {
            copy.values_[i] = values_[i];
        }
        return copy;
    }

private:
    BatchLayoutPtr layout_;
    AlignedBuffer<T> values_;
};

/// Batch of per-problem pivot/permutation vectors.
class BatchedPivots {
public:
    BatchedPivots() = default;

    explicit BatchedPivots(BatchLayoutPtr layout)
        : layout_(std::move(layout)),
          values_(AlignedBuffer<index_type>::zeros(layout_->total_rows())) {}

    const BatchLayout& layout() const noexcept { return *layout_; }
    size_type count() const noexcept { return layout_->count(); }

    std::span<index_type> span(size_type i) noexcept {
        return {values_.data() + layout_->row_offset(i),
                static_cast<std::size_t>(layout_->size(i))};
    }
    std::span<const index_type> span(size_type i) const noexcept {
        return {values_.data() + layout_->row_offset(i),
                static_cast<std::size_t>(layout_->size(i))};
    }

private:
    BatchLayoutPtr layout_;
    AlignedBuffer<index_type> values_;
};

}  // namespace vbatch::core
