// Variable-size batch descriptor.
//
// A batch is a collection of independent square problems D_0 .. D_{nb-1}
// of (possibly distinct) orders m_i <= 32. The layout maps problem i to
// its slice of one packed allocation:
//
//   values : column-major m_i x m_i blocks at value_offset(i)
//   rows   : per-problem vectors (rhs, pivots) at row_offset(i)
//
// Fixed-size batches (the only thing cuBLAS supports) are the special case
// where all sizes agree; `is_uniform()` lets the vendor baseline reject
// everything else, mirroring the limitation discussed in Section IV of the
// paper.
#pragma once

#include <memory>
#include <vector>

#include "base/types.hpp"

namespace vbatch::core {

class BatchLayout {
public:
    /// Batch of `count` problems, all of order m.
    static BatchLayout uniform(size_type count, index_type m);

    /// Batch with the given per-problem orders (each in [0, 32]).
    explicit BatchLayout(std::vector<index_type> sizes);

    BatchLayout() = default;

    size_type count() const noexcept {
        return static_cast<size_type>(sizes_.size());
    }
    index_type size(size_type i) const noexcept {
        return sizes_[static_cast<std::size_t>(i)];
    }
    const std::vector<index_type>& sizes() const noexcept { return sizes_; }

    /// Offset of problem i's matrix block in the packed values array.
    size_type value_offset(size_type i) const noexcept {
        return value_offsets_[static_cast<std::size_t>(i)];
    }
    /// Offset of problem i's row vector in a packed per-row array.
    size_type row_offset(size_type i) const noexcept {
        return row_offsets_[static_cast<std::size_t>(i)];
    }

    size_type total_values() const noexcept {
        return value_offsets_.empty() ? 0 : value_offsets_.back();
    }
    size_type total_rows() const noexcept {
        return row_offsets_.empty() ? 0 : row_offsets_.back();
    }

    index_type max_size() const noexcept { return max_size_; }
    bool is_uniform() const noexcept { return uniform_; }

    bool operator==(const BatchLayout& other) const noexcept {
        return sizes_ == other.sizes_;
    }

private:
    std::vector<index_type> sizes_;
    std::vector<size_type> value_offsets_;  // count()+1 entries
    std::vector<size_type> row_offsets_;    // count()+1 entries
    index_type max_size_ = 0;
    bool uniform_ = true;

    void build_offsets();
};

using BatchLayoutPtr = std::shared_ptr<const BatchLayout>;

inline BatchLayoutPtr make_layout(std::vector<index_type> sizes) {
    return std::make_shared<const BatchLayout>(std::move(sizes));
}

inline BatchLayoutPtr make_uniform_layout(size_type count, index_type m) {
    return std::make_shared<const BatchLayout>(BatchLayout::uniform(count, m));
}

}  // namespace vbatch::core
