#include "core/batch_layout.hpp"

#include <algorithm>

#include "base/macros.hpp"

namespace vbatch::core {

BatchLayout BatchLayout::uniform(size_type count, index_type m) {
    VBATCH_ENSURE(count >= 0, "negative batch count");
    VBATCH_ENSURE(m >= 0 && m <= max_block_size,
                  "block size out of [0, 32]");
    BatchLayout layout;
    layout.sizes_.assign(static_cast<std::size_t>(count), m);
    layout.build_offsets();
    return layout;
}

BatchLayout::BatchLayout(std::vector<index_type> sizes)
    : sizes_(std::move(sizes)) {
    for (const auto m : sizes_) {
        VBATCH_ENSURE(m >= 0 && m <= max_block_size,
                      "block size out of [0, 32]");
    }
    build_offsets();
}

void BatchLayout::build_offsets() {
    value_offsets_.resize(sizes_.size() + 1);
    row_offsets_.resize(sizes_.size() + 1);
    value_offsets_[0] = 0;
    row_offsets_[0] = 0;
    max_size_ = 0;
    uniform_ = true;
    for (std::size_t i = 0; i < sizes_.size(); ++i) {
        const auto m = sizes_[i];
        value_offsets_[i + 1] =
            value_offsets_[i] + static_cast<size_type>(m) * m;
        row_offsets_[i + 1] = row_offsets_[i] + m;
        max_size_ = std::max(max_size_, m);
        if (m != sizes_[0]) {
            uniform_ = false;
        }
    }
}

}  // namespace vbatch::core
