#include "core/cholesky.hpp"

#include <array>
#include <cmath>

#include "base/macros.hpp"
#include "core/batch_driver.hpp"

namespace vbatch::core {

using simt::first_lanes;
using simt::lane_mask;
using simt::lane_range;
using simt::Reg;
using simt::Warp;

namespace {

/// Kernel body shared by the plain and monitored entry points (the
/// monitor hooks compile away for NoPivotMonitor).
template <typename T, typename Monitor>
index_type potrf_single_impl(MatrixView<T> a, Monitor& mon) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    const index_type m = a.rows();
    if constexpr (Monitor::enabled) {
        // Cholesky only reads the lower triangle.
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = j; i < m; ++i) {
                mon.entry(static_cast<double>(std::abs(a(i, j))));
            }
        }
    }
    // Right-looking variant, mirroring the LU kernel's data flow: at step
    // k, scale column k by 1/sqrt(d) and rank-1 update the trailing
    // lower triangle.
    for (index_type k = 0; k < m; ++k) {
        const T d = a(k, k);
        if (!(d > T{})) {
            return k + 1;  // not positive definite (or NaN)
        }
        if constexpr (Monitor::enabled) {
            mon.pivot(static_cast<double>(d));
        }
        const T s = std::sqrt(d);
        a(k, k) = s;
        T* colk = a.col(k);
        for (index_type i = k + 1; i < m; ++i) {
            colk[i] /= s;
        }
        for (index_type j = k + 1; j < m; ++j) {
            const T ajk = a(j, k);
            T* colj = a.col(j);
            for (index_type i = j; i < m; ++i) {
                colj[i] -= colk[i] * ajk;
            }
        }
    }
    return 0;
}

}  // namespace

template <typename T>
index_type potrf_single(MatrixView<T> a) {
    detail::NoPivotMonitor mon;
    return potrf_single_impl(a, mon);
}

template <typename T>
index_type potrf_single(MatrixView<T> a, FactorInfo& info) {
    detail::PivotMonitor mon;
    const index_type step = potrf_single_impl(a, mon);
    info = mon.finish(step);
    return step;
}

template <typename T>
void potrs_single(ConstMatrixView<T> l, std::span<T> b, TrsvVariant variant) {
    const index_type m = l.rows();
    VBATCH_ENSURE_DIMS(m == static_cast<index_type>(b.size()));
    // Forward solve with L (non-unit diagonal).
    if (variant == TrsvVariant::eager) {
        for (index_type k = 0; k < m; ++k) {
            b[k] /= l(k, k);
            const T bk = b[k];
            const T* col = l.col(k);
            for (index_type i = k + 1; i < m; ++i) {
                b[i] -= col[i] * bk;
            }
        }
        // Backward solve with L^T: column access of L again.
        for (index_type k = m - 1; k >= 0; --k) {
            T acc{};
            const T* col = l.col(k);
            for (index_type i = k + 1; i < m; ++i) {
                acc += col[i] * b[i];
            }
            b[k] = (b[k] - acc) / l(k, k);
        }
    } else {
        for (index_type k = 0; k < m; ++k) {
            T acc{};
            for (index_type j = 0; j < k; ++j) {
                acc += l(k, j) * b[j];
            }
            b[k] = (b[k] - acc) / l(k, k);
        }
        for (index_type k = m - 1; k >= 0; --k) {
            b[k] /= l(k, k);
            const T bk = b[k];
            for (index_type i = 0; i < k; ++i) {
                b[i] -= l(k, i) * bk;
            }
        }
    }
}

template <typename T>
FactorizeStatus potrf_batch(BatchedMatrices<T>& a, const GetrfOptions& opts) {
    return detail::run_factorize_batch(
        a.count(), opts, "batched Cholesky: block not SPD",
        [&](size_type i, FactorInfo* info) {
            return info != nullptr ? potrf_single(a.view(i), *info)
                                   : potrf_single(a.view(i));
        });
}

template <typename T>
void potrs_batch(const BatchedMatrices<T>& l, BatchedVectors<T>& b,
                 const TrsvOptions& opts) {
    VBATCH_ENSURE(l.layout() == b.layout(), "batch layouts differ");
    const auto body = [&](size_type i) {
        potrs_single(l.view(i), b.span(i), opts.variant);
    };
    if (opts.parallel) {
        ThreadPool::global().parallel_for(0, l.count(), body,
                                          batch_entry_grain);
    } else {
        for (size_type i = 0; i < l.count(); ++i) {
            body(i);
        }
    }
}

template <typename T>
index_type potrf_warp(Warp& warp, MatrixView<T> a) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    const index_type m = a.rows();

    // Coalesced column loads; only the lower triangle is needed, but the
    // register file holds the padded row like the LU kernel.
    std::array<Reg<T>, warp_size> A{};
    for (index_type j = 0; j < m; ++j) {
        A[j] = warp.load_global_strided(lane_range(j, m), a.col(j));
    }
    for (index_type k = 0; k < m; ++k) {
        const T d = warp.shfl(A[k], k);
        if (!(d > T{})) {
            return k + 1;
        }
        // sqrt + reciprocal via the slow path, like the division in LU.
        warp.stats().div_instructions += 1;
        const T s = std::sqrt(d);
        Reg<T> sk = A[k];
        sk[k] = s;
        // Scale the subdiagonal of column k.
        const lane_mask below = lane_range(k + 1, m);
        A[k] = warp.div_scalar(below, sk, s, below);
        A[k][k] = s;
        // Padded trailing update of the lower triangle (no pivot search,
        // no permutation writeback -- the structural savings vs LU).
        for (index_type j = k + 1; j < warp_size; ++j) {
            const T ajk = j < m ? warp.shfl(A[k], j) : T{};
            if (j >= m) {
                ++warp.stats().shuffle_instructions;
            }
            const lane_mask active = lane_range(j, warp_size);
            const lane_mask useful = j < m ? lane_range(j, m) : 0u;
            A[j] = warp.fnma_scalar(active, A[k], ajk, A[j], useful);
        }
    }
    // Store the factor columns (lower triangle), coalesced.
    for (index_type j = 0; j < m; ++j) {
        warp.store_global_strided(lane_range(j, m), a.col(j), A[j]);
    }
    return 0;
}

template <typename T>
void potrs_warp(Warp& warp, ConstMatrixView<T> l, std::span<T> b) {
    const index_type m = l.rows();
    VBATCH_ENSURE_DIMS(m == static_cast<index_type>(b.size()));
    const lane_mask rows_m = first_lanes(m);
    auto x = warp.load_global_strided(rows_m, b.data());
    // Forward solve: one coalesced column of L per step.
    std::array<Reg<T>, warp_size> L{};
    for (index_type k = 0; k < m; ++k) {
        L[k] = warp.load_global_strided(lane_range(k, m), l.col(k));
        const T lkk = warp.shfl(L[k], k);
        x = warp.div_scalar(1u << k, x, lkk, 1u << k);
        const T bk = warp.shfl(x, k);
        const lane_mask active = lane_range(k + 1, m);
        x = warp.fnma_scalar(active, L[k], bk, x, active);
    }
    // Backward solve with L^T from the registers (data reuse the LU solve
    // does not have: the factor is read only once).
    for (index_type k = m - 1; k >= 0; --k) {
        const auto prod = warp.mul(lane_range(k + 1, m), L[k], x,
                                   lane_range(k + 1, m));
        const T acc = k + 1 < m
                          ? warp.reduce_sum(lane_range(k + 1, m), prod)
                          : T{};
        const auto accreg = Warp::broadcast_value(acc);
        x = warp.fnma_scalar(1u << k, accreg, T{1}, x, 1u << k);
        const T lkk = warp.shfl(L[k], k);
        x = warp.div_scalar(1u << k, x, lkk, 1u << k);
    }
    warp.store_global_strided(rows_m, b.data(), x);
}

namespace {

template <typename Body>
SimtBatchResult drive_simt(size_type total, const SimtBatchOptions& opts,
                           Body&& body) {
    SimtBatchResult result;
    result.total = total;
    const size_type limit =
        (opts.sample_limit > 0 && opts.sample_limit < total)
            ? opts.sample_limit
            : total;
    Warp warp;
    for (size_type i = 0; i < limit; ++i) {
        const index_type info = body(warp, i);
        if (info != 0) {
            ++result.status.failures;
            if (result.status.first_failure < 0) {
                result.status.first_failure = i;
            }
        }
    }
    result.emulated = limit;
    result.stats = warp.stats();
    return result;
}

}  // namespace

template <typename T>
SimtBatchResult potrf_batch_simt(BatchedMatrices<T>& a,
                                 const SimtBatchOptions& opts) {
    return drive_simt(a.count(), opts, [&](Warp& w, size_type i) {
        return potrf_warp(w, a.view(i));
    });
}

template <typename T>
SimtBatchResult potrs_batch_simt(const BatchedMatrices<T>& l,
                                 BatchedVectors<T>& b,
                                 const SimtBatchOptions& opts) {
    VBATCH_ENSURE(l.layout() == b.layout(), "batch layouts differ");
    return drive_simt(l.count(), opts, [&](Warp& w, size_type i) {
        potrs_warp(w, l.view(i), b.span(i));
        return index_type{0};
    });
}

#define VBATCH_INSTANTIATE_CHOL(T)                                          \
    template index_type potrf_single<T>(MatrixView<T>);                     \
    template index_type potrf_single<T>(MatrixView<T>, FactorInfo&);        \
    template void potrs_single<T>(ConstMatrixView<T>, std::span<T>,         \
                                  TrsvVariant);                             \
    template FactorizeStatus potrf_batch<T>(BatchedMatrices<T>&,            \
                                            const GetrfOptions&);           \
    template void potrs_batch<T>(const BatchedMatrices<T>&,                 \
                                 BatchedVectors<T>&, const TrsvOptions&);   \
    template index_type potrf_warp<T>(Warp&, MatrixView<T>);                \
    template void potrs_warp<T>(Warp&, ConstMatrixView<T>, std::span<T>);   \
    template SimtBatchResult potrf_batch_simt<T>(BatchedMatrices<T>&,       \
                                                 const SimtBatchOptions&);  \
    template SimtBatchResult potrs_batch_simt<T>(const BatchedMatrices<T>&, \
                                                 BatchedVectors<T>&,        \
                                                 const SimtBatchOptions&)

VBATCH_INSTANTIATE_CHOL(float);
VBATCH_INSTANTIATE_CHOL(double);

#undef VBATCH_INSTANTIATE_CHOL

}  // namespace vbatch::core
