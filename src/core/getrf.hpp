// Variable-size batched LU factorization -- the paper's primary
// contribution (Section III.A).
//
// Two algorithmic variants are provided:
//
//  * implicit pivoting (the paper's kernel, Fig. 1 bottom): the pivot row
//    of each elimination step is *selected* but never swapped; a per-row
//    flag records which step a row was pivot of, every remaining row
//    performs the identical SCAL+AXPY regardless of the pivot history, and
//    the accumulated permutation is applied once when the factors are
//    written back. On the GPU this removes all row-exchange data movement;
//    on the CPU backend it is the same algorithm, so the *numerical*
//    behaviour (pivot choices, rounding) matches the emulated kernel
//    bit for bit.
//
//  * explicit pivoting (Fig. 1 top, the classic getrf): rows are swapped
//    in storage at every step. Kept as the ablation baseline.
//
// Both produce identical factors in exact arithmetic; in floating point
// they are bitwise identical too (the same operations execute in the same
// order -- only data movement differs), which the test suite asserts.
//
// Output convention: on exit, problem i's block holds the standard LAPACK
// layout (L strictly below the unit diagonal, U on/above), already row
// permuted, and perm[k] = original index of the row that became pivot row
// k. A right-hand side is prepared for the triangular solves by the gather
// b_new[k] = b[perm[k]] (trsv.hpp fuses this into the load, as the paper's
// kernel does).
#pragma once

#include "core/batch_storage.hpp"
#include "core/block_status.hpp"

namespace vbatch::core {

/// Error-handling policy for singular blocks.
enum class SingularPolicy {
    /// Throw vbatch::SingularMatrix on the first exactly-zero pivot.
    throw_on_breakdown,
    /// Record the failure (see FactorizeStatus) and continue with the
    /// remaining problems; the failed block's factors are unusable.
    report,
};

struct GetrfOptions {
    SingularPolicy on_singular = SingularPolicy::throw_on_breakdown;
    /// Run batch entries on the global thread pool.
    bool parallel = true;
    /// Collect per-block BlockStatus + FactorInfo (pivot growth, smallest
    /// pivot) in the returned FactorizeStatus. The monitored kernels are
    /// compiled separately, so the default fast path is unchanged.
    bool monitor = false;
};

/// Batched LU with implicit partial pivoting (the paper's kernel).
///
/// `a`    : in/out -- blocks overwritten by their (row-permuted) LU factors
/// `perm` : out -- perm[k] = original row index of pivot k
template <typename T>
FactorizeStatus getrf_batch(BatchedMatrices<T>& a, BatchedPivots& perm,
                            const GetrfOptions& opts = {});

/// Batched LU with classic explicit row swaps (ablation baseline).
/// Produces the same factors and the same `perm` as getrf_batch.
template <typename T>
FactorizeStatus getrf_batch_explicit(BatchedMatrices<T>& a,
                                     BatchedPivots& perm,
                                     const GetrfOptions& opts = {});

/// Single-problem implicit-pivoting LU on a view (building block; exposed
/// for tests and for the block-Jacobi setup which factorizes in place).
/// Returns 0 on success or the 1-based step of breakdown.
template <typename T>
index_type getrf_implicit(MatrixView<T> a, std::span<index_type> perm);

/// Monitored variant: identical arithmetic (same pivots, same rounding),
/// additionally fills `info` with the pivot statistics.
template <typename T>
index_type getrf_implicit(MatrixView<T> a, std::span<index_type> perm,
                          FactorInfo& info);

/// Single-problem explicit-pivoting LU producing the same output
/// convention (permuted factors + gather indices).
template <typename T>
index_type getrf_explicit(MatrixView<T> a, std::span<index_type> perm);

/// Single-problem LU *without* pivoting: row k is the pivot of step k, so
/// the pivot scan, the pivot state, and the writeback gather all vanish.
/// Intended for blocks preprocessed with a random butterfly transform
/// (core/rbt.hpp), which makes pivoting statistically unnecessary; an
/// exact-zero diagonal entry still returns the 1-based breakdown step.
/// Bitwise identical to the PivotPolicy::none chunk kernels.
template <typename T>
index_type getrf_nopivot(MatrixView<T> a);

/// Monitored variant: identical arithmetic; the recorded min/max pivots
/// are the diagonal magnitudes |u_kk| (without pivoting the diagonal *is*
/// the pivot sequence).
template <typename T>
index_type getrf_nopivot(MatrixView<T> a, FactorInfo& info);

}  // namespace vbatch::core
