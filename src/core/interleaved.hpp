// Interleaved (structure-of-arrays) storage for same-size batch groups.
//
// The packed BatchedMatrices layout stores each matrix contiguously; a
// SIMD lane that owns one matrix would have to stride across the batch on
// every access. The interleaved layout transposes this *within chunks of
// one vector width*: the group is split into chunks of `lanes` matrices,
// each chunk stored contiguously with element (r, c) of its lanes
// adjacent, so lane l of a vector load/store naturally touches matrix l
// -- the CPU counterpart of the coalesced one-row-per-lane register
// layout of the paper's GPU kernels (and of the interleaved batch solvers
// of Gloster et al., PAPERS.md). Interleaving chunk-locally (rather than
// across the whole group) keeps a chunk's working set at m*m*lanes
// elements -- L1-resident for every m <= 32 -- where group-wide
// interleaving would spread consecutive rows of one matrix pages apart.
//
// With chunk = l / lanes and lane = l % lanes:
//   values[(chunk*m*m + c*m + r) * lanes + lane] = element (r, c) of
//                                                  matrix l
//   pivots[(chunk*m + k) * lanes + lane]         = perm[k] of matrix l
//   info[l]                                      = 0 or 1-based
//                                                  breakdown step
//
// lane_stride is the group count rounded up to the SIMD width of the ISA
// the group was built for; padding lanes hold identity matrices so the
// kernels can run full-width without masking the tail chunk.
#pragma once

#include <span>
#include <vector>

#include "base/memory.hpp"
#include "core/batch_storage.hpp"
#include "core/simd_dispatch.hpp"

namespace vbatch::core {

template <typename T>
class InterleavedGroup {
public:
    InterleavedGroup() = default;

    /// Group of `count` matrices of order m, laid out for `isa`.
    InterleavedGroup(index_type m, size_type count, SimdIsa isa);

    index_type size() const noexcept { return m_; }
    size_type count() const noexcept { return count_; }
    SimdIsa isa() const noexcept { return isa_; }
    index_type lanes() const noexcept { return lanes_; }
    /// Padded lane count (multiple of lanes()).
    size_type lane_stride() const noexcept { return stride_; }
    size_type chunks() const noexcept { return stride_ / lanes_; }

    T* values() noexcept { return values_.data(); }
    const T* values() const noexcept { return values_.data(); }
    index_type* pivots() noexcept { return pivots_.data(); }
    const index_type* pivots() const noexcept { return pivots_.data(); }
    index_type* info() noexcept { return info_.data(); }
    const index_type* info() const noexcept { return info_.data(); }

    /// Element (r, c) of lane l (bounds unchecked; for tests/pack code).
    size_type value_index(index_type r, index_type c,
                          size_type l) const noexcept {
        return ((l / lanes_) * m_ * m_ + static_cast<size_type>(c) * m_ +
                r) * lanes_ + l % lanes_;
    }

    /// Pivot entry k of lane l.
    size_type pivot_index(index_type k, size_type l) const noexcept {
        return ((l / lanes_) * m_ + k) * lanes_ + l % lanes_;
    }

    /// Gather blocks src[idx[l]] into lanes l = 0..idx.size()-1. The group
    /// count must equal idx.size(); every block must have order size().
    void pack_matrices(const BatchedMatrices<T>& src,
                       std::span<const size_type> idx);
    void pack_pivots(const BatchedPivots& src,
                     std::span<const size_type> idx);

    /// Scatter lanes back into dst[idx[l]] (padding lanes are dropped).
    void unpack_matrices(BatchedMatrices<T>& dst,
                         std::span<const size_type> idx) const;
    void unpack_pivots(BatchedPivots& dst,
                       std::span<const size_type> idx) const;

    /// Chunk-local unpack: scatter only the lanes of `chunk` (the fused
    /// setup pass writes factors back while the chunk is cache-hot). idx
    /// spans the whole group, exactly as in unpack_matrices.
    void unpack_matrices_chunk(BatchedMatrices<T>& dst,
                               std::span<const size_type> idx,
                               size_type chunk) const;
    void unpack_pivots_chunk(BatchedPivots& dst,
                             std::span<const size_type> idx,
                             size_type chunk) const;

private:
    index_type m_ = 0;
    size_type count_ = 0;
    SimdIsa isa_ = SimdIsa::scalar;
    index_type lanes_ = 1;
    size_type stride_ = 0;
    AlignedBuffer<T> values_;
    AlignedBuffer<index_type> pivots_;
    AlignedBuffer<index_type> info_;
};

/// Interleaved right-hand-side / solution vectors matching an
/// InterleavedGroup: values[(chunk*m + i) * lanes + lane] = element i of
/// lane l (chunk-local, like the matrix storage).
template <typename T>
class InterleavedVectors {
public:
    InterleavedVectors() = default;
    InterleavedVectors(index_type m, size_type count, SimdIsa isa);

    index_type size() const noexcept { return m_; }
    size_type count() const noexcept { return count_; }
    index_type lanes() const noexcept { return lanes_; }
    size_type lane_stride() const noexcept { return stride_; }

    /// Element i of lane l (bounds unchecked; for tests/pack code).
    size_type value_index(index_type i, size_type l) const noexcept {
        return ((l / lanes_) * m_ + i) * lanes_ + l % lanes_;
    }

    T* values() noexcept { return values_.data(); }
    const T* values() const noexcept { return values_.data(); }

    void pack(const BatchedVectors<T>& src, std::span<const size_type> idx);
    void unpack(BatchedVectors<T>& dst,
                std::span<const size_type> idx) const;

    /// Gather/scatter per-block segments of a flat vector laid out by
    /// `layout` row offsets (the block-Jacobi apply path).
    void pack_flat(std::span<const T> x, const BatchLayout& layout,
                   std::span<const size_type> idx);
    void unpack_flat(std::span<T> x, const BatchLayout& layout,
                     std::span<const size_type> idx) const;

private:
    index_type m_ = 0;
    size_type count_ = 0;
    index_type lanes_ = 1;
    size_type stride_ = 0;
    AlignedBuffer<T> values_;
};

}  // namespace vbatch::core
