// Variable-size batched Cholesky factorization -- the paper's announced
// future work ("a Cholesky-based variant for symmetric positive definite
// problems", Section V), implemented in the same register-resident,
// one-warp-per-problem style as the LU kernel.
//
// For an SPD block D_i = L L^T no pivoting is required, which removes the
// pivot reduction and the permutation writeback entirely and halves the
// factorization flops (m^3/3). The solve is the usual pair of triangular
// solves with L and L^T.
#pragma once

#include "core/batch_storage.hpp"
#include "core/getrf.hpp"
#include "core/simt_kernels.hpp"
#include "core/trsv.hpp"

namespace vbatch::core {

/// Single-problem in-place Cholesky: the lower triangle of `a` is
/// overwritten with L; the strict upper triangle is left untouched.
/// Returns 0 on success or the 1-based step at which the matrix was found
/// to be not positive definite.
template <typename T>
index_type potrf_single(MatrixView<T> a);

/// Monitored variant: identical arithmetic, additionally fills `info`
/// with the diagonal-pivot statistics (the pivots are the d_kk before
/// the square root, so min_pivot/max_entry is on the matrix scale).
template <typename T>
index_type potrf_single(MatrixView<T> a, FactorInfo& info);

/// Single-problem solve L L^T x = b from potrf_single factors; b is
/// overwritten with x.
template <typename T>
void potrs_single(ConstMatrixView<T> l, std::span<T> b,
                  TrsvVariant variant = TrsvVariant::eager);

/// Batched Cholesky; failures follow the same policy as getrf_batch.
template <typename T>
FactorizeStatus potrf_batch(BatchedMatrices<T>& a,
                            const GetrfOptions& opts = {});

/// Batched solve from potrf_batch factors.
template <typename T>
void potrs_batch(const BatchedMatrices<T>& l, BatchedVectors<T>& b,
                 const TrsvOptions& opts = {});

/// Warp-emulated Cholesky (one warp per problem, one row per lane).
template <typename T>
index_type potrf_warp(simt::Warp& warp, MatrixView<T> a);

/// Warp-emulated solve.
template <typename T>
void potrs_warp(simt::Warp& warp, ConstMatrixView<T> l, std::span<T> b);

/// Instrumented batch drivers (figure-bench style).
template <typename T>
SimtBatchResult potrf_batch_simt(BatchedMatrices<T>& a,
                                 const SimtBatchOptions& opts = {});
template <typename T>
SimtBatchResult potrs_batch_simt(const BatchedMatrices<T>& l,
                                 BatchedVectors<T>& b,
                                 const SimtBatchOptions& opts = {});

/// Nominal flops of one m x m Cholesky factorization.
inline double potrf_flops(index_type m) {
    const double d = m;
    return d * d * d / 3.0;
}

}  // namespace vbatch::core
