#include "core/packed_kernels.hpp"

#include <array>
#include <cmath>

#include "base/macros.hpp"

namespace vbatch::core {

using simt::first_lanes;
using simt::lane_mask;
using simt::Reg;
using simt::Warp;

namespace {

constexpr index_type half = warp_size / 2;

/// Mask with the rows of both problems: lanes [0, m) and [16, 16 + m).
constexpr lane_mask both_halves(index_type m) {
    return first_lanes(m) | (first_lanes(m) << half);
}

}  // namespace

template <typename T>
index_type getrf_warp_packed2(Warp& warp, MatrixView<T> a0, MatrixView<T> a1,
                              std::span<index_type> perm0,
                              std::span<index_type> perm1) {
    VBATCH_ENSURE_DIMS(a0.rows() == a0.cols() && a1.rows() == a1.cols());
    VBATCH_ENSURE(a0.rows() == a1.rows(), "packed problems must match");
    const index_type m = a0.rows();
    VBATCH_ENSURE(m <= half, "packed kernel handles m <= 16");
    const lane_mask rows2 = both_halves(m);

    // One coalesced load per column serves both problems.
    std::array<Reg<T>, half> A{};
    for (index_type j = 0; j < m; ++j) {
        Reg<const T*> addr{};
        Warp::for_each_lane(rows2, [&](int l) {
            addr[l] = l < half ? a0.col(j) + l : a1.col(j) + (l - half);
        });
        A[j] = warp.load_global(rows2, addr);
    }

    // Padding only to the half-warp width: lanes [m, 16) and [16+m, 32)
    // idle entirely instead of joining every update.
    lane_mask unpivoted = both_halves(half);
    index_type info = 0;
    for (index_type k = 0; k < m; ++k) {
        const auto piv = warp.reduce_absmax_halves(unpivoted & rows2, A[k]);
        if (piv[0].first == T{} || piv[1].first == T{}) {
            info = piv[0].first == T{} ? (k + 1) : -(k + 1);
            break;
        }
        perm0[k] = piv[0].second;
        perm1[k] = piv[1].second - half;
        unpivoted &= ~((1u << piv[0].second) | (1u << piv[1].second));

        // Broadcast each half's pivot row elements with one indexed
        // shuffle per column.
        Reg<index_type> src{};
        for (int l = 0; l < warp_size; ++l) {
            src[l] = l < half ? piv[0].second : piv[1].second;
        }
        const auto d = warp.shfl_indexed(simt::full_mask, A[k], src);
        A[k] = warp.div(unpivoted, A[k], d, unpivoted & rows2);
        for (index_type j = k + 1; j < half; ++j) {
            const auto akj = warp.shfl_indexed(simt::full_mask, A[j], src);
            const lane_mask useful = j < m ? (unpivoted & rows2) : 0u;
            A[j] = warp.fnma(unpivoted, A[k], akj, A[j], useful);
        }
    }
    if (info != 0) {
        // Leave the unfinished factors; callers treat the pair as failed.
        return info;
    }

    // Fused permutation writeback, both problems per store.
    Reg<index_type> gather{};
    for (index_type l = 0; l < m; ++l) {
        gather[l] = perm0[l];
        gather[l + half] = perm1[l] + half;
    }
    for (index_type j = 0; j < m; ++j) {
        const auto permuted = warp.shfl_indexed(rows2, A[j], gather);
        Reg<T*> addr{};
        Warp::for_each_lane(rows2, [&](int l) {
            addr[l] = l < half ? a0.col(j) + l : a1.col(j) + (l - half);
        });
        warp.store_global(rows2, addr, permuted);
    }
    Reg<index_type> permreg{};
    Reg<index_type*> paddr{};
    for (index_type l = 0; l < m; ++l) {
        permreg[l] = perm0[l];
        permreg[l + half] = perm1[l];
        paddr[l] = perm0.data() + l;
        paddr[l + half] = perm1.data() + l;
    }
    warp.store_global(rows2, paddr, permreg);
    return 0;
}

template <typename T>
void getrs_warp_packed2(Warp& warp, ConstMatrixView<T> lu0,
                        ConstMatrixView<T> lu1,
                        std::span<const index_type> perm0,
                        std::span<const index_type> perm1, std::span<T> b0,
                        std::span<T> b1) {
    const index_type m = lu0.rows();
    VBATCH_ENSURE(m == lu1.rows() && m <= half,
                  "packed solve handles equal sizes m <= 16");
    const lane_mask rows2 = both_halves(m);

    // Load the pivots and b with the permutation fused, both halves at
    // once.
    Reg<const index_type*> pa{};
    Warp::for_each_lane(rows2, [&](int l) {
        pa[l] = l < half ? perm0.data() + l : perm1.data() + (l - half);
    });
    const auto gather = warp.load_global(rows2, pa);
    Reg<const T*> ba{};
    Warp::for_each_lane(rows2, [&](int l) {
        ba[l] = l < half ? b0.data() + gather[l]
                         : b1.data() + gather[l];
    });
    auto x = warp.load_global(rows2, ba);

    const auto bcast = [&](const Reg<T>& v, index_type k) {
        Reg<index_type> src{};
        for (int l = 0; l < warp_size; ++l) {
            src[l] = l < half ? k : k + half;
        }
        return warp.shfl_indexed(simt::full_mask, v, src);
    };

    // Unit lower solve, one packed column load per step.
    for (index_type k = 0; k + 1 < m; ++k) {
        const lane_mask active = both_halves(m) &
                                 ~both_halves(k + 1);
        Reg<const T*> la{};
        Warp::for_each_lane(active, [&](int l) {
            la[l] = l < half ? lu0.col(k) + l : lu1.col(k) + (l - half);
        });
        const auto lcol = warp.load_global(active, la);
        const auto bk = bcast(x, k);
        x = warp.fnma(active, lcol, bk, x, active);
    }
    // Upper solve.
    for (index_type k = m - 1; k >= 0; --k) {
        const lane_mask upto = both_halves(k + 1);
        Reg<const T*> ua{};
        Warp::for_each_lane(upto, [&](int l) {
            ua[l] = l < half ? lu0.col(k) + l : lu1.col(k) + (l - half);
        });
        const auto ucol = warp.load_global(upto, ua);
        const auto ukk = bcast(ucol, k);
        const lane_mask diag = (1u << k) | (1u << (k + half));
        x = warp.div(diag & rows2, x, ukk, diag & rows2);
        const auto bk = bcast(x, k);
        const lane_mask above = both_halves(k);
        x = warp.fnma(above, ucol, bk, x, above);
    }

    Reg<T*> out{};
    Warp::for_each_lane(rows2, [&](int l) {
        out[l] = l < half ? b0.data() + l : b1.data() + (l - half);
    });
    warp.store_global(rows2, out, x);
}

namespace {

template <typename Body>
SimtBatchResult drive_pairs(size_type total, const SimtBatchOptions& opts,
                            Body&& body) {
    SimtBatchResult result;
    result.total = total;
    size_type limit = (opts.sample_limit > 0 && opts.sample_limit < total)
                          ? opts.sample_limit
                          : total;
    limit -= limit % 2;  // sample whole pairs
    Warp warp;
    for (size_type i = 0; i + 1 < limit; i += 2) {
        const index_type info = body(warp, i);
        if (info != 0) {
            ++result.status.failures;
            if (result.status.first_failure < 0) {
                result.status.first_failure = info > 0 ? i : i + 1;
            }
        }
    }
    result.emulated = limit;
    result.stats = warp.stats();
    return result;
}

}  // namespace

template <typename T>
SimtBatchResult getrf_batch_simt_packed(BatchedMatrices<T>& a,
                                        BatchedPivots& perm,
                                        const SimtBatchOptions& opts) {
    VBATCH_ENSURE(a.layout() == perm.layout(), "batch layouts differ");
    VBATCH_ENSURE(a.layout().is_uniform() && a.layout().max_size() <= half,
                  "packed kernels need a uniform batch with m <= 16");
    auto result = drive_pairs(a.count(), opts, [&](Warp& w, size_type i) {
        return getrf_warp_packed2(w, a.view(i), a.view(i + 1),
                                  perm.span(i), perm.span(i + 1));
    });
    // Odd tail (and functional completeness when sampling is off): run the
    // remaining problems through the full-warp kernel.
    if (opts.sample_limit == 0 && a.count() % 2 == 1) {
        Warp w;
        const auto last = a.count() - 1;
        if (getrf_warp(w, a.view(last), perm.span(last)) != 0) {
            ++result.status.failures;
        }
        result.stats += w.stats();
        result.emulated = a.count();
    }
    return result;
}

template <typename T>
SimtBatchResult getrs_batch_simt_packed(const BatchedMatrices<T>& lu,
                                        const BatchedPivots& perm,
                                        BatchedVectors<T>& b,
                                        const SimtBatchOptions& opts) {
    VBATCH_ENSURE(lu.layout() == perm.layout() && lu.layout() == b.layout(),
                  "batch layouts differ");
    VBATCH_ENSURE(lu.layout().is_uniform() &&
                      lu.layout().max_size() <= half,
                  "packed kernels need a uniform batch with m <= 16");
    auto result = drive_pairs(lu.count(), opts, [&](Warp& w, size_type i) {
        getrs_warp_packed2(w, lu.view(i), lu.view(i + 1), perm.span(i),
                           perm.span(i + 1), b.span(i), b.span(i + 1));
        return index_type{0};
    });
    if (opts.sample_limit == 0 && lu.count() % 2 == 1) {
        Warp w;
        const auto last = lu.count() - 1;
        getrs_warp(w, lu.view(last), perm.span(last), b.span(last));
        result.stats += w.stats();
        result.emulated = lu.count();
    }
    return result;
}

#define VBATCH_INSTANTIATE_PACKED(T)                                        \
    template index_type getrf_warp_packed2<T>(                              \
        Warp&, MatrixView<T>, MatrixView<T>, std::span<index_type>,         \
        std::span<index_type>);                                             \
    template void getrs_warp_packed2<T>(                                    \
        Warp&, ConstMatrixView<T>, ConstMatrixView<T>,                      \
        std::span<const index_type>, std::span<const index_type>,           \
        std::span<T>, std::span<T>);                                        \
    template SimtBatchResult getrf_batch_simt_packed<T>(                    \
        BatchedMatrices<T>&, BatchedPivots&, const SimtBatchOptions&);      \
    template SimtBatchResult getrs_batch_simt_packed<T>(                    \
        const BatchedMatrices<T>&, const BatchedPivots&,                    \
        BatchedVectors<T>&, const SimtBatchOptions&)

VBATCH_INSTANTIATE_PACKED(float);
VBATCH_INSTANTIATE_PACKED(double);

#undef VBATCH_INSTANTIATE_PACKED

}  // namespace vbatch::core
