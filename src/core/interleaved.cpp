#include "core/interleaved.hpp"

#include <algorithm>

#include "base/macros.hpp"

namespace vbatch::core {

namespace {

size_type padded_stride(size_type count, index_type lanes) {
    const size_type l = lanes;
    return (count + l - 1) / l * l;
}

}  // namespace

template <typename T>
InterleavedGroup<T>::InterleavedGroup(index_type m, size_type count,
                                      SimdIsa isa)
    : m_(m),
      count_(count),
      isa_(isa),
      lanes_(simd_lanes<T>(isa)),
      stride_(padded_stride(count, lanes_)),
      values_(AlignedBuffer<T>::zeros(static_cast<size_type>(m) * m *
                                      stride_)),
      pivots_(AlignedBuffer<index_type>::zeros(static_cast<size_type>(m) *
                                               stride_)),
      info_(AlignedBuffer<index_type>::zeros(stride_)) {
    VBATCH_ENSURE(m >= 0 && m <= max_block_size,
                  "block size out of range for interleaved group");
    VBATCH_ENSURE(count >= 1, "interleaved group must not be empty");
    // Guard against a width the kernels cannot actually run at: the chunk
    // kernels for an unavailable ISA fall back to 1-lane code, which would
    // silently skip all but the first lane of every chunk.
    VBATCH_ENSURE(simd_isa_available(isa),
                  "requested SIMD ISA is not available in this build");
    // Padding lanes: identity matrices with identity pivots, so full-width
    // kernels never divide by zero or report phantom breakdowns there.
    for (size_type l = count_; l < stride_; ++l) {
        for (index_type d = 0; d < m_; ++d) {
            values_[value_index(d, d, l)] = T{1};
            pivots_[pivot_index(d, l)] = d;
        }
    }
}

template <typename T>
void InterleavedGroup<T>::pack_matrices(const BatchedMatrices<T>& src,
                                        std::span<const size_type> idx) {
    VBATCH_ENSURE(static_cast<size_type>(idx.size()) == count_,
                  "index list does not match group count");
    for (size_type l = 0; l < count_; ++l) {
        const auto v = src.view(idx[static_cast<std::size_t>(l)]);
        VBATCH_ENSURE_DIMS(v.rows() == m_);
        for (index_type c = 0; c < m_; ++c) {
            const T* col = v.col(c);
            T* dst = values_.data() + value_index(0, c, l);
            for (index_type r = 0; r < m_; ++r) {
                dst[static_cast<size_type>(r) * lanes_] = col[r];
            }
        }
    }
}

template <typename T>
void InterleavedGroup<T>::pack_pivots(const BatchedPivots& src,
                                      std::span<const size_type> idx) {
    VBATCH_ENSURE(static_cast<size_type>(idx.size()) == count_,
                  "index list does not match group count");
    for (size_type l = 0; l < count_; ++l) {
        const auto p = src.span(idx[static_cast<std::size_t>(l)]);
        VBATCH_ENSURE_DIMS(static_cast<index_type>(p.size()) == m_);
        for (index_type k = 0; k < m_; ++k) {
            pivots_[pivot_index(k, l)] = p[static_cast<std::size_t>(k)];
        }
    }
}

template <typename T>
void InterleavedGroup<T>::unpack_matrices(
    BatchedMatrices<T>& dst, std::span<const size_type> idx) const {
    VBATCH_ENSURE(static_cast<size_type>(idx.size()) == count_,
                  "index list does not match group count");
    for (size_type l = 0; l < count_; ++l) {
        auto v = dst.view(idx[static_cast<std::size_t>(l)]);
        VBATCH_ENSURE_DIMS(v.rows() == m_);
        for (index_type c = 0; c < m_; ++c) {
            T* col = v.col(c);
            const T* src = values_.data() + value_index(0, c, l);
            for (index_type r = 0; r < m_; ++r) {
                col[r] = src[static_cast<size_type>(r) * lanes_];
            }
        }
    }
}

template <typename T>
void InterleavedGroup<T>::unpack_pivots(
    BatchedPivots& dst, std::span<const size_type> idx) const {
    VBATCH_ENSURE(static_cast<size_type>(idx.size()) == count_,
                  "index list does not match group count");
    for (size_type l = 0; l < count_; ++l) {
        auto p = dst.span(idx[static_cast<std::size_t>(l)]);
        VBATCH_ENSURE_DIMS(static_cast<index_type>(p.size()) == m_);
        for (index_type k = 0; k < m_; ++k) {
            p[static_cast<std::size_t>(k)] = pivots_[pivot_index(k, l)];
        }
    }
}

template <typename T>
void InterleavedGroup<T>::unpack_matrices_chunk(
    BatchedMatrices<T>& dst, std::span<const size_type> idx,
    size_type chunk) const {
    VBATCH_ENSURE(static_cast<size_type>(idx.size()) == count_,
                  "index list does not match group count");
    const size_type lane_lo = chunk * lanes_;
    const size_type lane_hi = std::min(lane_lo + lanes_, count_);
    for (size_type l = lane_lo; l < lane_hi; ++l) {
        auto v = dst.view(idx[static_cast<std::size_t>(l)]);
        VBATCH_ENSURE_DIMS(v.rows() == m_);
        for (index_type c = 0; c < m_; ++c) {
            T* col = v.col(c);
            const T* src = values_.data() + value_index(0, c, l);
            for (index_type r = 0; r < m_; ++r) {
                col[r] = src[static_cast<size_type>(r) * lanes_];
            }
        }
    }
}

template <typename T>
void InterleavedGroup<T>::unpack_pivots_chunk(BatchedPivots& dst,
                                              std::span<const size_type> idx,
                                              size_type chunk) const {
    VBATCH_ENSURE(static_cast<size_type>(idx.size()) == count_,
                  "index list does not match group count");
    const size_type lane_lo = chunk * lanes_;
    const size_type lane_hi = std::min(lane_lo + lanes_, count_);
    for (size_type l = lane_lo; l < lane_hi; ++l) {
        auto p = dst.span(idx[static_cast<std::size_t>(l)]);
        VBATCH_ENSURE_DIMS(static_cast<index_type>(p.size()) == m_);
        for (index_type k = 0; k < m_; ++k) {
            p[static_cast<std::size_t>(k)] = pivots_[pivot_index(k, l)];
        }
    }
}

template <typename T>
InterleavedVectors<T>::InterleavedVectors(index_type m, size_type count,
                                          SimdIsa isa)
    : m_(m),
      count_(count),
      lanes_(simd_lanes<T>(isa)),
      stride_(padded_stride(count, lanes_)),
      values_(AlignedBuffer<T>::zeros(static_cast<size_type>(m) * stride_)) {
    VBATCH_ENSURE(m >= 0 && m <= max_block_size,
                  "vector size out of range for interleaved group");
    VBATCH_ENSURE(count >= 1, "interleaved group must not be empty");
    VBATCH_ENSURE(simd_isa_available(isa),
                  "requested SIMD ISA is not available in this build");
}

template <typename T>
void InterleavedVectors<T>::pack(const BatchedVectors<T>& src,
                                 std::span<const size_type> idx) {
    VBATCH_ENSURE(static_cast<size_type>(idx.size()) == count_,
                  "index list does not match group count");
    for (size_type l = 0; l < count_; ++l) {
        const auto s = src.span(idx[static_cast<std::size_t>(l)]);
        VBATCH_ENSURE_DIMS(static_cast<index_type>(s.size()) == m_);
        for (index_type i = 0; i < m_; ++i) {
            values_[value_index(i, l)] = s[static_cast<std::size_t>(i)];
        }
    }
}

template <typename T>
void InterleavedVectors<T>::unpack(BatchedVectors<T>& dst,
                                   std::span<const size_type> idx) const {
    VBATCH_ENSURE(static_cast<size_type>(idx.size()) == count_,
                  "index list does not match group count");
    for (size_type l = 0; l < count_; ++l) {
        auto s = dst.span(idx[static_cast<std::size_t>(l)]);
        VBATCH_ENSURE_DIMS(static_cast<index_type>(s.size()) == m_);
        for (index_type i = 0; i < m_; ++i) {
            s[static_cast<std::size_t>(i)] = values_[value_index(i, l)];
        }
    }
}

template <typename T>
void InterleavedVectors<T>::pack_flat(std::span<const T> x,
                                      const BatchLayout& layout,
                                      std::span<const size_type> idx) {
    VBATCH_ENSURE(static_cast<size_type>(idx.size()) == count_,
                  "index list does not match group count");
    for (size_type l = 0; l < count_; ++l) {
        const size_type b = idx[static_cast<std::size_t>(l)];
        VBATCH_ENSURE_DIMS(layout.size(b) == m_);
        const T* src = x.data() + layout.row_offset(b);
        for (index_type i = 0; i < m_; ++i) {
            values_[value_index(i, l)] = src[i];
        }
    }
}

template <typename T>
void InterleavedVectors<T>::unpack_flat(
    std::span<T> x, const BatchLayout& layout,
    std::span<const size_type> idx) const {
    VBATCH_ENSURE(static_cast<size_type>(idx.size()) == count_,
                  "index list does not match group count");
    for (size_type l = 0; l < count_; ++l) {
        const size_type b = idx[static_cast<std::size_t>(l)];
        VBATCH_ENSURE_DIMS(layout.size(b) == m_);
        T* dst = x.data() + layout.row_offset(b);
        for (index_type i = 0; i < m_; ++i) {
            dst[i] = values_[value_index(i, l)];
        }
    }
}

template class InterleavedGroup<float>;
template class InterleavedGroup<double>;
template class InterleavedVectors<float>;
template class InterleavedVectors<double>;

}  // namespace vbatch::core
