#include "core/gje_simt.hpp"

#include <array>
#include <cmath>

#include "base/macros.hpp"

namespace vbatch::core {

using simt::first_lanes;
using simt::full_mask;
using simt::lane_mask;
using simt::Reg;
using simt::Warp;

template <typename T>
index_type gauss_jordan_warp(Warp& warp, MatrixView<T> a) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    const index_type m = a.rows();
    const lane_mask rows_m = first_lanes(m);

    std::array<Reg<T>, warp_size> A{};
    for (index_type j = 0; j < m; ++j) {
        A[j] = warp.load_global_strided(rows_m, a.col(j));
    }

    std::array<index_type, max_block_size> perm{};
    lane_mask unpivoted = rows_m;  // pivot *selection* pool (real rows)
    for (index_type k = 0; k < m; ++k) {
        const auto [best, piv] = warp.reduce_absmax(unpivoted, A[k]);
        if (best == T{}) {
            return k + 1;
        }
        perm[k] = piv;
        unpivoted &= ~(1u << piv);

        const T d = warp.shfl(A[k], piv);
        const T dinv = T{1} / d;
        ++warp.stats().div_instructions;
        // Scale the pivot row: one single-lane issue per column -- the
        // 31-idle-lane cost that makes GJE's setup expensive on a warp.
        const lane_mask piv_lane = 1u << piv;
        for (index_type j = 0; j < m; ++j) {
            if (j != k) {
                A[j] = warp.mul_scalar(piv_lane, A[j], dinv,
                                       piv_lane & rows_m);
            }
        }
        // Jordan update of every other row (previously pivoted included).
        const lane_mask others = rows_m & ~piv_lane;
        for (index_type j = 0; j < m; ++j) {
            if (j == k) {
                continue;
            }
            const T pj = warp.shfl(A[j], piv);
            A[j] = warp.fnma_scalar(others, A[k], pj, A[j],
                                    others);
        }
        // Column k: pivot slot 1/d, other rows -e/d.
        auto colk = warp.mul_scalar(others, A[k], -dinv, others);
        colk[piv] = dinv;
        ++warp.stats().misc_instructions;  // select
        A[k] = colk;
    }

    // Fused permutation writeback: out(r, perm[c]) = work(perm[r], c).
    Reg<index_type> gather{};
    for (index_type r = 0; r < m; ++r) {
        gather[r] = perm[r];
    }
    for (index_type c = 0; c < m; ++c) {
        const auto permuted = warp.shfl_indexed(rows_m, A[c], gather);
        warp.store_global_strided(rows_m, a.col(perm[c]), permuted);
    }
    return 0;
}

template <typename T>
void apply_inverse_warp(Warp& warp, ConstMatrixView<T> inv,
                        std::span<T> b) {
    const index_type m = inv.rows();
    VBATCH_ENSURE_DIMS(m == static_cast<index_type>(b.size()));
    const lane_mask rows_m = first_lanes(m);
    const auto x = warp.load_global_strided(rows_m, b.data());
    auto y = Warp::broadcast_value(T{});
    // y_i = sum_j inv(i, j) * x_j: one coalesced column per step, a
    // broadcast, and an FMA -- no division, no dependence between steps.
    for (index_type j = 0; j < m; ++j) {
        const auto col = warp.load_global_strided(rows_m, inv.col(j));
        const T xj = warp.shfl(x, j);
        // y += col * xj  ==  y - col * (-xj)
        y = warp.fnma_scalar(rows_m, col, -xj, y, rows_m);
    }
    warp.store_global_strided(rows_m, b.data(), y);
}

namespace {

template <typename Body>
SimtBatchResult drive_simt(size_type total, const SimtBatchOptions& opts,
                           Body&& body) {
    SimtBatchResult result;
    result.total = total;
    const size_type limit =
        (opts.sample_limit > 0 && opts.sample_limit < total)
            ? opts.sample_limit
            : total;
    Warp warp;
    for (size_type i = 0; i < limit; ++i) {
        const index_type info = body(warp, i);
        if (info != 0) {
            ++result.status.failures;
            if (result.status.first_failure < 0) {
                result.status.first_failure = i;
            }
        }
    }
    result.emulated = limit;
    result.stats = warp.stats();
    return result;
}

}  // namespace

template <typename T>
SimtBatchResult gauss_jordan_batch_simt(BatchedMatrices<T>& a,
                                        const SimtBatchOptions& opts) {
    return drive_simt(a.count(), opts, [&](Warp& w, size_type i) {
        return gauss_jordan_warp(w, a.view(i));
    });
}

template <typename T>
SimtBatchResult apply_inverse_batch_simt(const BatchedMatrices<T>& inv,
                                         BatchedVectors<T>& b,
                                         const SimtBatchOptions& opts) {
    VBATCH_ENSURE(inv.layout() == b.layout(), "batch layouts differ");
    return drive_simt(inv.count(), opts, [&](Warp& w, size_type i) {
        apply_inverse_warp(w, inv.view(i), b.span(i));
        return index_type{0};
    });
}

#define VBATCH_INSTANTIATE_GJE_SIMT(T)                                      \
    template index_type gauss_jordan_warp<T>(Warp&, MatrixView<T>);         \
    template void apply_inverse_warp<T>(Warp&, ConstMatrixView<T>,          \
                                        std::span<T>);                      \
    template SimtBatchResult gauss_jordan_batch_simt<T>(                    \
        BatchedMatrices<T>&, const SimtBatchOptions&);                      \
    template SimtBatchResult apply_inverse_batch_simt<T>(                   \
        const BatchedMatrices<T>&, BatchedVectors<T>&,                      \
        const SimtBatchOptions&)

VBATCH_INSTANTIATE_GJE_SIMT(float);
VBATCH_INSTANTIATE_GJE_SIMT(double);

#undef VBATCH_INSTANTIATE_GJE_SIMT

}  // namespace vbatch::core
