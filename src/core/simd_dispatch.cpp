#include "core/simd_dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace vbatch::core {

namespace {

bool cpu_supports(SimdIsa isa) {
#if defined(__x86_64__) || defined(__i386__)
    switch (isa) {
    case SimdIsa::scalar: return true;
    case SimdIsa::sse2: return __builtin_cpu_supports("sse2");
    case SimdIsa::avx2: return __builtin_cpu_supports("avx2");
    case SimdIsa::avx512:
        // The kernels use 512-bit F-level ops only, but the TU is built
        // at x86-64-v4, so the compiler may emit VL/DQ/BW forms anywhere
        // in it: require the full v4 AVX-512 feature set.
        return __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512vl") &&
               __builtin_cpu_supports("avx512dq") &&
               __builtin_cpu_supports("avx512bw");
    case SimdIsa::neon: return false;
    }
    return false;
#elif defined(__aarch64__)
    // Advanced SIMD is architecturally mandatory on AArch64.
    return isa == SimdIsa::scalar || isa == SimdIsa::neon;
#else
    return isa == SimdIsa::scalar;
#endif
}

bool compiled_in(SimdIsa isa) {
    switch (isa) {
    case SimdIsa::scalar:
        return true;
    case SimdIsa::sse2:
#if defined(__SSE2__)
        return true;
#else
        return false;
#endif
    case SimdIsa::avx2:
#if defined(VBATCH_HAVE_AVX2)
        return true;
#else
        return false;
#endif
    case SimdIsa::avx512:
#if defined(VBATCH_HAVE_AVX512)
        return true;
#else
        return false;
#endif
    case SimdIsa::neon:
#if defined(__aarch64__) && defined(__ARM_NEON)
        return true;
#else
        return false;
#endif
    }
    return false;
}

SimdIsa parse_override(const char* request, SimdIsa fallback) {
    SimdIsa parsed;
    if (request != nullptr && parse_simd_isa(request, parsed)) {
        return parsed;
    }
    return fallback;  // unset / "auto" / unknown: ignore rather than abort
}

SimdIsa detect_uncached() {
    SimdIsa best = SimdIsa::scalar;
    for (const SimdIsa isa : {SimdIsa::sse2, SimdIsa::avx2, SimdIsa::avx512,
                              SimdIsa::neon}) {
        if (simd_isa_available(isa)) {
            best = isa;
        }
    }
    const SimdIsa requested =
        parse_override(std::getenv("VBATCH_SIMD"), best);
    return simd_isa_available(requested) ? requested : best;
}

}  // namespace

const char* simd_isa_name(SimdIsa isa) {
    switch (isa) {
    case SimdIsa::scalar: return "scalar";
    case SimdIsa::sse2: return "sse2";
    case SimdIsa::avx2: return "avx2";
    case SimdIsa::avx512: return "avx512";
    case SimdIsa::neon: return "neon";
    }
    return "unknown";
}

bool parse_simd_isa(const char* name, SimdIsa& out) {
    if (name == nullptr) {
        return false;
    }
    for (const SimdIsa isa : {SimdIsa::scalar, SimdIsa::sse2, SimdIsa::avx2,
                              SimdIsa::avx512, SimdIsa::neon}) {
        if (std::strcmp(name, simd_isa_name(isa)) == 0) {
            out = isa;
            return true;
        }
    }
    return false;
}

bool simd_isa_available(SimdIsa isa) {
    return compiled_in(isa) && cpu_supports(isa);
}

SimdIsa detect_simd_isa() {
    static const SimdIsa cached = detect_uncached();
    return cached;
}

std::vector<SimdIsa> available_simd_isas() {
    std::vector<SimdIsa> isas;
    for (const SimdIsa isa : {SimdIsa::scalar, SimdIsa::sse2, SimdIsa::avx2,
                              SimdIsa::avx512, SimdIsa::neon}) {
        if (simd_isa_available(isa)) {
            isas.push_back(isa);
        }
    }
    return isas;
}

}  // namespace vbatch::core
