#include "core/simd_dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace vbatch::core {

namespace {

bool cpu_supports(SimdIsa isa) {
#if defined(__x86_64__) || defined(__i386__)
    switch (isa) {
    case SimdIsa::scalar: return true;
    case SimdIsa::sse2: return __builtin_cpu_supports("sse2");
    case SimdIsa::avx2: return __builtin_cpu_supports("avx2");
    }
    return false;
#else
    return isa == SimdIsa::scalar;
#endif
}

bool compiled_in(SimdIsa isa) {
    switch (isa) {
    case SimdIsa::scalar:
        return true;
    case SimdIsa::sse2:
#if defined(__SSE2__)
        return true;
#else
        return false;
#endif
    case SimdIsa::avx2:
#if defined(VBATCH_HAVE_AVX2)
        return true;
#else
        return false;
#endif
    }
    return false;
}

SimdIsa parse_override(const char* request, SimdIsa fallback) {
    if (request == nullptr || std::strcmp(request, "auto") == 0 ||
        request[0] == '\0') {
        return fallback;
    }
    if (std::strcmp(request, "scalar") == 0) {
        return SimdIsa::scalar;
    }
    if (std::strcmp(request, "sse2") == 0) {
        return SimdIsa::sse2;
    }
    if (std::strcmp(request, "avx2") == 0) {
        return SimdIsa::avx2;
    }
    return fallback;  // unknown value: ignore rather than abort
}

SimdIsa detect_uncached() {
    SimdIsa best = SimdIsa::scalar;
    for (const SimdIsa isa : {SimdIsa::sse2, SimdIsa::avx2}) {
        if (simd_isa_available(isa)) {
            best = isa;
        }
    }
    const SimdIsa requested =
        parse_override(std::getenv("VBATCH_SIMD"), best);
    return simd_isa_available(requested) ? requested : best;
}

}  // namespace

const char* simd_isa_name(SimdIsa isa) {
    switch (isa) {
    case SimdIsa::scalar: return "scalar";
    case SimdIsa::sse2: return "sse2";
    case SimdIsa::avx2: return "avx2";
    }
    return "unknown";
}

bool simd_isa_available(SimdIsa isa) {
    return compiled_in(isa) && cpu_supports(isa);
}

SimdIsa detect_simd_isa() {
    static const SimdIsa cached = detect_uncached();
    return cached;
}

std::vector<SimdIsa> available_simd_isas() {
    std::vector<SimdIsa> isas;
    for (const SimdIsa isa :
         {SimdIsa::scalar, SimdIsa::sse2, SimdIsa::avx2}) {
        if (simd_isa_available(isa)) {
            isas.push_back(isa);
        }
    }
    return isas;
}

}  // namespace vbatch::core
