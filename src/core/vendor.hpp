// Vendor-style fixed-size batched LU baseline.
//
// Substitutes for NVIDIA cuBLAS' getrfBatched / getrsBatched (closed
// source; see DESIGN.md). The interface reproduces the two properties the
// paper's comparison hinges on:
//
//  1. fixed block size only -- calling it with a variable-size batch
//     throws vbatch::NotSupported, which is why the block-Jacobi solver
//     study (Figs. 8/9, Table I) cannot include it;
//  2. classic explicit partial pivoting with LAPACK-convention ipiv
//     (row swaps materialized in memory at every elimination step).
//
// Performance curves for the figures come from simt::VendorModel, not from
// timing this host code.
#pragma once

#include "core/batch_storage.hpp"
#include "core/getrf.hpp"
#include "core/trsv.hpp"

namespace vbatch::core {

/// Batched LU, explicit pivoting, LAPACK ipiv convention
/// (ipiv[k] = row swapped with k). Requires a uniform layout.
template <typename T>
FactorizeStatus vendor_getrf_batched(BatchedMatrices<T>& a,
                                     BatchedPivots& ipiv,
                                     const GetrfOptions& opts = {});

/// Batched solve from vendor_getrf_batched factors (laswp + 2 TRSV).
/// Requires a uniform layout.
template <typename T>
void vendor_getrs_batched(const BatchedMatrices<T>& lu,
                          const BatchedPivots& ipiv, BatchedVectors<T>& b,
                          bool parallel = true);

}  // namespace vbatch::core
