#include "core/gauss_huard.hpp"

#include <array>
#include <cmath>

#include "base/macros.hpp"
#include "core/batch_driver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vbatch::core {

namespace {

/// Gather columns into pivot order (and optionally transpose) -- the
/// "combined column swap" fused into the factor writeback.
template <typename T>
void apply_column_gather(MatrixView<T> a, std::span<const index_type> cperm,
                         GhStorage storage) {
    const index_type m = a.rows();
    std::array<T, static_cast<std::size_t>(max_block_size) * max_block_size>
        tmp;
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            tmp[static_cast<std::size_t>(j) * m + i] = a(i, j);
        }
    }
    for (index_type k = 0; k < m; ++k) {
        const auto src = static_cast<std::size_t>(cperm[k]) * m;
        for (index_type i = 0; i < m; ++i) {
            if (storage == GhStorage::standard) {
                // Row-major layout: factor element (i, k) lands at view
                // position (k, i). On the GPU this is the coalesced write
                // path out of the lane-per-column register layout.
                a(k, i) = tmp[src + i];
            } else {
                // GH-T: column-major ("transpose access-friendly") layout,
                // paid for with non-coalesced writes.
                a(i, k) = tmp[src + i];
            }
        }
    }
}

void complete_column_permutation(std::span<index_type> cperm,
                                 std::span<const index_type> cstate,
                                 index_type from_step) {
    index_type next = from_step;
    for (index_type j = 0; j < static_cast<index_type>(cstate.size()); ++j) {
        if (cstate[j] < 0) {
            cperm[next++] = j;
        }
    }
}

/// Kernel body shared by the plain and monitored entry points (the
/// monitor hooks compile away for NoPivotMonitor).
template <typename T, typename Monitor>
index_type gauss_huard_factorize_impl(MatrixView<T> a,
                                      std::span<index_type> cperm,
                                      GhStorage storage, Monitor& mon) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    VBATCH_ENSURE_DIMS(static_cast<index_type>(cperm.size()) >= a.rows());
    const index_type m = a.rows();
    if constexpr (Monitor::enabled) {
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                mon.entry(static_cast<double>(std::abs(a(i, j))));
            }
        }
    }
    std::array<index_type, max_block_size> cstate;
    cstate.fill(-1);

    for (index_type k = 0; k < m; ++k) {
        // Lazy update of row k on the not-yet-pivoted columns, using the
        // previously computed factor rows: a(k,j) -= sum_i a(k,p_i)*a(i,j).
        // Applied as one AXPY per previous pivot (the order the warp kernel
        // executes, so both backends round identically). The multiplier
        // a(k, p_i) sits in an already-pivoted column and is never touched
        // by these updates.
        for (index_type i = 0; i < k; ++i) {
            const T mult = a(k, cperm[i]);
            for (index_type j = 0; j < m; ++j) {
                if (cstate[j] < 0) {
                    a(k, j) -= mult * a(i, j);
                }
            }
        }
        // Implicit column pivot: max |a(k, j)| over unpivoted columns.
        index_type piv = -1;
        T best{};
        for (index_type j = 0; j < m; ++j) {
            if (cstate[j] >= 0) {
                continue;
            }
            const T v = std::abs(a(k, j));
            if (piv < 0 || v > best) {
                best = v;
                piv = j;
            }
        }
        if (best == T{}) {
            complete_column_permutation(
                cperm, {cstate.data(), static_cast<std::size_t>(m)}, k);
            return k + 1;
        }
        if constexpr (Monitor::enabled) {
            mon.pivot(static_cast<double>(best));
        }
        cperm[k] = piv;
        cstate[piv] = k;

        // Scale the remainder of row k by the pivot.
        const T d = a(k, piv);
        for (index_type j = 0; j < m; ++j) {
            if (cstate[j] < 0) {
                a(k, j) /= d;
            }
        }
        // Eliminate the pivot column above the diagonal.
        for (index_type i = 0; i < k; ++i) {
            const T mult = a(i, piv);
            for (index_type j = 0; j < m; ++j) {
                if (cstate[j] < 0) {
                    a(i, j) -= mult * a(k, j);
                }
            }
        }
    }
    apply_column_gather(a, cperm.subspan(0, static_cast<std::size_t>(m)),
                        storage);
    return 0;
}

}  // namespace

template <typename T>
index_type gauss_huard_factorize(MatrixView<T> a,
                                 std::span<index_type> cperm,
                                 GhStorage storage) {
    detail::NoPivotMonitor mon;
    return gauss_huard_factorize_impl(a, cperm, storage, mon);
}

template <typename T>
index_type gauss_huard_factorize(MatrixView<T> a,
                                 std::span<index_type> cperm,
                                 GhStorage storage, FactorInfo& info) {
    detail::PivotMonitor mon;
    const index_type step = gauss_huard_factorize_impl(a, cperm, storage,
                                                       mon);
    info = mon.finish(step);
    return step;
}

template <typename T>
void gauss_huard_solve(ConstMatrixView<T> f,
                       std::span<const index_type> cperm, std::span<T> b,
                       GhStorage storage) {
    const index_type m = f.rows();
    VBATCH_ENSURE_DIMS(m == static_cast<index_type>(b.size()));
    // Factor element (i, j) in pivot-ordered coordinates: GH stores the
    // factors row-major, GH-T column-major (solve friendly).
    const auto fa = [&](index_type i, index_type j) {
        return storage == GhStorage::standard ? f(j, i) : f(i, j);
    };
    // The GH application processes b exactly like the factorization
    // processes a matrix column (Gauss-Jordan on the augmented column):
    //   1. forward: b_k -= sum_{i<k} fa(k,i) * b_i  using the *current*
    //      (Jordan-updated) values b_i -- NOT the eager LU-style y_i;
    //   2. divide by the pivot;
    //   3. Jordan: eliminate the new entry from the leading positions.
    // Per step this reads the left part of factor row k and the upper part
    // of factor column k; the storage orientation decides which of the two
    // is coalesced on the GPU (see simt_kernels.cpp).
    for (index_type k = 0; k < m; ++k) {
        T acc{};
        for (index_type i = 0; i < k; ++i) {
            acc += fa(k, i) * b[i];
        }
        b[k] = (b[k] - acc) / fa(k, k);
        const T yk = b[k];
        for (index_type i = 0; i < k; ++i) {
            b[i] -= fa(i, k) * yk;
        }
    }
    // Column pivoting permuted the unknowns: scatter back.
    std::array<T, max_block_size> x;
    for (index_type k = 0; k < m; ++k) {
        x[static_cast<std::size_t>(cperm[k])] = b[k];
    }
    for (index_type k = 0; k < m; ++k) {
        b[k] = x[static_cast<std::size_t>(k)];
    }
}

template <typename T>
FactorizeStatus gauss_huard_batch(BatchedMatrices<T>& a, BatchedPivots& cperm,
                                  GhStorage storage,
                                  const GetrfOptions& opts) {
    VBATCH_ENSURE(a.layout() == cperm.layout(),
                  "matrix and pivot batch layouts differ");
    obs::TraceRegion trace("gauss_huard_batch");
    obs::count("gauss_huard.launches");
    obs::count("gauss_huard.problems", static_cast<double>(a.count()));
    return detail::run_factorize_batch(
        a.count(), opts, "batched Gauss-Huard breakdown",
        [&](size_type i, FactorInfo* info) {
            return info != nullptr
                       ? gauss_huard_factorize(a.view(i), cperm.span(i),
                                               storage, *info)
                       : gauss_huard_factorize(a.view(i), cperm.span(i),
                                               storage);
        });
}

template <typename T>
void gauss_huard_solve_batch(const BatchedMatrices<T>& f,
                             const BatchedPivots& cperm, BatchedVectors<T>& b,
                             GhStorage storage, bool parallel) {
    VBATCH_ENSURE(f.layout() == cperm.layout() && f.layout() == b.layout(),
                  "batch layouts differ");
    const auto body = [&](size_type i) {
        gauss_huard_solve(f.view(i), cperm.span(i), b.span(i), storage);
    };
    if (parallel) {
        ThreadPool::global().parallel_for(0, f.count(), body,
                                          batch_entry_grain);
    } else {
        for (size_type i = 0; i < f.count(); ++i) {
            body(i);
        }
    }
}

#define VBATCH_INSTANTIATE_GH(T)                                             \
    template index_type gauss_huard_factorize<T>(                            \
        MatrixView<T>, std::span<index_type>, GhStorage);                    \
    template index_type gauss_huard_factorize<T>(                            \
        MatrixView<T>, std::span<index_type>, GhStorage, FactorInfo&);       \
    template void gauss_huard_solve<T>(ConstMatrixView<T>,                   \
                                       std::span<const index_type>,          \
                                       std::span<T>, GhStorage);             \
    template FactorizeStatus gauss_huard_batch<T>(                           \
        BatchedMatrices<T>&, BatchedPivots&, GhStorage,                      \
        const GetrfOptions&);                                                \
    template void gauss_huard_solve_batch<T>(const BatchedMatrices<T>&,      \
                                             const BatchedPivots&,           \
                                             BatchedVectors<T>&, GhStorage,  \
                                             bool)

VBATCH_INSTANTIATE_GH(float);
VBATCH_INSTANTIATE_GH(double);

#undef VBATCH_INSTANTIATE_GH

}  // namespace vbatch::core
