#include "core/gauss_huard.hpp"

#include <array>
#include <atomic>
#include <cmath>

#include "base/macros.hpp"
#include "base/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vbatch::core {

namespace {

/// Gather columns into pivot order (and optionally transpose) -- the
/// "combined column swap" fused into the factor writeback.
template <typename T>
void apply_column_gather(MatrixView<T> a, std::span<const index_type> cperm,
                         GhStorage storage) {
    const index_type m = a.rows();
    std::array<T, static_cast<std::size_t>(max_block_size) * max_block_size>
        tmp;
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            tmp[static_cast<std::size_t>(j) * m + i] = a(i, j);
        }
    }
    for (index_type k = 0; k < m; ++k) {
        const auto src = static_cast<std::size_t>(cperm[k]) * m;
        for (index_type i = 0; i < m; ++i) {
            if (storage == GhStorage::standard) {
                // Row-major layout: factor element (i, k) lands at view
                // position (k, i). On the GPU this is the coalesced write
                // path out of the lane-per-column register layout.
                a(k, i) = tmp[src + i];
            } else {
                // GH-T: column-major ("transpose access-friendly") layout,
                // paid for with non-coalesced writes.
                a(i, k) = tmp[src + i];
            }
        }
    }
}

void complete_column_permutation(std::span<index_type> cperm,
                                 std::span<const index_type> cstate,
                                 index_type from_step) {
    index_type next = from_step;
    for (index_type j = 0; j < static_cast<index_type>(cstate.size()); ++j) {
        if (cstate[j] < 0) {
            cperm[next++] = j;
        }
    }
}

}  // namespace

template <typename T>
index_type gauss_huard_factorize(MatrixView<T> a,
                                 std::span<index_type> cperm,
                                 GhStorage storage) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    VBATCH_ENSURE_DIMS(static_cast<index_type>(cperm.size()) >= a.rows());
    const index_type m = a.rows();
    std::array<index_type, max_block_size> cstate;
    cstate.fill(-1);

    for (index_type k = 0; k < m; ++k) {
        // Lazy update of row k on the not-yet-pivoted columns, using the
        // previously computed factor rows: a(k,j) -= sum_i a(k,p_i)*a(i,j).
        // Applied as one AXPY per previous pivot (the order the warp kernel
        // executes, so both backends round identically). The multiplier
        // a(k, p_i) sits in an already-pivoted column and is never touched
        // by these updates.
        for (index_type i = 0; i < k; ++i) {
            const T mult = a(k, cperm[i]);
            for (index_type j = 0; j < m; ++j) {
                if (cstate[j] < 0) {
                    a(k, j) -= mult * a(i, j);
                }
            }
        }
        // Implicit column pivot: max |a(k, j)| over unpivoted columns.
        index_type piv = -1;
        T best{};
        for (index_type j = 0; j < m; ++j) {
            if (cstate[j] >= 0) {
                continue;
            }
            const T v = std::abs(a(k, j));
            if (piv < 0 || v > best) {
                best = v;
                piv = j;
            }
        }
        if (best == T{}) {
            complete_column_permutation(
                cperm, {cstate.data(), static_cast<std::size_t>(m)}, k);
            return k + 1;
        }
        cperm[k] = piv;
        cstate[piv] = k;

        // Scale the remainder of row k by the pivot.
        const T d = a(k, piv);
        for (index_type j = 0; j < m; ++j) {
            if (cstate[j] < 0) {
                a(k, j) /= d;
            }
        }
        // Eliminate the pivot column above the diagonal.
        for (index_type i = 0; i < k; ++i) {
            const T mult = a(i, piv);
            for (index_type j = 0; j < m; ++j) {
                if (cstate[j] < 0) {
                    a(i, j) -= mult * a(k, j);
                }
            }
        }
    }
    apply_column_gather(a, cperm.subspan(0, static_cast<std::size_t>(m)),
                        storage);
    return 0;
}

template <typename T>
void gauss_huard_solve(ConstMatrixView<T> f,
                       std::span<const index_type> cperm, std::span<T> b,
                       GhStorage storage) {
    const index_type m = f.rows();
    VBATCH_ENSURE_DIMS(m == static_cast<index_type>(b.size()));
    // Factor element (i, j) in pivot-ordered coordinates: GH stores the
    // factors row-major, GH-T column-major (solve friendly).
    const auto fa = [&](index_type i, index_type j) {
        return storage == GhStorage::standard ? f(j, i) : f(i, j);
    };
    // The GH application processes b exactly like the factorization
    // processes a matrix column (Gauss-Jordan on the augmented column):
    //   1. forward: b_k -= sum_{i<k} fa(k,i) * b_i  using the *current*
    //      (Jordan-updated) values b_i -- NOT the eager LU-style y_i;
    //   2. divide by the pivot;
    //   3. Jordan: eliminate the new entry from the leading positions.
    // Per step this reads the left part of factor row k and the upper part
    // of factor column k; the storage orientation decides which of the two
    // is coalesced on the GPU (see simt_kernels.cpp).
    for (index_type k = 0; k < m; ++k) {
        T acc{};
        for (index_type i = 0; i < k; ++i) {
            acc += fa(k, i) * b[i];
        }
        b[k] = (b[k] - acc) / fa(k, k);
        const T yk = b[k];
        for (index_type i = 0; i < k; ++i) {
            b[i] -= fa(i, k) * yk;
        }
    }
    // Column pivoting permuted the unknowns: scatter back.
    std::array<T, max_block_size> x;
    for (index_type k = 0; k < m; ++k) {
        x[static_cast<std::size_t>(cperm[k])] = b[k];
    }
    for (index_type k = 0; k < m; ++k) {
        b[k] = x[static_cast<std::size_t>(k)];
    }
}

template <typename T>
FactorizeStatus gauss_huard_batch(BatchedMatrices<T>& a, BatchedPivots& cperm,
                                  GhStorage storage,
                                  const GetrfOptions& opts) {
    VBATCH_ENSURE(a.layout() == cperm.layout(),
                  "matrix and pivot batch layouts differ");
    obs::TraceRegion trace("gauss_huard_batch");
    obs::count("gauss_huard.launches");
    obs::count("gauss_huard.problems", static_cast<double>(a.count()));
    std::atomic<size_type> failures{0};
    std::atomic<size_type> first_failure{-1};
    std::atomic<index_type> first_step{0};
    const auto body = [&](size_type i) {
        const index_type info =
            gauss_huard_factorize(a.view(i), cperm.span(i), storage);
        if (info != 0) {
            failures.fetch_add(1, std::memory_order_relaxed);
            size_type expected = -1;
            if (first_failure.compare_exchange_strong(expected, i)) {
                first_step.store(info, std::memory_order_relaxed);
            }
        }
    };
    if (opts.parallel) {
        ThreadPool::global().parallel_for(0, a.count(), body,
                                          batch_entry_grain);
    } else {
        for (size_type i = 0; i < a.count(); ++i) {
            body(i);
        }
    }
    FactorizeStatus status;
    status.failures = failures.load();
    status.first_failure = first_failure.load();
    if (!status.ok() &&
        opts.on_singular == SingularPolicy::throw_on_breakdown) {
        throw SingularMatrix("batched Gauss-Huard breakdown",
                             status.first_failure, first_step.load());
    }
    return status;
}

template <typename T>
void gauss_huard_solve_batch(const BatchedMatrices<T>& f,
                             const BatchedPivots& cperm, BatchedVectors<T>& b,
                             GhStorage storage, bool parallel) {
    VBATCH_ENSURE(f.layout() == cperm.layout() && f.layout() == b.layout(),
                  "batch layouts differ");
    const auto body = [&](size_type i) {
        gauss_huard_solve(f.view(i), cperm.span(i), b.span(i), storage);
    };
    if (parallel) {
        ThreadPool::global().parallel_for(0, f.count(), body,
                                          batch_entry_grain);
    } else {
        for (size_type i = 0; i < f.count(); ++i) {
            body(i);
        }
    }
}

#define VBATCH_INSTANTIATE_GH(T)                                             \
    template index_type gauss_huard_factorize<T>(                            \
        MatrixView<T>, std::span<index_type>, GhStorage);                    \
    template void gauss_huard_solve<T>(ConstMatrixView<T>,                   \
                                       std::span<const index_type>,          \
                                       std::span<T>, GhStorage);             \
    template FactorizeStatus gauss_huard_batch<T>(                           \
        BatchedMatrices<T>&, BatchedPivots&, GhStorage,                      \
        const GetrfOptions&);                                                \
    template void gauss_huard_solve_batch<T>(const BatchedMatrices<T>&,      \
                                             const BatchedPivots&,           \
                                             BatchedVectors<T>&, GhStorage,  \
                                             bool)

VBATCH_INSTANTIATE_GH(float);
VBATCH_INSTANTIATE_GH(double);

#undef VBATCH_INSTANTIATE_GH

}  // namespace vbatch::core
