// Sub-warp packed kernels: two problems of size m <= 16 per warp.
//
// Section IV.B of the paper notes "we do not tune for specific sizes by
// handling multiple problems per warp" -- this module implements exactly
// that tuning as an extension. Lanes 0..15 carry problem A (one row per
// lane), lanes 16..31 problem B; every warp instruction serves both
// halves, the trailing updates pad only to 16 instead of 32, and the
// pivot reduction is a 4-step half-warp butterfly. The per-problem issue
// count roughly halves, which is what recovers the small-size performance
// the padded full-warp kernels give away (bench_ablation_packing).
//
// The arithmetic per problem is identical to the full-warp kernels, so
// results are bit-identical to getrf_warp / getrs_warp (tested).
#pragma once

#include "core/simt_kernels.hpp"

namespace vbatch::core {

/// Factorize problems a0 and a1 (equal sizes, m <= 16) in one warp.
/// Returns 0 or (1-based step) * sign encoding: >0 means a0 broke down at
/// that step, <0 means a1 did (if both, a0 is reported).
template <typename T>
index_type getrf_warp_packed2(simt::Warp& warp, MatrixView<T> a0,
                              MatrixView<T> a1, std::span<index_type> perm0,
                              std::span<index_type> perm1);

/// Solve both problems' right-hand sides in one warp.
template <typename T>
void getrs_warp_packed2(simt::Warp& warp, ConstMatrixView<T> lu0,
                        ConstMatrixView<T> lu1,
                        std::span<const index_type> perm0,
                        std::span<const index_type> perm1, std::span<T> b0,
                        std::span<T> b1);

/// Batch drivers: pack consecutive pairs (odd tail runs unpacked).
/// Requires a uniform layout with block size <= 16.
template <typename T>
SimtBatchResult getrf_batch_simt_packed(BatchedMatrices<T>& a,
                                        BatchedPivots& perm,
                                        const SimtBatchOptions& opts = {});

template <typename T>
SimtBatchResult getrs_batch_simt_packed(const BatchedMatrices<T>& lu,
                                        const BatchedPivots& perm,
                                        BatchedVectors<T>& b,
                                        const SimtBatchOptions& opts = {});

}  // namespace vbatch::core
