#include "core/getrf.hpp"

#include <array>
#include <cmath>

#include "base/macros.hpp"
#include "core/batch_driver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vbatch::core {

namespace {

/// Shared writeback: gather rows so that row k of the output holds the
/// factor row of pivot k (the "combined row swap" the paper fuses into
/// the off-load of L and U).
template <typename T>
void apply_row_gather(MatrixView<T> a, std::span<const index_type> perm) {
    const index_type m = a.rows();
    std::array<T, static_cast<std::size_t>(max_block_size) * max_block_size>
        tmp;
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            tmp[static_cast<std::size_t>(j) * m + i] = a(i, j);
        }
    }
    for (index_type j = 0; j < m; ++j) {
        for (index_type k = 0; k < m; ++k) {
            a(k, j) = tmp[static_cast<std::size_t>(j) * m + perm[k]];
        }
    }
}

/// Fill the tail of a permutation after breakdown so it remains a valid
/// gather (unpivoted rows in original order).
void complete_permutation(std::span<index_type> perm,
                          std::span<const index_type> pstate,
                          index_type from_step) {
    index_type next = from_step;
    for (index_type i = 0; i < static_cast<index_type>(pstate.size()); ++i) {
        if (pstate[i] < 0) {
            perm[next++] = i;
        }
    }
}

/// Kernel body shared by the plain and monitored entry points. The
/// monitor hooks vanish for NoPivotMonitor, so the default
/// instantiation compiles to exactly the pre-monitor kernel.
template <typename T, typename Monitor>
index_type getrf_implicit_impl(MatrixView<T> a, std::span<index_type> perm,
                               Monitor& mon) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    VBATCH_ENSURE_DIMS(static_cast<index_type>(perm.size()) >= a.rows());
    const index_type m = a.rows();
    if constexpr (Monitor::enabled) {
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                mon.entry(static_cast<double>(std::abs(a(i, j))));
            }
        }
    }
    // pstate[i] = step at which row i was chosen as pivot, or -1.
    std::array<index_type, max_block_size> pstate;
    pstate.fill(-1);

    for (index_type k = 0; k < m; ++k) {
        // Implicit pivot selection: max |a(i, k)| over not-yet-pivoted rows.
        index_type piv = -1;
        T best{};
        for (index_type i = 0; i < m; ++i) {
            if (pstate[i] >= 0) {
                continue;
            }
            const T v = std::abs(a(i, k));
            if (piv < 0 || v > best) {
                best = v;
                piv = i;
            }
        }
        if (best == T{}) {
            complete_permutation(perm, {pstate.data(),
                                        static_cast<std::size_t>(m)}, k);
            return k + 1;
        }
        if constexpr (Monitor::enabled) {
            mon.pivot(static_cast<double>(best));
        }
        perm[k] = piv;
        pstate[piv] = k;

        // Gauss transformation on the rows that are still unpivoted. Each
        // row only needs its own elements and the pivot row -- the key
        // observation that makes implicit pivoting free of communication.
        const T d = a(piv, k);
        T* colk = a.col(k);
        for (index_type i = 0; i < m; ++i) {
            if (pstate[i] < 0) {
                colk[i] /= d;  // SCAL
            }
        }
        for (index_type j = k + 1; j < m; ++j) {
            const T akj = a(piv, j);
            T* colj = a.col(j);
            for (index_type i = 0; i < m; ++i) {
                if (pstate[i] < 0) {
                    colj[i] -= colk[i] * akj;  // GER
                }
            }
        }
    }
    // Combined row swap, fused with the writeback on the GPU.
    apply_row_gather(a, perm.subspan(0, static_cast<std::size_t>(m)));
    return 0;
}

/// Pivot-free kernel body (the scalar twin of the PivotPolicy::none chunk
/// kernel: same per-element op order, so the lanes match it bitwise).
template <typename T, typename Monitor>
index_type getrf_nopivot_impl(MatrixView<T> a, Monitor& mon) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    const index_type m = a.rows();
    if constexpr (Monitor::enabled) {
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                mon.entry(static_cast<double>(std::abs(a(i, j))));
            }
        }
    }
    for (index_type k = 0; k < m; ++k) {
        const T d = a(k, k);
        if (d == T{}) {
            return k + 1;
        }
        if constexpr (Monitor::enabled) {
            mon.pivot(static_cast<double>(std::abs(d)));
        }
        T* colk = a.col(k);
        for (index_type i = k + 1; i < m; ++i) {
            colk[i] /= d;  // SCAL
        }
        for (index_type j = k + 1; j < m; ++j) {
            const T akj = a(k, j);
            T* colj = a.col(j);
            for (index_type i = k + 1; i < m; ++i) {
                colj[i] -= colk[i] * akj;  // GER
            }
        }
    }
    return 0;
}

}  // namespace

template <typename T>
index_type getrf_implicit(MatrixView<T> a, std::span<index_type> perm) {
    detail::NoPivotMonitor mon;
    return getrf_implicit_impl(a, perm, mon);
}

template <typename T>
index_type getrf_implicit(MatrixView<T> a, std::span<index_type> perm,
                          FactorInfo& info) {
    detail::PivotMonitor mon;
    const index_type step = getrf_implicit_impl(a, perm, mon);
    info = mon.finish(step);
    return step;
}

template <typename T>
index_type getrf_nopivot(MatrixView<T> a) {
    detail::NoPivotMonitor mon;
    return getrf_nopivot_impl(a, mon);
}

template <typename T>
index_type getrf_nopivot(MatrixView<T> a, FactorInfo& info) {
    detail::PivotMonitor mon;
    const index_type step = getrf_nopivot_impl(a, mon);
    info = mon.finish(step);
    return step;
}

template <typename T>
index_type getrf_explicit(MatrixView<T> a, std::span<index_type> perm) {
    VBATCH_ENSURE_DIMS(a.rows() == a.cols());
    VBATCH_ENSURE_DIMS(static_cast<index_type>(perm.size()) >= a.rows());
    const index_type m = a.rows();
    // pos[k] = original index of the row currently stored at position k.
    std::array<index_type, max_block_size> pos;
    for (index_type i = 0; i < m; ++i) {
        pos[i] = i;
    }
    for (index_type k = 0; k < m; ++k) {
        index_type piv = k;
        T best = std::abs(a(k, k));
        for (index_type i = k + 1; i < m; ++i) {
            const T v = std::abs(a(i, k));
            if (v > best) {
                best = v;
                piv = i;
            }
        }
        if (best == T{}) {
            for (index_type r = k; r < m; ++r) {
                perm[r] = pos[r];
            }
            return k + 1;
        }
        if (piv != k) {
            for (index_type j = 0; j < m; ++j) {
                std::swap(a(k, j), a(piv, j));
            }
            std::swap(pos[k], pos[piv]);
        }
        perm[k] = pos[k];
        const T d = a(k, k);
        T* colk = a.col(k);
        for (index_type i = k + 1; i < m; ++i) {
            colk[i] /= d;
        }
        for (index_type j = k + 1; j < m; ++j) {
            const T akj = a(k, j);
            T* colj = a.col(j);
            for (index_type i = k + 1; i < m; ++i) {
                colj[i] -= colk[i] * akj;
            }
        }
    }
    return 0;
}

template <typename T>
FactorizeStatus getrf_batch(BatchedMatrices<T>& a, BatchedPivots& perm,
                            const GetrfOptions& opts) {
    VBATCH_ENSURE(a.layout() == perm.layout(),
                  "matrix and pivot batch layouts differ");
    obs::TraceRegion trace("getrf_batch");
    obs::count("getrf.launches");
    obs::count("getrf.problems", static_cast<double>(a.count()));
    return detail::run_factorize_batch(
        a.count(), opts, "batched LU breakdown: exact zero pivot",
        [&](size_type i, FactorInfo* info) {
            return info != nullptr
                       ? getrf_implicit(a.view(i), perm.span(i), *info)
                       : getrf_implicit(a.view(i), perm.span(i));
        });
}

template <typename T>
FactorizeStatus getrf_batch_explicit(BatchedMatrices<T>& a,
                                     BatchedPivots& perm,
                                     const GetrfOptions& opts) {
    VBATCH_ENSURE(a.layout() == perm.layout(),
                  "matrix and pivot batch layouts differ");
    obs::TraceRegion trace("getrf_batch_explicit");
    return detail::run_factorize_batch(
        a.count(), opts, "batched LU breakdown: exact zero pivot",
        [&](size_type i, FactorInfo* info) {
            // The explicit-pivot ablation kernel reports breakdown only;
            // monitoring is the implicit kernel's feature.
            (void)info;
            return getrf_explicit(a.view(i), perm.span(i));
        });
}

#define VBATCH_INSTANTIATE_GETRF(T)                                          \
    template index_type getrf_implicit<T>(MatrixView<T>,                     \
                                          std::span<index_type>);            \
    template index_type getrf_implicit<T>(MatrixView<T>,                     \
                                          std::span<index_type>,             \
                                          FactorInfo&);                      \
    template index_type getrf_explicit<T>(MatrixView<T>,                     \
                                          std::span<index_type>);            \
    template index_type getrf_nopivot<T>(MatrixView<T>);                     \
    template index_type getrf_nopivot<T>(MatrixView<T>, FactorInfo&);        \
    template FactorizeStatus getrf_batch<T>(BatchedMatrices<T>&,             \
                                            BatchedPivots&,                  \
                                            const GetrfOptions&);            \
    template FactorizeStatus getrf_batch_explicit<T>(BatchedMatrices<T>&,    \
                                                     BatchedPivots&,         \
                                                     const GetrfOptions&)

VBATCH_INSTANTIATE_GETRF(float);
VBATCH_INSTANTIATE_GETRF(double);

#undef VBATCH_INSTANTIATE_GETRF

}  // namespace vbatch::core
