// Runtime CPU-feature dispatch for the interleaved (lane-parallel) batch
// kernels.
//
// The paper maps one tiny factorization onto each SIMT lane of a warp; the
// CPU analogue implemented here assigns one matrix to each SIMD lane of a
// vector register. Which vector width is available is a *runtime* property
// of the machine the binary lands on, so the kernels are compiled once per
// instruction set (scalar / SSE2 / AVX2 / AVX-512 on x86, scalar / NEON on
// AArch64) and selected through this module:
//
//   detect_simd_isa()  - widest ISA supported by both the compiler flags
//                        this binary was built with and the CPU it runs on,
//                        overridable with
//                        VBATCH_SIMD=scalar|sse2|avx2|avx512|neon|auto
//                        (requests above the supported level are clamped).
//
// Architectures without a vector backend degrade to the scalar
// implementation transparently.
#pragma once

#include <string>
#include <vector>

#include "base/types.hpp"

namespace vbatch::core {

enum class SimdIsa { scalar, sse2, avx2, avx512, neon };

/// Stable short name used in metrics, bench series and logs.
const char* simd_isa_name(SimdIsa isa);

/// Inverse of simd_isa_name: true and sets `out` when `name` is a known
/// ISA name ("auto" is not one). Used by the VBATCH_SIMD override and the
/// ISA-pinned test runner.
bool parse_simd_isa(const char* name, SimdIsa& out);

/// True when `isa` was compiled in *and* the executing CPU supports it.
bool simd_isa_available(SimdIsa isa);

/// Widest available ISA, after applying the VBATCH_SIMD override (the
/// override can narrow the choice; it never selects an unsupported ISA).
/// The result is computed once and cached.
SimdIsa detect_simd_isa();

/// Every available ISA, narrowest first (always contains scalar).
std::vector<SimdIsa> available_simd_isas();

/// Matrices processed per vector instruction (SIMD lanes) for scalar type
/// T under `isa`. Also the lane-padding granularity of interleaved groups.
template <typename T>
constexpr index_type simd_lanes(SimdIsa isa) {
    switch (isa) {
    case SimdIsa::scalar: return 1;
    case SimdIsa::sse2: return static_cast<index_type>(16 / sizeof(T));
    case SimdIsa::avx2: return static_cast<index_type>(32 / sizeof(T));
    case SimdIsa::avx512: return static_cast<index_type>(64 / sizeof(T));
    case SimdIsa::neon: return static_cast<index_type>(16 / sizeof(T));
    }
    return 1;
}

}  // namespace vbatch::core
