// Warp-emulated Gauss-Jordan inversion and inverse application.
//
// Section II.C of the paper weighs two block-Jacobi strategies: the
// factorization-based one (LU setup at 2/3 m^3, TRSV application at 2 m^2
// with dependent steps) against the inversion-based one of [4] (GJE setup
// at 2 m^3, GEMV application at 2 m^2 but "a much faster execution than a
// triangular block solve" -- no dependency chain, no divisions). These
// kernels make that trade-off measurable on the emulator; bench_tradeoff
// locates the crossover in the number of preconditioner applications.
#pragma once

#include "core/gauss_jordan.hpp"
#include "core/simt_kernels.hpp"

namespace vbatch::core {

/// In-place GJE inversion of one block, register resident, implicit
/// pivoting fused into the writeback (bit-identical to
/// gauss_jordan_invert). Returns 0 or the 1-based breakdown step.
template <typename T>
index_type gauss_jordan_warp(simt::Warp& warp, MatrixView<T> a);

/// b := inv * b as a register GEMV (the inversion-based preconditioner
/// application): one coalesced column of the inverse per step, no
/// divisions, no dependent chain between steps.
template <typename T>
void apply_inverse_warp(simt::Warp& warp, ConstMatrixView<T> inv,
                        std::span<T> b);

/// Instrumented batch drivers.
template <typename T>
SimtBatchResult gauss_jordan_batch_simt(BatchedMatrices<T>& a,
                                        const SimtBatchOptions& opts = {});
template <typename T>
SimtBatchResult apply_inverse_batch_simt(const BatchedMatrices<T>& inv,
                                         BatchedVectors<T>& b,
                                         const SimtBatchOptions& opts = {});

}  // namespace vbatch::core
