#include "core/rbt.hpp"

#include <cstdlib>

namespace vbatch::core {

std::uint64_t default_rbt_seed() {
    if (const char* env = std::getenv("VBATCH_RBT_SEED")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0') {
            return static_cast<std::uint64_t>(v);
        }
    }
    return 42;
}

template <typename T>
void RbtTransforms<T>::level_coeffs(size_type block, int side,
                                    index_type level, index_type m,
                                    T* out) const {
    rbt::for_each_segment(m, level, [&](index_type lo, index_type len) {
        const index_type p = (len + 1) / 2;
        const index_type q = len - p;
        for (index_type i = 0; i < q; ++i) {
            out[lo + i] = rbt::rbt_coefficient<T>(
                seed_, block, side, level, lo + i, /*paired=*/true);
            out[lo + p + i] = rbt::rbt_coefficient<T>(
                seed_, block, side, level, lo + p + i, /*paired=*/true);
        }
        if (p > q) {
            out[lo + q] = rbt::rbt_coefficient<T>(
                seed_, block, side, level, lo + q, /*paired=*/false);
        }
    });
}

template <typename T>
void RbtTransforms<T>::transform_block(size_type block,
                                       MatrixView<T> a) const {
    const index_type m = a.rows();
    T uc[rbt::max_rbt_depth][max_block_size];
    T vc[rbt::max_rbt_depth][max_block_size];
    for (index_type t = 0; t < depth_; ++t) {
        level_coeffs(block, rbt::rbt_side_u, t, m, uc[t]);
        level_coeffs(block, rbt::rbt_side_v, t, m, vc[t]);
    }
    // Columns first: col := U^T col (B^T levels outer->inner), then rows
    // (A V = (V^T A^T)^T: B^T over column pairs) -- the element-wise op
    // order of rbt_transform_chunk, so scalar and SIMD paths agree
    // bitwise on the same block.
    for (index_type c = 0; c < m; ++c) {
        T* col = a.col(c);
        for (index_type t = 0; t < depth_; ++t) {
            const T* lc = uc[t];
            rbt::for_each_segment(m, t, [&](index_type lo, index_type len) {
                const index_type p = (len + 1) / 2;
                const index_type q = len - p;
                for (index_type i = 0; i < q; ++i) {
                    const T r = lc[lo + i];
                    const T s = lc[lo + p + i];
                    const T v0 = col[lo + i];
                    const T v1 = col[lo + p + i];
                    const T t0 = v0 + v1;
                    const T t1 = v0 - v1;
                    col[lo + i] = r * t0;
                    col[lo + p + i] = s * t1;
                }
                if (p > q) {
                    col[lo + q] = lc[lo + q] * col[lo + q];
                }
            });
        }
    }
    for (index_type t = 0; t < depth_; ++t) {
        const T* lc = vc[t];
        rbt::for_each_segment(m, t, [&](index_type lo, index_type len) {
            const index_type p = (len + 1) / 2;
            const index_type q = len - p;
            for (index_type i = 0; i < q; ++i) {
                const T r = lc[lo + i];
                const T s = lc[lo + p + i];
                T* c0 = a.col(lo + i);
                T* c1 = a.col(lo + p + i);
                for (index_type rr = 0; rr < m; ++rr) {
                    const T v0 = c0[rr];
                    const T v1 = c1[rr];
                    const T t0 = v0 + v1;
                    const T t1 = v0 - v1;
                    c0[rr] = r * t0;
                    c1[rr] = s * t1;
                }
            }
            if (p > q) {
                const T u = lc[lo + q];
                T* cc = a.col(lo + q);
                for (index_type rr = 0; rr < m; ++rr) {
                    cc[rr] = u * cc[rr];
                }
            }
        });
    }
}

template <typename T>
void RbtTransforms<T>::forward(size_type block, std::span<T> b) const {
    const auto m = static_cast<index_type>(b.size());
    T lc[max_block_size];
    for (index_type t = 0; t < depth_; ++t) {
        level_coeffs(block, rbt::rbt_side_u, t, m, lc);
        rbt::for_each_segment(m, t, [&](index_type lo, index_type len) {
            const index_type p = (len + 1) / 2;
            const index_type q = len - p;
            for (index_type i = 0; i < q; ++i) {
                const T r = lc[lo + i];
                const T s = lc[lo + p + i];
                const T v0 = b[static_cast<std::size_t>(lo + i)];
                const T v1 = b[static_cast<std::size_t>(lo + p + i)];
                const T t0 = v0 + v1;
                const T t1 = v0 - v1;
                b[static_cast<std::size_t>(lo + i)] = r * t0;
                b[static_cast<std::size_t>(lo + p + i)] = s * t1;
            }
            if (p > q) {
                b[static_cast<std::size_t>(lo + q)] =
                    lc[lo + q] * b[static_cast<std::size_t>(lo + q)];
            }
        });
    }
}

template <typename T>
void RbtTransforms<T>::backward(size_type block, std::span<T> x) const {
    const auto m = static_cast<index_type>(x.size());
    T lc[max_block_size];
    for (index_type t = depth_ - 1; t >= 0; --t) {
        level_coeffs(block, rbt::rbt_side_v, t, m, lc);
        rbt::for_each_segment(m, t, [&](index_type lo, index_type len) {
            const index_type p = (len + 1) / 2;
            const index_type q = len - p;
            for (index_type i = 0; i < q; ++i) {
                const T r = lc[lo + i];
                const T s = lc[lo + p + i];
                const T p0 = r * x[static_cast<std::size_t>(lo + i)];
                const T p1 = s * x[static_cast<std::size_t>(lo + p + i)];
                x[static_cast<std::size_t>(lo + i)] = p0 + p1;
                x[static_cast<std::size_t>(lo + p + i)] = p0 - p1;
            }
            if (p > q) {
                x[static_cast<std::size_t>(lo + q)] =
                    lc[lo + q] * x[static_cast<std::size_t>(lo + q)];
            }
        });
    }
}

template <typename T>
void RbtTransforms<T>::fill_group_coeffs(std::span<const size_type> blocks,
                                         index_type m, index_type lanes,
                                         size_type lane_stride, T* ucoef,
                                         T* vcoef) const {
    T tmp[max_block_size];
    const size_type chunks =
        lane_stride / static_cast<size_type>(lanes);
    for (size_type chunk = 0; chunk < chunks; ++chunk) {
        for (index_type t = 0; t < depth_; ++t) {
            const size_type level_base =
                (chunk * static_cast<size_type>(depth_) +
                 static_cast<size_type>(t)) *
                static_cast<size_type>(m) * static_cast<size_type>(lanes);
            for (index_type lane = 0; lane < lanes; ++lane) {
                const size_type l =
                    chunk * static_cast<size_type>(lanes) +
                    static_cast<size_type>(lane);
                const size_type base =
                    level_base + static_cast<size_type>(lane);
                if (l >= static_cast<size_type>(blocks.size())) {
                    for (index_type i = 0; i < m; ++i) {
                        const auto at =
                            base + static_cast<size_type>(i) * lanes;
                        ucoef[at] = T{1};
                        vcoef[at] = T{1};
                    }
                    continue;
                }
                const size_type block =
                    blocks[static_cast<std::size_t>(l)];
                level_coeffs(block, rbt::rbt_side_u, t, m, tmp);
                for (index_type i = 0; i < m; ++i) {
                    ucoef[base + static_cast<size_type>(i) * lanes] =
                        tmp[i];
                }
                level_coeffs(block, rbt::rbt_side_v, t, m, tmp);
                for (index_type i = 0; i < m; ++i) {
                    vcoef[base + static_cast<size_type>(i) * lanes] =
                        tmp[i];
                }
            }
        }
    }
}

template class RbtTransforms<float>;
template class RbtTransforms<double>;

}  // namespace vbatch::core
