#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "base/macros.hpp"
#include "base/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace vbatch::sparse {

template <typename T>
Csr<T> Csr<T>::from_triplets(index_type num_rows, index_type num_cols,
                             std::vector<Triplet<T>> triplets) {
    VBATCH_ENSURE(num_rows >= 0 && num_cols >= 0, "negative dimension");
    for (const auto& t : triplets) {
        VBATCH_ENSURE(t.row >= 0 && t.row < num_rows && t.col >= 0 &&
                          t.col < num_cols,
                      "triplet out of bounds");
    }
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet<T>& a, const Triplet<T>& b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    std::vector<size_type> row_ptrs(static_cast<std::size_t>(num_rows) + 1,
                                    0);
    std::vector<index_type> col_idxs;
    std::vector<T> values;
    col_idxs.reserve(triplets.size());
    values.reserve(triplets.size());
    for (std::size_t p = 0; p < triplets.size();) {
        const auto row = triplets[p].row;
        const auto col = triplets[p].col;
        T sum{};
        while (p < triplets.size() && triplets[p].row == row &&
               triplets[p].col == col) {
            sum += triplets[p].value;
            ++p;
        }
        col_idxs.push_back(col);
        values.push_back(sum);
        ++row_ptrs[static_cast<std::size_t>(row) + 1];
    }
    for (index_type i = 0; i < num_rows; ++i) {
        row_ptrs[static_cast<std::size_t>(i) + 1] +=
            row_ptrs[static_cast<std::size_t>(i)];
    }
    return Csr(num_rows, num_cols, std::move(row_ptrs), std::move(col_idxs),
               std::move(values));
}

template <typename T>
Csr<T>::Csr(index_type num_rows, index_type num_cols,
            std::vector<size_type> row_ptrs, std::vector<index_type> col_idxs,
            std::vector<T> values)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      row_ptrs_(std::move(row_ptrs)),
      col_idxs_(std::move(col_idxs)),
      values_(std::move(values)) {
    VBATCH_ENSURE(row_ptrs_.size() ==
                      static_cast<std::size_t>(num_rows_) + 1,
                  "row_ptrs size mismatch");
    VBATCH_ENSURE(col_idxs_.size() == values_.size(),
                  "col/value size mismatch");
    VBATCH_ENSURE(row_ptrs_.front() == 0 &&
                      row_ptrs_.back() ==
                          static_cast<size_type>(values_.size()),
                  "row_ptrs endpoints invalid");
    for (index_type i = 0; i < num_rows_; ++i) {
        const auto beg = row_ptrs_[static_cast<std::size_t>(i)];
        const auto end = row_ptrs_[static_cast<std::size_t>(i) + 1];
        VBATCH_ENSURE(beg <= end, "row_ptrs not monotone");
        for (auto p = beg; p + 1 < end; ++p) {
            VBATCH_ENSURE(col_idxs_[static_cast<std::size_t>(p)] <
                              col_idxs_[static_cast<std::size_t>(p) + 1],
                          "column indices not strictly increasing");
        }
    }
    reset_spmv_partition();
}

template <typename T>
void Csr<T>::build_spmv_partition(std::vector<size_type>& parts) const {
    parts.clear();
    parts.push_back(0);
    if (num_rows_ == 0) {
        return;
    }
    // More parts than pool participants so the dynamic chunk claiming in
    // parallel_for can still even out residual imbalance (a single part
    // can never be split, so a lone hub row bounds the critical path at
    // max(row_nnz, nnz/parts)).
    const auto target_parts = std::min<size_type>(
        num_rows_,
        static_cast<size_type>(8 * ThreadPool::global().size()));
    const size_type total = nnz();
    for (size_type p = 1; p < target_parts; ++p) {
        const size_type goal = total * p / target_parts;
        const auto it = std::lower_bound(row_ptrs_.begin(), row_ptrs_.end(),
                                         goal);
        const auto row = static_cast<size_type>(it - row_ptrs_.begin());
        if (row <= parts.back() || row >= num_rows_) {
            continue;  // keep boundaries strictly increasing
        }
        parts.push_back(row);
    }
    parts.push_back(num_rows_);
}

template <typename T>
void Csr<T>::set_values(std::span<const T> new_values) {
    VBATCH_ENSURE_DIMS(new_values.size() == values_.size());
    std::copy(new_values.begin(), new_values.end(), values_.begin());
    // Structure untouched: the cached spmv partition stays valid.
}

template <typename T>
void Csr<T>::drop_small_entries(T threshold) {
    std::vector<size_type> row_ptrs(row_ptrs_.size(), 0);
    std::size_t out = 0;
    for (index_type i = 0; i < num_rows_; ++i) {
        for (auto p = row_ptrs_[static_cast<std::size_t>(i)];
             p < row_ptrs_[static_cast<std::size_t>(i) + 1]; ++p) {
            if (std::abs(values_[static_cast<std::size_t>(p)]) > threshold) {
                col_idxs_[out] = col_idxs_[static_cast<std::size_t>(p)];
                values_[out] = values_[static_cast<std::size_t>(p)];
                ++out;
            }
        }
        row_ptrs[static_cast<std::size_t>(i) + 1] =
            static_cast<size_type>(out);
    }
    col_idxs_.resize(out);
    values_.resize(out);
    row_ptrs_ = std::move(row_ptrs);
    // nnz distribution changed; a stale partition would still be *correct*
    // (boundaries stay within [0, num_rows]) but unbalanced -- swap in a
    // fresh slot so the balance invariant survives structural edits.
    reset_spmv_partition();
}

template <typename T>
T Csr<T>::at(index_type i, index_type j) const {
    VBATCH_ENSURE(i >= 0 && i < num_rows_ && j >= 0 && j < num_cols_,
                  "index out of bounds");
    const auto beg = col_idxs_.begin() +
                     static_cast<std::ptrdiff_t>(
                         row_ptrs_[static_cast<std::size_t>(i)]);
    const auto end = col_idxs_.begin() +
                     static_cast<std::ptrdiff_t>(
                         row_ptrs_[static_cast<std::size_t>(i) + 1]);
    const auto it = std::lower_bound(beg, end, j);
    if (it != end && *it == j) {
        return values_[static_cast<std::size_t>(it - col_idxs_.begin())];
    }
    return T{};
}

template <typename T>
void Csr<T>::spmv(std::span<const T> x, std::span<T> y) const {
    spmv(T{1}, x, T{0}, y);
}

template <typename T>
void Csr<T>::spmv(T alpha, std::span<const T> x, T beta,
                  std::span<T> y) const {
    VBATCH_ENSURE_DIMS(static_cast<index_type>(x.size()) == num_cols_);
    VBATCH_ENSURE_DIMS(static_cast<index_type>(y.size()) == num_rows_);
    {
        auto& registry = obs::Registry::global();
        registry.add("spmv.launches", 1.0);
        registry.add(
            "spmv.bytes_moved",
            static_cast<double>(
                nnz() * (sizeof(T) + sizeof(index_type)) +
                row_ptrs_.size() * sizeof(size_type) +
                (static_cast<std::size_t>(num_rows_) +
                 static_cast<std::size_t>(num_cols_)) *
                    sizeof(T)));
    }
    // Each iteration is one nnz-balanced part; every row is still summed
    // serially left-to-right, so y is bitwise independent of the partition
    // (and therefore of the thread count). The y := A x case runs its own
    // loop: the generic tail would stream the old y through every row (an
    // extra memory pass) and let a stale NaN in y poison the product via
    // 0 * y[i].
    const T* vals = values_.data();
    const index_type* cols = col_idxs_.data();
    const size_type* rows = row_ptrs_.data();
    const auto row_sum = [&](index_type i) {
        const auto beg = rows[static_cast<std::size_t>(i)];
        const auto end = rows[static_cast<std::size_t>(i) + 1];
        T acc{};
        // Unrolled by two with a single accumulator: the additions stay in
        // ascending-index order, so the sum is bitwise identical to the
        // textbook loop while the loop overhead halves.
        auto p = beg;
        for (; p + 1 < end; p += 2) {
            acc += vals[static_cast<std::size_t>(p)] *
                   x[static_cast<std::size_t>(
                       cols[static_cast<std::size_t>(p)])];
            acc += vals[static_cast<std::size_t>(p) + 1] *
                   x[static_cast<std::size_t>(
                       cols[static_cast<std::size_t>(p) + 1])];
        }
        if (p < end) {
            acc += vals[static_cast<std::size_t>(p)] *
                   x[static_cast<std::size_t>(
                       cols[static_cast<std::size_t>(p)])];
        }
        return acc;
    };
    const bool plain = alpha == T{1} && beta == T{};
    const auto parts = spmv_partition();
    const auto nparts = static_cast<size_type>(parts.size()) - 1;
    ThreadPool::global().parallel_for(
        0, nparts,
        [&](size_type part) {
            const auto row_beg = static_cast<index_type>(
                parts[static_cast<std::size_t>(part)]);
            const auto row_end = static_cast<index_type>(
                parts[static_cast<std::size_t>(part) + 1]);
            if (plain) {
                for (auto i = row_beg; i < row_end; ++i) {
                    y[static_cast<std::size_t>(i)] = row_sum(i);
                }
            } else {
                for (auto i = row_beg; i < row_end; ++i) {
                    y[static_cast<std::size_t>(i)] =
                        alpha * row_sum(i) +
                        beta * y[static_cast<std::size_t>(i)];
                }
            }
        },
        1);
}

template <typename T>
Csr<T> Csr<T>::transpose() const {
    std::vector<Triplet<T>> triplets;
    triplets.reserve(values_.size());
    for (index_type i = 0; i < num_rows_; ++i) {
        for (auto p = row_ptrs_[static_cast<std::size_t>(i)];
             p < row_ptrs_[static_cast<std::size_t>(i) + 1]; ++p) {
            triplets.push_back({col_idxs_[static_cast<std::size_t>(p)], i,
                                values_[static_cast<std::size_t>(p)]});
        }
    }
    return from_triplets(num_cols_, num_rows_, std::move(triplets));
}

template <typename T>
bool Csr<T>::is_symmetric(T tol) const {
    if (num_rows_ != num_cols_) {
        return false;
    }
    const auto t = transpose();
    if (t.col_idxs_ != col_idxs_ || t.row_ptrs_ != row_ptrs_) {
        return false;
    }
    for (std::size_t p = 0; p < values_.size(); ++p) {
        if (std::abs(values_[p] - t.values_[p]) > tol) {
            return false;
        }
    }
    return true;
}

template class Csr<float>;
template class Csr<double>;

}  // namespace vbatch::sparse
