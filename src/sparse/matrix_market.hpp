// Matrix Market (.mtx) I/O.
//
// The paper's solver study runs on SuiteSparse matrices distributed in
// this format; the reader lets a user with network access drop the real
// Table I matrices into the harness, while the offline reproduction uses
// the synthetic suite (suite.hpp). Supports coordinate real/integer/
// pattern, general/symmetric/skew-symmetric.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace vbatch::sparse {

/// Read a coordinate-format Matrix Market stream. Symmetric storage is
/// expanded to both triangles; pattern entries get value 1.
template <typename T>
Csr<T> read_matrix_market(std::istream& in);

/// Read from a file path; throws vbatch::IoError if unreadable.
template <typename T>
Csr<T> read_matrix_market_file(const std::string& path);

/// Write in coordinate real general format.
template <typename T>
void write_matrix_market(std::ostream& out, const Csr<T>& matrix);

template <typename T>
void write_matrix_market_file(const std::string& path, const Csr<T>& matrix);

}  // namespace vbatch::sparse
