#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "base/macros.hpp"

namespace vbatch::sparse {

namespace {

std::string to_lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

}  // namespace

template <typename T>
Csr<T> read_matrix_market(std::istream& in) {
    std::string line;
    if (!std::getline(in, line)) {
        throw IoError("matrix market: empty stream");
    }
    std::istringstream header(line);
    std::string banner, object, format, field, symmetry;
    header >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket") {
        throw IoError("matrix market: missing %%MatrixMarket banner");
    }
    object = to_lower(object);
    format = to_lower(format);
    field = to_lower(field);
    symmetry = to_lower(symmetry);
    if (object != "matrix" || format != "coordinate") {
        throw IoError("matrix market: only coordinate matrices supported");
    }
    const bool pattern = field == "pattern";
    if (!pattern && field != "real" && field != "integer") {
        throw IoError("matrix market: unsupported field type '" + field +
                      "'");
    }
    const bool symmetric = symmetry == "symmetric";
    const bool skew = symmetry == "skew-symmetric";
    if (!symmetric && !skew && symmetry != "general") {
        throw IoError("matrix market: unsupported symmetry '" + symmetry +
                      "'");
    }

    // Skip comments.
    do {
        if (!std::getline(in, line)) {
            throw IoError("matrix market: missing size line");
        }
    } while (!line.empty() && line[0] == '%');

    std::istringstream size_line(line);
    long rows = 0, cols = 0, entries = 0;
    size_line >> rows >> cols >> entries;
    if (rows <= 0 || cols <= 0 || entries < 0) {
        throw IoError("matrix market: invalid size line");
    }

    std::vector<Triplet<T>> triplets;
    triplets.reserve(static_cast<std::size_t>(entries) *
                     (symmetric || skew ? 2 : 1));
    for (long e = 0; e < entries; ++e) {
        if (!std::getline(in, line)) {
            throw IoError("matrix market: truncated entry list");
        }
        if (line.empty() || line[0] == '%') {
            --e;
            continue;
        }
        std::istringstream es(line);
        long i = 0, j = 0;
        double v = 1.0;
        es >> i >> j;
        if (!pattern) {
            es >> v;
        }
        if (i < 1 || i > rows || j < 1 || j > cols) {
            throw IoError("matrix market: entry out of bounds");
        }
        const auto r = static_cast<index_type>(i - 1);
        const auto c = static_cast<index_type>(j - 1);
        triplets.push_back({r, c, static_cast<T>(v)});
        if ((symmetric || skew) && r != c) {
            triplets.push_back(
                {c, r, static_cast<T>(skew ? -v : v)});
        }
    }
    return Csr<T>::from_triplets(static_cast<index_type>(rows),
                                 static_cast<index_type>(cols),
                                 std::move(triplets));
}

template <typename T>
Csr<T> read_matrix_market_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw IoError("matrix market: cannot open '" + path + "'");
    }
    return read_matrix_market<T>(in);
}

template <typename T>
void write_matrix_market(std::ostream& out, const Csr<T>& matrix) {
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << matrix.num_rows() << " " << matrix.num_cols() << " "
        << matrix.nnz() << "\n";
    out.precision(17);
    for (index_type i = 0; i < matrix.num_rows(); ++i) {
        for (auto p = matrix.row_ptrs()[static_cast<std::size_t>(i)];
             p < matrix.row_ptrs()[static_cast<std::size_t>(i) + 1]; ++p) {
            out << (i + 1) << " "
                << (matrix.col_idxs()[static_cast<std::size_t>(p)] + 1)
                << " " << matrix.values()[static_cast<std::size_t>(p)]
                << "\n";
        }
    }
    if (!out) {
        throw IoError("matrix market: write failure");
    }
}

template <typename T>
void write_matrix_market_file(const std::string& path,
                              const Csr<T>& matrix) {
    std::ofstream out(path);
    if (!out) {
        throw IoError("matrix market: cannot open '" + path +
                      "' for writing");
    }
    write_matrix_market(out, matrix);
}

#define VBATCH_INSTANTIATE_MM(T)                                            \
    template Csr<T> read_matrix_market<T>(std::istream&);                   \
    template Csr<T> read_matrix_market_file<T>(const std::string&);         \
    template void write_matrix_market<T>(std::ostream&, const Csr<T>&);     \
    template void write_matrix_market_file<T>(const std::string&,           \
                                              const Csr<T>&)

VBATCH_INSTANTIATE_MM(float);
VBATCH_INSTANTIATE_MM(double);

#undef VBATCH_INSTANTIATE_MM

}  // namespace vbatch::sparse
