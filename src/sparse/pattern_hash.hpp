// 64-bit fingerprint of a CSR sparsity pattern.
//
// Lives in the sparse layer so Csr itself can memoize it (the hash is a
// pure function of row_ptrs/col_idxs) and higher layers -- the gather
// plan, the service-layer plan cache -- can key shared symbolic state on
// it without recomputing. blocking/gather_plan.hpp re-exports the name
// for existing callers.
#pragma once

#include <cstdint>
#include <span>

#include "base/types.hpp"

namespace vbatch::sparse {

/// Order-sensitive mixing hash over the CSR structure arrays. Collisions
/// would only matter for same-shape same-nnz patterns handed to refresh,
/// and 64 mixed bits make that astronomically unlikely.
std::uint64_t csr_pattern_hash(std::span<const size_type> row_ptrs,
                               std::span<const index_type> col_idxs);

}  // namespace vbatch::sparse
