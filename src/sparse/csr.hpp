// Compressed Sparse Row matrix -- the storage format the paper's
// block-Jacobi ecosystem extracts diagonal blocks from (Section III.C)
// and the format the Krylov solvers run their SpMV on.
//
// Invariants: row_ptrs has num_rows()+1 monotonically non-decreasing
// entries; within each row the column indices are strictly increasing
// (duplicates are merged on construction).
//
// SpMV work distribution: a plain row split assigns each thread the same
// number of rows, which collapses on skewed patterns (a few hub rows
// holding most of the nnz serialize the whole product). Instead the
// matrix caches an nnz-balanced partition of its rows -- part boundaries
// found by binary search on row_ptrs so every part covers about the same
// number of stored entries. The partition depends only on the sparsity
// structure; it is built lazily on the first spmv through std::call_once
// (so concurrent readers of a shared matrix race-freely agree on one
// partition) and invalidated exactly when the structure changes
// (construction and structural mutators).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "base/types.hpp"
#include "sparse/pattern_hash.hpp"

namespace vbatch::sparse {

/// One (row, col, value) entry of a matrix in construction.
template <typename T>
struct Triplet {
    index_type row;
    index_type col;
    T value;
};

template <typename T>
class Csr {
public:
    Csr() : num_rows_(0), num_cols_(0) {
        row_ptrs_.push_back(0);
        reset_spmv_partition();
    }

    /// Build from an unordered triplet list; duplicate entries are summed.
    static Csr from_triplets(index_type num_rows, index_type num_cols,
                             std::vector<Triplet<T>> triplets);

    /// Build directly from validated CSR arrays.
    Csr(index_type num_rows, index_type num_cols,
        std::vector<size_type> row_ptrs, std::vector<index_type> col_idxs,
        std::vector<T> values);

    index_type num_rows() const noexcept { return num_rows_; }
    index_type num_cols() const noexcept { return num_cols_; }
    size_type nnz() const noexcept {
        return static_cast<size_type>(values_.size());
    }

    std::span<const size_type> row_ptrs() const noexcept { return row_ptrs_; }
    std::span<const index_type> col_idxs() const noexcept {
        return col_idxs_;
    }
    std::span<const T> values() const noexcept { return values_; }
    std::span<T> values() noexcept { return values_; }

    /// Replace the stored values, keeping the sparsity structure (and
    /// therefore the cached spmv partition). Sizes must match.
    void set_values(std::span<const T> new_values);

    /// Remove every stored entry with |value| <= threshold. This is a
    /// structural mutation: row_ptrs/col_idxs shrink and the cached spmv
    /// partition is rebuilt for the new nnz distribution.
    void drop_small_entries(T threshold);

    /// Entry (i, j), or zero if not stored (binary search; test helper).
    T at(index_type i, index_type j) const;

    /// y := A x
    void spmv(std::span<const T> x, std::span<T> y) const;

    /// y := alpha A x + beta y
    void spmv(T alpha, std::span<const T> x, T beta, std::span<T> y) const;

    /// The cached nnz-balanced row partition spmv runs over: part p covers
    /// rows [partition[p], partition[p+1]), and all parts hold roughly
    /// equal nnz. Built on first use (thread-safe: concurrent callers on
    /// the same matrix serialize through a call_once and observe the one
    /// published partition). Exposed for tests and diagnostics.
    std::span<const size_type> spmv_partition() const {
        StructureCache& cache = *structure_;
        std::call_once(cache.partition_once,
                       [&] { build_spmv_partition(cache.parts); });
        return cache.parts;
    }

    /// 64-bit fingerprint of the sparsity pattern (csr_pattern_hash over
    /// row_ptrs/col_idxs). Memoized per structure with the same lazy
    /// call_once discipline as the spmv partition: copies of an analyzed
    /// matrix share the computed hash, set_values keeps it, and
    /// structural mutators invalidate it. The service-layer plan cache
    /// keys shared symbolic analyses on this value.
    std::uint64_t pattern_hash() const {
        StructureCache& cache = *structure_;
        std::call_once(cache.hash_once, [&] {
            cache.pattern_hash = csr_pattern_hash(row_ptrs_, col_idxs_);
        });
        return cache.pattern_hash;
    }

    /// Number of stored entries in row i.
    index_type row_nnz(index_type i) const noexcept {
        return static_cast<index_type>(
            row_ptrs_[static_cast<std::size_t>(i) + 1] -
            row_ptrs_[static_cast<std::size_t>(i)]);
    }

    /// Transposed copy (used by generators and tests).
    Csr transpose() const;

    /// True if the sparsity pattern and values are symmetric (tolerance on
    /// values; pattern must match exactly).
    bool is_symmetric(T tol) const;

private:
    /// Lazily-built artifacts derived from the sparsity structure alone
    /// (spmv partition, pattern fingerprint). Lives behind a shared_ptr
    /// so the non-copyable once_flags don't pin the matrix, copies of an
    /// analyzed matrix share the already-built results, and structural
    /// mutators can atomically swap in a fresh unbuilt slot.
    struct StructureCache {
        std::once_flag partition_once;
        std::vector<size_type> parts;
        std::once_flag hash_once;
        std::uint64_t pattern_hash = 0;
    };

    /// Compute the nnz-balanced boundaries from row_ptrs_ into `parts`.
    /// Runs exactly once per structure, under the slot's call_once.
    void build_spmv_partition(std::vector<size_type>& parts) const;

    /// Install a fresh unbuilt cache slot. Called from every path that
    /// establishes or changes the sparsity structure, so spmv/pattern_hash
    /// never see stale artifacts. Not safe against concurrent readers --
    /// structural mutation of a shared matrix was never supported.
    void reset_spmv_partition() {
        structure_ = std::make_shared<StructureCache>();
    }

    index_type num_rows_;
    index_type num_cols_;
    std::vector<size_type> row_ptrs_;
    std::vector<index_type> col_idxs_;
    std::vector<T> values_;
    std::shared_ptr<StructureCache> structure_;
};

}  // namespace vbatch::sparse
