#include "sparse/sellp.hpp"

#include <algorithm>

#include "base/macros.hpp"
#include "base/thread_pool.hpp"

namespace vbatch::sparse {

template <typename T>
SellP<T> SellP<T>::from_csr(const Csr<T>& csr, index_type slice_size,
                            index_type alignment) {
    VBATCH_ENSURE(slice_size >= 1, "slice size must be positive");
    VBATCH_ENSURE(alignment >= 1, "alignment must be positive");
    SellP out;
    out.num_rows_ = csr.num_rows();
    out.num_cols_ = csr.num_cols();
    out.slice_size_ = slice_size;
    out.nnz_ = csr.nnz();
    const index_type num_slices =
        (csr.num_rows() + slice_size - 1) / slice_size;
    out.slice_offsets_.assign(static_cast<std::size_t>(num_slices) + 1, 0);
    out.slice_widths_.assign(static_cast<std::size_t>(num_slices), 0);

    const auto row_ptrs = csr.row_ptrs();
    for (index_type s = 0; s < num_slices; ++s) {
        const index_type r0 = s * slice_size;
        const index_type rows =
            std::min(slice_size, csr.num_rows() - r0);
        index_type width = 0;
        for (index_type r = 0; r < rows; ++r) {
            width = std::max(width, csr.row_nnz(r0 + r));
        }
        width = (width + alignment - 1) / alignment * alignment;
        out.slice_widths_[static_cast<std::size_t>(s)] = width;
        out.slice_offsets_[static_cast<std::size_t>(s) + 1] =
            out.slice_offsets_[static_cast<std::size_t>(s)] +
            static_cast<size_type>(width) * rows;
    }
    out.values_.assign(
        static_cast<std::size_t>(out.slice_offsets_.back()), T{});
    out.col_idxs_.assign(
        static_cast<std::size_t>(out.slice_offsets_.back()), -1);

    const auto col_idxs = csr.col_idxs();
    const auto values = csr.values();
    for (index_type s = 0; s < num_slices; ++s) {
        const index_type r0 = s * slice_size;
        const index_type rows =
            std::min(slice_size, csr.num_rows() - r0);
        const auto base = out.slice_offsets_[static_cast<std::size_t>(s)];
        for (index_type r = 0; r < rows; ++r) {
            const auto beg = row_ptrs[static_cast<std::size_t>(r0 + r)];
            const auto len =
                row_ptrs[static_cast<std::size_t>(r0 + r) + 1] - beg;
            for (size_type k = 0; k < len; ++k) {
                const auto slot = static_cast<std::size_t>(
                    base + k * rows + r);
                out.col_idxs_[slot] =
                    col_idxs[static_cast<std::size_t>(beg + k)];
                out.values_[slot] =
                    values[static_cast<std::size_t>(beg + k)];
            }
        }
    }
    return out;
}

template <typename T>
void SellP<T>::spmv(std::span<const T> x, std::span<T> y) const {
    spmv(T{1}, x, T{0}, y);
}

template <typename T>
void SellP<T>::spmv(T alpha, std::span<const T> x, T beta,
                    std::span<T> y) const {
    VBATCH_ENSURE_DIMS(static_cast<index_type>(x.size()) == num_cols_);
    VBATCH_ENSURE_DIMS(static_cast<index_type>(y.size()) == num_rows_);
    const index_type slices = num_slices();
    const auto body = [&](size_type s) {
        const index_type r0 = static_cast<index_type>(s) * slice_size_;
        const index_type rows = std::min(slice_size_, num_rows_ - r0);
        const auto base = slice_offsets_[static_cast<std::size_t>(s)];
        const auto width = slice_widths_[static_cast<std::size_t>(s)];
        for (index_type r = 0; r < rows; ++r) {
            T acc{};
            for (index_type k = 0; k < width; ++k) {
                const auto slot = static_cast<std::size_t>(
                    base + static_cast<size_type>(k) * rows + r);
                const auto c = col_idxs_[slot];
                if (c >= 0) {
                    acc += values_[slot] * x[static_cast<std::size_t>(c)];
                }
            }
            y[static_cast<std::size_t>(r0 + r)] =
                alpha * acc + beta * y[static_cast<std::size_t>(r0 + r)];
        }
    };
    ThreadPool::global().parallel_for(0, slices, body, 64);
}

template <typename T>
Csr<T> SellP<T>::to_csr() const {
    std::vector<Triplet<T>> triplets;
    triplets.reserve(static_cast<std::size_t>(nnz_));
    for (index_type s = 0; s < num_slices(); ++s) {
        const index_type r0 = s * slice_size_;
        const index_type rows = std::min(slice_size_, num_rows_ - r0);
        const auto base = slice_offsets_[static_cast<std::size_t>(s)];
        const auto width = slice_widths_[static_cast<std::size_t>(s)];
        for (index_type r = 0; r < rows; ++r) {
            for (index_type k = 0; k < width; ++k) {
                const auto slot = static_cast<std::size_t>(
                    base + static_cast<size_type>(k) * rows + r);
                if (col_idxs_[slot] >= 0) {
                    triplets.push_back(
                        {r0 + r, col_idxs_[slot], values_[slot]});
                }
            }
        }
    }
    return Csr<T>::from_triplets(num_rows_, num_cols_, std::move(triplets));
}

template class SellP<float>;
template class SellP<double>;

}  // namespace vbatch::sparse
