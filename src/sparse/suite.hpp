// The 48-matrix benchmark suite for the block-Jacobi solver study.
//
// Substitutes for the 48 SuiteSparse matrices of the paper's Table I
// (offline environment; see DESIGN.md). Families and parameters are chosen
// so the suite spans the same structural situations: FEM-like inherent
// block structure of varying block size, 2-D/3-D multi-dof
// discretizations, nonsymmetric convection, strong anisotropy,
// circuit-like unbalanced patterns, and a few deliberately hard
// (indefinite / strongly nonsymmetric) problems that -- like four of the
// paper's cases -- defeat the solver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace vbatch::sparse {

enum class SuiteFamily {
    fem_block,    ///< generic FEM-like variable-block matrices
    laplace2d,    ///< 2-D multi-dof Poisson
    laplace3d,    ///< 3-D multi-dof Poisson
    convection,   ///< nonsymmetric convection-diffusion
    anisotropic,  ///< anisotropic diffusion
    circuit,      ///< unbalanced circuit-like
    hard,         ///< indefinite (diagonal-shifted) problems
};

std::string family_name(SuiteFamily family);

struct SuiteCase {
    int id;            ///< 1-based index (the "ID" column of Table I)
    std::string name;  ///< synthetic name, styled after the paper's table
    SuiteFamily family;
    index_type p1, p2, p3, p4;  ///< family-specific integer parameters
    double x1, x2;              ///< family-specific real parameters
    std::uint64_t seed;
};

/// The full 48-case suite (metadata only; matrices are built on demand).
const std::vector<SuiteCase>& suite_cases();

/// Instantiate the matrix of one case.
Csr<double> build_suite_matrix(const SuiteCase& c);

/// Find a case by name; throws BadParameter if absent.
const SuiteCase& suite_case_by_name(const std::string& name);

}  // namespace vbatch::sparse
