#include "sparse/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "base/macros.hpp"
#include "base/random.hpp"

namespace vbatch::sparse {

namespace {

/// Append the dense dofs x dofs node-coupling block for grid node `node`.
/// The diagonal covers the couplings *exactly* (weak dominance): interior
/// rows balance like a Dirichlet Laplacian, the strict boundary rows keep
/// the matrix irreducibly diagonally dominant (hence non-singular), and
/// the assembled operator has the classic O(h^-2) conditioning that makes
/// the solver study meaningful.
template <typename T>
void append_node_block(std::vector<Triplet<T>>& triplets, index_type node,
                       index_type dofs, T stencil_weight,
                       std::uint64_t seed) {
    auto eng = make_engine(seed, static_cast<std::uint64_t>(node));
    const index_type base = node * dofs;
    // Intra-node coupling strength relative to the stencil scale.
    const T amp = T{0.5} * stencil_weight /
                  static_cast<T>(std::max<index_type>(1, dofs - 1));
    // The intra-node block is a weighted *graph Laplacian* over the dofs:
    // symmetric negative couplings, diagonal = exact row cover. This adds
    // a positive-semidefinite zero-row-sum perturbation, so it thickens
    // the intra-node coupling (what block-Jacobi later absorbs) without
    // shifting the spectrum away from the O(h^-2) stencil conditioning.
    std::array<T, max_block_size> cover{};
    for (index_type i = 0; i < dofs; ++i) {
        for (index_type j = i + 1; j < dofs; ++j) {
            const T w = amp * uniform<T>(eng, T{0.1}, T{1});
            triplets.push_back({base + i, base + j, -w});
            triplets.push_back({base + j, base + i, -w});
            cover[static_cast<std::size_t>(i)] += w;
            cover[static_cast<std::size_t>(j)] += w;
        }
    }
    for (index_type i = 0; i < dofs; ++i) {
        triplets.push_back(
            {base + i, base + i,
             cover[static_cast<std::size_t>(i)] + stencil_weight});
    }
}

/// Append the inter-node coupling block between nodes a and b (one
/// direction). Like a true FEM assembly, the coupling is a *dense*
/// dofs x dofs block (every dof of a couples to every dof of b) with row
/// sums of magnitude c -- this is what makes all dofs of one node share
/// their column sparsity pattern, i.e. form a supervariable.
template <typename T>
void append_coupling(std::vector<Triplet<T>>& triplets, index_type a,
                     index_type b, index_type dofs, T c) {
    const T v = -c / static_cast<T>(dofs);
    for (index_type i = 0; i < dofs; ++i) {
        for (index_type j = 0; j < dofs; ++j) {
            triplets.push_back({a * dofs + i, b * dofs + j, v});
        }
    }
}

}  // namespace

template <typename T>
Csr<T> laplacian_2d(index_type nx, index_type ny, index_type dofs,
                    std::uint64_t seed) {
    VBATCH_ENSURE(nx > 0 && ny > 0 && dofs > 0, "invalid grid");
    const index_type nodes = nx * ny;
    std::vector<Triplet<T>> triplets;
    triplets.reserve(static_cast<std::size_t>(nodes) *
                     (dofs * dofs + 4 * dofs));
    const auto id = [nx](index_type ix, index_type iy) {
        return iy * nx + ix;
    };
    for (index_type iy = 0; iy < ny; ++iy) {
        for (index_type ix = 0; ix < nx; ++ix) {
            const index_type node = id(ix, iy);
            // Full interior stencil weight regardless of the boundary --
            // the Dirichlet convention that gives boundary rows their
            // strict dominance.
            append_node_block(triplets, node, dofs, T{4}, seed);
            if (ix > 0) append_coupling(triplets, node, id(ix - 1, iy), dofs, T{1});
            if (ix + 1 < nx) append_coupling(triplets, node, id(ix + 1, iy), dofs, T{1});
            if (iy > 0) append_coupling(triplets, node, id(ix, iy - 1), dofs, T{1});
            if (iy + 1 < ny) append_coupling(triplets, node, id(ix, iy + 1), dofs, T{1});
        }
    }
    return Csr<T>::from_triplets(nodes * dofs, nodes * dofs,
                                 std::move(triplets));
}

template <typename T>
Csr<T> laplacian_3d(index_type nx, index_type ny, index_type nz,
                    index_type dofs, std::uint64_t seed) {
    VBATCH_ENSURE(nx > 0 && ny > 0 && nz > 0 && dofs > 0, "invalid grid");
    const index_type nodes = nx * ny * nz;
    std::vector<Triplet<T>> triplets;
    triplets.reserve(static_cast<std::size_t>(nodes) *
                     (dofs * dofs + 6 * dofs));
    const auto id = [nx, ny](index_type ix, index_type iy, index_type iz) {
        return (iz * ny + iy) * nx + ix;
    };
    for (index_type iz = 0; iz < nz; ++iz) {
        for (index_type iy = 0; iy < ny; ++iy) {
            for (index_type ix = 0; ix < nx; ++ix) {
                const index_type node = id(ix, iy, iz);
                const index_type nb[6][3] = {
                    {ix - 1, iy, iz}, {ix + 1, iy, iz}, {ix, iy - 1, iz},
                    {ix, iy + 1, iz}, {ix, iy, iz - 1}, {ix, iy, iz + 1}};
                append_node_block(triplets, node, dofs, T{6}, seed);
                for (const auto& c : nb) {
                    if (c[0] >= 0 && c[0] < nx && c[1] >= 0 && c[1] < ny &&
                        c[2] >= 0 && c[2] < nz) {
                        append_coupling(triplets, node, id(c[0], c[1], c[2]),
                                        dofs, T{1});
                    }
                }
            }
        }
    }
    return Csr<T>::from_triplets(nodes * dofs, nodes * dofs,
                                 std::move(triplets));
}

template <typename T>
Csr<T> convection_diffusion_2d(index_type nx, index_type ny, index_type dofs,
                               T peclet, std::uint64_t seed) {
    VBATCH_ENSURE(nx > 0 && ny > 0 && dofs > 0, "invalid grid");
    const index_type nodes = nx * ny;
    std::vector<Triplet<T>> triplets;
    triplets.reserve(static_cast<std::size_t>(nodes) *
                     (dofs * dofs + 4 * dofs));
    const auto id = [nx](index_type ix, index_type iy) {
        return iy * nx + ix;
    };
    for (index_type iy = 0; iy < ny; ++iy) {
        for (index_type ix = 0; ix < nx; ++ix) {
            const index_type node = id(ix, iy);
            // Rotating velocity field (bx, by) in [-1, 1]^2.
            const T x = T(2) * ix / std::max<index_type>(1, nx - 1) - T(1);
            const T y = T(2) * iy / std::max<index_type>(1, ny - 1) - T(1);
            const T bx = peclet * y;
            const T by = -peclet * x;
            // First-order upwind: convection strengthens the coupling
            // against the flow and the diagonal.
            const T wxm = T{1} + std::max(bx, T{0});
            const T wxp = T{1} + std::max(-bx, T{0});
            const T wym = T{1} + std::max(by, T{0});
            const T wyp = T{1} + std::max(-by, T{0});
            append_node_block(triplets, node, dofs,
                              wxm + wxp + wym + wyp, seed);
            if (ix > 0) append_coupling(triplets, node, id(ix - 1, iy), dofs, wxm);
            if (ix + 1 < nx) append_coupling(triplets, node, id(ix + 1, iy), dofs, wxp);
            if (iy > 0) append_coupling(triplets, node, id(ix, iy - 1), dofs, wym);
            if (iy + 1 < ny) append_coupling(triplets, node, id(ix, iy + 1), dofs, wyp);
        }
    }
    return Csr<T>::from_triplets(nodes * dofs, nodes * dofs,
                                 std::move(triplets));
}

template <typename T>
Csr<T> anisotropic_2d(index_type nx, index_type ny, T epsilon,
                      index_type dofs, std::uint64_t seed) {
    VBATCH_ENSURE(nx > 0 && ny > 0 && dofs > 0, "invalid grid");
    VBATCH_ENSURE(epsilon > T{0}, "anisotropy must be positive");
    const index_type nodes = nx * ny;
    std::vector<Triplet<T>> triplets;
    const auto id = [nx](index_type ix, index_type iy) {
        return iy * nx + ix;
    };
    for (index_type iy = 0; iy < ny; ++iy) {
        for (index_type ix = 0; ix < nx; ++ix) {
            const index_type node = id(ix, iy);
            append_node_block(triplets, node, dofs,
                              T{2} + T{2} * epsilon, seed);
            if (ix > 0) append_coupling(triplets, node, id(ix - 1, iy), dofs, T{1});
            if (ix + 1 < nx) append_coupling(triplets, node, id(ix + 1, iy), dofs, T{1});
            if (iy > 0) append_coupling(triplets, node, id(ix, iy - 1), dofs, epsilon);
            if (iy + 1 < ny) append_coupling(triplets, node, id(ix, iy + 1), dofs, epsilon);
        }
    }
    return Csr<T>::from_triplets(nodes * dofs, nodes * dofs,
                                 std::move(triplets));
}

template <typename T>
Csr<T> fem_block_matrix(index_type num_blocks, index_type min_block,
                        index_type max_block, index_type neighbors,
                        T coupling, std::uint64_t seed) {
    VBATCH_ENSURE(num_blocks > 0, "need at least one block");
    VBATCH_ENSURE(min_block > 0 && min_block <= max_block &&
                      max_block <= max_block_size,
                  "block size bounds invalid");
    auto eng = make_engine(seed);
    std::vector<index_type> sizes(static_cast<std::size_t>(num_blocks));
    std::vector<index_type> starts(static_cast<std::size_t>(num_blocks) + 1);
    starts[0] = 0;
    for (index_type b = 0; b < num_blocks; ++b) {
        sizes[static_cast<std::size_t>(b)] =
            uniform_int(eng, min_block, max_block);
        starts[static_cast<std::size_t>(b) + 1] =
            starts[static_cast<std::size_t>(b)] +
            sizes[static_cast<std::size_t>(b)];
    }
    const index_type n = starts[static_cast<std::size_t>(num_blocks)];

    std::vector<Triplet<T>> triplets;
    // Off-diagonal couplings first so the diagonal can cover them.
    std::vector<T> row_off_sum(static_cast<std::size_t>(n), T{});
    for (index_type b = 0; b < num_blocks; ++b) {
        for (index_type d = 1; d <= neighbors; ++d) {
            const index_type nb = b + d;
            if (nb >= num_blocks) {
                break;
            }
            // Couple a random subset of (row, col) pairs symmetrically.
            const index_type mb = sizes[static_cast<std::size_t>(b)];
            const index_type mn = sizes[static_cast<std::size_t>(nb)];
            const index_type pairs = std::max<index_type>(1, (mb + mn) / 4);
            for (index_type p = 0; p < pairs; ++p) {
                const index_type i =
                    starts[static_cast<std::size_t>(b)] +
                    uniform_int(eng, 0, mb - 1);
                const index_type j =
                    starts[static_cast<std::size_t>(nb)] +
                    uniform_int(eng, 0, mn - 1);
                const T v = coupling * uniform<T>(eng, T{-1}, T{1});
                triplets.push_back({i, j, v});
                triplets.push_back({j, i, v});
                row_off_sum[static_cast<std::size_t>(i)] += std::abs(v);
                row_off_sum[static_cast<std::size_t>(j)] += std::abs(v);
            }
        }
    }
    // Dense diagonally-dominant blocks.
    for (index_type b = 0; b < num_blocks; ++b) {
        const index_type base = starts[static_cast<std::size_t>(b)];
        const index_type m = sizes[static_cast<std::size_t>(b)];
        for (index_type i = 0; i < m; ++i) {
            T off_sum = row_off_sum[static_cast<std::size_t>(base + i)];
            for (index_type j = 0; j < m; ++j) {
                if (i == j) {
                    continue;
                }
                const T v = uniform<T>(eng, T{-1}, T{1});
                off_sum += std::abs(v);
                triplets.push_back({base + i, base + j, v});
            }
            triplets.push_back(
                {base + i, base + i,
                 off_sum + T{0.001} + T{0.01} * uniform<T>(eng, T{0.1}, T{0.9})});
        }
    }
    return Csr<T>::from_triplets(n, n, std::move(triplets));
}

template <typename T>
Csr<T> circuit_like(index_type n, index_type avg_row_nnz, index_type num_hubs,
                    index_type hub_nnz, std::uint64_t seed) {
    VBATCH_ENSURE(n > 1, "matrix too small");
    VBATCH_ENSURE(avg_row_nnz >= 1 && hub_nnz >= 1, "invalid nnz targets");
    VBATCH_ENSURE(num_hubs >= 0 && num_hubs < n, "invalid hub count");
    auto eng = make_engine(seed);
    std::vector<Triplet<T>> triplets;
    std::vector<T> row_off_sum(static_cast<std::size_t>(n), T{});
    const auto add_sym = [&](index_type i, index_type j, T v) {
        if (i == j) {
            return;
        }
        triplets.push_back({i, j, v});
        triplets.push_back({j, i, v});
        row_off_sum[static_cast<std::size_t>(i)] += std::abs(v);
        row_off_sum[static_cast<std::size_t>(j)] += std::abs(v);
    };
    // Short-range connections (the "components").
    for (index_type i = 0; i < n; ++i) {
        const index_type links = uniform_int(eng, 1, avg_row_nnz);
        for (index_type l = 0; l < links; ++l) {
            const index_type j =
                std::min<index_type>(n - 1, i + uniform_int(eng, 1, 8));
            add_sym(i, j, uniform<T>(eng, T{-1}, T{1}));
        }
    }
    // Hub rows (the "power nets"): a few rows touching many columns.
    for (index_type h = 0; h < num_hubs; ++h) {
        const index_type hub = uniform_int(eng, 0, n - 1);
        for (index_type l = 0; l < hub_nnz; ++l) {
            const index_type j = uniform_int(eng, 0, n - 1);
            add_sym(hub, j, uniform<T>(eng, T{-1}, T{1}) * T(0.1));
        }
    }
    for (index_type i = 0; i < n; ++i) {
        triplets.push_back(
            {i, i, row_off_sum[static_cast<std::size_t>(i)] + T{0.05} +
                       T{0.20} * uniform<T>(eng, T{0.1}, T{0.9})});
    }
    return Csr<T>::from_triplets(n, n, std::move(triplets));
}

template <typename T>
Csr<T> random_banded(index_type n, index_type bandwidth, T dominance,
                     std::uint64_t seed) {
    VBATCH_ENSURE(n > 0 && bandwidth >= 0, "invalid band parameters");
    auto eng = make_engine(seed);
    std::vector<Triplet<T>> triplets;
    for (index_type i = 0; i < n; ++i) {
        T off_sum{};
        const index_type lo = std::max<index_type>(0, i - bandwidth);
        const index_type hi = std::min<index_type>(n - 1, i + bandwidth);
        for (index_type j = lo; j <= hi; ++j) {
            if (j == i) {
                continue;
            }
            const T v = uniform<T>(eng, T{-1}, T{1});
            off_sum += std::abs(v);
            triplets.push_back({i, j, v});
        }
        triplets.push_back(
            {i, i, off_sum + dominance + uniform<T>(eng, T{0.1}, T{0.9})});
    }
    return Csr<T>::from_triplets(n, n, std::move(triplets));
}

#define VBATCH_INSTANTIATE_GEN(T)                                           \
    template Csr<T> laplacian_2d<T>(index_type, index_type, index_type,     \
                                    std::uint64_t);                         \
    template Csr<T> laplacian_3d<T>(index_type, index_type, index_type,     \
                                    index_type, std::uint64_t);             \
    template Csr<T> convection_diffusion_2d<T>(index_type, index_type,      \
                                               index_type, T,               \
                                               std::uint64_t);              \
    template Csr<T> anisotropic_2d<T>(index_type, index_type, T,            \
                                      index_type, std::uint64_t);           \
    template Csr<T> fem_block_matrix<T>(index_type, index_type, index_type, \
                                        index_type, T, std::uint64_t);      \
    template Csr<T> circuit_like<T>(index_type, index_type, index_type,     \
                                    index_type, std::uint64_t);             \
    template Csr<T> random_banded<T>(index_type, index_type, T,             \
                                     std::uint64_t)

VBATCH_INSTANTIATE_GEN(float);
VBATCH_INSTANTIATE_GEN(double);

#undef VBATCH_INSTANTIATE_GEN

}  // namespace vbatch::sparse
