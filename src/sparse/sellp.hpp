// SELL-P (sliced ELLPACK with padding) sparse format.
//
// MAGMA-sparse -- the library the paper's kernels integrate into -- runs
// its Krylov solvers' SpMV on SELL-P: rows are grouped into slices of
// `slice_size`, each slice is padded to its longest row (rounded up to an
// alignment), and values/column indices are stored slice-locally in
// column-major order so that consecutive GPU threads read consecutive
// memory. We provide the format as part of the sparse substrate: a
// conversion from CSR, an SpMV, and the padding diagnostics that decide
// when it pays off.
#pragma once

#include <span>
#include <vector>

#include "base/types.hpp"
#include "sparse/csr.hpp"

namespace vbatch::sparse {

template <typename T>
class SellP {
public:
    /// Convert from CSR. `slice_size` rows per slice (MAGMA default 32);
    /// the per-slice width is rounded up to a multiple of `alignment`.
    static SellP from_csr(const Csr<T>& csr, index_type slice_size = 32,
                          index_type alignment = 4);

    index_type num_rows() const noexcept { return num_rows_; }
    index_type num_cols() const noexcept { return num_cols_; }
    /// Stored entries including padding.
    size_type stored_elements() const noexcept {
        return static_cast<size_type>(values_.size());
    }
    /// Actual nonzeros (excluding padding).
    size_type nnz() const noexcept { return nnz_; }
    index_type slice_size() const noexcept { return slice_size_; }
    index_type num_slices() const noexcept {
        return static_cast<index_type>(slice_offsets_.size()) - 1;
    }
    /// Fraction of stored elements that is padding (0 = perfect).
    double padding_overhead() const noexcept {
        return stored_elements() == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(nnz_) /
                             static_cast<double>(stored_elements());
    }

    /// y := A x
    void spmv(std::span<const T> x, std::span<T> y) const;

    /// y := alpha A x + beta y
    void spmv(T alpha, std::span<const T> x, T beta, std::span<T> y) const;

    /// Round-trip back to CSR (drops the padding).
    Csr<T> to_csr() const;

private:
    SellP() = default;

    index_type num_rows_ = 0;
    index_type num_cols_ = 0;
    index_type slice_size_ = 32;
    size_type nnz_ = 0;
    /// Start of each slice in values_/col_idxs_ (num_slices + 1 entries).
    std::vector<size_type> slice_offsets_;
    /// Padded width of each slice.
    std::vector<index_type> slice_widths_;
    /// Column-major within the slice: entry (row r, step k) of slice s at
    /// slice_offsets_[s] + k * rows_in_slice + (r - s*slice_size).
    /// Padding entries carry column -1 and value 0.
    std::vector<index_type> col_idxs_;
    std::vector<T> values_;
};

}  // namespace vbatch::sparse
