#include "sparse/suite.hpp"

#include "base/macros.hpp"
#include "sparse/generators.hpp"

namespace vbatch::sparse {

std::string family_name(SuiteFamily family) {
    switch (family) {
    case SuiteFamily::fem_block: return "fem-block";
    case SuiteFamily::laplace2d: return "laplace-2d";
    case SuiteFamily::laplace3d: return "laplace-3d";
    case SuiteFamily::convection: return "convection";
    case SuiteFamily::anisotropic: return "anisotropic";
    case SuiteFamily::circuit: return "circuit";
    case SuiteFamily::hard: return "hard";
    }
    return "unknown";
}

const std::vector<SuiteCase>& suite_cases() {
    // Parameter meaning per family:
    //   fem_block  : p1=num_blocks p2=min_block p3=max_block p4=neighbors
    //                x1=coupling
    //   laplace2d  : p1=nx p2=ny p3=dofs
    //   laplace3d  : p1=nx p2=ny p3=nz p4=dofs
    //   convection : p1=nx p2=ny p3=dofs x1=peclet
    //   anisotropic: p1=nx p2=ny p3=dofs x1=epsilon
    //   circuit    : p1=n p2=avg_row_nnz p3=num_hubs p4=hub_nnz
    //   hard       : p1=nx p2=ny p3=dofs x1=peclet x2=diagonal shift factor
    static const std::vector<SuiteCase> cases = {
        // --- FEM-like variable-block matrices (12) ---
        {1, "fem_d2_s", SuiteFamily::fem_block, 800, 2, 4, 2, 0.20, 0, 101},
        {2, "fem_d2_m", SuiteFamily::fem_block, 2400, 2, 4, 2, 0.20, 0, 102},
        {3, "fem_d4_s", SuiteFamily::fem_block, 700, 3, 6, 2, 0.25, 0, 103},
        {4, "fem_d4_m", SuiteFamily::fem_block, 2000, 3, 6, 3, 0.25, 0, 104},
        {5, "fem_d8_s", SuiteFamily::fem_block, 500, 6, 10, 2, 0.25, 0, 105},
        {6, "fem_d8_m", SuiteFamily::fem_block, 1500, 6, 10, 3, 0.25, 0, 106},
        {7, "fem_d12_s", SuiteFamily::fem_block, 400, 10, 14, 2, 0.30, 0, 107},
        {8, "fem_d12_m", SuiteFamily::fem_block, 1200, 10, 14, 3, 0.30, 0, 108},
        {9, "fem_d16_m", SuiteFamily::fem_block, 900, 12, 20, 3, 0.30, 0, 109},
        {10, "fem_d24_m", SuiteFamily::fem_block, 700, 20, 28, 3, 0.30, 0, 110},
        {11, "fem_d32_s", SuiteFamily::fem_block, 350, 28, 32, 2, 0.30, 0, 111},
        {12, "fem_d32_m", SuiteFamily::fem_block, 800, 28, 32, 3, 0.30, 0, 112},
        // --- 2-D multi-dof Poisson (6) ---
        {13, "lap2d_d1", SuiteFamily::laplace2d, 90, 90, 1, 0, 0, 0, 201},
        {14, "lap2d_d2", SuiteFamily::laplace2d, 70, 70, 2, 0, 0, 0, 202},
        {15, "lap2d_d4", SuiteFamily::laplace2d, 55, 55, 4, 0, 0, 0, 203},
        {16, "lap2d_d5", SuiteFamily::laplace2d, 64, 48, 5, 0, 0, 0, 204},
        {17, "lap2d_d8", SuiteFamily::laplace2d, 42, 42, 8, 0, 0, 0, 205},
        {18, "lap2d_d16", SuiteFamily::laplace2d, 30, 30, 16, 0, 0, 0, 206},
        // --- 3-D multi-dof Poisson (4) ---
        {19, "lap3d_d1", SuiteFamily::laplace3d, 22, 22, 22, 1, 0, 0, 301},
        {20, "lap3d_d2", SuiteFamily::laplace3d, 17, 17, 17, 2, 0, 0, 302},
        {21, "lap3d_d4", SuiteFamily::laplace3d, 14, 14, 14, 4, 0, 0, 303},
        {22, "lap3d_d8", SuiteFamily::laplace3d, 11, 11, 11, 8, 0, 0, 304},
        // --- nonsymmetric convection-diffusion (8) ---
        {23, "convdiff_p2_d1", SuiteFamily::convection, 85, 85, 1, 0, 2, 0, 401},
        {24, "convdiff_p2_d4", SuiteFamily::convection, 48, 48, 4, 0, 2, 0, 402},
        {25, "convdiff_p10_d1", SuiteFamily::convection, 85, 85, 1, 0, 10, 0, 403},
        {26, "convdiff_p10_d4", SuiteFamily::convection, 48, 48, 4, 0, 10, 0, 404},
        {27, "convdiff_p10_d8", SuiteFamily::convection, 36, 36, 8, 0, 10, 0, 405},
        {28, "convdiff_p50_d2", SuiteFamily::convection, 60, 60, 2, 0, 50, 0, 406},
        {29, "convdiff_p50_d4", SuiteFamily::convection, 44, 44, 4, 0, 50, 0, 407},
        {30, "convdiff_p200_d4", SuiteFamily::convection, 40, 40, 4, 0, 200, 0, 408},
        // --- anisotropic diffusion (6) ---
        {31, "aniso_e10_d1", SuiteFamily::anisotropic, 80, 80, 1, 0, 10, 0, 501},
        {32, "aniso_e10_d4", SuiteFamily::anisotropic, 46, 46, 4, 0, 10, 0, 502},
        {33, "aniso_e100_d1", SuiteFamily::anisotropic, 80, 80, 1, 0, 100, 0, 503},
        {34, "aniso_e100_d4", SuiteFamily::anisotropic, 46, 46, 4, 0, 100, 0, 504},
        {35, "aniso_e100_d8", SuiteFamily::anisotropic, 34, 34, 8, 0, 100, 0, 505},
        {36, "aniso_e1000_d2", SuiteFamily::anisotropic, 56, 56, 2, 0, 1000, 0, 506},
        // --- circuit-like unbalanced (6) ---
        {37, "circuit_s", SuiteFamily::circuit, 5000, 3, 6, 400, 0, 0, 601},
        {38, "circuit_m", SuiteFamily::circuit, 15000, 3, 10, 800, 0, 0, 602},
        {39, "circuit_l", SuiteFamily::circuit, 40000, 3, 14, 1200, 0, 0, 603},
        {40, "circuit_dense_hubs", SuiteFamily::circuit, 12000, 4, 30, 2000, 0, 0, 604},
        {41, "circuit_sparse", SuiteFamily::circuit, 20000, 2, 6, 500, 0, 0, 605},
        {42, "circuit_mixed", SuiteFamily::circuit, 9000, 5, 20, 1500, 0, 0, 606},
        // --- hard cases (6): shifted / dominated by convection; like four
        //     of the paper's matrices, some do not converge in 10k its ---
        {43, "hard_shift_low", SuiteFamily::hard, 60, 60, 2, 0, 5, 0.02, 701},
        {44, "hard_shift_mid", SuiteFamily::hard, 60, 60, 2, 0, 5, 0.95, 702},
        {45, "hard_shift_high", SuiteFamily::hard, 60, 60, 2, 0, 5, 1.20, 703},
        {46, "hard_conv_shift", SuiteFamily::hard, 52, 52, 4, 0, 120, 0.03, 704},
        {47, "hard_indefinite", SuiteFamily::hard, 70, 70, 1, 0, 1, 1.05, 705},
        {48, "hard_conv_extreme", SuiteFamily::hard, 48, 48, 4, 0, 400, 0.80, 706},
    };
    return cases;
}

Csr<double> build_suite_matrix(const SuiteCase& c) {
    switch (c.family) {
    case SuiteFamily::fem_block:
        return fem_block_matrix<double>(c.p1, c.p2, c.p3, c.p4, c.x1,
                                        c.seed);
    case SuiteFamily::laplace2d:
        return laplacian_2d<double>(c.p1, c.p2, c.p3, c.seed);
    case SuiteFamily::laplace3d:
        return laplacian_3d<double>(c.p1, c.p2, c.p3, c.p4, c.seed);
    case SuiteFamily::convection:
        return convection_diffusion_2d<double>(c.p1, c.p2, c.p3, c.x1,
                                               c.seed);
    case SuiteFamily::anisotropic:
        return anisotropic_2d<double>(c.p1, c.p2, c.x1, c.p3, c.seed);
    case SuiteFamily::circuit:
        return circuit_like<double>(c.p1, c.p2, c.p3, c.p4, c.seed);
    case SuiteFamily::hard: {
        // Convection-diffusion weakened by a diagonal shift of x2 times
        // each row's diagonal: pushes eigenvalues toward (and past) zero.
        auto a = convection_diffusion_2d<double>(c.p1, c.p2, c.p3, c.x1,
                                                 c.seed);
        auto vals = a.values();
        const auto row_ptrs = a.row_ptrs();
        const auto col_idxs = a.col_idxs();
        for (index_type i = 0; i < a.num_rows(); ++i) {
            for (auto p = row_ptrs[static_cast<std::size_t>(i)];
                 p < row_ptrs[static_cast<std::size_t>(i) + 1]; ++p) {
                if (col_idxs[static_cast<std::size_t>(p)] == i) {
                    vals[static_cast<std::size_t>(p)] *= (1.0 - c.x2);
                }
            }
        }
        return a;
    }
    }
    throw BadParameter("unknown suite family");
}

const SuiteCase& suite_case_by_name(const std::string& name) {
    for (const auto& c : suite_cases()) {
        if (c.name == name) {
            return c;
        }
    }
    throw BadParameter("no suite case named '" + name + "'");
}

}  // namespace vbatch::sparse
