#include "sparse/pattern_hash.hpp"

namespace vbatch::sparse {

namespace {

/// Mix one value into a running hash (splitmix-style avalanche step).
inline void hash_mix(std::uint64_t& h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

/// Hash an array through four independent interleaved streams: the
/// per-stream latency chains overlap, which makes the fingerprint ~4x
/// cheaper than a single serial chain on long arrays. Deterministic and
/// order-sensitive (each stream sees a fixed residue class).
template <typename V>
void hash_streams(std::uint64_t (&h)[4], std::span<const V> data) {
    const std::size_t n = data.size();
    const std::size_t n4 = n - n % 4;
    for (std::size_t i = 0; i < n4; i += 4) {
        hash_mix(h[0], static_cast<std::uint64_t>(data[i]));
        hash_mix(h[1], static_cast<std::uint64_t>(data[i + 1]));
        hash_mix(h[2], static_cast<std::uint64_t>(data[i + 2]));
        hash_mix(h[3], static_cast<std::uint64_t>(data[i + 3]));
    }
    for (std::size_t i = n4; i < n; ++i) {
        hash_mix(h[i % 4], static_cast<std::uint64_t>(data[i]));
    }
}

}  // namespace

std::uint64_t csr_pattern_hash(std::span<const size_type> row_ptrs,
                               std::span<const index_type> col_idxs) {
    std::uint64_t h[4] = {0x9e3779b97f4a7c15ULL, 0xbf58476d1ce4e5b9ULL,
                          0x94d049bb133111ebULL, 0xd6e8feb86659fd93ULL};
    hash_streams(h, row_ptrs);
    hash_streams(h, col_idxs);
    std::uint64_t out = h[0];
    hash_mix(out, h[1]);
    hash_mix(out, h[2]);
    hash_mix(out, h[3]);
    return out;
}

}  // namespace vbatch::sparse
