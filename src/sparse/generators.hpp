// Synthetic sparse matrix generators.
//
// The paper evaluates block-Jacobi on 48 SuiteSparse matrices "carrying
// some inherent block structure" (FEM discretizations, circuit problems,
// ...). SuiteSparse is not available offline, so these generators produce
// the same *structural* situations the preconditioner responds to:
//
//  - multi-dof stencil discretizations (supervariable blocks = dof count)
//  - generic FEM-like block matrices with variable block sizes
//  - nonsymmetric convection-diffusion (upwinded)
//  - anisotropic diffusion (strong directional coupling)
//  - circuit-like matrices with highly unbalanced rows (the extraction
//    stress case of Section III.C)
//
// All generators are deterministic in their seed.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace vbatch::sparse {

/// 2-D Poisson (5-point stencil) on an nx x ny grid with `dofs` coupled
/// unknowns per grid node. The per-node coupling block is a random
/// diagonally-dominant dofs x dofs matrix; inter-node coupling is
/// -c * I_dofs. Natural ordering, so supervariable blocking recovers the
/// dof blocks.
template <typename T>
Csr<T> laplacian_2d(index_type nx, index_type ny, index_type dofs = 1,
                    std::uint64_t seed = 42);

/// 3-D Poisson (7-point stencil) with `dofs` unknowns per node.
template <typename T>
Csr<T> laplacian_3d(index_type nx, index_type ny, index_type nz,
                    index_type dofs = 1, std::uint64_t seed = 42);

/// Nonsymmetric 2-D convection-diffusion, first-order upwind convection of
/// strength `peclet` in a rotating velocity field, `dofs` unknowns/node.
template <typename T>
Csr<T> convection_diffusion_2d(index_type nx, index_type ny,
                               index_type dofs = 1, T peclet = T{10},
                               std::uint64_t seed = 42);

/// Anisotropic 2-D diffusion: x-coupling 1, y-coupling `epsilon`.
template <typename T>
Csr<T> anisotropic_2d(index_type nx, index_type ny, T epsilon,
                      index_type dofs = 1, std::uint64_t seed = 42);

/// Generic FEM-like block matrix: `num_blocks` diagonal blocks with sizes
/// drawn uniformly from [min_block, max_block], each dense and
/// diagonally dominant; every block couples to `neighbors` preceding and
/// following blocks with sparse random entries of magnitude
/// `coupling` x (its dominance margin).
template <typename T>
Csr<T> fem_block_matrix(index_type num_blocks, index_type min_block,
                        index_type max_block, index_type neighbors = 2,
                        T coupling = T{0.25}, std::uint64_t seed = 42);

/// Circuit-simulation-like matrix: mostly very short rows plus `num_hubs`
/// dense "power net" rows/columns -- the unbalanced-nonzero stress test
/// for the diagonal-block extraction.
template <typename T>
Csr<T> circuit_like(index_type n, index_type avg_row_nnz,
                    index_type num_hubs, index_type hub_nnz,
                    std::uint64_t seed = 42);

/// Random banded diagonally-dominant matrix (bandwidth b each side).
template <typename T>
Csr<T> random_banded(index_type n, index_type bandwidth, T dominance = T{1},
                     std::uint64_t seed = 42);

}  // namespace vbatch::sparse
