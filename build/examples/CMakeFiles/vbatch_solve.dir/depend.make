# Empty dependencies file for vbatch_solve.
# This may be replaced when dependencies are built.
