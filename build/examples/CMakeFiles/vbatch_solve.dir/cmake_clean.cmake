file(REMOVE_RECURSE
  "CMakeFiles/vbatch_solve.dir/vbatch_solve.cpp.o"
  "CMakeFiles/vbatch_solve.dir/vbatch_solve.cpp.o.d"
  "vbatch_solve"
  "vbatch_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbatch_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
