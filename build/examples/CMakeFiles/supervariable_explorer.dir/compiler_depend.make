# Empty compiler generated dependencies file for supervariable_explorer.
# This may be replaced when dependencies are built.
