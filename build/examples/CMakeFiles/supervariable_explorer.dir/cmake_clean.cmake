file(REMOVE_RECURSE
  "CMakeFiles/supervariable_explorer.dir/supervariable_explorer.cpp.o"
  "CMakeFiles/supervariable_explorer.dir/supervariable_explorer.cpp.o.d"
  "supervariable_explorer"
  "supervariable_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supervariable_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
