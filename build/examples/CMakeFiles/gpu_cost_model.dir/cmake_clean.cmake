file(REMOVE_RECURSE
  "CMakeFiles/gpu_cost_model.dir/gpu_cost_model.cpp.o"
  "CMakeFiles/gpu_cost_model.dir/gpu_cost_model.cpp.o.d"
  "gpu_cost_model"
  "gpu_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
