file(REMOVE_RECURSE
  "CMakeFiles/block_jacobi_solver.dir/block_jacobi_solver.cpp.o"
  "CMakeFiles/block_jacobi_solver.dir/block_jacobi_solver.cpp.o.d"
  "block_jacobi_solver"
  "block_jacobi_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_jacobi_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
