# Empty compiler generated dependencies file for block_jacobi_solver.
# This may be replaced when dependencies are built.
