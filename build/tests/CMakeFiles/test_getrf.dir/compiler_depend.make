# Empty compiler generated dependencies file for test_getrf.
# This may be replaced when dependencies are built.
