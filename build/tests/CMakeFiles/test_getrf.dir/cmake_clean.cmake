file(REMOVE_RECURSE
  "CMakeFiles/test_getrf.dir/test_getrf.cpp.o"
  "CMakeFiles/test_getrf.dir/test_getrf.cpp.o.d"
  "test_getrf"
  "test_getrf.pdb"
  "test_getrf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_getrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
