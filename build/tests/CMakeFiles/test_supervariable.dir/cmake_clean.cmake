file(REMOVE_RECURSE
  "CMakeFiles/test_supervariable.dir/test_supervariable.cpp.o"
  "CMakeFiles/test_supervariable.dir/test_supervariable.cpp.o.d"
  "test_supervariable"
  "test_supervariable.pdb"
  "test_supervariable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_supervariable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
