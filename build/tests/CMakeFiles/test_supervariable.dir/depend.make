# Empty dependencies file for test_supervariable.
# This may be replaced when dependencies are built.
