# Empty dependencies file for test_batch_layout.
# This may be replaced when dependencies are built.
