file(REMOVE_RECURSE
  "CMakeFiles/test_batch_layout.dir/test_batch_layout.cpp.o"
  "CMakeFiles/test_batch_layout.dir/test_batch_layout.cpp.o.d"
  "test_batch_layout"
  "test_batch_layout.pdb"
  "test_batch_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
