file(REMOVE_RECURSE
  "CMakeFiles/test_rcm.dir/test_rcm.cpp.o"
  "CMakeFiles/test_rcm.dir/test_rcm.cpp.o.d"
  "test_rcm"
  "test_rcm.pdb"
  "test_rcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
