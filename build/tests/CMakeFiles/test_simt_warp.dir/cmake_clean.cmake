file(REMOVE_RECURSE
  "CMakeFiles/test_simt_warp.dir/test_simt_warp.cpp.o"
  "CMakeFiles/test_simt_warp.dir/test_simt_warp.cpp.o.d"
  "test_simt_warp"
  "test_simt_warp.pdb"
  "test_simt_warp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_warp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
