# Empty dependencies file for test_sellp.
# This may be replaced when dependencies are built.
