file(REMOVE_RECURSE
  "CMakeFiles/test_sellp.dir/test_sellp.cpp.o"
  "CMakeFiles/test_sellp.dir/test_sellp.cpp.o.d"
  "test_sellp"
  "test_sellp.pdb"
  "test_sellp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sellp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
