# Empty compiler generated dependencies file for test_simt_kernels.
# This may be replaced when dependencies are built.
