file(REMOVE_RECURSE
  "CMakeFiles/test_trsv.dir/test_trsv.cpp.o"
  "CMakeFiles/test_trsv.dir/test_trsv.cpp.o.d"
  "test_trsv"
  "test_trsv.pdb"
  "test_trsv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
