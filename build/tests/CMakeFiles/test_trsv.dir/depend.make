# Empty dependencies file for test_trsv.
# This may be replaced when dependencies are built.
