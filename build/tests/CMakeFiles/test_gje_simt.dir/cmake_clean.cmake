file(REMOVE_RECURSE
  "CMakeFiles/test_gje_simt.dir/test_gje_simt.cpp.o"
  "CMakeFiles/test_gje_simt.dir/test_gje_simt.cpp.o.d"
  "test_gje_simt"
  "test_gje_simt.pdb"
  "test_gje_simt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gje_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
