# Empty dependencies file for test_gje_simt.
# This may be replaced when dependencies are built.
