file(REMOVE_RECURSE
  "CMakeFiles/test_suite_cases.dir/test_suite_cases.cpp.o"
  "CMakeFiles/test_suite_cases.dir/test_suite_cases.cpp.o.d"
  "test_suite_cases"
  "test_suite_cases.pdb"
  "test_suite_cases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
