# Empty dependencies file for test_suite_cases.
# This may be replaced when dependencies are built.
