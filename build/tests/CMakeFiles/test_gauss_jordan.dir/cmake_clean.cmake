file(REMOVE_RECURSE
  "CMakeFiles/test_gauss_jordan.dir/test_gauss_jordan.cpp.o"
  "CMakeFiles/test_gauss_jordan.dir/test_gauss_jordan.cpp.o.d"
  "test_gauss_jordan"
  "test_gauss_jordan.pdb"
  "test_gauss_jordan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gauss_jordan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
