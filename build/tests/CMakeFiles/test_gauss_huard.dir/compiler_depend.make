# Empty compiler generated dependencies file for test_gauss_huard.
# This may be replaced when dependencies are built.
