file(REMOVE_RECURSE
  "CMakeFiles/test_gauss_huard.dir/test_gauss_huard.cpp.o"
  "CMakeFiles/test_gauss_huard.dir/test_gauss_huard.cpp.o.d"
  "test_gauss_huard"
  "test_gauss_huard.pdb"
  "test_gauss_huard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gauss_huard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
