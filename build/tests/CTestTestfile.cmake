# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_simt_warp[1]_include.cmake")
include("/root/repo/build/tests/test_device_model[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_batch_layout[1]_include.cmake")
include("/root/repo/build/tests/test_getrf[1]_include.cmake")
include("/root/repo/build/tests/test_trsv[1]_include.cmake")
include("/root/repo/build/tests/test_gauss_huard[1]_include.cmake")
include("/root/repo/build/tests/test_gauss_jordan[1]_include.cmake")
include("/root/repo/build/tests/test_vendor[1]_include.cmake")
include("/root/repo/build/tests/test_simt_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_suite_cases[1]_include.cmake")
include("/root/repo/build/tests/test_supervariable[1]_include.cmake")
include("/root/repo/build/tests/test_extraction[1]_include.cmake")
include("/root/repo/build/tests/test_precond[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_cholesky[1]_include.cmake")
include("/root/repo/build/tests/test_packed[1]_include.cmake")
include("/root/repo/build/tests/test_rcm[1]_include.cmake")
include("/root/repo/build/tests/test_sellp[1]_include.cmake")
include("/root/repo/build/tests/test_gje_simt[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
