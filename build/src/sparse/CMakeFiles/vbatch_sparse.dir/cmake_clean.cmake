file(REMOVE_RECURSE
  "CMakeFiles/vbatch_sparse.dir/csr.cpp.o"
  "CMakeFiles/vbatch_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/vbatch_sparse.dir/generators.cpp.o"
  "CMakeFiles/vbatch_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/vbatch_sparse.dir/matrix_market.cpp.o"
  "CMakeFiles/vbatch_sparse.dir/matrix_market.cpp.o.d"
  "CMakeFiles/vbatch_sparse.dir/sellp.cpp.o"
  "CMakeFiles/vbatch_sparse.dir/sellp.cpp.o.d"
  "CMakeFiles/vbatch_sparse.dir/suite.cpp.o"
  "CMakeFiles/vbatch_sparse.dir/suite.cpp.o.d"
  "libvbatch_sparse.a"
  "libvbatch_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbatch_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
