
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/vbatch_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/vbatch_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/vbatch_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/vbatch_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/matrix_market.cpp" "src/sparse/CMakeFiles/vbatch_sparse.dir/matrix_market.cpp.o" "gcc" "src/sparse/CMakeFiles/vbatch_sparse.dir/matrix_market.cpp.o.d"
  "/root/repo/src/sparse/sellp.cpp" "src/sparse/CMakeFiles/vbatch_sparse.dir/sellp.cpp.o" "gcc" "src/sparse/CMakeFiles/vbatch_sparse.dir/sellp.cpp.o.d"
  "/root/repo/src/sparse/suite.cpp" "src/sparse/CMakeFiles/vbatch_sparse.dir/suite.cpp.o" "gcc" "src/sparse/CMakeFiles/vbatch_sparse.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vbatch_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
