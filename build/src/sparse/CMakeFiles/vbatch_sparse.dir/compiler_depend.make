# Empty compiler generated dependencies file for vbatch_sparse.
# This may be replaced when dependencies are built.
