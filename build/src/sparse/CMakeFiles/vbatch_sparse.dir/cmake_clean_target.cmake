file(REMOVE_RECURSE
  "libvbatch_sparse.a"
)
