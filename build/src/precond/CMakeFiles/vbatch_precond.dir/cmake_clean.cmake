file(REMOVE_RECURSE
  "CMakeFiles/vbatch_precond.dir/block_jacobi.cpp.o"
  "CMakeFiles/vbatch_precond.dir/block_jacobi.cpp.o.d"
  "libvbatch_precond.a"
  "libvbatch_precond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbatch_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
