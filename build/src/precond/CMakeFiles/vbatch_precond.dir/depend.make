# Empty dependencies file for vbatch_precond.
# This may be replaced when dependencies are built.
