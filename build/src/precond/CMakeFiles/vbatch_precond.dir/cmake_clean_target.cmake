file(REMOVE_RECURSE
  "libvbatch_precond.a"
)
