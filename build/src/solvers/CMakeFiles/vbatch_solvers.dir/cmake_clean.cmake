file(REMOVE_RECURSE
  "CMakeFiles/vbatch_solvers.dir/bicgstab.cpp.o"
  "CMakeFiles/vbatch_solvers.dir/bicgstab.cpp.o.d"
  "CMakeFiles/vbatch_solvers.dir/cg.cpp.o"
  "CMakeFiles/vbatch_solvers.dir/cg.cpp.o.d"
  "CMakeFiles/vbatch_solvers.dir/gmres.cpp.o"
  "CMakeFiles/vbatch_solvers.dir/gmres.cpp.o.d"
  "CMakeFiles/vbatch_solvers.dir/idr.cpp.o"
  "CMakeFiles/vbatch_solvers.dir/idr.cpp.o.d"
  "libvbatch_solvers.a"
  "libvbatch_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbatch_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
