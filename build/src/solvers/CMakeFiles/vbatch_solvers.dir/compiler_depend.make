# Empty compiler generated dependencies file for vbatch_solvers.
# This may be replaced when dependencies are built.
