
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solvers/bicgstab.cpp" "src/solvers/CMakeFiles/vbatch_solvers.dir/bicgstab.cpp.o" "gcc" "src/solvers/CMakeFiles/vbatch_solvers.dir/bicgstab.cpp.o.d"
  "/root/repo/src/solvers/cg.cpp" "src/solvers/CMakeFiles/vbatch_solvers.dir/cg.cpp.o" "gcc" "src/solvers/CMakeFiles/vbatch_solvers.dir/cg.cpp.o.d"
  "/root/repo/src/solvers/gmres.cpp" "src/solvers/CMakeFiles/vbatch_solvers.dir/gmres.cpp.o" "gcc" "src/solvers/CMakeFiles/vbatch_solvers.dir/gmres.cpp.o.d"
  "/root/repo/src/solvers/idr.cpp" "src/solvers/CMakeFiles/vbatch_solvers.dir/idr.cpp.o" "gcc" "src/solvers/CMakeFiles/vbatch_solvers.dir/idr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vbatch_base.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/vbatch_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/precond/CMakeFiles/vbatch_precond.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/vbatch_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/blocking/CMakeFiles/vbatch_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vbatch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/vbatch_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
