file(REMOVE_RECURSE
  "libvbatch_solvers.a"
)
