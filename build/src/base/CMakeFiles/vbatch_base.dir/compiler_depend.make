# Empty compiler generated dependencies file for vbatch_base.
# This may be replaced when dependencies are built.
