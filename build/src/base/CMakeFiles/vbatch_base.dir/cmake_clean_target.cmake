file(REMOVE_RECURSE
  "libvbatch_base.a"
)
