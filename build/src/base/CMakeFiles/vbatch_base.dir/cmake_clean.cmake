file(REMOVE_RECURSE
  "CMakeFiles/vbatch_base.dir/exception.cpp.o"
  "CMakeFiles/vbatch_base.dir/exception.cpp.o.d"
  "CMakeFiles/vbatch_base.dir/statistics.cpp.o"
  "CMakeFiles/vbatch_base.dir/statistics.cpp.o.d"
  "CMakeFiles/vbatch_base.dir/thread_pool.cpp.o"
  "CMakeFiles/vbatch_base.dir/thread_pool.cpp.o.d"
  "libvbatch_base.a"
  "libvbatch_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbatch_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
