file(REMOVE_RECURSE
  "libvbatch_blas.a"
)
