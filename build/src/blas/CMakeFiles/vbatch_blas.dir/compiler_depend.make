# Empty compiler generated dependencies file for vbatch_blas.
# This may be replaced when dependencies are built.
