file(REMOVE_RECURSE
  "CMakeFiles/vbatch_blas.dir/lapack.cpp.o"
  "CMakeFiles/vbatch_blas.dir/lapack.cpp.o.d"
  "libvbatch_blas.a"
  "libvbatch_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbatch_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
