# Empty compiler generated dependencies file for vbatch_core.
# This may be replaced when dependencies are built.
