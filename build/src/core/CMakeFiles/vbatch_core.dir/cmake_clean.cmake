file(REMOVE_RECURSE
  "CMakeFiles/vbatch_core.dir/batch_layout.cpp.o"
  "CMakeFiles/vbatch_core.dir/batch_layout.cpp.o.d"
  "CMakeFiles/vbatch_core.dir/cholesky.cpp.o"
  "CMakeFiles/vbatch_core.dir/cholesky.cpp.o.d"
  "CMakeFiles/vbatch_core.dir/gauss_huard.cpp.o"
  "CMakeFiles/vbatch_core.dir/gauss_huard.cpp.o.d"
  "CMakeFiles/vbatch_core.dir/gauss_jordan.cpp.o"
  "CMakeFiles/vbatch_core.dir/gauss_jordan.cpp.o.d"
  "CMakeFiles/vbatch_core.dir/getrf.cpp.o"
  "CMakeFiles/vbatch_core.dir/getrf.cpp.o.d"
  "CMakeFiles/vbatch_core.dir/gje_simt.cpp.o"
  "CMakeFiles/vbatch_core.dir/gje_simt.cpp.o.d"
  "CMakeFiles/vbatch_core.dir/packed_kernels.cpp.o"
  "CMakeFiles/vbatch_core.dir/packed_kernels.cpp.o.d"
  "CMakeFiles/vbatch_core.dir/simt_kernels.cpp.o"
  "CMakeFiles/vbatch_core.dir/simt_kernels.cpp.o.d"
  "CMakeFiles/vbatch_core.dir/trsv.cpp.o"
  "CMakeFiles/vbatch_core.dir/trsv.cpp.o.d"
  "CMakeFiles/vbatch_core.dir/vendor.cpp.o"
  "CMakeFiles/vbatch_core.dir/vendor.cpp.o.d"
  "libvbatch_core.a"
  "libvbatch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbatch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
