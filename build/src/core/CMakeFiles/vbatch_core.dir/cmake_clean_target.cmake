file(REMOVE_RECURSE
  "libvbatch_core.a"
)
