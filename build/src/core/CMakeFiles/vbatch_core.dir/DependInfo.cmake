
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_layout.cpp" "src/core/CMakeFiles/vbatch_core.dir/batch_layout.cpp.o" "gcc" "src/core/CMakeFiles/vbatch_core.dir/batch_layout.cpp.o.d"
  "/root/repo/src/core/cholesky.cpp" "src/core/CMakeFiles/vbatch_core.dir/cholesky.cpp.o" "gcc" "src/core/CMakeFiles/vbatch_core.dir/cholesky.cpp.o.d"
  "/root/repo/src/core/gauss_huard.cpp" "src/core/CMakeFiles/vbatch_core.dir/gauss_huard.cpp.o" "gcc" "src/core/CMakeFiles/vbatch_core.dir/gauss_huard.cpp.o.d"
  "/root/repo/src/core/gauss_jordan.cpp" "src/core/CMakeFiles/vbatch_core.dir/gauss_jordan.cpp.o" "gcc" "src/core/CMakeFiles/vbatch_core.dir/gauss_jordan.cpp.o.d"
  "/root/repo/src/core/getrf.cpp" "src/core/CMakeFiles/vbatch_core.dir/getrf.cpp.o" "gcc" "src/core/CMakeFiles/vbatch_core.dir/getrf.cpp.o.d"
  "/root/repo/src/core/gje_simt.cpp" "src/core/CMakeFiles/vbatch_core.dir/gje_simt.cpp.o" "gcc" "src/core/CMakeFiles/vbatch_core.dir/gje_simt.cpp.o.d"
  "/root/repo/src/core/packed_kernels.cpp" "src/core/CMakeFiles/vbatch_core.dir/packed_kernels.cpp.o" "gcc" "src/core/CMakeFiles/vbatch_core.dir/packed_kernels.cpp.o.d"
  "/root/repo/src/core/simt_kernels.cpp" "src/core/CMakeFiles/vbatch_core.dir/simt_kernels.cpp.o" "gcc" "src/core/CMakeFiles/vbatch_core.dir/simt_kernels.cpp.o.d"
  "/root/repo/src/core/trsv.cpp" "src/core/CMakeFiles/vbatch_core.dir/trsv.cpp.o" "gcc" "src/core/CMakeFiles/vbatch_core.dir/trsv.cpp.o.d"
  "/root/repo/src/core/vendor.cpp" "src/core/CMakeFiles/vbatch_core.dir/vendor.cpp.o" "gcc" "src/core/CMakeFiles/vbatch_core.dir/vendor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/vbatch_base.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/vbatch_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/vbatch_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
