file(REMOVE_RECURSE
  "CMakeFiles/vbatch_simt.dir/device_model.cpp.o"
  "CMakeFiles/vbatch_simt.dir/device_model.cpp.o.d"
  "libvbatch_simt.a"
  "libvbatch_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbatch_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
