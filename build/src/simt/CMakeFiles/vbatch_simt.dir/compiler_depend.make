# Empty compiler generated dependencies file for vbatch_simt.
# This may be replaced when dependencies are built.
