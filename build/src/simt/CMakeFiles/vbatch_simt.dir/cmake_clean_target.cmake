file(REMOVE_RECURSE
  "libvbatch_simt.a"
)
