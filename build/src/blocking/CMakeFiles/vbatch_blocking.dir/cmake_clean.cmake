file(REMOVE_RECURSE
  "CMakeFiles/vbatch_blocking.dir/extraction.cpp.o"
  "CMakeFiles/vbatch_blocking.dir/extraction.cpp.o.d"
  "CMakeFiles/vbatch_blocking.dir/rcm.cpp.o"
  "CMakeFiles/vbatch_blocking.dir/rcm.cpp.o.d"
  "CMakeFiles/vbatch_blocking.dir/supervariable.cpp.o"
  "CMakeFiles/vbatch_blocking.dir/supervariable.cpp.o.d"
  "libvbatch_blocking.a"
  "libvbatch_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbatch_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
