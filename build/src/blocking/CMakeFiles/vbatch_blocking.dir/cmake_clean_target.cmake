file(REMOVE_RECURSE
  "libvbatch_blocking.a"
)
