# Empty compiler generated dependencies file for vbatch_blocking.
# This may be replaced when dependencies are built.
