file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pivoting.dir/bench_ablation_pivoting.cpp.o"
  "CMakeFiles/bench_ablation_pivoting.dir/bench_ablation_pivoting.cpp.o.d"
  "bench_ablation_pivoting"
  "bench_ablation_pivoting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pivoting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
