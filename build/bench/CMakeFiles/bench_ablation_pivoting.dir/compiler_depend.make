# Empty compiler generated dependencies file for bench_ablation_pivoting.
# This may be replaced when dependencies are built.
