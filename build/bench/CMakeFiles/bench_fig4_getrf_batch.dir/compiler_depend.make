# Empty compiler generated dependencies file for bench_fig4_getrf_batch.
# This may be replaced when dependencies are built.
