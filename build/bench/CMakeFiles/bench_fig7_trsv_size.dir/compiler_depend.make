# Empty compiler generated dependencies file for bench_fig7_trsv_size.
# This may be replaced when dependencies are built.
