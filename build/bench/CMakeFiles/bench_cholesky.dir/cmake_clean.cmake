file(REMOVE_RECURSE
  "CMakeFiles/bench_cholesky.dir/bench_cholesky.cpp.o"
  "CMakeFiles/bench_cholesky.dir/bench_cholesky.cpp.o.d"
  "bench_cholesky"
  "bench_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
