file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_trsv_batch.dir/bench_fig6_trsv_batch.cpp.o"
  "CMakeFiles/bench_fig6_trsv_batch.dir/bench_fig6_trsv_batch.cpp.o.d"
  "bench_fig6_trsv_batch"
  "bench_fig6_trsv_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_trsv_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
