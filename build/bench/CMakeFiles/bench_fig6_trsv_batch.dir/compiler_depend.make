# Empty compiler generated dependencies file for bench_fig6_trsv_batch.
# This may be replaced when dependencies are built.
