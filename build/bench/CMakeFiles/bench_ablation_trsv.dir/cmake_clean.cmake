file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trsv.dir/bench_ablation_trsv.cpp.o"
  "CMakeFiles/bench_ablation_trsv.dir/bench_ablation_trsv.cpp.o.d"
  "bench_ablation_trsv"
  "bench_ablation_trsv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
