# Empty compiler generated dependencies file for bench_ablation_trsv.
# This may be replaced when dependencies are built.
