// Tests for the symbolic/numeric setup split: gather plans vs the
// reference extraction, pattern fingerprinting, BlockJacobi::refresh
// bitwise equality with a fresh setup (scalar and SIMD backends),
// pattern-mismatch rejection, refresh-after-recovery behavior, the new
// SetupPhases breakdown and the plan-reuse counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "base/exception.hpp"
#include "base/random.hpp"
#include "blocking/extraction.hpp"
#include "blocking/gather_plan.hpp"
#include "blocking/supervariable.hpp"
#include "core/simd_dispatch.hpp"
#include "obs/metrics.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"

namespace vbatch::precond {
namespace {

sparse::Csr<double> test_matrix() {
    return sparse::fem_block_matrix<double>(40, 3, 9, 5.0, 123);
}

/// Same pattern, different values: perturb every stored entry by a
/// value-dependent factor so no entry keeps its old bit pattern.
template <typename T>
std::vector<T> perturbed_values(const sparse::Csr<T>& a, unsigned seed) {
    auto eng = make_engine(seed);
    std::vector<T> v(a.values().begin(), a.values().end());
    for (auto& x : v) {
        x = x * static_cast<T>(uniform(eng, 0.5, 1.5)) +
            static_cast<T>(uniform(eng, -0.25, 0.25));
    }
    return v;
}

template <typename T>
void expect_same_factors(const BlockJacobi<T>& got,
                         const BlockJacobi<T>& want) {
    const auto& layout = want.layout();
    ASSERT_EQ(got.layout().sizes(), layout.sizes());
    const auto nvals = static_cast<std::size_t>(layout.total_values());
    EXPECT_TRUE(std::equal(got.factors().data(),
                           got.factors().data() + nvals,
                           want.factors().data()))
        << "factor values differ";
    for (size_type b = 0; b < layout.count(); ++b) {
        const auto gp = got.pivots().span(b);
        const auto wp = want.pivots().span(b);
        EXPECT_TRUE(std::equal(gp.begin(), gp.end(), wp.begin()))
            << "pivots of block " << b << " differ";
    }
    ASSERT_EQ(got.block_status().size(), want.block_status().size());
    for (std::size_t b = 0; b < want.block_status().size(); ++b) {
        EXPECT_EQ(got.block_status()[b], want.block_status()[b])
            << "status of block " << b;
    }
    const auto gs = got.recovery_summary();
    const auto ws = want.recovery_summary();
    EXPECT_EQ(gs.ok, ws.ok);
    EXPECT_EQ(gs.boosted, ws.boosted);
    EXPECT_EQ(gs.fell_back, ws.fell_back);
    EXPECT_EQ(gs.singular, ws.singular);
    EXPECT_EQ(gs.max_growth, ws.max_growth);
}

// -- gather plan vs reference extraction ------------------------------

TEST(GatherPlan, GatherMatchesExtractionBitwise) {
    const auto a = test_matrix();
    blocking::BlockingOptions bopts;
    bopts.max_block_size = 12;
    const auto layout = blocking::supervariable_layout(a, bopts);
    const blocking::GatherPlan plan(a, layout);
    const auto reference = blocking::extract_diagonal_blocks(a, layout);

    core::BatchedMatrices<double> gathered(layout);
    for (size_type b = 0; b < layout->count(); ++b) {
        plan.gather_block(a.values(), b, gathered.view(b));
    }
    const auto n = static_cast<std::size_t>(layout->total_values());
    EXPECT_TRUE(std::equal(gathered.data(), gathered.data() + n,
                           reference.data()));
}

TEST(GatherPlan, CountsOnlyInBlockEntries) {
    const auto a = test_matrix();
    blocking::BlockingOptions bopts;
    bopts.max_block_size = 8;
    const auto layout = blocking::supervariable_layout(a, bopts);
    const blocking::GatherPlan plan(a, layout);
    size_type total = 0;
    for (size_type b = 0; b < layout->count(); ++b) {
        total += plan.block_entries(b);
    }
    EXPECT_EQ(total, static_cast<size_type>(plan.src().size()));
    EXPECT_LE(total, a.nnz());
    EXPECT_GT(total, 0);
}

TEST(GatherPlan, MatchesDetectsPatternChange) {
    const auto a = test_matrix();
    blocking::BlockingOptions bopts;
    const auto layout = blocking::supervariable_layout(a, bopts);
    const blocking::GatherPlan plan(a, layout);
    EXPECT_TRUE(plan.matches(a));

    // New values, same pattern: still a match.
    auto b = a;
    const auto v2 = perturbed_values(a, 7);
    b.set_values(std::span<const double>(v2));
    EXPECT_TRUE(plan.matches(b));

    // Structural mutation: the fingerprint must reject it.
    auto c = a;
    c.drop_small_entries(1e-3);
    ASSERT_NE(c.nnz(), a.nnz());
    EXPECT_FALSE(plan.matches(c));
}

TEST(GatherPlan, HashSensitiveToStructureNotValues) {
    const auto a = test_matrix();
    const auto h = blocking::csr_pattern_hash(a.row_ptrs(), a.col_idxs());
    auto b = a;
    const auto v2 = perturbed_values(a, 11);
    b.set_values(std::span<const double>(v2));
    EXPECT_EQ(h, blocking::csr_pattern_hash(b.row_ptrs(), b.col_idxs()));
    const auto c = sparse::laplacian_2d<double>(15, 16);
    EXPECT_NE(h, blocking::csr_pattern_hash(c.row_ptrs(), c.col_idxs()));
}

// -- refresh: bitwise equality with a fresh setup ---------------------

class RefreshBackends
    : public ::testing::TestWithParam<BlockJacobiBackend> {};

TEST_P(RefreshBackends, RefreshEqualsFreshSetupBitwise) {
    const auto a = test_matrix();
    BlockJacobiOptions opts;
    opts.backend = GetParam();
    opts.max_block_size = 12;

    BlockJacobi<double> prec(a, opts);
    auto b = a;
    const auto v2 = perturbed_values(a, 42);
    b.set_values(std::span<const double>(v2));
    prec.refresh(b);
    EXPECT_GT(prec.refresh_seconds(), 0.0);

    // Same layout so the comparison sees identical block partitions.
    BlockJacobiOptions fresh_opts = opts;
    fresh_opts.layout = std::make_shared<const core::BatchLayout>(
        prec.layout());
    const BlockJacobi<double> fresh(b, fresh_opts);
    expect_same_factors(prec, fresh);
}

TEST_P(RefreshBackends, RefreshIsRepeatable) {
    const auto a = test_matrix();
    BlockJacobiOptions opts;
    opts.backend = GetParam();
    opts.max_block_size = 12;
    BlockJacobi<double> prec(a, opts);

    // Refresh to new values and back: the round trip must reproduce the
    // original factors bit for bit.
    const auto original =
        std::vector<double>(prec.factors().data(),
                            prec.factors().data() +
                                prec.layout().total_values());
    auto b = a;
    const auto v2 = perturbed_values(a, 99);
    b.set_values(std::span<const double>(v2));
    prec.refresh(b);
    prec.refresh(a);
    EXPECT_TRUE(std::equal(original.begin(), original.end(),
                           prec.factors().data()));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, RefreshBackends,
    ::testing::Values(BlockJacobiBackend::lu, BlockJacobiBackend::lu_simd,
                      BlockJacobiBackend::gauss_huard,
                      BlockJacobiBackend::gauss_huard_t,
                      BlockJacobiBackend::gje_inversion),
    [](const auto& info) {
        auto name = backend_name(info.param);
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

TEST(Refresh, SimdMatchesScalarAfterRefresh) {
    const auto a = test_matrix();
    BlockJacobiOptions scalar_opts;
    scalar_opts.backend = BlockJacobiBackend::lu;
    scalar_opts.max_block_size = 12;
    BlockJacobi<double> scalar(a, scalar_opts);
    BlockJacobiOptions simd_opts = scalar_opts;
    simd_opts.backend = BlockJacobiBackend::lu_simd;
    BlockJacobi<double> simd(a, simd_opts);

    auto b = a;
    const auto v2 = perturbed_values(a, 5);
    b.set_values(std::span<const double>(v2));
    scalar.refresh(b);
    simd.refresh(b);

    const auto n = static_cast<std::size_t>(
        scalar.layout().total_values());
    EXPECT_TRUE(std::equal(scalar.factors().data(),
                           scalar.factors().data() + n,
                           simd.factors().data()));

    std::vector<double> r(static_cast<std::size_t>(a.num_rows()), 1.0);
    std::vector<double> z1(r.size()), z2(r.size());
    scalar.apply(std::span<const double>(r), std::span<double>(z1));
    simd.apply(std::span<const double>(r), std::span<double>(z2));
    EXPECT_EQ(z1, z2);
}

TEST(Refresh, FloatBackendBitwise) {
    const auto a = sparse::fem_block_matrix<float>(30, 3, 9, 5.0, 21);
    BlockJacobiOptions opts;
    opts.backend = BlockJacobiBackend::lu_simd;
    opts.max_block_size = 9;
    BlockJacobi<float> prec(a, opts);
    auto b = a;
    const auto v2 = perturbed_values(a, 13);
    b.set_values(std::span<const float>(v2));
    prec.refresh(b);

    BlockJacobiOptions fresh_opts = opts;
    fresh_opts.layout =
        std::make_shared<const core::BatchLayout>(prec.layout());
    const BlockJacobi<float> fresh(b, fresh_opts);
    expect_same_factors(prec, fresh);
}

// -- refresh: pattern-mismatch rejection ------------------------------

TEST(Refresh, PatternMismatchThrows) {
    const auto a = test_matrix();
    BlockJacobiOptions opts;
    opts.max_block_size = 12;
    BlockJacobi<double> prec(a, opts);

    // Same dims, different pattern.
    auto b = a;
    b.drop_small_entries(1e-3);
    ASSERT_NE(b.nnz(), a.nnz());
    EXPECT_THROW(prec.refresh(b), BadParameter);

    // Different dims.
    const auto c = sparse::laplacian_2d<double>(10, 10);
    EXPECT_THROW(prec.refresh(c), BadParameter);
}

TEST(Refresh, SetValuesSizeMismatchThrows) {
    auto a = test_matrix();
    std::vector<double> wrong(static_cast<std::size_t>(a.nnz()) + 1, 1.0);
    EXPECT_THROW(a.set_values(std::span<const double>(wrong)),
                 DimensionMismatch);
}

// -- refresh after recovery -------------------------------------------

TEST(Refresh, RecoveryStateRebuiltPerRefresh) {
    // Healthy matrix first; then values that break two blocks; then
    // healthy again. Each refresh must report exactly the state a fresh
    // setup on the same values reports, with no leakage between runs.
    auto a = sparse::laplacian_2d<double>(12, 12);
    blocking::BlockingOptions bopts;
    bopts.max_block_size = 8;
    const auto layout = blocking::supervariable_layout(a, bopts);
    BlockJacobiOptions opts;
    opts.layout = layout;
    opts.backend = BlockJacobiBackend::lu;
    BlockJacobi<double> prec(a, opts);
    EXPECT_EQ(prec.recovery_summary().degraded(), 0);

    auto broken = a;
    blocking::make_blocks_singular(broken, *layout, 2);
    ASSERT_TRUE(prec.gather_plan().matches(broken));
    prec.refresh(broken);
    const BlockJacobi<double> fresh_broken(broken, opts);
    expect_same_factors(prec, fresh_broken);
    EXPECT_GT(prec.recovery_summary().degraded(), 0);

    prec.refresh(a);
    EXPECT_EQ(prec.recovery_summary().degraded(), 0);
    const BlockJacobi<double> fresh_clean(a, opts);
    expect_same_factors(prec, fresh_clean);
}

TEST(Refresh, StrictPolicyRefreshThrowsOnBreakdown) {
    auto a = sparse::laplacian_2d<double>(10, 10);
    blocking::BlockingOptions bopts;
    bopts.max_block_size = 5;
    const auto layout = blocking::supervariable_layout(a, bopts);
    BlockJacobiOptions opts;
    opts.layout = layout;
    opts.recovery = RecoveryPolicy::strict();
    BlockJacobi<double> prec(a, opts);

    auto broken = a;
    blocking::make_blocks_singular(broken, *layout, 1);
    EXPECT_THROW(prec.refresh(broken), SingularMatrix);
}

// -- phases and counters ----------------------------------------------

TEST(SetupPhases, BreakdownCoversNewPhases) {
    const auto a = test_matrix();
    BlockJacobiOptions opts;
    opts.backend = BlockJacobiBackend::lu_simd;
    opts.max_block_size = 12;
    BlockJacobi<double> prec(a, opts);

    const auto& ph = prec.setup_phases();
    EXPECT_GE(ph.blocking_seconds, 0.0);
    EXPECT_GT(ph.plan_seconds, 0.0);
    EXPECT_GT(ph.gather_seconds, 0.0);
    EXPECT_GT(ph.factorize_seconds, 0.0);
    EXPECT_GE(ph.pack_seconds, 0.0);
    EXPECT_GE(ph.recovery_seconds, 0.0);

    const double plan_before = ph.plan_seconds;
    auto b = a;
    const auto v2 = perturbed_values(a, 3);
    b.set_values(std::span<const double>(v2));
    prec.refresh(b);
    // Symbolic timings are construction-time; numeric ones are fresh.
    EXPECT_EQ(prec.setup_phases().plan_seconds, plan_before);
    EXPECT_GT(prec.setup_phases().gather_seconds, 0.0);
}

TEST(SetupPhases, PlanReuseCountersExported) {
    auto& registry = obs::Registry::global();
    registry.clear();
    const auto a = test_matrix();
    BlockJacobiOptions opts;
    opts.max_block_size = 12;
    BlockJacobi<double> prec(a, opts);
    EXPECT_EQ(registry.counter_value("block_jacobi.plan_builds"), 1.0);
    EXPECT_EQ(registry.counter_value("block_jacobi.plan_reuses"), 0.0);

    auto b = a;
    const auto v2 = perturbed_values(a, 17);
    b.set_values(std::span<const double>(v2));
    prec.refresh(b);
    prec.refresh(a);
    EXPECT_EQ(registry.counter_value("block_jacobi.plan_builds"), 1.0);
    EXPECT_EQ(registry.counter_value("block_jacobi.refreshes"), 2.0);
    EXPECT_EQ(registry.counter_value("block_jacobi.plan_reuses"), 2.0);
    EXPECT_GT(registry.counter_value("block_jacobi.gather_seconds"), 0.0);
    EXPECT_GE(registry.counter_value("block_jacobi.pack_seconds"), 0.0);
    registry.clear();
}

}  // namespace
}  // namespace vbatch::precond
